# Convenience targets; `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build test check ci differential chaos stress thrash pipeline overload degrade bench bench-json clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full verification: compile everything, run the unit suites, then run
# the randomized differential suite explicitly.  The differential
# tests use fixed seeds (see test/test_differential.ml), so this
# target is deterministic and reproducible in CI.
check: build
	$(DUNE) runtest
	$(DUNE) exec test/test_differential.exe

differential:
	$(DUNE) exec test/test_differential.exe

# Chaos suites: deterministic fault injection (seeds 11/23/47 fixed
# inside the suites) against the loader and the serving catalog —
# no crash, per-query isolation, quarantine/backoff transitions, and
# bit-identical Ok results versus a fault-free run.
chaos:
	$(DUNE) exec test/test_fault.exe
	$(DUNE) exec test/test_catalog_chaos.exe

# Concurrency stress: the parallel differential suite (sequential vs
# domain-pooled batches at pool sizes 1/2/4/8 — the domain counts are
# looped inside the suites — including chaos twins), the qcheck
# properties hammering the synchronized plan cache from several
# domains, and the shared-state catalog/counter suites.  All seeds are
# fixed, so this target is deterministic and reproducible in CI.
stress:
	$(DUNE) exec test/test_parallel_differential.exe
	$(DUNE) exec test/test_plan_cache_concurrent.exe
	$(DUNE) exec test/test_catalog_concurrent.exe
	$(DUNE) exec test/test_counters.exe

# Cache-core suite: the segmented-vs-LRU reference differential,
# qcheck properties of the unified bounded cache (cost conservation,
# pin-never-evicted, segment-size invariants), the deterministic
# scan-resistance thrash trace, and the bit-identity differential of
# engine estimates under either policy.
thrash:
	$(DUNE) exec test/test_bounded_cache.exe

# Serving-pipeline suites: the loader-pool future seam's unit tests,
# the pipeline differentials (blocking loads vs loader pools of 1/2/4
# — bit-identical results, errors, stats and clock, including keyed
# chaos twins; looped inside test_parallel_differential's pipeline
# group), and the loader-raises-mid-flight chaos twin.  All seeds are
# fixed, so this target is deterministic and reproducible in CI.
pipeline:
	$(DUNE) exec test/test_loader_pool.exe
	$(DUNE) exec test/test_parallel_differential.exe
	$(DUNE) exec test/test_catalog_chaos.exe

# Overload-protection suites: the admission controller's unit tests
# (deadline budgets, queue bound, circuit-breaker transitions, the
# planner's provability predicate) and the catalog-level overload
# differentials (infinite-budget bit-identity twins, deterministic
# shedding across domain counts 1/2/4, the degraded fallback tier,
# breaker persistence in the v2 health file).  All seeds fixed,
# deterministic in CI.
overload:
	$(DUNE) exec test/test_admission.exe
	$(DUNE) exec test/test_catalog_overload.exe

# Degradation-ladder suites: the three-rung answer tier (Exact ->
# resident-sibling Fallback -> pinned Sketch), total-blackout coverage
# with bit-identity twins across domain counts 1/2/4, the pinned
# region's hard byte budget, chaos twins proving every injected fault
# lands on a rung, and the v3 health file's unknown-directive
# skipping.  The chaos suite rides along: it shares the fault
# machinery the ladder degrades over.  All seeds fixed, deterministic
# in CI.
degrade:
	$(DUNE) exec test/test_catalog_degrade.exe
	$(DUNE) exec test/test_catalog_chaos.exe

bench:
	$(DUNE) exec bench/main.exe

# Machine-readable estimation-engine benchmark: plan build time, cold
# vs plan-cached throughput, batch vs scalar speedup per dataset, and
# the multi-dataset catalog serving section.
bench-json:
	$(DUNE) exec bench/main.exe -- --engine-only --scale 0.1 --engine-json BENCH_engine.json

# The whole gate in one target: compile, unit + differential suites,
# chaos suites, the cache-core thrash suite, the serving-pipeline
# suites, regenerate the engine benchmark, and fail if cold-path or
# fault-free serving throughput regressed more than 30% against the
# committed BENCH_engine.json (or the segmented policy stopped
# out-hitting plain LRU, or the pipelined cold batch stopped beating
# the blocking one under loader latency, or the sketch tier stopped
# answering 100% of a blacked-out dataset's queries).
ci: build
	$(DUNE) runtest
	$(MAKE) chaos
	$(MAKE) stress
	$(MAKE) thrash
	$(MAKE) pipeline
	$(MAKE) overload
	$(MAKE) degrade
	$(MAKE) bench-json
	sh tools/check_bench_regression.sh BENCH_engine.json

clean:
	$(DUNE) clean
