# Convenience targets; `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build test check ci differential bench bench-json clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full verification: compile everything, run the unit suites, then run
# the randomized differential suite explicitly.  The differential
# tests use fixed seeds (see test/test_differential.ml), so this
# target is deterministic and reproducible in CI.
check: build
	$(DUNE) runtest
	$(DUNE) exec test/test_differential.exe

differential:
	$(DUNE) exec test/test_differential.exe

bench:
	$(DUNE) exec bench/main.exe

# Machine-readable estimation-engine benchmark: plan build time, cold
# vs plan-cached throughput, batch vs scalar speedup per dataset, and
# the multi-dataset catalog serving section.
bench-json:
	$(DUNE) exec bench/main.exe -- --engine-only --scale 0.1 --engine-json BENCH_engine.json

# The whole gate in one target: compile, unit + differential suites,
# regenerate the engine benchmark, and fail if cold-path throughput
# regressed more than 30% against the committed BENCH_engine.json.
ci: build
	$(DUNE) runtest
	$(MAKE) bench-json
	sh tools/check_bench_regression.sh BENCH_engine.json

clean:
	$(DUNE) clean
