(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 7) and runs bechamel micro-benchmarks of
   the core operations.

     dune exec bench/main.exe                    # everything, bench profile
     dune exec bench/main.exe -- t3 f10          # selected artefacts
     dune exec bench/main.exe -- --scale 1.0 --cap 0   # paper-scale
     dune exec bench/main.exe -- --no-micro      # skip micro-benchmarks

   The default profile uses scale 0.25 and caps query classes at 600
   queries so a full run finishes in minutes; EXPERIMENTS.md records
   the profile used for the committed results. *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Summary = Xpest_synopsis.Summary
module Pf_table = Xpest_synopsis.Pf_table
module P_histogram = Xpest_synopsis.P_histogram
module Estimator = Xpest_estimator.Estimator
module Path_join = Xpest_estimator.Path_join
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Workload = Xpest_workload.Workload
module Xsketch = Xpest_baseline.Xsketch
module Env = Xpest_harness.Env
module Experiments = Xpest_harness.Experiments
module Tablefmt = Xpest_util.Tablefmt

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks.                                                   *)

let microbenches () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (bechamel, monotonic clock) ==\n";
  let doc = Registry.generate ~scale:0.02 Registry.Xmark in
  let base = Summary.collect doc in
  let summary = Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base in
  let estimator = Estimator.create summary in
  let pf = Summary.pf_table base in
  let simple_q = Pattern.of_string "//item/description//{keyword}" in
  let branch_q = Pattern.of_string "//item[/mailbox/mail]//{keyword}" in
  let order_q = Pattern.of_string "//item[/payment/folls::{description}]" in
  let join = Path_join.create summary in
  let tests =
    [
      Test.make ~name:"doc_of_tree (xmark 2%)"
        (Staged.stage (fun () ->
             ignore (Registry.generate ~scale:0.02 Registry.Xmark)));
      Test.make ~name:"collect_summary"
        (Staged.stage (fun () -> ignore (Summary.collect doc)));
      Test.make ~name:"p_histogram_build_all(v=0)"
        (Staged.stage (fun () ->
             ignore (P_histogram.build_all ~variance:0.0 pf)));
      Test.make ~name:"assemble(v=2)"
        (Staged.stage (fun () ->
             ignore (Summary.assemble ~p_variance:2.0 ~o_variance:2.0 base)));
      Test.make ~name:"path_join(branch)"
        (Staged.stage (fun () ->
             ignore (Path_join.run join (Pattern.shape branch_q))));
      (* cold: fresh caches per run, the first-estimate cost a query
         optimizer pays; warm: repeated estimation of a known query *)
      Test.make ~name:"estimate_cold(simple)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) simple_q)));
      Test.make ~name:"estimate_cold(branch)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) branch_q)));
      Test.make ~name:"estimate_cold(order)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) order_q)));
      Test.make ~name:"estimate_warm(order)"
        (Staged.stage (fun () -> ignore (Estimator.estimate estimator order_q)));
      Test.make ~name:"truth(branch)"
        (Staged.stage (fun () -> ignore (Truth.selectivity doc branch_q)));
      (* persistence: full codec round-trip costs, the cold-start
         alternative to collect+assemble *)
      Test.make ~name:"synopsis_encode"
        (Staged.stage (fun () -> ignore (Summary.encode summary)));
      Test.make ~name:"synopsis_decode"
        (Staged.stage
           (let bytes = Summary.encode summary in
            fun () -> ignore (Summary.decode bytes)));
      Test.make ~name:"xsketch_estimate(branch)"
        (Staged.stage
           (let sk = Xsketch.build ~budget_bytes:8192 doc in
            fun () -> ignore (Xsketch.estimate sk branch_q)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let analysis =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let rows =
    List.map
      (fun test ->
        let elt = List.hd (Test.elements test) in
        let raw = Benchmark.run cfg instances elt in
        let ols = Analyze.one analysis Toolkit.Instance.monotonic_clock raw in
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> Float.nan
        in
        [ Test.name test; Tablefmt.fmt_seconds (ns *. 1e-9) ])
      tests
  in
  print_endline
    (Tablefmt.render_table
       ~header:[ "operation"; "time/run" ]
       ~align:[ Tablefmt.Left; Tablefmt.Right ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let scale = ref 0.25 in
  let cap = ref 600 in
  let micro = ref true in
  let markdown = ref "" in
  let ids = ref [] in
  let spec =
    [
      ("--scale", Arg.Set_float scale, "S dataset scale factor (default 0.25)");
      ("--cap", Arg.Set_int cap, "N max queries per class, 0 = unlimited (default 600)");
      ("--no-micro", Arg.Clear micro, " skip bechamel micro-benchmarks");
      ("--micro-only", Arg.Unit (fun () -> ids := [ "none" ]), " only micro-benchmarks");
      ("--markdown", Arg.Set_string markdown, "FILE also write a markdown report");
    ]
  in
  Arg.parse spec (fun id -> ids := id :: !ids) "bench/main.exe [options] [ids]";
  let ids =
    match List.rev !ids with
    | [] -> Experiments.all_ids
    | [ "none" ] -> []
    | ids -> ids
  in
  if ids <> [] then begin
    let config =
      {
        Env.default_config with
        scale = !scale;
        max_queries_per_class = (if !cap = 0 then None else Some !cap);
      }
    in
    Printf.printf
      "== Reproduction of the evaluation (scale %g, query cap %s) ==\n\n%!"
      !scale
      (if !cap = 0 then "none" else string_of_int !cap);
    let envs =
      List.map
        (fun name ->
          let env, seconds =
            Env.time (fun () -> Env.prepare ~config name)
          in
          Printf.printf "prepared %s: %d elements, workload %d+%d queries (%s)\n%!"
            (Registry.to_string name)
            (Doc.size (Env.doc env))
            (Workload.total_without_order (Env.workload env))
            (Workload.total_with_order (Env.workload env))
            (Tablefmt.fmt_seconds seconds);
          env)
        Registry.all
    in
    print_newline ();
    let artefacts =
      List.map
        (fun id ->
          let artefact, seconds = Env.time (fun () -> Experiments.run envs id) in
          Printf.printf "%s\n(%s computed in %s)\n\n%!"
            (Experiments.render artefact)
            id
            (Tablefmt.fmt_seconds seconds);
          artefact)
        ids
    in
    if !markdown <> "" then begin
      let doc =
        Xpest_harness.Report.document
          ~title:"xpest: reproduced evaluation"
          ~preamble:
            [
              Printf.sprintf
                "Profile: dataset scale %g, query cap %s.  See EXPERIMENTS.md \
                 for the paper-vs-measured reading guide."
                !scale
                (if !cap = 0 then "none" else string_of_int !cap);
            ]
          artefacts
      in
      let oc = open_out !markdown in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote markdown report to %s\n%!" !markdown
    end
  end;
  if !micro then microbenches ()
