(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 7) and runs bechamel micro-benchmarks of
   the core operations.

     dune exec bench/main.exe                    # everything, bench profile
     dune exec bench/main.exe -- t3 f10          # selected artefacts
     dune exec bench/main.exe -- --scale 1.0 --cap 0   # paper-scale
     dune exec bench/main.exe -- --no-micro      # skip micro-benchmarks

   The default profile uses scale 0.25 and caps query classes at 600
   queries so a full run finishes in minutes; EXPERIMENTS.md records
   the profile used for the committed results. *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Pf_table = Xpest_synopsis.Pf_table
module P_histogram = Xpest_synopsis.P_histogram
module Plan = Xpest_plan.Plan
module Plan_cache = Xpest_plan.Plan_cache
module Estimator = Xpest_estimator.Estimator
module Path_join = Xpest_estimator.Path_join
module Catalog = Xpest_catalog.Catalog
module Admission = Xpest_catalog.Admission
module Cache_config = Xpest_plan.Cache_config
module Bounded_cache = Xpest_util.Bounded_cache
module Counters = Xpest_util.Counters
module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module Fault = Xpest_util.Fault
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Workload = Xpest_workload.Workload
module Xsketch = Xpest_baseline.Xsketch
module Sketch = Xpest_synopsis.Sketch
module Env = Xpest_harness.Env
module Experiments = Xpest_harness.Experiments
module Tablefmt = Xpest_util.Tablefmt

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks.                                                   *)

let microbenches () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (bechamel, monotonic clock) ==\n";
  let doc = Registry.generate ~scale:0.02 Registry.Xmark in
  let base = Summary.collect doc in
  let summary = Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base in
  let estimator = Estimator.create summary in
  let pf = Summary.pf_table base in
  let simple_q = Pattern.of_string "//item/description//{keyword}" in
  let branch_q = Pattern.of_string "//item[/mailbox/mail]//{keyword}" in
  let order_q = Pattern.of_string "//item[/payment/folls::{description}]" in
  let join = Path_join.create summary in
  let tests =
    [
      Test.make ~name:"doc_of_tree (xmark 2%)"
        (Staged.stage (fun () ->
             ignore (Registry.generate ~scale:0.02 Registry.Xmark)));
      Test.make ~name:"collect_summary"
        (Staged.stage (fun () -> ignore (Summary.collect doc)));
      Test.make ~name:"p_histogram_build_all(v=0)"
        (Staged.stage (fun () ->
             ignore (P_histogram.build_all ~variance:0.0 pf)));
      Test.make ~name:"assemble(v=2)"
        (Staged.stage (fun () ->
             ignore (Summary.assemble ~p_variance:2.0 ~o_variance:2.0 base)));
      Test.make ~name:"path_join(branch)"
        (Staged.stage (fun () ->
             ignore (Path_join.run join (Pattern.shape branch_q))));
      (* cold: fresh caches per run, the first-estimate cost a query
         optimizer pays; warm: repeated estimation of a known query *)
      Test.make ~name:"estimate_cold(simple)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) simple_q)));
      Test.make ~name:"estimate_cold(branch)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) branch_q)));
      Test.make ~name:"estimate_cold(order)"
        (Staged.stage (fun () ->
             ignore (Estimator.estimate (Estimator.create summary) order_q)));
      Test.make ~name:"estimate_warm(order)"
        (Staged.stage (fun () -> ignore (Estimator.estimate estimator order_q)));
      Test.make ~name:"truth(branch)"
        (Staged.stage (fun () -> ignore (Truth.selectivity doc branch_q)));
      (* persistence: full codec round-trip costs, the cold-start
         alternative to collect+assemble *)
      Test.make ~name:"synopsis_encode"
        (Staged.stage (fun () -> ignore (Summary.encode summary)));
      Test.make ~name:"synopsis_decode"
        (Staged.stage
           (let bytes = Summary.encode summary in
            fun () -> ignore (Summary.decode bytes)));
      Test.make ~name:"xsketch_estimate(branch)"
        (Staged.stage
           (let sk = Xsketch.build ~budget_bytes:8192 doc in
            fun () -> ignore (Xsketch.estimate sk branch_q)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let analysis =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let rows =
    List.map
      (fun test ->
        let elt = List.hd (Test.elements test) in
        let raw = Benchmark.run cfg instances elt in
        let ols = Analyze.one analysis Toolkit.Instance.monotonic_clock raw in
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> Float.nan
        in
        [ Test.name test; Tablefmt.fmt_seconds (ns *. 1e-9) ])
      tests
  in
  print_endline
    (Tablefmt.render_table
       ~header:[ "operation"; "time/run" ]
       ~align:[ Tablefmt.Left; Tablefmt.Right ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Estimation-engine benchmark: machine-readable numbers for the
   compile-then-execute pipeline (plan build cost, cold vs plan-cached
   throughput, batched vs scalar estimation).  Written as JSON so CI
   can track regressions without scraping tables.                      *)

let qps n seconds = float_of_int n /. Float.max seconds 1e-9

let engine_bench_dataset ~scale name =
  let dsname = Registry.to_string name in
  Printf.printf "engine bench: %s (scale %g)...\n%!" dsname scale;
  let doc = Registry.generate ~scale name in
  let base, collect_s = Env.time (fun () -> Summary.collect doc) in
  let summary, assemble_s =
    Env.time (fun () -> Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base)
  in
  let config =
    { Workload.default_config with num_simple = 800; num_branch = 800 }
  in
  let w = Workload.generate ~config doc in
  let patterns = Workload.patterns (Workload.all_items w) in
  let n = Array.length patterns in
  let _plans, compile_s =
    Env.time (fun () -> Array.map Plan.compile patterns)
  in
  (* scalar: one estimate call per query; cold = fresh caches, then the
     same estimator again with every plan/join cached *)
  let scalar est =
    Array.map (fun q -> Estimator.estimate est q) patterns
  in
  let est_scalar = Estimator.create summary in
  let scalar_cold, scalar_cold_s = Env.time (fun () -> scalar est_scalar) in
  let _, scalar_warm_s = Env.time (fun () -> scalar est_scalar) in
  (* batched: one estimate_many call over the whole workload *)
  let est_batch = Estimator.create summary in
  let batch_cold, batch_cold_s =
    Env.time (fun () -> Estimator.estimate_many est_batch patterns)
  in
  let batch_warm, batch_warm_s =
    Env.time (fun () -> Estimator.estimate_many est_batch patterns)
  in
  let identical = ref true in
  Array.iteri
    (fun i v ->
      if
        Int64.bits_of_float v <> Int64.bits_of_float batch_cold.(i)
        || Int64.bits_of_float v <> Int64.bits_of_float batch_warm.(i)
      then identical := false)
    scalar_cold;
  let scalar_cold_qps = qps n scalar_cold_s in
  let batch_warm_qps = qps n batch_warm_s in
  (* working-set sizes of the batched estimator's caches after the full
     workload ran twice: peak tells you what capacity the workload
     actually needs, evictions whether the configured bound thrashed *)
  let caches =
    String.concat ",\n"
      (List.map
         (fun (cname, st) ->
           Printf.sprintf
             {|        %S: { "capacity": %d, "length": %d, "peak": %d, "evictions": %d }|}
             cname st.Plan_cache.s_capacity st.Plan_cache.s_length
             st.Plan_cache.s_peak st.Plan_cache.s_evictions)
         (Estimator.cache_stats est_batch))
  in
  let entry =
    Printf.sprintf
      {|    {
      "dataset": %S,
      "elements": %d,
      "queries": %d,
      "summary_build_seconds": %.6f,
      "plan_compile_seconds": %.6f,
      "plan_compile_us_per_query": %.3f,
      "scalar_cold_qps": %.1f,
      "scalar_plan_cached_qps": %.1f,
      "batch_cold_qps": %.1f,
      "batch_plan_cached_qps": %.1f,
      "speedup_batch_cold_vs_scalar_cold": %.3f,
      "speedup_plan_cached_batch_vs_scalar_cold": %.3f,
      "batch_bitwise_identical_to_scalar": %b,
      "caches": {
%s
      }
    }|}
      dsname (Doc.size doc) n
      (collect_s +. assemble_s)
      compile_s
      (1e6 *. compile_s /. Float.max (float_of_int n) 1.0)
      scalar_cold_qps (qps n scalar_warm_s) (qps n batch_cold_s) batch_warm_qps
      (qps n batch_cold_s /. scalar_cold_qps)
      (batch_warm_qps /. scalar_cold_qps)
      !identical caches
  in
  (entry, (dsname, base, patterns))

(* Multi-dataset serving: every dataset's workload (capped) routed
   through one catalog at two variance targets per dataset.  The
   resident capacity is one short of the key count, so summaries evict
   and reload across the two passes (forward, then reversed — a cyclic
   scan is LRU's worst case, the reverse pass exercises hits); the same
   queries hitting both of a dataset's keys makes cross-summary plan
   reuse visible as a non-zero plan-cache hit rate.  Loads go through
   the wire codec so a summary load costs what a synopsis_decode
   costs. *)
let catalog_bench ctxs =
  Printf.printf "engine bench: catalog serving...\n%!";
  let variances = [ 0.0; 2.0 ] in
  let cap_per_dataset = 400 in
  let blobs = Hashtbl.create 8 in
  List.iter
    (fun (dsname, base, _) ->
      List.iter
        (fun v ->
          let s = Summary.assemble ~p_variance:v ~o_variance:v base in
          Hashtbl.add blobs (dsname, v) (Summary.encode s))
        variances)
    ctxs;
  let loader (k : Catalog.key) =
    Summary.decode (Hashtbl.find blobs (k.Catalog.dataset, k.Catalog.variance))
  in
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (dsname, _, patterns) ->
           let m = min cap_per_dataset (Array.length patterns) in
           List.concat_map
             (fun v ->
               List.init m (fun i ->
                   ({ Catalog.dataset = dsname; variance = v }, patterns.(i))))
             variances)
         ctxs)
  in
  let n = Array.length pairs in
  let rev_pairs = Array.init n (fun i -> pairs.(n - 1 - i)) in
  let nkeys = List.length ctxs * List.length variances in
  let capacity = max 1 (nkeys - 1) in
  (* reference: a fresh estimator per key per pass — serving the same
     batches without a catalog, and the bit-identity oracle *)
  let reference () =
    let out = Array.make n 0.0 in
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun (k, _) ->
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          let est = Estimator.create (loader k) in
          Array.iteri
            (fun j (k', q) -> if k' = k then out.(j) <- Estimator.estimate est q)
            pairs
        end)
      pairs;
    out
  in
  let cat = Catalog.create ~resident_capacity:capacity ~loader () in
  let (routed, routed_rev), routed_s =
    Env.time (fun () ->
        (Catalog.estimate_batch cat pairs, Catalog.estimate_batch cat rev_pairs))
  in
  let st : Catalog.stats = Catalog.stats cat in
  let (reference_out, _), loop_s =
    Env.time (fun () -> (reference (), reference ()))
  in
  let identical = ref true in
  Array.iteri
    (fun i v ->
      if
        Int64.bits_of_float v <> Int64.bits_of_float reference_out.(i)
        || Int64.bits_of_float routed_rev.(n - 1 - i)
           <> Int64.bits_of_float reference_out.(i)
      then identical := false)
    routed;
  let plan_hits, plan_misses =
    Counters.with_enabled (fun () ->
        let cat = Catalog.create ~resident_capacity:capacity ~loader () in
        ignore (Catalog.estimate_batch cat pairs);
        ignore (Catalog.estimate_batch cat rev_pairs);
        let counter name =
          match List.assoc_opt name (Counters.counters ()) with
          | Some v -> v
          | None -> 0
        in
        ( counter "estimator.plan_cache.hit",
          counter "estimator.plan_cache.miss" ))
  in
  let routed_qps = qps (2 * n) routed_s in
  let loop_qps = qps (2 * n) loop_s in
  Printf.sprintf
    {|  "catalog": {
    "keys": %d,
    "resident_capacity": %d,
    "batches": 2,
    "routed_queries": %d,
    "summary_loads": %d,
    "summary_pool_hits": %d,
    "summary_evictions": %d,
    "plan_cache_hits": %d,
    "plan_cache_misses": %d,
    "plan_cache_hit_rate": %.4f,
    "plan_cache_peak": %d,
    "routed_qps": %.1f,
    "per_summary_loop_qps": %.1f,
    "routed_vs_loop_speedup": %.3f,
    "routed_bitwise_identical_to_fresh": %b
  }|}
    nkeys capacity (2 * n) st.Catalog.loads st.Catalog.hits st.Catalog.evictions
    plan_hits plan_misses
    (float_of_int plan_hits
    /. Float.max (float_of_int (plan_hits + plan_misses)) 1.0)
    st.Catalog.plan_cache.Plan_cache.s_peak routed_qps loop_qps
    (routed_qps /. Float.max loop_qps 1e-9)
    !identical

(* Domain-parallel batches: the same cold batch per dataset through
   estimate_many at pool sizes 1/2/4, and the routed catalog batches
   sequential vs a 4-domain pool.  Speedups are reported relative to
   the pool-of-1 run on THIS host — host_cores records how much
   hardware parallelism was actually available (on a single-core CI
   runner the honest expectation is ~1.0x, and the gate in
   tools/check_bench_regression.sh therefore tracks the committed
   baseline rather than demanding an absolute speedup).  What is
   unconditional is bit-identity: every parallel result must match the
   sequential run exactly, and the regression gate fails on any false
   flag below. *)
let parallel_bench ctxs =
  Printf.printf "engine bench: parallel batches...\n%!";
  let host_cores = Domain.recommended_domain_count () in
  let domain_counts = [ 1; 2; 4 ] in
  let cap_per_dataset = 400 in
  let bits = Int64.bits_of_float in
  let dataset_entry (dsname, base, patterns) =
    let summary = Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base in
    let m = min cap_per_dataset (Array.length patterns) in
    let qs = Array.sub patterns 0 m in
    let reference = Estimator.estimate_many (Estimator.create summary) qs in
    let identical = ref true in
    let runs =
      List.map
        (fun d ->
          let out, seconds =
            Domain_pool.with_pool ~domains:d (fun pool ->
                let est = Estimator.create summary in
                Env.time (fun () -> Estimator.estimate_many ~pool est qs))
          in
          Array.iteri
            (fun i v ->
              if bits v <> bits reference.(i) then identical := false)
            out;
          (d, qps m seconds))
        domain_counts
    in
    let qps_of d = List.assoc d runs in
    let entry =
      Printf.sprintf
        {|      {
        "dataset": %S,
        "queries": %d,
        "batch_cold_qps_1d": %.1f,
        "batch_cold_qps_2d": %.1f,
        "batch_cold_qps_4d": %.1f,
        "speedup_2d": %.3f,
        "speedup_4d": %.3f,
        "parallel_bitwise_identical_to_sequential": %b
      }|}
        dsname m (qps_of 1) (qps_of 2) (qps_of 4)
        (qps_of 2 /. Float.max (qps_of 1) 1e-9)
        (qps_of 4 /. Float.max (qps_of 1) 1e-9)
        !identical
    in
    entry
  in
  let dataset_entries = List.map dataset_entry ctxs in
  (* routed catalog batches: the multi-key mixed batch of catalog_bench,
     sequential twin vs a 4-domain pool, shared synchronized plan
     cache *)
  let variances = [ 0.0; 2.0 ] in
  let blobs = Hashtbl.create 8 in
  List.iter
    (fun (dsname, base, _) ->
      List.iter
        (fun v ->
          let s = Summary.assemble ~p_variance:v ~o_variance:v base in
          Hashtbl.add blobs (dsname, v) (Summary.encode s))
        variances)
    ctxs;
  let loader (k : Catalog.key) =
    Ok (Summary.decode (Hashtbl.find blobs (k.Catalog.dataset, k.Catalog.variance)))
  in
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (dsname, _, patterns) ->
           let m = min 200 (Array.length patterns) in
           List.concat_map
             (fun v ->
               List.init m (fun i ->
                   ({ Catalog.dataset = dsname; variance = v }, patterns.(i))))
             variances)
         ctxs)
  in
  let n = Array.length pairs in
  let rounds = 4 in
  let run_rounds f =
    Env.time (fun () -> List.init rounds (fun _ -> f ()))
  in
  let cat_seq = Catalog.create_r ~loader () in
  let seq_runs, seq_s = run_rounds (fun () -> Catalog.estimate_batch_r cat_seq pairs) in
  let cat_par = Catalog.create_r ~loader () in
  let par_runs, par_s =
    Domain_pool.with_pool ~domains:4 (fun pool ->
        run_rounds (fun () -> Catalog.estimate_batch_r ~pool cat_par pairs))
  in
  let identical = ref true in
  List.iter2
    (fun seq par ->
      Array.iteri
        (fun i r ->
          match (r, par.(i)) with
          | Ok a, Ok b -> if bits a <> bits b then identical := false
          | Error _, Error _ -> ()
          | _ -> identical := false)
        seq)
    seq_runs par_runs;
  let st = Catalog.stats cat_par in
  let seq_qps = qps (rounds * n) seq_s in
  let par_qps = qps (rounds * n) par_s in
  Printf.sprintf
    {|  "parallel": {
    "host_cores": %d,
    "datasets": [
%s
    ],
    "catalog": {
      "routed_queries": %d,
      "rounds": %d,
      "sequential_qps": %.1f,
      "pool_4d_qps": %.1f,
      "speedup_4d": %.3f,
      "plan_lock_contention": %d,
      "plan_compile_races": %d,
      "parallel_bitwise_identical_to_sequential": %b
    }
  }|}
    host_cores
    (String.concat ",\n" dataset_entries)
    (rounds * n) rounds seq_qps par_qps
    (par_qps /. Float.max seq_qps 1e-9)
    st.Catalog.plan_contention st.Catalog.plan_races !identical

(* Resilience: the same routed batches served through the fault-
   tolerant file-backed path.  Three profiles — fault-free (the
   overhead of the result-typed machinery vs the raising wrapper),
   1% and 10% injected storage faults (what degraded storage costs
   and whether surviving answers stay bit-identical).  The injector
   seed is fixed so the numbers are reproducible. *)
let resilience_bench ctxs =
  Printf.printf "engine bench: resilience...\n%!";
  let cap_per_dataset = 200 in
  let seed = 11 in
  let rounds = 8 in
  let dir = Filename.temp_file "xpest_bench_cat" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let manifest =
        List.fold_left
          (fun m (dsname, base, _) ->
            let s = Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base in
            Catalog.save_entry ~dir m
              { Catalog.dataset = dsname; variance = 0.0 }
              s)
          Manifest.empty ctxs
      in
      let pairs =
        Array.of_list
          (List.concat_map
             (fun (dsname, _, patterns) ->
               let m = min cap_per_dataset (Array.length patterns) in
               List.init m (fun i ->
                   ({ Catalog.dataset = dsname; variance = 0.0 }, patterns.(i))))
             ctxs)
      in
      let n = Array.length pairs in
      let nkeys = List.length ctxs in
      (* capacity one short of the key count: every round evicts and
         reloads, so the storage path — where faults live — actually
         runs instead of being absorbed by the resident set *)
      let capacity = max 1 (nkeys - 1) in
      (* raising wrapper, fault-free: the PR-3 serving path, same
         round count as the profiles so load amortization matches *)
      let cat = Catalog.of_manifest ~resident_capacity:capacity ~dir manifest in
      let raising_runs, raising_s =
        Env.time (fun () ->
            List.init rounds (fun _ -> Catalog.estimate_batch cat pairs))
      in
      let raising = List.hd raising_runs in
      let raising_qps = qps (rounds * n) raising_s in
      (* one profile = a fresh file-backed catalog at one fault rate,
         [rounds] batches through estimate_batch_r *)
      let profile rate =
        let io =
          if rate = 0.0 then None
          else
            Some
              (Fault.io (Fault.create (Fault.uniform ~seed ~rate))
                 Fault.Io.default)
        in
        let cat =
          Catalog.of_manifest ~resident_capacity:capacity ?io ~dir manifest
        in
        let ok = ref 0 and errors = ref 0 and identical = ref true in
        let results, seconds =
          Env.time (fun () ->
              List.init rounds (fun _ -> Catalog.estimate_batch_r cat pairs))
        in
        List.iter
          (fun out ->
            Array.iteri
              (fun i -> function
                | Ok v ->
                    incr ok;
                    if Int64.bits_of_float v <> Int64.bits_of_float raising.(i)
                    then identical := false
                | Error _ -> incr errors)
              out)
          results;
        let st : Catalog.stats = Catalog.stats cat in
        let routed = rounds * n in
        let routed_qps = qps routed seconds in
        let entry =
          Printf.sprintf
            {|      {
        "fault_rate": %g,
        "rounds": %d,
        "routed_queries": %d,
        "ok": %d,
        "errors": %d,
        "success_rate": %.4f,
        "routed_qps": %.1f,
        "load_retries": %d,
        "quarantines": %d,
        "failed_attempts": %d,
        "ok_bitwise_identical_to_fault_free": %b
      }|}
            rate rounds routed !ok !errors
            (float_of_int !ok /. Float.max (float_of_int routed) 1.0)
            routed_qps st.Catalog.retries st.Catalog.quarantines
            st.Catalog.failures !identical
        in
        (entry, routed_qps)
      in
      let fault_free, fault_free_qps = profile 0.0 in
      let injected = List.map (fun r -> fst (profile r)) [ 0.01; 0.10 ] in
      Printf.sprintf
        {|  "resilience": {
    "keys": %d,
    "resident_capacity": %d,
    "queries_per_batch": %d,
    "injector_seed": %d,
    "raising_routed_qps": %.1f,
    "fault_free_overhead_vs_raising": %.3f,
    "profiles": [
%s
    ]
  }|}
        nkeys capacity n seed raising_qps
        (raising_qps /. Float.max fault_free_qps 1e-9)
        (String.concat ",\n" (fault_free :: injected)))

(* S1 thrash: multi-tenant serving under a byte budget that cannot
   hold every tenant's summary.  Each round touches a small hot set
   twice in a row (a dashboard double-reading its own keys — the
   second touch is the segmented policy's promotion signal), then
   cycles through more cold tenants than the budget fits — plain LRU's
   worst case.  Both policies run the identical trace at the identical
   byte budget; only the replacement decision differs.  Plain LRU
   flushes the hot set on every cold cycle and scores only the
   immediate repeats; segmented LRU keeps the hot summaries protected,
   so its hit rate must come out strictly higher (gated in
   tools/check_bench_regression.sh). *)
let thrash_bench ctxs =
  Printf.printf "engine bench: s1 thrash (byte-budget residency)...\n%!";
  let dsname, base, patterns = List.hd ctxs in
  let hot = 2 and cold = 12 and rounds = 8 in
  let nkeys = hot + cold in
  (* one tenant = one variance knob; each gets its own summary *)
  let summaries = Hashtbl.create 16 in
  for i = 0 to nkeys - 1 do
    let v = float_of_int i in
    Hashtbl.add summaries v (Summary.assemble ~p_variance:v ~o_variance:v base)
  done;
  let loader (k : Catalog.key) = Hashtbl.find summaries k.Catalog.variance in
  let bytes_of i =
    Summary.size_bytes (Hashtbl.find summaries (float_of_int i))
  in
  let sum_bytes lo hi =
    let t = ref 0 in
    for i = lo to hi do t := !t + bytes_of i done;
    !t
  in
  let hot_bytes = sum_bytes 0 (hot - 1) in
  let cold_bytes = sum_bytes hot (nkeys - 1) in
  (* half the cold set fits alongside the hot set: small enough that a
     cold cycle overruns it, large enough that the protected segment
     (0.8 of budget) holds the hot summaries comfortably *)
  let budget = hot_bytes + (cold_bytes / 2) in
  let q = patterns.(0) in
  let run policy =
    let config =
      { Cache_config.default with resident_bytes = Some budget }
    in
    let cat = Catalog.create ~config ~resident_policy:policy ~loader () in
    let touch i =
      ignore
        (Catalog.estimate cat
           { Catalog.dataset = dsname; variance = float_of_int i }
           q)
    in
    for _round = 1 to rounds do
      for h = 0 to hot - 1 do
        touch h;
        touch h
      done;
      for c = hot to nkeys - 1 do
        touch c
      done
    done;
    let st : Catalog.stats = Catalog.stats cat in
    let touches = st.Catalog.hits + st.Catalog.loads in
    ( st.Catalog.hits,
      st.Catalog.loads,
      float_of_int st.Catalog.hits /. Float.max (float_of_int touches) 1.0 )
  in
  let lru_hits, lru_loads, lru_rate = run Bounded_cache.Lru in
  let seg_hits, seg_loads, seg_rate = run Bounded_cache.segmented in
  Printf.sprintf
    {|  "s1_thrash": {
    "dataset": %S,
    "hot_keys": %d,
    "cold_tenants": %d,
    "rounds": %d,
    "hot_bytes": %d,
    "cold_bytes": %d,
    "budget_bytes": %d,
    "lru_hits": %d,
    "lru_loads": %d,
    "lru_hit_rate": %.4f,
    "segmented_hits": %d,
    "segmented_loads": %d,
    "segmented_hit_rate": %.4f,
    "segmented_advantage": %.4f
  }|}
    dsname hot cold rounds hot_bytes cold_bytes budget lru_hits lru_loads
    lru_rate seg_hits seg_loads seg_rate (seg_rate -. lru_rate)

(* S1 pipeline: a cold-miss batch against slow storage.  Every key's
   summary must be loaded, and the loader carries an injected per-read
   latency (modeling remote or cold storage).  The blocking path pays
   the latencies one after another inside the acquire scan; the staged
   pipeline starts the provably needed loads ahead of their acquire
   turn on a loader pool and executes each group while the remaining
   loads are still in flight.  Results and serving stats are
   bit-identical by contract (checked here, flagged in the JSON, gated
   unconditionally in tools/check_bench_regression.sh); the pipelined
   qps must beat the blocking baseline (also gated). *)
let pipeline_bench ctxs =
  Printf.printf "engine bench: s1 pipeline (overlapped loading)...\n%!";
  let dsname, base, patterns = List.hd ctxs in
  let nkeys = 8 in
  let per_key = 24 in
  let latency = 0.004 in
  let summaries = Hashtbl.create 16 in
  for i = 0 to nkeys - 1 do
    let v = float_of_int i in
    Hashtbl.add summaries v (Summary.assemble ~p_variance:v ~o_variance:v base)
  done;
  (* per-key deterministic and thread-safe — the concurrent-loads
     contract (reads of a frozen table, a fixed sleep) *)
  let loader (k : Catalog.key) =
    Unix.sleepf latency;
    Hashtbl.find summaries k.Catalog.variance
  in
  (* interleave keys so routing, not input order, does the grouping *)
  let pairs =
    Array.init (nkeys * per_key) (fun i ->
        ( { Catalog.dataset = dsname; variance = float_of_int (i mod nkeys) },
          patterns.(i / nkeys mod Array.length patterns) ))
  in
  let n = Array.length pairs in
  let run loads =
    let cat = Catalog.create ~resident_capacity:nkeys ~loader () in
    let results, secs =
      Env.time (fun () -> Catalog.estimate_batch_r ?loads cat pairs)
    in
    (results, Catalog.stats cat, secs)
  in
  let blocking, blocking_st, blocking_s = run None in
  let pipelined d =
    Domain_pool.with_pool ~domains:d (fun p ->
        run (Some (Loader_pool.over p)))
  in
  let p2, p2_st, p2_s = pipelined 2 in
  let p4, p4_st, p4_s = pipelined 4 in
  let same_cell a b =
    match (a, b) with
    | Ok x, Ok y -> Int64.bits_of_float x = Int64.bits_of_float y
    | Error e, Error f ->
        Xpest_util.Xpest_error.to_string e = Xpest_util.Xpest_error.to_string f
    | _ -> false
  in
  let same_results a b =
    Array.length a = Array.length b && Array.for_all2 same_cell a b
  in
  let same_stats (a : Catalog.stats) (b : Catalog.stats) =
    a.Catalog.loads = b.Catalog.loads
    && a.Catalog.hits = b.Catalog.hits
    && a.Catalog.evictions = b.Catalog.evictions
    && a.Catalog.failures = b.Catalog.failures
    && a.Catalog.retries = b.Catalog.retries
    && a.Catalog.quarantines = b.Catalog.quarantines
    && a.Catalog.degraded_hits = b.Catalog.degraded_hits
  in
  let identical =
    same_results blocking p2 && same_results blocking p4
    && same_stats blocking_st p2_st
    && same_stats blocking_st p4_st
  in
  let qps s = float_of_int n /. Float.max s 1e-9 in
  Printf.sprintf
    {|  "s1_pipeline": {
    "dataset": %S,
    "keys": %d,
    "routed_queries": %d,
    "loader_latency_ms": %.1f,
    "blocking_qps": %.1f,
    "pipelined_2_qps": %.1f,
    "pipelined_4_qps": %.1f,
    "speedup_4": %.3f,
    "prefetched_loads_4": %d,
    "pipelined_bitwise_identical_to_blocking": %b
  }|}
    dsname nkeys n (latency *. 1000.0) (qps blocking_s) (qps p2_s) (qps p4_s)
    (qps p4_s /. Float.max (qps blocking_s) 1e-9)
    p4_st.Catalog.prefetched_loads identical

(* S1 overload: a saturating cold burst against a tight admission
   budget.  Twelve tenants hammer a four-slot resident set, so an
   uncontrolled batch pays a cold load per group, round after round.
   The admission-controlled twin gets a per-batch deadline budget and
   a cold-load bound: once the budget is spent, the remaining groups
   are shed at the stage boundary — no I/O, no clock ticks — and
   under the Degrade policy answered from an already-resident sibling
   variance.  Gated in tools/check_bench_regression.sh: the
   controlled twin's worst batch must spend strictly fewer logical
   ticks than the uncontrolled one (the bounded-worst-case claim),
   and the shed schedule must be bit-identical across load-domain
   counts 1/2/4 (shedding is a pure function of input order, clock
   and configuration — never of scheduling). *)
let overload_bench ctxs =
  Printf.printf "engine bench: s1 overload (admission control)...\n%!";
  let dsname, base, patterns = List.hd ctxs in
  let nkeys = 12 in
  let per_key = 8 in
  let latency = 0.002 in
  let rounds = 3 in
  let summaries = Hashtbl.create 16 in
  for i = 0 to nkeys - 1 do
    let v = float_of_int i in
    Hashtbl.add summaries v (Summary.assemble ~p_variance:v ~o_variance:v base)
  done;
  let loader (k : Catalog.key) =
    Unix.sleepf latency;
    Hashtbl.find summaries k.Catalog.variance
  in
  let pairs =
    Array.init (nkeys * per_key) (fun i ->
        ( { Catalog.dataset = dsname; variance = float_of_int (i mod nkeys) },
          patterns.(i / nkeys mod Array.length patterns) ))
  in
  let n = Array.length pairs in
  let deadline = 40 and max_queued = 3 in
  let admission =
    {
      Admission.unlimited with
      Admission.deadline = Some deadline;
      max_queued_loads = Some max_queued;
    }
  in
  let run ?admission ?loads () =
    let cat = Catalog.create ?admission ~resident_capacity:4 ~loader () in
    let worst = ref 0 in
    let batches =
      Array.init rounds (fun _ ->
          let before = Catalog.clock cat in
          let r = Catalog.estimate_batch_r ?loads cat pairs in
          worst := max !worst (Catalog.clock cat - before);
          r)
    in
    (batches, Catalog.last_batch_statuses cat, Catalog.stats cat,
     Catalog.clock cat, !worst)
  in
  let (_, _, _, _, un_worst), un_secs = Env.time (fun () -> run ()) in
  let (ctrl_batches, ctrl_statuses, ctrl_st, ctrl_clock, ctrl_worst), ctrl_secs
      =
    Env.time (fun () -> run ~admission ())
  in
  (* the shed schedule must not depend on load fan-out: fresh twins at
     1/2/4 load domains replay the identical batches *)
  let same_cell a b =
    match (a, b) with
    | Ok x, Ok y -> Int64.bits_of_float x = Int64.bits_of_float y
    | Error e, Error f ->
        Xpest_util.Xpest_error.to_string e = Xpest_util.Xpest_error.to_string f
    | _ -> false
  in
  let same_status a b =
    match (a, b) with
    | Catalog.Served, Catalog.Served | Catalog.Shed, Catalog.Shed -> true
    | Catalog.Fallback x, Catalog.Fallback y ->
        Catalog.key_to_string x = Catalog.key_to_string y
    | _ -> false
  in
  let identical =
    List.for_all
      (fun d ->
        Domain_pool.with_pool ~domains:d (fun p ->
            let loads = Loader_pool.over p in
            let batches, statuses, st, clock, worst = run ~admission ~loads ()
            in
            Array.for_all2
              (fun a b ->
                Array.length a = Array.length b && Array.for_all2 same_cell a b)
              ctrl_batches batches
            && Array.for_all2 same_status ctrl_statuses statuses
            && st.Catalog.shed_queries = ctrl_st.Catalog.shed_queries
            && st.Catalog.fallback_queries = ctrl_st.Catalog.fallback_queries
            && st.Catalog.loads = ctrl_st.Catalog.loads
            && clock = ctrl_clock && worst = ctrl_worst))
      [ 1; 2; 4 ]
  in
  let qps s = float_of_int (n * rounds) /. Float.max s 1e-9 in
  Printf.sprintf
    {|  "s1_overload": {
    "dataset": %S,
    "keys": %d,
    "routed_queries_per_batch": %d,
    "rounds": %d,
    "deadline_ticks": %d,
    "max_queued_loads": %d,
    "loader_latency_ms": %.1f,
    "uncontrolled_worst_batch_ticks": %d,
    "controlled_worst_batch_ticks": %d,
    "shed_queries": %d,
    "fallback_queries": %d,
    "uncontrolled_qps": %.1f,
    "controlled_qps": %.1f,
    "shed_schedule_bitwise_identical_across_load_domains": %b
  }|}
    dsname nkeys n rounds deadline max_queued (latency *. 1000.0) un_worst
    ctrl_worst ctrl_st.Catalog.shed_queries ctrl_st.Catalog.fallback_queries
    (qps un_secs) (qps ctrl_secs) identical

(* S1 degrade: total storage blackout against the degradation ladder's
   last rung.  Every summary load fails (the dataset is effectively
   100% quarantined and the loader breaker opens), yet a catalog armed
   with the dataset's always-resident fallback sketch answers every
   well-formed query from the Sketch tier.  Gated in
   tools/check_bench_regression.sh: the sketch-tier answer rate must
   be exactly 1.0 (the ladder never leaks an error), and the answer
   schedule must be bit-identical across load-domain counts 1/2/4.
   The mean relative error against the exact tier quantifies what the
   last rung's answers cost in accuracy. *)
let degrade_bench ~scale ctxs =
  Printf.printf "engine bench: s1 degrade (fallback sketch tier)...\n%!";
  let dsname, base, patterns = List.hd ctxs in
  let name =
    match Registry.of_string dsname with
    | Some n -> n
    | None -> failwith ("unknown bench dataset " ^ dsname)
  in
  let sketch = Sketch.build (Registry.generate ~scale name) in
  let nkeys = 4 in
  let per_key = 8 in
  let rounds = 3 in
  let summaries = Hashtbl.create 8 in
  for i = 0 to nkeys - 1 do
    let v = float_of_int i in
    Hashtbl.add summaries v (Summary.assemble ~p_variance:v ~o_variance:v base)
  done;
  let healthy_loader (k : Catalog.key) = Hashtbl.find summaries k.Catalog.variance in
  let dead_loader (_ : Catalog.key) : Summary.t =
    raise
      (Xpest_util.Xpest_error.Error
         (Xpest_util.Xpest_error.Io_failure
            { path = "(blackout)"; reason = "injected: storage offline" }))
  in
  let pairs =
    Array.init (nkeys * per_key) (fun i ->
        ( { Catalog.dataset = dsname; variance = float_of_int (i mod nkeys) },
          patterns.(i / nkeys mod Array.length patterns) ))
  in
  let n = Array.length pairs in
  let admission =
    { Admission.unlimited with Admission.breaker_threshold = Some 2 }
  in
  (* the exact tier's answers, for the accuracy cost of the last rung *)
  let exact_cat =
    Catalog.create ~resident_capacity:nkeys ~loader:healthy_loader ()
  in
  let exact = Catalog.estimate_batch_r exact_cat pairs in
  let run ?loads () =
    let cat =
      Catalog.create ~admission ~resident_capacity:nkeys ~loader:dead_loader ()
    in
    (match Catalog.install_sketch cat dsname sketch with
    | Ok () -> ()
    | Error e ->
        failwith ("sketch install failed: " ^ Xpest_util.Xpest_error.to_string e));
    let batches =
      Array.init rounds (fun _ -> Catalog.estimate_batch_r ?loads cat pairs)
    in
    ( batches,
      Catalog.last_batch_statuses cat,
      Catalog.stats cat,
      Catalog.clock cat,
      (Catalog.admission_stats cat).Admission.s_breaker_opens )
  in
  let (batches, statuses, st, clock, breaker_opens), secs =
    Env.time (fun () -> run ())
  in
  let answered =
    Array.fold_left
      (fun acc b ->
        Array.fold_left
          (fun acc r -> match r with Ok _ -> acc + 1 | Error _ -> acc)
          acc b)
      0 batches
  in
  let sketch_answer_rate =
    if st.Catalog.sketch_queries = answered && answered = n * rounds then 1.0
    else float_of_int st.Catalog.sketch_queries /. float_of_int (n * rounds)
  in
  let rel_err_sum = ref 0.0 and rel_err_n = ref 0 in
  Array.iteri
    (fun i r ->
      match (exact.(i), r) with
      | Ok e, Ok s ->
          rel_err_sum := !rel_err_sum +. (Float.abs (s -. e) /. Float.max e 1.0);
          incr rel_err_n
      | _ -> ())
    batches.(0);
  let mean_rel_err = !rel_err_sum /. float_of_int (max !rel_err_n 1) in
  let same_cell a b =
    match (a, b) with
    | Ok x, Ok y -> Int64.bits_of_float x = Int64.bits_of_float y
    | Error e, Error f ->
        Xpest_util.Xpest_error.to_string e = Xpest_util.Xpest_error.to_string f
    | _ -> false
  in
  let status_name = function
    | Catalog.Served -> "served"
    | Catalog.Shed -> "shed"
    | Catalog.Fallback k -> "fallback:" ^ Catalog.key_to_string k
    | Catalog.Sketch -> "sketch"
  in
  let identical =
    List.for_all
      (fun d ->
        Domain_pool.with_pool ~domains:d (fun p ->
            let loads = Loader_pool.over p in
            let batches', statuses', st', clock', _ = run ~loads () in
            Array.for_all2
              (fun a b ->
                Array.length a = Array.length b && Array.for_all2 same_cell a b)
              batches batches'
            && Array.for_all2
                 (fun a b -> status_name a = status_name b)
                 statuses statuses'
            && st'.Catalog.sketch_queries = st.Catalog.sketch_queries
            && st'.Catalog.failures = st.Catalog.failures
            && clock' = clock))
      [ 1; 2; 4 ]
  in
  Printf.sprintf
    {|  "s1_degrade": {
    "dataset": %S,
    "keys": %d,
    "routed_queries_per_batch": %d,
    "rounds": %d,
    "sketch_wire_bytes": %d,
    "sketch_answer_rate": %.4f,
    "sketch_mean_relative_error": %.4f,
    "breaker_opens": %d,
    "blackout_qps": %.1f,
    "answer_schedule_bitwise_identical_across_load_domains": %b
  }|}
    dsname nkeys n rounds (Sketch.size_bytes sketch) sketch_answer_rate
    mean_rel_err breaker_opens
    (qps (n * rounds) secs) identical

let engine_bench ~scale ~out =
  let entries, ctxs =
    List.split (List.map (engine_bench_dataset ~scale) Registry.all)
  in
  let catalog_section = catalog_bench ctxs in
  let thrash_section = thrash_bench ctxs in
  let pipeline_section = pipeline_bench ctxs in
  let overload_section = overload_bench ctxs in
  let degrade_section = degrade_bench ~scale ctxs in
  let parallel_section = parallel_bench ctxs in
  let resilience_section = resilience_bench ctxs in
  let json =
    Printf.sprintf
      {|{
  "schema": "xpest-bench-engine/8",
  "scale": %g,
  "datasets": [
%s
  ],
%s,
%s,
%s,
%s,
%s,
%s,
%s
}
|}
      scale
      (String.concat ",\n" entries)
      catalog_section thrash_section pipeline_section overload_section
      degrade_section parallel_section resilience_section
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote engine benchmark to %s\n%!" out

let () =
  let scale = ref 0.25 in
  let cap = ref 600 in
  let micro = ref true in
  let markdown = ref "" in
  let engine_json = ref "" in
  let engine_only = ref false in
  let ids = ref [] in
  let spec =
    [
      ("--scale", Arg.Set_float scale, "S dataset scale factor (default 0.25)");
      ("--cap", Arg.Set_int cap, "N max queries per class, 0 = unlimited (default 600)");
      ("--no-micro", Arg.Clear micro, " skip bechamel micro-benchmarks");
      ("--micro-only", Arg.Unit (fun () -> ids := [ "none" ]), " only micro-benchmarks");
      ("--markdown", Arg.Set_string markdown, "FILE also write a markdown report");
      ( "--engine-json",
        Arg.Set_string engine_json,
        "FILE write the estimation-engine benchmark (plan build time, cold \
         vs plan-cached throughput, batch vs scalar speedup) as JSON" );
      ( "--engine-only",
        Arg.Set engine_only,
        " run only the engine benchmark (implies --no-micro, no artefacts)" );
    ]
  in
  Arg.parse spec (fun id -> ids := id :: !ids) "bench/main.exe [options] [ids]";
  if !engine_only && !engine_json = "" then engine_json := "BENCH_engine.json";
  if !engine_json <> "" then engine_bench ~scale:!scale ~out:!engine_json;
  if !engine_only then exit 0;
  let ids =
    match List.rev !ids with
    | [] -> Experiments.all_ids
    | [ "none" ] -> []
    | ids -> ids
  in
  if ids <> [] then begin
    let config =
      {
        Env.default_config with
        scale = !scale;
        max_queries_per_class = (if !cap = 0 then None else Some !cap);
      }
    in
    Printf.printf
      "== Reproduction of the evaluation (scale %g, query cap %s) ==\n\n%!"
      !scale
      (if !cap = 0 then "none" else string_of_int !cap);
    let envs =
      List.map
        (fun name ->
          let env, seconds =
            Env.time (fun () -> Env.prepare ~config name)
          in
          Printf.printf "prepared %s: %d elements, workload %d+%d queries (%s)\n%!"
            (Registry.to_string name)
            (Doc.size (Env.doc env))
            (Workload.total_without_order (Env.workload env))
            (Workload.total_with_order (Env.workload env))
            (Tablefmt.fmt_seconds seconds);
          env)
        Registry.all
    in
    print_newline ();
    let artefacts =
      List.map
        (fun id ->
          let artefact, seconds = Env.time (fun () -> Experiments.run envs id) in
          Printf.printf "%s\n(%s computed in %s)\n\n%!"
            (Experiments.render artefact)
            id
            (Tablefmt.fmt_seconds seconds);
          artefact)
        ids
    in
    if !markdown <> "" then begin
      let doc =
        Xpest_harness.Report.document
          ~title:"xpest: reproduced evaluation"
          ~preamble:
            [
              Printf.sprintf
                "Profile: dataset scale %g, query cap %s.  See EXPERIMENTS.md \
                 for the paper-vs-measured reading guide."
                !scale
                (if !cap = 0 then "none" else string_of_int !cap);
            ]
          artefacts
      in
      let oc = open_out !markdown in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote markdown report to %s\n%!" !markdown
    end
  end;
  if !micro then microbenches ()
