(** Error metrics over workload items. *)

val mean_rel_error :
  Xpest_workload.Workload.item list ->
  (Xpest_xpath.Pattern.t -> float) ->
  float
(** Average relative error [|est - actual| / actual] of an estimator
    over a workload class (the y-axis of Figures 10-13); 0 for the
    empty list. *)

val mean_rel_error_batch :
  Xpest_workload.Workload.item list ->
  (Xpest_xpath.Pattern.t array -> float array) ->
  float
(** Same metric computed through a batched estimator
    ([Estimator.estimate_many]): the whole class is estimated in one
    compile-dedupe-execute pass.  Numerically identical to
    {!mean_rel_error} because batching is bit-identical per query. *)

val percentile_errors :
  Xpest_workload.Workload.item list ->
  (Xpest_xpath.Pattern.t -> float) ->
  float * float * float
(** [(mean, median, p90)] of the relative errors; all 0 for the empty
    list. *)

(** {1 Observability counters}

    Reporting side of {!Xpest_util.Counters}: the estimator's cache
    hit/miss and pruning counters, per-equation invocation counts, and
    synopsis build/save/load timers, rendered for the CLI and bench
    harness.  Counting is off by default and costs one branch per
    site when disabled. *)

val with_counters : (unit -> 'a) -> 'a
(** Reset all counters and run the thunk with counting enabled
    ({!Xpest_util.Counters.with_enabled}). *)

val counter_rows : unit -> string list list
(** Non-zero counters and timers as [[name; value]] table rows, sorted
    by name (counters first, then timers). *)

val render_counters : unit -> string
(** {!counter_rows} as an ASCII table, or a hint when nothing was
    recorded. *)
