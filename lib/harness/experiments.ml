module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Tablefmt = Xpest_util.Tablefmt
module Summary = Xpest_synopsis.Summary
module Pf_table = Xpest_synopsis.Pf_table
module Po_table = Xpest_synopsis.Po_table
module P_histogram = Xpest_synopsis.P_histogram
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler
module Pid_tree = Xpest_encoding.Pid_tree
module Workload = Xpest_workload.Workload
module Estimator = Xpest_estimator.Estimator
module Catalog = Xpest_catalog.Catalog
module Counters = Xpest_util.Counters
module Xsketch = Xpest_baseline.Xsketch

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
}

type figure = {
  fid : string;
  ftitle : string;
  x_label : string;
  y_label : string;
  series : (string * (float * float) list) list;
}

type artefact = Table of table | Figures of figure list

let render = function
  | Table t ->
      Tablefmt.render_table
        ~title:(Printf.sprintf "%s  %s" t.id t.title)
        ~header:t.header
        ~align:(Tablefmt.Left :: List.map (fun _ -> Tablefmt.Right) (List.tl t.header))
        t.rows
  | Figures figs ->
      String.concat "\n"
        (List.map
           (fun f ->
             Tablefmt.render_series
               ~title:(Printf.sprintf "%s  %s" f.fid f.ftitle)
               ~x_label:f.x_label ~y_label:f.y_label ~series:f.series ())
           figs)

let kb bytes = Float.of_int bytes /. 1024.0
let fmt = Tablefmt.fmt_float
let fmt_kb bytes = Printf.sprintf "%.2f" (kb bytes)
let dsname env = Registry.to_string (Env.name env)

let variance_sweep = [ 0.0; 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0 ]

(* ------------------------------------------------------------------ *)

let table1 envs =
  Table
    {
      id = "T1";
      title = "Characteristics of Datasets";
      header = [ "Dataset"; "Size"; "#(Distinct Eles)"; "#(Eles)" ];
      rows =
        List.map
          (fun env ->
            let doc = Env.doc env in
            [
              dsname env;
              Tablefmt.fmt_bytes (Doc.serialized_byte_size doc);
              string_of_int (Doc.num_tags doc);
              string_of_int (Doc.size doc);
            ])
          envs;
    }

let table2 envs =
  Table
    {
      id = "T2";
      title = "Query Workload";
      header =
        [ "Dataset"; "Simple"; "Branch"; "Total (no order)"; "With Order" ];
      rows =
        List.map
          (fun env ->
            let w = Env.workload env in
            [
              dsname env;
              string_of_int (List.length w.Workload.simple);
              string_of_int (List.length w.Workload.branch);
              string_of_int (Workload.total_without_order w);
              string_of_int (Workload.total_with_order w);
            ])
          envs;
    }

let table3 envs =
  Table
    {
      id = "T3";
      title = "Space Requirement of Encoding Table and Path Id Binary Tree";
      header =
        [
          "Dataset"; "#(Dist Paths)"; "Pid Size (Byte)"; "#(Dist Pid)";
          "EncTab (KB)"; "PidTab (KB)"; "Pid Bin-Tree (KB)";
        ];
      rows =
        List.map
          (fun env ->
            let s = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:false in
            let labeler = Summary.labeler s in
            let tree =
              Pid_tree.build (Array.to_list (Labeler.distinct_pids labeler))
            in
            [
              dsname env;
              string_of_int (Encoding_table.num_paths (Summary.encoding_table s));
              string_of_int (Labeler.pid_byte_size labeler);
              string_of_int (Labeler.num_distinct labeler);
              fmt_kb (Summary.encoding_table_bytes s);
              fmt_kb (Labeler.pid_table_byte_size labeler);
              Printf.sprintf "%s (uncompressed %s)"
                (fmt_kb (Pid_tree.byte_size tree))
                (fmt_kb (Pid_tree.uncompressed_byte_size tree));
            ])
          envs;
    }

let histo_size_range envs ~get =
  List.map
    (fun env ->
      let sizes =
        List.map
          (fun v -> get env v)
          variance_sweep
      in
      let lo = List.fold_left min (List.hd sizes) sizes in
      let hi = List.fold_left max (List.hd sizes) sizes in
      (env, lo, hi))
    envs

let table4 envs =
  let rows =
    List.concat_map
      (fun (env, lo, hi) ->
        (* p-histogram build time at variance 0 (the largest) *)
        let base = Env.base env in
        let pf = Summary.pf_table base in
        let _, p_time =
          Env.time (fun () -> P_histogram.build_all ~variance:0.0 pf)
        in
        (* XSketch at a budget matching our total memory *)
        let s = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:false in
        let budget = Summary.total_bytes s in
        let sk, sk_time =
          Env.time (fun () -> Xsketch.build ~budget_bytes:budget (Env.doc env))
        in
        [
          [
            dsname env ^ " (this paper)";
            Tablefmt.fmt_seconds (Env.collect_paths_seconds env);
            Printf.sprintf "%s ~ %s KB" (fmt_kb lo) (fmt_kb hi);
            Tablefmt.fmt_seconds p_time;
          ];
          [
            dsname env ^ " (XSketch)";
            "-";
            Printf.sprintf "%s KB (%d classes)"
              (fmt_kb (Xsketch.byte_size sk))
              (Xsketch.num_classes sk);
            Tablefmt.fmt_seconds sk_time;
          ];
        ])
      (histo_size_range envs ~get:(fun env v ->
           Summary.p_histogram_bytes
             (Env.summary env ~p_variance:v ~o_variance:0.0 ~with_order:false)))
  in
  Table
    {
      id = "T4";
      title = "Construction Time for Queries without Order Axes";
      header = [ "Dataset"; "Collecting Time"; "Statistics Size"; "Build Time" ];
      rows;
    }

let table5 envs =
  let rows =
    List.map
      (fun (env, lo, hi) ->
        (* time at an off-sweep variance so memoization cannot hide
           the build cost *)
        let _, o_time =
          Env.time (fun () ->
              Env.summary env ~p_variance:0.0 ~o_variance:3.0 ~with_order:true)
        in
        [
          dsname env;
          Tablefmt.fmt_seconds (Env.collect_order_seconds env);
          Printf.sprintf "%s ~ %s KB" (fmt_kb lo) (fmt_kb hi);
          Tablefmt.fmt_seconds o_time;
        ])
      (histo_size_range envs ~get:(fun env v ->
           Summary.o_histogram_bytes
             (Env.summary env ~p_variance:0.0 ~o_variance:v ~with_order:true)))
  in
  Table
    {
      id = "T5";
      title = "Construction Time for Order Data";
      header =
        [ "Dataset"; "Collecting Order Time"; "O-Histo Size"; "O-Histo Build Time" ];
      rows;
    }

(* ------------------------------------------------------------------ *)

let figure9 envs =
  Figures
    (List.map
       (fun env ->
         let p_points =
           List.map
             (fun v ->
               ( v,
                 kb
                   (Summary.p_histogram_bytes
                      (Env.summary env ~p_variance:v ~o_variance:0.0
                         ~with_order:false)) ))
             variance_sweep
         in
         let o_points =
           List.map
             (fun v ->
               ( v,
                 kb
                   (Summary.o_histogram_bytes
                      (Env.summary env ~p_variance:0.0 ~o_variance:v
                         ~with_order:true)) ))
             variance_sweep
         in
         {
           fid = "F9/" ^ dsname env;
           ftitle =
             Printf.sprintf "P- and O-Histogram Memory Usage (%s)" (dsname env);
           x_label = "intra-bucket variance";
           y_label = "memory (KB)";
           series = [ ("P-Histo", p_points); ("O-Histo", o_points) ];
         })
       envs)

let figure10 envs =
  Figures
    (List.map
       (fun env ->
         let points select =
           List.map
             (fun v ->
               let s =
                 Env.summary env ~p_variance:v ~o_variance:0.0 ~with_order:false
               in
               let est = Env.estimator env ~p_variance:v ~o_variance:0.0 ~with_order:false in
               let x = kb (Summary.p_histogram_bytes s) in
               ( x,
                 Metrics.mean_rel_error_batch (select env)
                   (Estimator.estimate_many est) ))
             variance_sweep
         in
         let simple = points (fun e -> Env.queries e `Simple) in
         let branch = points (fun e -> Env.queries e `Branch) in
         let all =
           points (fun e -> Env.queries e `Simple @ Env.queries e `Branch)
         in
         {
           fid = "F10/" ^ dsname env;
           ftitle =
             Printf.sprintf "Estimation Error of Queries without Order Axes (%s)"
               (dsname env);
           x_label = "p-histogram memory (KB)";
           y_label = "relative error";
           series =
             [
               ("simple queries", simple);
               ("branch queries", branch);
               ("all queries", all);
             ];
         })
       envs)

let figure11 envs =
  Figures
    (List.map
       (fun env ->
         let queries = Env.queries env `Simple @ Env.queries env `Branch in
         let ours =
           List.map
             (fun v ->
               let s =
                 Env.summary env ~p_variance:v ~o_variance:0.0 ~with_order:false
               in
               let est =
                 Env.estimator env ~p_variance:v ~o_variance:0.0 ~with_order:false
               in
               ( kb (Summary.total_bytes s),
                 Metrics.mean_rel_error_batch queries
                   (Estimator.estimate_many est) ))
             variance_sweep
         in
         (* XSketch across a budget range spanning ours *)
         let budgets =
           let xs = List.map fst ours in
           let lo = List.fold_left min (List.hd xs) xs in
           let hi = List.fold_left max (List.hd xs) xs in
           [ lo *. 0.5; lo; (lo +. hi) /. 2.0; hi; hi *. 1.5 ]
         in
         let sketch =
           List.map
             (fun b ->
               let sk =
                 Xsketch.build
                   ~budget_bytes:(int_of_float (b *. 1024.0))
                   (Env.doc env)
               in
               ( kb (Xsketch.byte_size sk),
                 Metrics.mean_rel_error queries (Xsketch.estimate sk) ))
             budgets
         in
         {
           fid = "F11/" ^ dsname env;
           ftitle = Printf.sprintf "P-Histogram vs XSketch (%s)" (dsname env);
           x_label = "total memory usage (KB)";
           y_label = "relative error";
           series = [ ("p-histo", ours); ("xsketch", sketch) ];
         })
       envs)

let order_figure ~fid ~title ~cls envs =
  let p_variances = [ 0.0; 1.0; 5.0; 10.0 ] in
  let o_variances = [ 0.0; 1.0; 2.0; 4.0; 8.0; 14.0 ] in
  Figures
    (List.map
       (fun env ->
         let series =
           List.map
             (fun pv ->
               let points =
                 List.map
                   (fun ov ->
                     let s =
                       Env.summary env ~p_variance:pv ~o_variance:ov
                         ~with_order:true
                     in
                     let est =
                       Env.estimator env ~p_variance:pv ~o_variance:ov
                         ~with_order:true
                     in
                     ( kb (Summary.o_histogram_bytes s),
                       Metrics.mean_rel_error_batch (Env.queries env cls)
                         (Estimator.estimate_many est) ))
                   o_variances
               in
               (Printf.sprintf "p-histo.v=%s" (fmt pv), points))
             p_variances
         in
         {
           fid = fid ^ "/" ^ dsname env;
           ftitle = Printf.sprintf "%s (%s)" title (dsname env);
           x_label = "o-histogram memory (KB)";
           y_label = "relative error";
           series;
         })
       envs)

let figure12 =
  order_figure ~fid:"F12"
    ~title:"Estimation Error of Queries with Order Axes (Branch Part)"
    ~cls:`Order_branch

let figure13 =
  order_figure ~fid:"F13"
    ~title:"Estimation Error of Queries with Order Axes (Trunk Part)"
    ~cls:`Order_trunk

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)

let ablation_order envs =
  let rows =
    List.concat_map
      (fun env ->
        let est = Env.estimator env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
        let order_blind q =
          Estimator.estimate est
            (Xpest_xpath.Pattern.v
               (Xpest_xpath.Pattern.counterpart (Xpest_xpath.Pattern.shape q))
               (Xpest_xpath.Pattern.counterpart_position
                  (Xpest_xpath.Pattern.target q)))
        in
        let s = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
        let budget = Summary.total_bytes s + Summary.o_histogram_bytes s in
        let sk = Xsketch.build ~budget_bytes:budget (Env.doc env) in
        let ph = Xpest_baseline.Position_histogram.build (Env.doc env) in
        List.map
          (fun (cls, label) ->
            let queries = Env.queries env cls in
            let err f = Printf.sprintf "%.4f" (Metrics.mean_rel_error queries f) in
            [
              dsname env ^ " / " ^ label;
              Printf.sprintf "%.4f"
                (Metrics.mean_rel_error_batch queries
                   (Estimator.estimate_many est));
              err order_blind;
              err (Xsketch.estimate sk);
              err (Xpest_baseline.Position_histogram.estimate ph);
            ])
          [ (`Order_branch, "branch target"); (`Order_trunk, "trunk target") ])
      envs
  in
  Table
    {
      id = "A1";
      title = "Ablation: value of the order statistics (mean relative error)";
      header =
        [ "Dataset / class"; "order-aware"; "order-blind"; "xsketch"; "pos-histo" ];
      rows;
    }

let ablation_chain_pruning envs =
  let rows =
    List.map
      (fun env ->
        let s = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:false in
        let with_cp = Estimator.create ~chain_pruning:true s in
        let without_cp = Estimator.create ~chain_pruning:false s in
        let queries = Env.queries env `Simple @ Env.queries env `Branch in
        let err e =
          Printf.sprintf "%.4f"
            (Metrics.mean_rel_error_batch queries (Estimator.estimate_many e))
        in
        [ dsname env; err without_cp; err with_cp ])
      envs
  in
  Table
    {
      id = "A2";
      title =
        "Ablation: chain-feasibility pruning in the path join (order-free \
         workload, mean relative error)";
      header = [ "Dataset"; "pairwise join (paper)"; "chain-pruned join" ];
      rows;
    }

(* ------------------------------------------------------------------ *)
(* Serving.                                                             *)

(* S1 — the serving layer: one catalog over every (dataset, variance)
   summary with a resident capacity one short of the key count, so the
   batch evicts and reloads mid-run, versus a loop that rebuilds a
   fresh single-summary estimator per key.  The loop doubles as the
   bit-identity reference.  The batch runs forward then reversed: a
   cyclic scan is LRU's worst case (every access misses), the reverse
   pass exercises the resident-hit path. *)
let serving envs =
  let variances = [ 0.0; 2.0 ] in
  (* summaries are memoized per env; warm them so both sides time
     routing + estimation, not dataset assembly *)
  List.iter
    (fun env ->
      List.iter
        (fun v ->
          ignore (Env.summary env ~p_variance:v ~o_variance:v ~with_order:true))
        variances)
    envs;
  let loader (k : Catalog.key) =
    let env =
      List.find (fun env -> String.equal (dsname env) k.Catalog.dataset) envs
    in
    Env.summary env ~p_variance:k.Catalog.variance
      ~o_variance:k.Catalog.variance ~with_order:true
  in
  let pairs =
    Array.of_list
      (List.concat_map
         (fun env ->
           let patterns =
             Workload.patterns
               (Env.queries env `Simple @ Env.queries env `Branch
               @ Env.queries env `Order_branch
               @ Env.queries env `Order_trunk)
           in
           List.concat_map
             (fun v ->
               Array.to_list
                 (Array.map
                    (fun q ->
                      ({ Catalog.dataset = dsname env; variance = v }, q))
                    patterns))
             variances)
         envs)
  in
  let n = Array.length pairs in
  let rev_pairs =
    Array.init n (fun i -> pairs.(n - 1 - i))
  in
  let nkeys = List.length envs * List.length variances in
  let capacity = max 1 (nkeys - 1) in
  (* reference: a fresh estimator per key per pass — what serving the
     same batches without a catalog costs, and the identity oracle *)
  let reference () =
    let out = Array.make n 0.0 in
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun (k, _) ->
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          let est = Estimator.create (loader k) in
          Array.iteri
            (fun j (k', q) -> if k' = k then out.(j) <- Estimator.estimate est q)
            pairs
        end)
      pairs;
    out
  in
  (* timed passes, counters off *)
  let cat = Catalog.create ~resident_capacity:capacity ~loader () in
  let (routed, routed_rev), routed_s =
    Env.time (fun () ->
        (Catalog.estimate_batch cat pairs, Catalog.estimate_batch cat rev_pairs))
  in
  let cstats : Catalog.stats = Catalog.stats cat in
  let (loop, _), loop_s = Env.time (fun () -> (reference (), reference ())) in
  let identical = ref true in
  Array.iteri
    (fun i v ->
      if
        Int64.bits_of_float v <> Int64.bits_of_float loop.(i)
        || Int64.bits_of_float routed_rev.(n - 1 - i)
           <> Int64.bits_of_float loop.(i)
      then identical := false)
    routed;
  (* metrics passes, counters on: the pool-shared plan cache turns the
     second variance of each dataset into pure plan hits *)
  let counter name =
    match List.assoc_opt name (Counters.counters ()) with
    | Some v -> v
    | None -> 0
  in
  let plan_counts run =
    Counters.with_enabled (fun () ->
        run ();
        (counter "estimator.plan_cache.hit", counter "estimator.plan_cache.miss"))
  in
  let routed_hits, routed_misses =
    plan_counts (fun () ->
        let cat = Catalog.create ~resident_capacity:capacity ~loader () in
        ignore (Catalog.estimate_batch cat pairs);
        ignore (Catalog.estimate_batch cat rev_pairs))
  in
  let loop_hits, loop_misses =
    plan_counts (fun () ->
        ignore (reference ());
        ignore (reference ()))
  in
  let i2 = string_of_int in
  Table
    {
      id = "S1";
      title =
        Printf.sprintf
          "Serving: routed catalog vs per-summary loop (%d summaries, \
           resident capacity %d, 2 passes)"
          nkeys capacity;
      header = [ "measure"; "routed catalog"; "per-summary loop" ];
      rows =
        [
          [ "routed queries"; i2 (2 * n); i2 (2 * n) ];
          [ "distinct summaries"; i2 nkeys; i2 nkeys ];
          [ "summary loads"; i2 cstats.Catalog.loads; i2 (2 * nkeys) ];
          [ "summary pool hits"; i2 cstats.Catalog.hits; "0" ];
          [ "summary evictions"; i2 cstats.Catalog.evictions; "n/a" ];
          [ "plan compiles (cache misses)"; i2 routed_misses; i2 loop_misses ];
          [ "plan-cache hits"; i2 routed_hits; i2 loop_hits ];
          [
            "throughput (queries/s)";
            Printf.sprintf "%.0f" (float_of_int (2 * n) /. Float.max routed_s 1e-9);
            Printf.sprintf "%.0f" (float_of_int (2 * n) /. Float.max loop_s 1e-9);
          ];
          [
            "bit-identical to fresh estimator";
            (if !identical then "yes" else "NO");
            "reference";
          ];
        ];
    }

let all_ids =
  [ "t1"; "t2"; "t3"; "t4"; "t5"; "f9"; "f10"; "f11"; "f12"; "f13"; "a1"; "a2";
    "s1" ]

let run envs id =
  match String.lowercase_ascii id with
  | "t1" -> table1 envs
  | "t2" -> table2 envs
  | "t3" -> table3 envs
  | "t4" -> table4 envs
  | "t5" -> table5 envs
  | "f9" -> figure9 envs
  | "f10" -> figure10 envs
  | "f11" -> figure11 envs
  | "f12" -> figure12 envs
  | "f13" -> figure13 envs
  | "a1" -> ablation_order envs
  | "a2" -> ablation_chain_pruning envs
  | "s1" -> serving envs
  | other -> invalid_arg (Printf.sprintf "Experiments.run: unknown id %S" other)
