module Stats = Xpest_util.Stats
module Workload = Xpest_workload.Workload
module Counters = Xpest_util.Counters
module Tablefmt = Xpest_util.Tablefmt

let errors items estimate =
  Array.of_list
    (List.map
       (fun (it : Workload.item) ->
         Stats.relative_error
           ~actual:(Float.of_int it.actual)
           ~estimate:(estimate it.pattern))
       items)

let mean_rel_error items estimate =
  let errs = errors items estimate in
  if Array.length errs = 0 then 0.0 else Stats.mean errs

let errors_batch items estimate_many =
  let estimates = estimate_many (Workload.patterns items) in
  Array.of_list
    (List.mapi
       (fun i (it : Workload.item) ->
         Stats.relative_error
           ~actual:(Float.of_int it.actual)
           ~estimate:estimates.(i))
       items)

let mean_rel_error_batch items estimate_many =
  let errs = errors_batch items estimate_many in
  if Array.length errs = 0 then 0.0 else Stats.mean errs

let percentile_errors items estimate =
  let errs = errors items estimate in
  if Array.length errs = 0 then (0.0, 0.0, 0.0)
  else (Stats.mean errs, Stats.percentile errs 50.0, Stats.percentile errs 90.0)

(* ------------------------------------------------------------------ *)
(* Observability counters (Xpest_util.Counters re-exported with
   rendering).  The instrumentation sites live in the estimator and
   synopsis layers; this is the reporting side.                        *)

let with_counters = Counters.with_enabled

let counter_rows () =
  List.map
    (fun (name, count) -> [ name; string_of_int count ])
    (Counters.counters ())
  @ List.map
      (fun (name, calls, seconds) ->
        [
          name;
          Printf.sprintf "%d calls, %s" calls (Tablefmt.fmt_seconds seconds);
        ])
      (Counters.timers ())

let render_counters () =
  match counter_rows () with
  | [] -> "(no counters recorded; were they enabled?)"
  | rows ->
      Tablefmt.render_table ~header:[ "counter"; "value" ]
        ~align:[ Tablefmt.Left; Tablefmt.Right ]
        rows
