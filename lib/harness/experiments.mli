(** One driver per table and figure of the paper's evaluation
    (Section 7).  Each driver returns both structured data (for tests
    and programmatic use) and a rendered ASCII artefact via
    {!render}. *)

(** {1 Structured results} *)

type table = {
  id : string; (** "T1" .. "T5", "F9" .. "F13" *)
  title : string;
  header : string list;
  rows : string list list;
}

type figure = {
  fid : string;
  ftitle : string;
  x_label : string;
  y_label : string;
  series : (string * (float * float) list) list;
}

type artefact = Table of table | Figures of figure list

val render : artefact -> string

(** {1 Drivers} *)

val table1 : Env.t list -> artefact
(** Dataset characteristics: size, #distinct tags, #elements. *)

val table2 : Env.t list -> artefact
(** Workload sizes: simple / branch / total without order; with
    order. *)

val table3 : Env.t list -> artefact
(** Path statistics: #distinct paths, pid bytes, #distinct pids;
    encoding-table / pid-table / compressed binary-tree bytes. *)

val table4 : Env.t list -> artefact
(** Construction for order-free estimation: path collection time,
    p-histogram size range over the variance sweep and build time —
    versus the XSketch baseline built at a matching budget. *)

val table5 : Env.t list -> artefact
(** Construction for order data: order collection time, o-histogram
    size range and build time. *)

val variance_sweep : float list
(** The intra-bucket variance values swept in Figure 9 and the error
    figures: [0; 1; 2; 4; 6; 8; 10; 12; 14]. *)

val figure9 : Env.t list -> artefact
(** P- and o-histogram memory vs intra-bucket variance, one figure per
    dataset. *)

val figure10 : Env.t list -> artefact
(** Relative error of simple / branch / all order-free queries vs
    p-histogram memory (swept through the p-variance). *)

val figure11 : Env.t list -> artefact
(** p-histogram vs XSketch at equal total memory. *)

val figure12 : Env.t list -> artefact
(** Order queries, target in a branch part: error vs o-histogram
    memory, one series per p-variance in {0, 1, 5, 10}. *)

val figure13 : Env.t list -> artefact
(** Same sweep with trunk targets (Equation 5). *)

(** {1 Ablations (beyond the paper)} *)

val ablation_order : Env.t list -> artefact
(** A1 — what the order statistics buy: error on the order-axis
    workloads for (a) the full estimator, (b) the order-blind estimate
    of the counterpart query (the upper bound a system without order
    summaries would use), (c) the XSketch baseline, (d) the position
    histogram of Wu et al. (containment-only). *)

val ablation_chain_pruning : Env.t list -> artefact
(** A2 — the chain-feasibility strengthening of the path join
    (DESIGN.md "known deviations"): order-free workload error with the
    paper's literal pairwise join vs the chain-pruned join. *)

(** {1 Serving (beyond the paper)} *)

val serving : Env.t list -> artefact
(** S1 — multi-dataset serving: the full workload of every dataset
    routed through one {!Xpest_catalog.Catalog} at two variance
    targets per dataset, with a resident capacity one short of the key
    count (so summaries evict and reload mid-run), versus a loop of
    fresh single-summary estimators.  Reports loads / pool hits /
    evictions, cross-summary plan-cache reuse, throughput, and the
    bit-identity of every routed result against the fresh-estimator
    reference. *)

val all_ids : string list

val run : Env.t list -> string -> artefact
(** Dispatch by id ("t1" ... "f13", "a1", "a2", "s1";
    case-insensitive).  @raise Invalid_argument on unknown ids. *)
