module Bitvec = Xpest_util.Bitvec
module Counters = Xpest_util.Counters
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Po_table = Xpest_synopsis.Po_table
module Encoding_table = Xpest_encoding.Encoding_table
module Plan = Xpest_plan.Plan
module Plan_cache = Xpest_plan.Plan_cache
module Cache_config = Xpest_plan.Cache_config
module Domain_pool = Xpest_util.Domain_pool

(* Observability: which estimation equations fire, and how often
   [estimate] is called.  No-ops unless [Counters.set_enabled true]. *)
let c_estimate = Counters.create "estimator.estimate"
let c_theorem41 = Counters.create "estimator.eq.theorem_4_1"
let c_equation2 = Counters.create "estimator.eq.equation_2"
let c_equation3 = Counters.create "estimator.eq.equation_3"
let c_equation4 = Counters.create "estimator.eq.equation_4"
let c_equation5 = Counters.create "estimator.eq.equation_5"
let c_conversion = Counters.create "estimator.eq.conversion_5_3"
let c_guard_clamped = Counters.create "estimator.guard_clamped"
let c_plan_hit = Counters.create "estimator.plan_cache.hit"
let c_plan_miss = Counters.create "estimator.plan_cache.miss"
let c_plan_evict = Counters.create "estimator.plan_cache.evict"
let c_batch = Counters.create "estimator.batch.calls"
let c_batch_queries = Counters.create "estimator.batch.queries"
let c_batch_deduped = Counters.create "estimator.batch.deduped"
let t_estimate = Counters.create_timer "estimator.estimate"

type t = {
  summary : Summary.t;
  join : Path_join.t;
  plans : (Pattern.t, Plan.t) Plan_cache.t;
  (* creation knobs, kept so the parallel batch path can build sibling
     executors over the same summary *)
  config : Cache_config.t;
  chain_pruning : bool option;
  mutable tracing : string list ref option;
}

(* The plan cache can be owned externally: plans are
   summary-independent, so a pool serving many summaries (see
   [Xpest_catalog.Catalog]) shares one cache across all its
   estimators and compiles each distinct query once.  [synchronized]
   makes that sharing safe across domains. *)
let create_plan_cache ?(capacity = Plan_cache.default_capacity)
    ?(policy = Xpest_util.Bounded_cache.Lru) ?(synchronized = false) () =
  Plan_cache.create ~capacity ~policy ~synchronized ~hit:c_plan_hit
    ~miss:c_plan_miss ~evict:c_plan_evict ()

let create ?chain_pruning ?(config = Cache_config.default) ?plans summary =
  let policy =
    if config.Cache_config.segmented then Xpest_util.Bounded_cache.segmented
    else Xpest_util.Bounded_cache.Lru
  in
  {
    summary;
    join = Path_join.create ?chain_pruning ~config summary;
    plans =
      (match plans with
      | Some cache -> cache
      | None -> create_plan_cache ~capacity:config.Cache_config.plan ~policy ());
    config;
    chain_pruning;
    tracing = None;
  }

(* A sibling executor for a worker domain: same summary and knobs,
   fresh (cold) join caches, no tracing.  The summary is read-only
   after construction, so sharing it is safe; the join caches are the
   mutable state, so each domain gets its own.  Cold caches change
   which work is recomputed but never the result — every estimate is a
   deterministic function of (summary, plan) alone. *)
let sibling t =
  {
    t with
    join = Path_join.create ?chain_pruning:t.chain_pruning ~config:t.config t.summary;
    tracing = None;
  }

let summary t = t.summary

let cache_stats t =
  ("plan", Plan_cache.stats t.plans) :: Path_join.cache_stats t.join

let plan_of t q = Plan_cache.find_or_add t.plans q Plan.compile

(* Derivation tracing for [explain]: estimation functions [note] their
   key intermediate values; outside [explain] this is a no-op. *)
let note t fmt =
  Printf.ksprintf
    (fun line ->
      match t.tracing with Some acc -> acc := line :: !acc | None -> ())
    fmt

(* Estimates must be finite and non-negative.  A clamp of a NaN /
   infinite / negative intermediate is counted and traced; clamping an
   exact 0 (an emptied join or a vanished denominator) is the normal
   "no match" outcome and is not. *)
let guard t x =
  if Float.is_finite x && x > 0.0 then x
  else begin
    if x < 0.0 || not (Float.is_finite x) then begin
      Counters.incr c_guard_clamped;
      note t "guard: clamped non-finite/negative intermediate %g to 0" x
    end;
    0.0
  end

(* ------------------------------------------------------------------ *)
(* Branch-query estimation (Section 4).                                *)

(* Selectivity of [position] in a Simple/Branch shape.  Equation (2):
   when the target sits on a branch part, estimate through the simple
   query Q' that drops the other branch.  This is the recursive
   order-free core the order equations call back into; the top-level
   [execute] below goes through precompiled join specs instead. *)
let rec estimate_plain t (shape : Pattern.shape) position =
  match (shape, position) with
  | Simple _, _ ->
      (* Theorem 4.1. *)
      Counters.incr c_theorem41;
      let f = Path_join.frequency (Path_join.run t.join shape) position in
      note t "theorem 4.1: f_Q(n) = %g after the path join" f;
      f
  | Branch _, Pattern.In_trunk _ ->
      Counters.incr c_theorem41;
      let f = Path_join.frequency (Path_join.run t.join shape) position in
      note t "trunk target: f_Q(n) = %g after the path join" f;
      f
  | Branch { trunk; branch; tail }, Pattern.In_branch i ->
      estimate_off_trunk t ~trunk ~own:branch ~own_index:i
        ~full:(Pattern.Branch { trunk; branch; tail })
  | Branch { trunk; branch; tail }, Pattern.In_tail i ->
      estimate_off_trunk t ~trunk ~own:tail ~own_index:i
        ~full:(Pattern.Branch { trunk; branch; tail })
  | Branch _, (Pattern.In_first _ | Pattern.In_second _) ->
      invalid_arg "Estimator: order position in a branch shape"
  | Ordered _, _ ->
      invalid_arg "Estimator.estimate_plain: ordered shape"

(* Equation (2): S_Q(n) ~ f_Q'(n) * f_Q(ni) / f_Q'(ni), with Q' the
   simple query [trunk/own] and ni the last trunk node. *)
and estimate_off_trunk t ~trunk ~own ~own_index ~full =
  Counters.incr c_equation2;
  let ni = Pattern.In_trunk (List.length trunk - 1) in
  let q' = Pattern.Simple (trunk @ own) in
  let q'_result = Path_join.run t.join q' in
  let pos_in_q' = Pattern.In_trunk (List.length trunk + own_index) in
  let f_q'_n = Path_join.frequency q'_result pos_in_q' in
  let f_q'_ni = Path_join.frequency q'_result ni in
  let f_q_ni = Path_join.frequency (Path_join.run t.join full) ni in
  note t
    "equation 2: S_Q(n) ~ f_Q'(n) * f_Q(ni) / f_Q'(ni) = %g * %g / %g (Q' \
     drops the other branch; ni = last trunk node)"
    f_q'_n f_q_ni f_q'_ni;
  if f_q'_ni <= 0.0 then 0.0 else guard t (f_q'_n *. f_q_ni /. f_q'_ni)

(* ------------------------------------------------------------------ *)
(* Order-query estimation (Section 5).                                 *)

(* S_{Q⃗'}(head): o-histogram sum over the head's surviving pids after
   the path join on Q' (the counterpart where the *other* branch is
   reduced to its head).  [head_of] selects which branch head we read
   ([`First] or [`Second]); the region encodes on which side of the
   other head it must fall. *)
let order_head_selectivity t ~trunk ~first ~second
    ~(axis : Pattern.order_axis) ~head_of =
  let head spine = match spine with s :: _ -> [ s ] | [] -> [] in
  let first_tag = (List.hd first).Pattern.tag in
  let second_tag = (List.hd second).Pattern.tag in
  let first', second', own_tag, other_tag, own_pos =
    match head_of with
    | `Second -> (head first, second, second_tag, first_tag, Pattern.In_tail 0)
    | `First -> (first, head second, first_tag, second_tag, Pattern.In_branch 0)
  in
  let counterpart' =
    Pattern.counterpart (Pattern.Ordered { trunk; first = first'; axis; second = second' })
  in
  let result = Path_join.run t.join counterpart' in
  let region : Po_table.region =
    (* Region is from the point of view of [own]: After = own occurs
       after the other head. *)
    match (axis, head_of) with
    | (Following_sibling | Following), `Second -> After
    | (Following_sibling | Following), `First -> Before
    | (Preceding_sibling | Preceding), `Second -> Before
    | (Preceding_sibling | Preceding), `First -> After
  in
  let s_arrow =
    List.fold_left
      (fun acc (pid, _) ->
        acc
        +. Summary.order_frequency t.summary ~tag:own_tag ~pid ~other:other_tag
             ~region)
      0.0
      (Path_join.pids result own_pos)
  in
  (* S_{Q'}(head): branch estimate of the head in the counterpart. *)
  let s_q' =
    match counterpart' with
    | Pattern.Branch _ as shape ->
        estimate_plain t shape (Pattern.counterpart_position own_pos)
    | Pattern.Simple _ | Pattern.Ordered _ -> assert false
  in
  (s_arrow, s_q')

(* Sibling-axis order estimation for a target position.  Assumes
   [axis] is Following_sibling or Preceding_sibling (callers convert
   Following/Preceding first). *)
let estimate_sibling_order t ~trunk ~first ~second ~axis position =
  let counterpart = Pattern.counterpart (Pattern.Ordered { trunk; first; axis; second }) in
  let s_q n = estimate_plain t counterpart (Pattern.counterpart_position n) in
  let ratio head_of =
    let s_arrow', s_q' =
      order_head_selectivity t ~trunk ~first ~second ~axis ~head_of
    in
    note t
      "order survival of the %s head: S⃗_Q'(head) = %g from the o-histogram, \
       S_Q'(head) = %g, ratio %g"
      (match head_of with `First -> "first" | `Second -> "second")
      s_arrow' s_q'
      (if s_q' <= 0.0 then 0.0 else s_arrow' /. s_q');
    if s_q' <= 0.0 then 0.0 else s_arrow' /. s_q'
  in
  match (position : Pattern.position) with
  | In_second 0 ->
      (* Equation (3). *)
      Counters.incr c_equation3;
      guard t (s_q (Pattern.In_second 0) *. ratio `Second)
  | In_second _ ->
      (* Equation (4): scale the order-free estimate by the head's
         order survival ratio. *)
      Counters.incr c_equation4;
      guard t (s_q position *. ratio `Second)
  | In_first 0 ->
      Counters.incr c_equation3;
      guard t (s_q (Pattern.In_first 0) *. ratio `First)
  | In_first _ ->
      Counters.incr c_equation4;
      guard t (s_q position *. ratio `First)
  | In_trunk _ ->
      (* Equation (5): min of the order-free estimate and both sibling
         heads' order estimates. *)
      Counters.incr c_equation5;
      let s_plain = s_q position in
      let s_first = guard t (s_q (Pattern.In_first 0) *. ratio `First) in
      let s_second = guard t (s_q (Pattern.In_second 0) *. ratio `Second) in
      note t "equation 5: min(S_Q(n)=%g, S⃗_Q(first head)=%g, S⃗_Q(second head)=%g)"
        s_plain s_first s_second;
      Float.min s_plain (Float.min s_first s_second)
  | In_branch _ | In_tail _ ->
      invalid_arg "Estimator: branch position in an ordered shape"

(* ------------------------------------------------------------------ *)
(* Following / Preceding conversion (paper Example 5.3).               *)

(* Distinct tag chains between the trunk tag and the second head's tag
   along the second head's surviving pids. *)
let conversion_gaps t ~trunk ~first ~second ~axis =
  let shape = Pattern.Ordered { trunk; first; axis; second } in
  (* run joins Ordered shapes through the counterpart internally but
     keeps In_first/In_second positions *)
  let result = Path_join.run t.join shape in
  let trunk_tag = (List.nth trunk (List.length trunk - 1)).Pattern.tag in
  let head_tag = (List.hd second).Pattern.tag in
  let table = Summary.encoding_table t.summary in
  let gaps = ref [] in
  List.iter
    (fun (pid, _) ->
      Bitvec.iter_set_bits pid (fun bit ->
          List.iter
            (fun gap -> if not (List.mem gap !gaps) then gaps := gap :: !gaps)
            (Encoding_table.gap_tags table ~encoding:(bit + 1) ~anc:trunk_tag
               ~desc:head_tag)))
    (Path_join.pids result (Pattern.In_second 0));
  List.rev !gaps

(* Conversion_5_3: rewrite a following/preceding query into the set of
   sibling-axis queries spanned by the encoding-table gaps. *)
let estimate_conversion t ~trunk ~first ~second ~(axis : Pattern.order_axis)
    position =
  Counters.incr c_conversion;
  let sibling_axis : Pattern.order_axis =
    match axis with
    | Following -> Following_sibling
    | Preceding -> Preceding_sibling
    | Following_sibling | Preceding_sibling ->
        invalid_arg "Estimator: conversion of a sibling axis"
  in
  let gaps = conversion_gaps t ~trunk ~first ~second ~axis in
  note t
    "%s-axis conversion (example 5.3): %d sibling-axis querie(s) via gaps [%s]"
    (match axis with Pattern.Following -> "following" | _ -> "preceding")
    (List.length gaps)
    (String.concat "; " (List.map (String.concat "/") gaps));
  List.fold_left
    (fun acc gap ->
      (* Rebuild [second] as a child chain through the gap. *)
      let chain =
        List.map (fun tag -> Pattern.{ axis = Child; tag }) gap
        @ Pattern.
            { axis = Child; tag = (List.hd second).Pattern.tag }
          :: List.tl second
      in
      let position' =
        match position with
        | Pattern.In_second i -> Pattern.In_second (List.length gap + i)
        | p -> p
      in
      acc
      +. estimate_sibling_order t ~trunk ~first ~second:chain
           ~axis:sibling_axis position')
    0.0 gaps

(* ------------------------------------------------------------------ *)
(* The executor: a match on the equation chosen at compile time.       *)

let execute t (plan : Plan.t) =
  let target = Pattern.target plan.Plan.pattern in
  let shape = Pattern.shape plan.Plan.pattern in
  match plan.Plan.equation with
  | Plan.Theorem_4_1 ->
      Counters.incr c_theorem41;
      let f =
        Path_join.frequency (Path_join.exec t.join plan.Plan.join) target
      in
      (match shape with
      | Pattern.Simple _ ->
          note t "theorem 4.1: f_Q(n) = %g after the path join" f
      | Pattern.Branch _ | Pattern.Ordered _ ->
          note t "trunk target: f_Q(n) = %g after the path join" f);
      guard t f
  | Plan.Equation_2 ->
      let e =
        match plan.Plan.eq2 with
        | Some e -> e
        | None -> assert false (* compile invariant *)
      in
      Counters.incr c_equation2;
      let q'_result = Path_join.exec t.join e.Plan.q_prime in
      let f_q'_n = Path_join.frequency q'_result e.Plan.pos_in_q' in
      let f_q'_ni = Path_join.frequency q'_result e.Plan.ni in
      let f_q_ni =
        Path_join.frequency (Path_join.exec t.join plan.Plan.join) e.Plan.ni
      in
      note t
        "equation 2: S_Q(n) ~ f_Q'(n) * f_Q(ni) / f_Q'(ni) = %g * %g / %g (Q' \
         drops the other branch; ni = last trunk node)"
        f_q'_n f_q_ni f_q'_ni;
      guard t
        (if f_q'_ni <= 0.0 then 0.0 else guard t (f_q'_n *. f_q_ni /. f_q'_ni))
  | Plan.Equation_3 | Plan.Equation_4 | Plan.Equation_5 -> (
      match shape with
      | Pattern.Ordered { trunk; first; axis; second } ->
          guard t (estimate_sibling_order t ~trunk ~first ~second ~axis target)
      | Pattern.Simple _ | Pattern.Branch _ -> assert false)
  | Plan.Conversion_5_3 -> (
      match shape with
      | Pattern.Ordered { trunk; first; axis; second } ->
          guard t (estimate_conversion t ~trunk ~first ~second ~axis target)
      | Pattern.Simple _ | Pattern.Branch _ -> assert false)

(* ------------------------------------------------------------------ *)

let estimate_position t (q : Pattern.t) position =
  execute t (plan_of t (Pattern.v (Pattern.shape q) position))

let estimate t q =
  Counters.incr c_estimate;
  Counters.time t_estimate (fun () -> execute t (plan_of t q))

let estimate_many_sequential t qs =
  (* Compile-dedupe-execute: identical normalized plans (same pattern,
     same target) run once; the executed value is reused bitwise for
     every duplicate.  Distinct patterns sharing sub-shapes still
     share joins through the run cache. *)
  let memo = Hashtbl.create (2 * Array.length qs + 1) in
  Array.map
    (fun q ->
      match Hashtbl.find_opt memo q with
      | Some v ->
          Counters.incr c_batch_deduped;
          v
      | None ->
          let v = estimate t q in
          Hashtbl.add memo q v;
          v)
    qs

(* Parallel batch: dedupe and compile in the caller — in input order,
   so the shared plan cache sees exactly the sequential lookup/eviction
   trace — then execute the distinct plans across the pool in balanced
   contiguous chunks, each worker writing only its own slots.  Chunk 0
   reuses this estimator (warm caches); the others run on cold sibling
   executors.  Values are bit-identical to the sequential path either
   way: execution never reads the plan cache, and the join caches only
   memoize deterministic recomputation. *)
let estimate_many_parallel pool t qs =
  let slot = Hashtbl.create (2 * Array.length qs + 1) in
  let rev_plans = ref [] in
  let n_distinct = ref 0 in
  let index =
    Array.map
      (fun q ->
        match Hashtbl.find_opt slot q with
        | Some i ->
            Counters.incr c_batch_deduped;
            i
        | None ->
            let i = !n_distinct in
            Hashtbl.add slot q i;
            incr n_distinct;
            rev_plans := plan_of t q :: !rev_plans;
            i)
      qs
  in
  let plans = Array.of_list (List.rev !rev_plans) in
  let values = Array.make (Array.length plans) 0.0 in
  Domain_pool.parallel_chunks pool ~n:(Array.length plans)
    (fun ~chunk ~lo ~hi ->
      let ex = if chunk = 0 then t else sibling t in
      for i = lo to hi - 1 do
        Counters.incr c_estimate;
        values.(i) <- Counters.time t_estimate (fun () -> execute ex plans.(i))
      done);
  Array.map (fun i -> values.(i)) index

let estimate_many ?pool t qs =
  if Array.length qs = 0 then
    (* strict no-op: no counters, no pool activity — pipeline stages
       may re-enter with empty groups and must leave no trace *)
    [||]
  else begin
    Counters.incr c_batch;
    Counters.add c_batch_queries (Array.length qs);
    match pool with
    | Some pool when Domain_pool.size pool > 1 && Array.length qs > 1 ->
        estimate_many_parallel pool t qs
    | Some _ | None -> estimate_many_sequential t qs
  end

(* Error-safe pool entry points: the catalog's serving path must never
   let one poisoned query abort a batch, so exceptions escaping the
   engine (violated invariants on adversarial patterns) are demoted to
   typed Internal errors here, per query. *)

let try_estimate t q =
  match estimate t q with
  | v -> Ok v
  | exception Invalid_argument reason | exception Failure reason ->
      Error (Xpest_util.Xpest_error.Internal reason)

let try_estimate_many ?pool t qs =
  match estimate_many ?pool t qs with
  | vs -> Array.map (fun v -> Ok v) vs
  | exception (Invalid_argument _ | Failure _) ->
      (* one query poisoned the batched pass: fall back to per-query
         estimation, which is bit-identical for the healthy queries
         (the estimate_many contract) and isolates the failure.  The
         fallback is sequential even when a pool was given — the
         poisoned batch already burned its fast pass, and sequential
         isolation makes the per-query errors deterministic. *)
      Array.map (fun q -> try_estimate t q) qs

type explanation = { value : float; derivation : string list }

let explain t q =
  let acc = ref [] in
  t.tracing <- Some acc;
  Fun.protect
    ~finally:(fun () -> t.tracing <- None)
    (fun () ->
      let value = estimate t q in
      { value; derivation = List.rev !acc })
