(** Sketch-tier executor: answers a compiled plan from a fallback
    sketch ({!Xpest_synopsis.Sketch}) instead of a full summary.

    This is the serving side of the catalog's last degradation rung.
    [create] rebuilds the estimating label-split synopsis
    ({!Xpest_baseline.Xsketch.of_export}) once; estimation itself is
    pure, allocation-light, and deterministic, so a sketch-served
    group is bit-identical at any domain count.

    The executor takes the same {!Xpest_plan.Plan.t} IR the exact tier
    compiles — the catalog's shared plan cache keeps routing and
    dedupe identical across tiers — but only the plan's normalized
    pattern carries information for a sketch: tag-level Markov
    statistics know nothing of the summary's join equations, so
    estimates are coarse upper-bound-flavored approximations, never
    refusals. *)

type t

val create : Xpest_synopsis.Sketch.t -> t
(** Rebuild the estimating synopsis from the sketch.  Cheap (linear in
    sketch size); intended to run once per install, not per query. *)

val estimate : t -> Xpest_xpath.Pattern.t -> float

val estimate_plan : t -> Xpest_plan.Plan.t -> float
(** [estimate] of the plan's normalized pattern. *)
