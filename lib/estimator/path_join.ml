module Bitvec = Xpest_util.Bitvec
module Counters = Xpest_util.Counters
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler

(* Observability: cache effectiveness and pruning volume of the join.
   All no-ops unless [Counters.set_enabled true]. *)
let c_rel_hit = Counters.create "path_join.rel_cache.hit"
let c_rel_miss = Counters.create "path_join.rel_cache.miss"
let c_chain_hit = Counters.create "path_join.chain_cache.hit"
let c_chain_miss = Counters.create "path_join.chain_cache.miss"
let c_run_hit = Counters.create "path_join.run_cache.hit"
let c_run_miss = Counters.create "path_join.run_cache.miss"
let c_chain_pruned = Counters.create "path_join.pruned.chain_rows"
let c_anchor_pruned = Counters.create "path_join.pruned.anchor_rows"
let c_fixpoint_pruned = Counters.create "path_join.pruned.fixpoint_rows"
let t_run = Counters.create_timer "path_join.run_uncached"

type jnode = {
  tag : string;
  position : Pattern.position;
  mutable row : (Bitvec.t * float) array;
}

type result = { nodes : jnode array }

(* A pattern chain: one root-to-leaf path of the query tree, with the
   anchoring axis of its head.  [anchored] is true when the head step
   is a child of the virtual document node (absolute [/n1]). *)
type chain = { anchored : bool; steps : (Pattern.axis * string) list }

type t = {
  summary : Summary.t;
  chain_pruning : bool;
  (* (encoding, child?, anc tag, desc tag) -> axis holds on that path *)
  rel_cache : (int * bool * string * string, bool) Hashtbl.t;
  (* (chain, encoding) -> per-chain-node feasibility of a full ordered
     embedding of the chain into that root-to-leaf path *)
  chain_cache : (chain * int, bool array) Hashtbl.t;
  (* one estimate joins the same shape repeatedly (counterpart,
     simplified counterpart, Q'), and join output only depends on the
     shape given a fixed summary *)
  run_cache : (Pattern.shape, result) Hashtbl.t;
}

let create ?(chain_pruning = true) summary =
  {
    summary;
    chain_pruning;
    rel_cache = Hashtbl.create 1024;
    chain_cache = Hashtbl.create 1024;
    run_cache = Hashtbl.create 256;
  }

(* Can the whole chain embed into the path type [encoding], and if so
   at which chain nodes is each position?  Returns per-chain-node
   feasibility: node i is feasible iff some full embedding of the
   chain places it somewhere on the path.  Child steps demand adjacent
   positions, descendant steps any later position; an anchored head
   must sit at position 0. *)
let chain_feasibility t (c : chain) encoding =
  match Hashtbl.find_opt t.chain_cache (c, encoding) with
  | Some f ->
      Counters.incr c_chain_hit;
      f
  | None ->
      Counters.incr c_chain_miss;
      let path =
        Array.of_list
          (Encoding_table.path_of_encoding
             (Summary.encoding_table t.summary)
             encoding)
      in
      let m = Array.length path in
      let k = List.length c.steps in
      let steps = Array.of_list c.steps in
      (* forward[i].(q): prefix s_0..s_i embeds with s_i at position q *)
      let forward = Array.make_matrix k m false in
      (* an anchored head ([/n1]) is the document root: position 0 *)
      (for q = 0 to m - 1 do
         let _, tag = steps.(0) in
         if String.equal path.(q) tag && ((not c.anchored) || q = 0) then
           forward.(0).(q) <- true
       done);
      for i = 1 to k - 1 do
        let axis, tag = steps.(i) in
        for q = 0 to m - 1 do
          if String.equal path.(q) tag then
            let reachable =
              match axis with
              | Pattern.Child -> q > 0 && forward.(i - 1).(q - 1)
              | Pattern.Descendant ->
                  let rec any p = p >= 0 && (forward.(i - 1).(p) || any (p - 1)) in
                  any (q - 1)
            in
            if reachable then forward.(i).(q) <- true
        done
      done;
      (* backward[i].(q): suffix s_i..s_{k-1} embeds with s_i at q *)
      let backward = Array.make_matrix k m false in
      (for q = 0 to m - 1 do
         let _, tag = steps.(k - 1) in
         if String.equal path.(q) tag then backward.(k - 1).(q) <- true
       done);
      for i = k - 2 downto 0 do
        let _, tag = steps.(i) in
        let next_axis, _ = steps.(i + 1) in
        for q = 0 to m - 1 do
          if String.equal path.(q) tag then
            let extendable =
              match next_axis with
              | Pattern.Child -> q + 1 < m && backward.(i + 1).(q + 1)
              | Pattern.Descendant ->
                  let rec any p = p < m && (backward.(i + 1).(p) || any (p + 1)) in
                  any (q + 1)
            in
            if extendable then backward.(i).(q) <- true
        done
      done;
      let feasible =
        Array.init k (fun i ->
            let rec any q =
              q < m && ((forward.(i).(q) && backward.(i).(q)) || any (q + 1))
            in
            any 0)
      in
      Hashtbl.add t.chain_cache (c, encoding) feasible;
      feasible

let axis_on_path t ~encoding ~child ~anc ~desc =
  let key = (encoding, child, anc, desc) in
  match Hashtbl.find_opt t.rel_cache key with
  | Some v ->
      Counters.incr c_rel_hit;
      v
  | None ->
      Counters.incr c_rel_miss;
      let v =
        Encoding_table.axis_holds
          (Summary.encoding_table t.summary)
          ~encoding
          ~axis:(if child then `Child else `Descendant)
          ~anc ~desc
      in
      Hashtbl.add t.rel_cache key v;
      v

(* Does the tag relation hold on some path of the descendant-side pid? *)
let rel_ok t ~axis ~anc ~desc pid =
  let child = match (axis : Pattern.axis) with Child -> true | Descendant -> false in
  let exception Yes in
  try
    Bitvec.iter_set_bits pid (fun bit ->
        if axis_on_path t ~encoding:(bit + 1) ~child ~anc ~desc then raise Yes);
    false
  with Yes -> true

type jedge = { parent : int; child : int; axis : Pattern.axis }

(* Flatten a shape into join nodes, parent-child edges and pattern
   chains.  Ordered shapes join via their counterpart, but node
   positions keep the original flavor so lookups can use
   In_first/In_second. *)
let graph_of_shape shape =
  let nodes = ref [] and edges = ref [] and count = ref 0 in
  let add tag position =
    nodes := (tag, position) :: !nodes;
    incr count;
    !count - 1
  in
  let add_spine spine ~anchor ~pos_of =
    List.fold_left
      (fun (i, parent) (s : Pattern.step) ->
        let id = add s.tag (pos_of i) in
        (match parent with
        | Some p -> edges := { parent = p; child = id; axis = s.axis } :: !edges
        | None -> ());
        (i + 1, Some id))
      (0, anchor) spine
    |> snd
  in
  let head_axis spine = match spine with [] -> Pattern.Child | s :: _ -> s.Pattern.axis in
  (match (shape : Pattern.shape) with
  | Simple spine ->
      ignore (add_spine spine ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i))
  | Branch { trunk; branch; tail } ->
      let attach = add_spine trunk ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i) in
      ignore (add_spine branch ~anchor:attach ~pos_of:(fun i -> Pattern.In_branch i));
      ignore (add_spine tail ~anchor:attach ~pos_of:(fun i -> Pattern.In_tail i))
  | Ordered { trunk; first; axis; second } ->
      let attach = add_spine trunk ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i) in
      ignore (add_spine first ~anchor:attach ~pos_of:(fun i -> Pattern.In_first i));
      (* The counterpart reattaches [second] under the trunk with the
         axis implied by the order axis; Pattern.v has already forced
         the head axis to match, so the spine is usable as-is. *)
      ignore axis;
      ignore (add_spine second ~anchor:attach ~pos_of:(fun i -> Pattern.In_second i)));
  let first_axis =
    match (shape : Pattern.shape) with
    | Simple spine | Branch { trunk = spine; _ } | Ordered { trunk = spine; _ } ->
        head_axis spine
  in
  (* chains of node indices: trunk alone (Simple) or trunk extended by
     each branch part *)
  let chains =
    let len l = List.length l in
    let ids lo n = List.init n (fun i -> lo + i) in
    match (shape : Pattern.shape) with
    | Simple spine -> [ ids 0 (len spine) ]
    | Branch { trunk; branch; tail } ->
        let t = len trunk and b = len branch and a = len tail in
        (ids 0 t @ ids t b)
        :: (if a > 0 then [ ids 0 t @ ids (t + b) a ] else [])
    | Ordered { trunk; first; second; _ } ->
        let t = len trunk and f = len first and s = len second in
        [ ids 0 t @ ids t f; ids 0 t @ ids (t + f) s ]
  in
  (List.rev !nodes, List.rev !edges, first_axis, chains)

let run_uncached t shape =
  let node_specs, edges, first_axis, chains = graph_of_shape shape in
  let nodes =
    Array.of_list
      (List.map
         (fun (tag, position) ->
           { tag; position; row = Array.of_list (Summary.tag_pids t.summary tag) })
         node_specs)
  in
  (* incoming axis per node (the head gets the anchoring axis) *)
  let node_axes = Array.make (Array.length nodes) first_axis in
  List.iter (fun { child; axis; _ } -> node_axes.(child) <- axis) edges;
  (* Chain pruning: a pid can label a witness of chain node i only if
     the entire chain embeds into one of the pid's path types with
     node i somewhere on it. *)
  if t.chain_pruning then
  List.iter
    (fun chain_ids ->
      let chain =
        {
          anchored = (first_axis = Pattern.Child);
          steps = List.map (fun id -> (node_axes.(id), nodes.(id).tag)) chain_ids;
        }
      in
      List.iteri
        (fun i id ->
          let node = nodes.(id) in
          let before = Array.length node.row in
          node.row <-
            Array.of_list
              (List.filter
                 (fun (pid, _) ->
                   let exception Yes in
                   try
                     Bitvec.iter_set_bits pid (fun bit ->
                         if (chain_feasibility t chain (bit + 1)).(i) then
                           raise Yes);
                     false
                   with Yes -> true)
                 (Array.to_list node.row));
          Counters.add c_chain_pruned (before - Array.length node.row))
        chain_ids)
    chains;
  (* Anchor: a Child first step means "child of the virtual document
     node", i.e. the document root itself: only the root's pid (the
     all-paths vector) on a matching tag can survive. *)
  (match first_axis with
  | Pattern.Descendant -> ()
  | Pattern.Child ->
      let root_pid = Summary.root_pid t.summary in
      let head = nodes.(0) in
      let before = Array.length head.row in
      head.row <-
        Array.of_list
          (List.filter
             (fun (pid, _) -> Bitvec.equal pid root_pid)
             (Array.to_list head.row));
      Counters.add c_anchor_pruned (before - Array.length head.row));
  (* Fixpoint pruning over edges. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { parent; child; axis } ->
        let x = nodes.(parent) and y = nodes.(child) in
        (* Precompute the tag-relation flag per descendant-side pid. *)
        let y_rel =
          Array.map (fun (pid, _) -> rel_ok t ~axis ~anc:x.tag ~desc:y.tag pid) y.row
        in
        let keep_y =
          Array.mapi
            (fun i (py, _) ->
              y_rel.(i)
              && Array.exists (fun (px, _) -> Bitvec.contains_or_equal px py) x.row)
            y.row
        in
        let keep_x =
          Array.map
            (fun (px, _) ->
              Array.exists
                (fun i -> keep_y.(i) && Bitvec.contains_or_equal px (fst y.row.(i)))
                (Array.init (Array.length y.row) Fun.id))
            x.row
        in
        let filter node keep =
          let kept = ref [] in
          Array.iteri (fun i e -> if keep.(i) then kept := e :: !kept) node.row;
          let kept = Array.of_list (List.rev !kept) in
          if Array.length kept <> Array.length node.row then begin
            Counters.add c_fixpoint_pruned
              (Array.length node.row - Array.length kept);
            node.row <- kept;
            changed := true
          end
        in
        filter y keep_y;
        filter x keep_x)
      edges
  done;
  { nodes }

let run t shape =
  match Hashtbl.find_opt t.run_cache shape with
  | Some r ->
      Counters.incr c_run_hit;
      r
  | None ->
      Counters.incr c_run_miss;
      let r = Counters.time t_run (fun () -> run_uncached t shape) in
      Hashtbl.add t.run_cache shape r;
      r

let find result position =
  let found = ref None in
  Array.iter
    (fun n -> if n.position = position then found := Some n)
    result.nodes;
  match !found with
  | Some n -> n
  | None -> invalid_arg "Path_join: position not in the joined shape"

let pids result position = Array.to_list (find result position).row

let frequency result position =
  Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 (find result position).row
