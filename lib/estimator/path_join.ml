module Bitvec = Xpest_util.Bitvec
module Counters = Xpest_util.Counters
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Encoding_table = Xpest_encoding.Encoding_table
module Plan = Xpest_plan.Plan
module Bounded_cache = Xpest_util.Bounded_cache
module Cache_config = Xpest_plan.Cache_config

(* Observability: cache effectiveness and pruning volume of the join.
   All no-ops unless [Counters.set_enabled true].  Created once here
   and handed to the per-estimator bounded caches (see
   Xpest_util.Bounded_cache). *)
let c_rel_hit = Counters.create "path_join.rel_cache.hit"
let c_rel_miss = Counters.create "path_join.rel_cache.miss"
let c_rel_evict = Counters.create "path_join.rel_cache.evict"
let c_chain_hit = Counters.create "path_join.chain_cache.hit"
let c_chain_miss = Counters.create "path_join.chain_cache.miss"
let c_chain_evict = Counters.create "path_join.chain_cache.evict"
let c_run_hit = Counters.create "path_join.run_cache.hit"
let c_run_miss = Counters.create "path_join.run_cache.miss"
let c_run_evict = Counters.create "path_join.run_cache.evict"
let c_chain_pruned = Counters.create "path_join.pruned.chain_rows"
let c_anchor_pruned = Counters.create "path_join.pruned.anchor_rows"
let c_fixpoint_pruned = Counters.create "path_join.pruned.fixpoint_rows"
let t_run = Counters.create_timer "path_join.run_uncached"

type jnode = {
  tag : string;
  position : Pattern.position;
  mutable row : (Bitvec.t * float) array;
}

type result = { nodes : jnode array }

(* Keys of the three execution caches.  The chain key drops the
   node-id indirection of [Plan.chain]: feasibility only depends on
   the anchoring and the (axis, tag) steps. *)
type chain_key = bool * (Pattern.axis * string) list * int
type rel_key = int * bool * string * string

type t = {
  summary : Summary.t;
  chain_pruning : bool;
  (* (encoding, child?, anc tag, desc tag) -> axis holds on that path *)
  rel_cache : (rel_key, bool) Bounded_cache.t;
  (* (anchored, steps, encoding) -> per-chain-node feasibility of a
     full ordered embedding of the chain into that root-to-leaf path *)
  chain_cache : (chain_key, bool array) Bounded_cache.t;
  (* one estimate joins the same shape repeatedly (counterpart,
     simplified counterpart, Q'), and join output only depends on the
     shape given a fixed summary *)
  run_cache : (Pattern.shape, result) Bounded_cache.t;
}

let create ?(chain_pruning = true) ?(config = Cache_config.default) summary =
  (* Cached values are pure functions of (summary, key), so the
     replacement policy only decides which entries stay resident —
     estimates are bit-identical under either policy. *)
  let policy =
    if config.Cache_config.segmented then Bounded_cache.segmented
    else Bounded_cache.Lru
  in
  {
    summary;
    chain_pruning;
    rel_cache =
      Bounded_cache.create ~capacity:config.Cache_config.rel ~policy
        ~hit:c_rel_hit ~miss:c_rel_miss ~evict:c_rel_evict ();
    chain_cache =
      Bounded_cache.create ~capacity:config.Cache_config.chain ~policy
        ~hit:c_chain_hit ~miss:c_chain_miss ~evict:c_chain_evict ();
    run_cache =
      Bounded_cache.create ~capacity:config.Cache_config.run ~policy
        ~hit:c_run_hit ~miss:c_run_miss ~evict:c_run_evict ();
  }

let cache_stats t =
  [
    ("rel", Bounded_cache.stats t.rel_cache);
    ("chain", Bounded_cache.stats t.chain_cache);
    ("run", Bounded_cache.stats t.run_cache);
  ]

(* Can the whole chain embed into the path type [encoding], and if so
   at which chain nodes is each position?  Returns per-chain-node
   feasibility: node i is feasible iff some full embedding of the
   chain places it somewhere on the path.  Child steps demand adjacent
   positions, descendant steps any later position; an anchored head
   must sit at position 0. *)
let chain_feasibility_uncached t ~anchored ~steps encoding =
  let path =
    Array.of_list
      (Encoding_table.path_of_encoding
         (Summary.encoding_table t.summary)
         encoding)
  in
  let m = Array.length path in
  let k = List.length steps in
  let steps = Array.of_list steps in
  (* forward[i].(q): prefix s_0..s_i embeds with s_i at position q *)
  let forward = Array.make_matrix k m false in
  (* an anchored head ([/n1]) is the document root: position 0 *)
  (for q = 0 to m - 1 do
     let _, tag = steps.(0) in
     if String.equal path.(q) tag && ((not anchored) || q = 0) then
       forward.(0).(q) <- true
   done);
  for i = 1 to k - 1 do
    let axis, tag = steps.(i) in
    for q = 0 to m - 1 do
      if String.equal path.(q) tag then
        let reachable =
          match axis with
          | Pattern.Child -> q > 0 && forward.(i - 1).(q - 1)
          | Pattern.Descendant ->
              let rec any p = p >= 0 && (forward.(i - 1).(p) || any (p - 1)) in
              any (q - 1)
        in
        if reachable then forward.(i).(q) <- true
    done
  done;
  (* backward[i].(q): suffix s_i..s_{k-1} embeds with s_i at q *)
  let backward = Array.make_matrix k m false in
  (for q = 0 to m - 1 do
     let _, tag = steps.(k - 1) in
     if String.equal path.(q) tag then backward.(k - 1).(q) <- true
   done);
  for i = k - 2 downto 0 do
    let _, tag = steps.(i) in
    let next_axis, _ = steps.(i + 1) in
    for q = 0 to m - 1 do
      if String.equal path.(q) tag then
        let extendable =
          match next_axis with
          | Pattern.Child -> q + 1 < m && backward.(i + 1).(q + 1)
          | Pattern.Descendant ->
              let rec any p = p < m && (backward.(i + 1).(p) || any (p + 1)) in
              any (q + 1)
        in
        if extendable then backward.(i).(q) <- true
    done
  done;
  Array.init k (fun i ->
      let rec any q =
        q < m && ((forward.(i).(q) && backward.(i).(q)) || any (q + 1))
      in
      any 0)

let chain_feasibility t (c : Plan.chain) encoding =
  Bounded_cache.find_or_add t.chain_cache
    (c.Plan.anchored, c.Plan.steps, encoding)
    (fun (anchored, steps, encoding) ->
      chain_feasibility_uncached t ~anchored ~steps encoding)

let axis_on_path t ~encoding ~child ~anc ~desc =
  Bounded_cache.find_or_add t.rel_cache (encoding, child, anc, desc)
    (fun (encoding, child, anc, desc) ->
      Encoding_table.axis_holds
        (Summary.encoding_table t.summary)
        ~encoding
        ~axis:(if child then `Child else `Descendant)
        ~anc ~desc)

(* Does the tag relation hold on some path of the descendant-side pid? *)
let rel_ok t ~axis ~anc ~desc pid =
  let child =
    match (axis : Pattern.axis) with Child -> true | Descendant -> false
  in
  let exception Yes in
  try
    Bitvec.iter_set_bits pid (fun bit ->
        if axis_on_path t ~encoding:(bit + 1) ~child ~anc ~desc then raise Yes);
    false
  with Yes -> true

(* Execute a compiled join spec (the chain/edge extraction happened at
   Plan compile time). *)
let run_uncached t (spec : Plan.join_spec) =
  let nodes =
    Array.map
      (fun (n : Plan.jnode) ->
        {
          tag = n.Plan.tag;
          position = n.Plan.position;
          row = Array.of_list (Summary.tag_pids t.summary n.Plan.tag);
        })
      spec.Plan.nodes
  in
  (* Chain pruning: a pid can label a witness of chain node i only if
     the entire chain embeds into one of the pid's path types with
     node i somewhere on it. *)
  if t.chain_pruning then
    List.iter
      (fun (chain : Plan.chain) ->
        List.iteri
          (fun i id ->
            let node = nodes.(id) in
            let before = Array.length node.row in
            node.row <-
              Array.of_list
                (List.filter
                   (fun (pid, _) ->
                     let exception Yes in
                     try
                       Bitvec.iter_set_bits pid (fun bit ->
                           if (chain_feasibility t chain (bit + 1)).(i) then
                             raise Yes);
                       false
                     with Yes -> true)
                   (Array.to_list node.row));
            Counters.add c_chain_pruned (before - Array.length node.row))
          chain.Plan.node_ids)
      spec.Plan.chains;
  (* Anchor: a Child first step means "child of the virtual document
     node", i.e. the document root itself: only the root's pid (the
     all-paths vector) on a matching tag can survive. *)
  (match spec.Plan.first_axis with
  | Pattern.Descendant -> ()
  | Pattern.Child ->
      let root_pid = Summary.root_pid t.summary in
      let head = nodes.(0) in
      let before = Array.length head.row in
      head.row <-
        Array.of_list
          (List.filter
             (fun (pid, _) -> Bitvec.equal pid root_pid)
             (Array.to_list head.row));
      Counters.add c_anchor_pruned (before - Array.length head.row));
  (* Fixpoint pruning over edges. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Plan.jedge) ->
        let x = nodes.(e.Plan.parent) and y = nodes.(e.Plan.child) in
        (* Precompute the tag-relation flag per descendant-side pid. *)
        let y_rel =
          Array.map
            (fun (pid, _) -> rel_ok t ~axis:e.Plan.axis ~anc:x.tag ~desc:y.tag pid)
            y.row
        in
        let keep_y =
          Array.mapi
            (fun i (py, _) ->
              y_rel.(i)
              && Array.exists (fun (px, _) -> Bitvec.contains_or_equal px py) x.row)
            y.row
        in
        let keep_x =
          Array.map
            (fun (px, _) ->
              Array.exists
                (fun i -> keep_y.(i) && Bitvec.contains_or_equal px (fst y.row.(i)))
                (Array.init (Array.length y.row) Fun.id))
            x.row
        in
        let filter node keep =
          let kept = ref [] in
          Array.iteri (fun i e -> if keep.(i) then kept := e :: !kept) node.row;
          let kept = Array.of_list (List.rev !kept) in
          if Array.length kept <> Array.length node.row then begin
            Counters.add c_fixpoint_pruned
              (Array.length node.row - Array.length kept);
            node.row <- kept;
            changed := true
          end
        in
        filter y keep_y;
        filter x keep_x)
      spec.Plan.edges
  done;
  { nodes }

let exec t (spec : Plan.join_spec) =
  match Bounded_cache.find_opt t.run_cache spec.Plan.shape with
  | Some r -> r
  | None ->
      let r = Counters.time t_run (fun () -> run_uncached t spec) in
      Bounded_cache.add t.run_cache spec.Plan.shape r;
      r

let run t shape =
  match Bounded_cache.find_opt t.run_cache shape with
  | Some r -> r
  | None ->
      let r =
        Counters.time t_run (fun () -> run_uncached t (Plan.join_of_shape shape))
      in
      Bounded_cache.add t.run_cache shape r;
      r

let find result position =
  let found = ref None in
  Array.iter
    (fun n -> if n.position = position then found := Some n)
    result.nodes;
  match !found with
  | Some n -> n
  | None -> invalid_arg "Path_join: position not in the joined shape"

let pids result position = Array.to_list (find result position).row

let frequency result position =
  Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 (find result position).row
