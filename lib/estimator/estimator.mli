(** Selectivity estimation for the full query fragment (paper
    Sections 4 and 5) — the execution half of the compile-then-execute
    engine.

    Every query is first compiled ({!Xpest_plan.Plan.compile}) into a
    summary-independent plan — decomposed chains, join spec, and the
    equation tag picked at compile time — then executed here against
    one summary.  Compiled plans are memoized per estimator in a
    bounded LRU ({!Xpest_plan.Plan_cache}).

    - [Theorem_4_1]: simple queries, and branch queries with a trunk
      target — the joined frequency is the selectivity.
    - [Equation_2]: branch/tail targets via the precompiled simple
      query Q' under the Node Independence Assumption.
    - [Equation_3] / [Equation_4]: sibling-axis order targets under
      the Node Order Uniformity and Node Containment Uniformity
      Assumptions, reading the o-histogram for the sibling heads.
    - [Equation_5]: trunk targets of order queries (a min over upper
      bounds).
    - [Conversion_5_3]: [following] / [preceding] axes, converted into
      sets of sibling-axis queries along the encoding-table gap
      between the trunk tag and the target head (paper Example 5.3),
      summing the per-conversion estimates. *)

type t

val create_plan_cache :
  ?capacity:int ->
  ?policy:Xpest_util.Bounded_cache.policy ->
  ?synchronized:bool ->
  unit ->
  (Xpest_xpath.Pattern.t, Xpest_plan.Plan.t) Xpest_plan.Plan_cache.t
(** A compiled-plan cache wired to the estimator's plan-cache
    hit/miss/evict counters.  Plans are summary-independent, so one
    cache can be shared by many estimators ([create ~plans]): a pool
    serving several summaries then compiles each distinct query once
    (the catalog's router does exactly this).  [policy] (default
    [Lru]) picks the replacement policy.  [synchronized] (default
    false) makes the cache safe to share across domains — required
    when the owning router runs parallel batches.  Default capacity
    {!Xpest_plan.Plan_cache.default_capacity}. *)

val create :
  ?chain_pruning:bool ->
  ?config:Xpest_plan.Cache_config.t ->
  ?plans:(Xpest_xpath.Pattern.t, Xpest_plan.Plan.t) Xpest_plan.Plan_cache.t ->
  Xpest_synopsis.Summary.t ->
  t
(** Estimation caches (compiled plans, tag relationships, chain
    feasibility, join results) persist across queries.
    [chain_pruning] is forwarded to {!Path_join.create}; [config]
    gives each cache its own capacity (default
    {!Xpest_plan.Cache_config.default}).  [plans] substitutes an
    externally owned compiled-plan cache (see {!create_plan_cache});
    when given, [config.plan] is ignored — capacity was fixed by the
    cache's owner. *)

val summary : t -> Xpest_synopsis.Summary.t

val cache_stats : t -> (string * Xpest_plan.Plan_cache.stats) list
(** Working-set report of the four engine caches, as
    [("plan" | "rel" | "chain" | "run", stats)] — capacity, current
    and peak occupancy, evictions.  Tracked unconditionally. *)

val plan_of : t -> Xpest_xpath.Pattern.t -> Xpest_plan.Plan.t
(** The compiled plan the estimator will execute for this query,
    memoized in the bounded plan cache. *)

val estimate : t -> Xpest_xpath.Pattern.t -> float
(** Estimated selectivity of the pattern's target node.  Always
    non-negative and finite; 0 when the join empties a required node
    or a ratio denominator vanishes.  Clamps of non-finite or negative
    intermediates are counted under [estimator.guard_clamped] and
    surfaced in {!explain} derivations.

    {b Invariant.}  The executor's internal [Invalid_argument] raises
    (equation dispatch on a shape the plan cannot carry, Conversion
    5.3 applied to a sibling axis, [Path_join] position lookups) are
    unreachable when executing a plan compiled from the same pattern —
    [Plan.compile] decides the equation from the shape that the
    executor then matches on.  They survive as IR-corruption guards;
    {!try_estimate} additionally demotes any such escape to
    [Error (Internal _)], so the serving path cannot crash even if
    the invariant is ever violated. *)

val estimate_position : t -> Xpest_xpath.Pattern.t -> Xpest_xpath.Pattern.position -> float
(** Estimate for an arbitrary node of the pattern (ignoring the
    pattern's own target designation).
    @raise Invalid_argument if the position is not in the pattern. *)

val estimate_many :
  ?pool:Xpest_util.Domain_pool.t ->
  t ->
  Xpest_xpath.Pattern.t array ->
  float array
(** Batched estimation: compile, dedupe structurally identical
    queries, execute each distinct plan once, and fan the result back
    out.  [estimate_many t qs.(i)] is bit-identical to
    [estimate t qs.(i)] for every [i]; duplicates reuse the already
    computed float, and distinct queries sharing sub-shapes share
    joins through the bounded run cache.

    With [pool] (of size > 1), the distinct plans are executed across
    the pool's domains: dedupe and compilation stay in the caller (in
    input order, so a shared plan cache sees the sequential trace),
    the index range of distinct plans is split into deterministic
    contiguous chunks, and every worker past the first runs on a cold
    sibling executor over the same summary.  {b Bit-identity holds}:
    results equal the sequential ones float-for-float, in input order,
    for any pool size — estimates are deterministic functions of
    (summary, plan), never of cache state.  Omitting [pool] (or a pool
    of size 1) is exactly the sequential path.

    An empty batch is a strict no-op — no counters bumped, no pool
    activity, [[||]] back — so serving-pipeline stages may re-enter
    with empty groups without leaving a trace (same for
    {!try_estimate_many}). *)

val try_estimate :
  t -> Xpest_xpath.Pattern.t -> (float, Xpest_util.Xpest_error.t) result
(** {!estimate} with the engine's exceptions demoted to
    [Error (Internal _)].  On [Ok] the float is bit-identical to
    {!estimate}.  The raising entry points treat an escape as a
    programmer error; the serving path treats it as a per-query
    failure to isolate — this is the isolating form. *)

val try_estimate_many :
  ?pool:Xpest_util.Domain_pool.t ->
  t ->
  Xpest_xpath.Pattern.t array ->
  (float, Xpest_util.Xpest_error.t) result array
(** Batched {!try_estimate}: the fast compile-dedupe-execute pass when
    every query is healthy, falling back to per-query isolation (same
    floats, by the {!estimate_many} contract) when one poisons the
    batch.  Never raises; results are in input order.  [pool] is
    forwarded to {!estimate_many}; the poisoned-batch fallback is
    always sequential, so per-query [Error]s are deterministic. *)

type explanation = {
  value : float;  (** same value [estimate] returns *)
  derivation : string list;
      (** one human-readable line per estimation step: which theorem /
          equation fired and with which intermediate quantities,
          including any guard clamps *)
}

val explain : t -> Xpest_xpath.Pattern.t -> explanation
(** Like {!estimate} but records the derivation.  Not reentrant: one
    [explain] at a time per estimator. *)
