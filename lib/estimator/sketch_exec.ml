module Sketch = Xpest_synopsis.Sketch
module Xsketch = Xpest_baseline.Xsketch
module Plan = Xpest_plan.Plan

type t = { xs : Xsketch.t }

let create sketch = { xs = Xsketch.of_export (Sketch.export sketch) }
let estimate t pattern = Xsketch.estimate t.xs pattern
let estimate_plan t plan = Xsketch.estimate t.xs (Plan.pattern plan)
