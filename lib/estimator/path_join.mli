(** The path (id) join (paper Section 4) — the execution half of the
    estimation engine.

    Given a compiled join spec ({!Xpest_plan.Plan.join_spec}), every
    query node starts with the full pid row of its tag from the
    p-histogram.  Pids are then pruned to a fixpoint: a pid survives
    an adjacent query edge (X, axis, Y) only if it has a partner on
    the other side such that (a) the partner relation [Pid_X ⊒ Pid_Y]
    holds (path-id containment, Section 2) and (b) the two tags stand
    in the axis's relation (parent-child adjacency for [/], ancestor
    order for [//]) on at least one shared root-to-leaf path.  Because
    [Pid_Y ⊆ Pid_X], the shared paths are exactly [Pid_Y]'s bits, so
    (b) only depends on the descendant-side pid; the implementation
    precomputes it per pid.

    An anchored head step ([/n1] from the document node) keeps only
    the document root's pid on a matching tag.

    The chain/edge extraction lives in the compiler
    ({!Xpest_plan.Plan.join_of_shape}); this module only executes
    specs against a summary, memoizing results in a bounded LRU
    ({!Xpest_plan.Plan_cache}) keyed on the spec's shape. *)

type t
(** Join machinery for one summary; holds the bounded tag-relationship,
    chain-feasibility and join-result caches shared across queries. *)

val create :
  ?chain_pruning:bool ->
  ?config:Xpest_plan.Cache_config.t ->
  Xpest_synopsis.Summary.t ->
  t
(** [chain_pruning] (default true) additionally prunes each node's
    pids by full-chain embeddability into the pid's path types before
    the pairwise fixpoint — see DESIGN.md "known deviations"; pass
    [false] to reproduce the paper's literal pairwise join (the A2
    ablation).  [config] bounds each of the three LRU caches
    individually (default {!Xpest_plan.Cache_config.default}: 4096
    entries each). *)

val cache_stats : t -> (string * Xpest_plan.Plan_cache.stats) list
(** Working-set report of the three join caches, as
    [("rel" | "chain" | "run", stats)]. *)

type result

val exec : t -> Xpest_plan.Plan.join_spec -> result
(** Runs a precompiled join spec to fixpoint, memoized on the spec's
    shape. *)

val run : t -> Xpest_xpath.Pattern.shape -> result
(** [run t shape] = [exec t (Plan.join_of_shape shape)], compiling
    only on a cache miss.  [Ordered] shapes are joined through their
    order-free counterpart (order axes do not constrain pids). *)

val pids :
  result -> Xpest_xpath.Pattern.position -> (Xpest_util.Bitvec.t * float) list
(** Surviving pids of a query node with their frequency estimates.
    For [Ordered] shapes, use the original positions ([In_first] /
    [In_second]); they are translated internally.
    @raise Invalid_argument if the position is not in the shape. *)

val frequency : result -> Xpest_xpath.Pattern.position -> float
(** [f_Q(n)]: the summed frequency of the surviving pids. *)
