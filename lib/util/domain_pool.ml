(* A fixed-size domain pool with a shared job queue.

   Determinism contract: run_all only returns after every submitted
   job finished, and jobs write to disjoint slots — so no matter which
   domain runs which job, the observable result is the same.  The
   calling domain participates: it drains the queue alongside the
   workers instead of blocking, which both saves one domain and makes
   a size-1 pool exactly the inline sequential path. *)

(* Observability (process-global, atomic — see Counters): how often
   the pool is used and how much work flows through it. *)
let c_calls = Counters.create "domain_pool.calls"
let c_jobs = Counters.create "domain_pool.jobs"

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;  (* guarded by [mutex] *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable stopping : bool;  (* guarded by [mutex] *)
  mutable terminated : bool;  (* guarded by [mutex]: workers joined *)
}

let max_domains = 64

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.mutex;
          Some job
      | None ->
          if t.stopping then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.work_ready t.mutex;
            take ()
          end
    in
    match take () with
    | None -> ()
    | Some job ->
        (* jobs are wrapped by run_all and never raise *)
        job ();
        next ()
  in
  next ()

let create ?(domains = Domain.recommended_domain_count ()) () =
  if domains < 1 || domains > max_domains then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be in [1, %d]"
         max_domains);
  let t =
    {
      size = domains;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      stopping = false;
      terminated = false;
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    Mutex.lock t.mutex;
    t.terminated <- true;
    Mutex.unlock t.mutex
  end

let stopped t =
  Mutex.lock t.mutex;
  let s = t.terminated in
  Mutex.unlock t.mutex;
  s

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Fire-and-forget submission: the promise layer (Loader_pool) wraps
   its jobs so they never raise, which keeps worker_loop's no-raise
   assumption intact. *)
let async t job =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.async: pool is shut down"
  end;
  Counters.incr c_jobs;
  Queue.add job t.queue;
  Condition.signal t.work_ready;
  Mutex.unlock t.mutex

let try_run_one t =
  Mutex.lock t.mutex;
  let job = Queue.take_opt t.queue in
  Mutex.unlock t.mutex;
  match job with
  | Some job ->
      job ();
      true
  | None -> false

let run_all t jobs =
  let n = Array.length jobs in
  if n = 0 then ()
  else begin
    Counters.incr c_calls;
    Counters.add c_jobs n;
    if t.size = 1 || n = 1 then Array.iter (fun job -> job ()) jobs
    else begin
      (* Per-call completion latch: jobs decrement [remaining] under
         [done_mutex]; the caller waits for zero.  Exceptions are
         captured (first wins) and re-raised only after the latch
         opens, so every job has run to completion either way. *)
      let remaining = ref n in
      let first_exn = ref None in
      let done_mutex = Mutex.create () in
      let all_done = Condition.create () in
      let wrap job () =
        let escaped = (try job (); None with e -> Some e) in
        Mutex.lock done_mutex;
        (match escaped with
        | Some e when !first_exn = None -> first_exn := Some e
        | Some _ | None -> ());
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock done_mutex
      in
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        invalid_arg "Domain_pool.run_all: pool is shut down"
      end;
      Array.iter (fun job -> Queue.add (wrap job) t.queue) jobs;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: drain whatever the spawned
         domains have not claimed yet *)
      let rec drain () =
        Mutex.lock t.mutex;
        let job = Queue.take_opt t.queue in
        Mutex.unlock t.mutex;
        match job with
        | Some job ->
            job ();
            drain ()
        | None -> ()
      in
      drain ();
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex;
      match !first_exn with Some e -> raise e | None -> ()
    end
  end

let parallel_chunks t ~n f =
  if n > 0 then begin
    let parts = min t.size n in
    let base = n / parts and extra = n mod parts in
    let jobs =
      Array.init parts (fun chunk ->
          let lo = (chunk * base) + min chunk extra in
          let hi = lo + base + if chunk < extra then 1 else 0 in
          fun () -> f ~chunk ~lo ~hi)
    in
    run_all t jobs
  end
