(* Process-wide named counters and wall-clock timers.

   Instrumentation sites create their counters once at module
   initialization and bump them unconditionally cheaply: a bump is a
   single flag test plus an atomic fetch-and-add, so leaving the
   counters disabled (the default) costs one predictable branch per
   site.  The harness enables them around a run and reads a snapshot
   after.

   Domain safety: counts are [Atomic.t]s and timers accumulate under a
   per-timer mutex, so increments racing from the batch paths' worker
   domains are never lost or torn.  The registries themselves are only
   mutated by [create]/[create_timer], which run at module
   initialization — before any worker domain exists. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type t = { cname : string; count : int Atomic.t }

type timer = {
  tname : string;
  tlock : Mutex.t;
  mutable calls : int;  (* guarded by [tlock] *)
  mutable seconds : float;  (* guarded by [tlock] *)
}

(* Registries, in creation order; snapshots sort by name. *)
let all_counters : t list ref = ref []
let all_timers : timer list ref = ref []

let create name =
  let c = { cname = name; count = Atomic.make 0 } in
  all_counters := c :: !all_counters;
  c

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.count 1)
let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.count n)
let name c = c.cname
let value c = Atomic.get c.count

let create_timer name =
  let t = { tname = name; tlock = Mutex.create (); calls = 0; seconds = 0.0 } in
  all_timers := t :: !all_timers;
  t

let record t seconds =
  if Atomic.get enabled_flag then begin
    Mutex.lock t.tlock;
    t.calls <- t.calls + 1;
    t.seconds <- t.seconds +. seconds;
    Mutex.unlock t.tlock
  end

let time t f =
  if Atomic.get enabled_flag then begin
    let start = Unix.gettimeofday () in
    let finish () = record t (Unix.gettimeofday () -. start) in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
  else f ()

let timer_name t = t.tname
let timer_calls t = t.calls
let timer_seconds t = t.seconds

let reset () =
  List.iter (fun c -> Atomic.set c.count 0) !all_counters;
  List.iter
    (fun t ->
      Mutex.lock t.tlock;
      t.calls <- 0;
      t.seconds <- 0.0;
      Mutex.unlock t.tlock)
    !all_timers

(* Snapshots capture every registered counter (zeroes included) so a
   later diff can attribute increments to the work done in between.
   Counters are process-global: the diff is only meaningful when the
   measured work ran sequentially between the two snapshots. *)
type snapshot = (string * int) list

let snapshot () = List.map (fun c -> (c.cname, Atomic.get c.count)) !all_counters

let delta_between before after =
  List.filter_map
    (fun (name, v_after) ->
      let v_before =
        match List.assoc_opt name before with Some v -> v | None -> 0
      in
      if v_after - v_before <> 0 then Some (name, v_after - v_before) else None)
    after
  |> List.sort compare

let counters () =
  List.filter_map
    (fun c ->
      let v = Atomic.get c.count in
      if v > 0 then Some (c.cname, v) else None)
    !all_counters
  |> List.sort compare

let timers () =
  List.filter_map
    (fun t ->
      if t.calls > 0 then Some (t.tname, t.calls, t.seconds) else None)
    !all_timers
  |> List.sort compare

let with_enabled f =
  let previous = Atomic.get enabled_flag in
  Atomic.set enabled_flag true;
  reset ();
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag previous) f
