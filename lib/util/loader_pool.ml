(* Futures for the catalog's load stage.

   The serving pipeline wants to start summary loads before their
   acquire turn comes up, without giving up the acquire state machine's
   single-owner ordering.  A [Loader_pool.t] is the seam: [submit]
   hands a load thunk to the pool and returns a future, [await]
   produces its outcome at the commit point.

   Two shapes, one API:

   - [blocking]: the thunk is stored and runs at the *first [await]*,
     on the awaiting domain.  Submission order is irrelevant; execution
     order is exactly await order — i.e. exactly the order the
     sequential serving loop would have run the loads in.  This is the
     bit-identity anchor: any loader, even one drawing from a shared
     order-sensitive PRNG stream, behaves as if no pipeline existed.

   - [over pool] with pool size > 1: the thunk is enqueued on the
     domain pool at submission, so distinct loads overlap each other
     and whatever the submitter does next.  Awaiting a still-pending
     future steals other queued jobs ([Domain_pool.try_run_one]) before
     parking on the cell's condition variable, so the caller is never
     idle while work exists.  [over pool] with pool size 1 degrades to
     [blocking] (a size-1 pool has no spare domain to overlap on).

   Outcome capture: the job wraps the thunk and stores [Done v] or
   [Raised e] in the cell, so pool workers never raise
   (Domain_pool.async's contract) and [await] re-raises exactly what
   the thunk raised — a raising loader is observationally identical to
   the blocking path. *)

type 'a outcome = Pending | Done of 'a | Raised of exn

type 'a cell = {
  m : Mutex.t;
  cond : Condition.t;
  mutable state : 'a outcome;  (* guarded by [m] *)
}

type 'a deferred = {
  mutable thunk : (unit -> 'a) option;
  mutable memo : 'a outcome;  (* single-owner: no lock needed *)
}

type 'a future =
  | Deferred of 'a deferred
  | Queued of Domain_pool.t * 'a cell

type t = Blocking | Pool of Domain_pool.t

let blocking = Blocking
let over pool = Pool pool

let domains = function Blocking -> 1 | Pool p -> Domain_pool.size p
let concurrent t = domains t > 1

let c_submit = Counters.create "loader_pool.submits"
let c_stolen = Counters.create "loader_pool.steals"

let submit t f =
  match t with
  | Pool pool when Domain_pool.size pool > 1 ->
      Counters.incr c_submit;
      let cell = { m = Mutex.create (); cond = Condition.create (); state = Pending } in
      Domain_pool.async pool (fun () ->
          let st = try Done (f ()) with e -> Raised e in
          Mutex.lock cell.m;
          cell.state <- st;
          Condition.broadcast cell.cond;
          Mutex.unlock cell.m);
      Queued (pool, cell)
  | Blocking | Pool _ -> Deferred { thunk = Some f; memo = Pending }

let of_outcome = function
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

let await fut =
  match fut with
  | Deferred d -> (
      match d.memo with
      | Done _ | Raised _ -> of_outcome d.memo
      | Pending ->
          (* first await runs the load, right here, right now — the
             exact moment the sequential path would have *)
          let f = Option.get d.thunk in
          d.thunk <- None;
          let st = try Done (f ()) with e -> Raised e in
          d.memo <- st;
          of_outcome st)
  | Queued (pool, cell) ->
      let pending () =
        Mutex.lock cell.m;
        let p = match cell.state with Pending -> true | _ -> false in
        Mutex.unlock cell.m;
        p
      in
      let rec help () =
        if pending () then
          if Domain_pool.try_run_one pool then begin
            Counters.incr c_stolen;
            help ()
          end
          else begin
            (* queue empty: the job is in flight on another domain *)
            Mutex.lock cell.m;
            while (match cell.state with Pending -> true | _ -> false) do
              Condition.wait cell.cond cell.m
            done;
            Mutex.unlock cell.m
          end
      in
      help ();
      of_outcome cell.state
