(* Futures for the catalog's load stage.

   The serving pipeline wants to start summary loads before their
   acquire turn comes up, without giving up the acquire state machine's
   single-owner ordering.  A [Loader_pool.t] is the seam: [submit]
   hands a load thunk to the pool and returns a future, [await]
   produces its outcome at the commit point.

   Two shapes, one API:

   - [blocking]: the thunk is stored and runs at the *first [await]*,
     on the awaiting domain.  Submission order is irrelevant; execution
     order is exactly await order — i.e. exactly the order the
     sequential serving loop would have run the loads in.  This is the
     bit-identity anchor: any loader, even one drawing from a shared
     order-sensitive PRNG stream, behaves as if no pipeline existed.

   - [over pool] with pool size > 1: the thunk is enqueued on the
     domain pool at submission, so distinct loads overlap each other
     and whatever the submitter does next.  Awaiting a still-pending
     future steals other queued jobs ([Domain_pool.try_run_one]) before
     parking on the cell's condition variable, so the caller is never
     idle while work exists.  [over pool] with pool size 1 degrades to
     [blocking] (a size-1 pool has no spare domain to overlap on).

   Outcome capture: the job wraps the thunk and stores [Done v] or
   [Raised e] in the cell, so pool workers never raise
   (Domain_pool.async's contract) and [await] re-raises exactly what
   the thunk raised — a raising loader is observationally identical to
   the blocking path.

   Shutdown discipline: Domain_pool.shutdown drains the queue, so a
   future pending at shutdown still completes and awaits normally.
   Submitting against an already shut-down pool yields a poisoned
   future whose await raises a typed [Overloaded] error — callers see
   the same error taxonomy the admission layer speaks, never a hang or
   a bare Invalid_argument from deep inside the pool.

   Await is single-shot: a future is consumed by its first [await],
   and a second [await] raises a typed [Internal] error instead of
   replaying a memoized outcome.  The pipeline awaits each prefetched
   load exactly once at its commit point; a double await is a caller
   bug (two owners for one load), and silently replaying the first
   outcome would mask it — in particular a replayed loader result
   would not re-draw from a keyed fault injector, so the replay could
   diverge from what a real second load would have seen.  ([Poisoned]
   futures stay repeatable: poisoning is a property of the future, not
   an outcome that can go stale.) *)

type 'a outcome = Pending | Done of 'a | Raised of exn

type 'a cell = {
  m : Mutex.t;
  cond : Condition.t;
  mutable state : 'a outcome;  (* guarded by [m] *)
}

type 'a deferred = {
  mutable thunk : (unit -> 'a) option;
      (* single-owner: no lock needed; [None] = consumed *)
}

type 'a future =
  | Deferred of 'a deferred
  | Queued of { pool : Domain_pool.t; cell : 'a cell; mutable consumed : bool }
  | Poisoned of exn

type t = Blocking | Pool of { pool : Domain_pool.t; pending : int Atomic.t }

let blocking = Blocking
let over pool = Pool { pool; pending = Atomic.make 0 }

let domains = function
  | Blocking -> 1
  | Pool { pool; _ } -> Domain_pool.size pool

let concurrent t = domains t > 1

(* Submitted-but-not-yet-completed queued jobs — the pool's live queue
   depth as seen from the submitting domain.  Observability only: the
   admission layer keeps its own deterministic ledger (this number
   depends on worker scheduling). *)
let pending = function
  | Blocking -> 0
  | Pool { pending; _ } -> Atomic.get pending

let c_submit = Counters.create "loader_pool.submits"
let c_stolen = Counters.create "loader_pool.steals"
let c_poisoned = Counters.create "loader_pool.poisoned"

let shutdown_error () =
  Xpest_error.Error (Xpest_error.Overloaded "loader pool is shut down")

let submit t f =
  match t with
  | Pool { pool; pending } when Domain_pool.size pool > 1 -> (
      let cell = { m = Mutex.create (); cond = Condition.create (); state = Pending } in
      Atomic.incr pending;
      let job () =
        let st = try Done (f ()) with e -> Raised e in
        Mutex.lock cell.m;
        cell.state <- st;
        Condition.broadcast cell.cond;
        Mutex.unlock cell.m;
        Atomic.decr pending
      in
      match Domain_pool.async pool job with
      | () ->
          Counters.incr c_submit;
          Queued { pool; cell; consumed = false }
      | exception Invalid_argument _ ->
          (* the pool refused the job: it was never queued *)
          Atomic.decr pending;
          Counters.incr c_poisoned;
          Poisoned (shutdown_error ()))
  | Blocking | Pool _ -> Deferred { thunk = Some f }

let of_outcome = function
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

let consumed_error () =
  Xpest_error.Error
    (Xpest_error.Internal
       "Loader_pool.await: future already consumed (await is single-shot)")

let await fut =
  match fut with
  | Poisoned e -> raise e
  | Deferred d -> (
      match d.thunk with
      | None -> raise (consumed_error ())
      | Some f ->
          (* the single await runs the load, right here, right now —
             the exact moment the sequential path would have; whatever
             [f] raises propagates as-is *)
          d.thunk <- None;
          f ())
  | Queued q ->
      if q.consumed then raise (consumed_error ());
      let cell = q.cell in
      let pending () =
        Mutex.lock cell.m;
        let p = match cell.state with Pending -> true | _ -> false in
        Mutex.unlock cell.m;
        p
      in
      let rec help () =
        if pending () then
          if Domain_pool.try_run_one q.pool then begin
            Counters.incr c_stolen;
            help ()
          end
          else if Domain_pool.stopped q.pool then begin
            (* workers joined and the queue is dry: nothing can ever
               complete this future.  Shutdown drains the queue, so
               this is unreachable unless a job was lost — turn that
               would-be hang into a typed error. *)
            if pending () then raise (shutdown_error ())
          end
          else begin
            (* queue empty: the job is in flight on another domain *)
            Mutex.lock cell.m;
            while (match cell.state with Pending -> true | _ -> false) do
              Condition.wait cell.cond cell.m
            done;
            Mutex.unlock cell.m
          end
      in
      help ();
      q.consumed <- true;
      of_outcome cell.state
