(** Generic bounded cache — the single eviction core behind the
    engine's caches.

    One hash table over intrusive doubly-linked recency lists, a
    pluggable per-entry cost function, and a capacity expressed in
    cost units (entries with the default unit cost, bytes with e.g.
    [Summary.size_bytes]).  All operations are O(1) amortized.

    Two replacement policies:

    - {!Lru}: single recency list; lookups promote to most-recent,
      inserting past capacity evicts the least-recent.  With unit cost
      this is bit-identical to the historical [Plan_cache] behaviour.
    - {!Segmented}: scan-resistant segmented LRU (2Q/SLRU family).
      New entries are probationary; a hit promotes to the protected
      list (2Q-style promotion on the second touch).  Eviction
      pressure hits the probationary tail first, so a one-pass scan
      over cold keys cannot displace the protected working set.  The
      protected list is bounded to [protected_ratio] of capacity;
      overflow demotes its tail back to probationary (not an
      eviction — the entry stays resident).

    Pinning: {!pin} marks a key never-evictable.  Pins are sticky on
    the key — pinning an absent key takes effect on its next insert
    and survives {!remove}/{!clear}.  Pinned entries still count
    toward the budget.  If an insert finds nothing evictable
    (everything pinned, or a single entry exceeding the budget) it is
    admitted over budget rather than rejected; {!stats} exposes the
    overshoot via [s_cost].

    Hit/miss/evict observability counters are supplied by the caller
    (created once at its module initialization, see
    {!Xpest_util.Counters}); caches themselves are per-estimator
    instances, so creating counters here would duplicate registry
    entries.  Lifetime hit/miss/eviction totals are additionally
    tracked unconditionally in {!stats}.

    A cache created with [~synchronized:true] is safe to share across
    domains: every operation runs under one internal mutex, contended
    acquisitions are counted ({!contention}), and {!find_or_add}
    computes misses outside the lock — two domains missing the same
    key may both compute, the first insert wins, and the duplicate is
    counted ({!races}).  That is only sound when the compute function
    is a pure function of the key (plan compilation is), so both
    computed values are interchangeable.  The default is
    unsynchronized: a single-domain cache pays no locking at all. *)

type policy =
  | Lru
  | Segmented of { protected_ratio : float }
      (** [protected_ratio] is the fraction of the capacity the
          protected segment may hold, in (0, 1). *)

val default_protected_ratio : float
(** 0.8 — documented in DESIGN.md ("Memory model & eviction"). *)

val segmented : policy
(** [Segmented { protected_ratio = default_protected_ratio }]. *)

type ('k, 'v) t

val default_capacity : int
(** 4096 cost units — documented in DESIGN.md ("Estimation engine"). *)

val create :
  ?capacity:int ->
  ?policy:policy ->
  ?cost:('k -> 'v -> int) ->
  ?synchronized:bool ->
  ?hit:Counters.t ->
  ?miss:Counters.t ->
  ?evict:Counters.t ->
  unit ->
  ('k, 'v) t
(** [policy] defaults to {!Lru}, [cost] to [fun _ _ -> 1] (capacity in
    entries), [synchronized] to [false].  Cost results are clamped to
    a minimum of 1 so a byte-costed cache still bounds its entry
    count.
    @raise Invalid_argument if [capacity < 1] or [protected_ratio] is
    outside (0, 1). *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val cost : ('k, 'v) t -> int
(** Sum of resident entry costs; at most [capacity] unless pins or a
    single over-budget entry forced an overshoot. *)

val synchronized : ('k, 'v) t -> bool

val contention : ('k, 'v) t -> int
(** Lock acquisitions that found the mutex held and had to wait
    (always 0 for unsynchronized caches).  A cheap congestion signal
    for the pool-shared caches, reported in the parallel bench
    section. *)

val races : ('k, 'v) t -> int
(** {!find_or_add} calls whose computed value was discarded because
    another domain inserted the key first.  Bounds the duplicate work
    the compute-outside-the-lock design admits. *)

val evictions : ('k, 'v) t -> int
(** Total evictions over the cache's lifetime (counted even when the
    global counter switch is off).  Demotions from protected to
    probationary are not evictions. *)

val peak : ('k, 'v) t -> int
(** Largest entry count the cache ever reached — the working-set size
    a capacity must cover to avoid evictions (reported per cache in
    [BENCH_engine.json]). *)

type stats = {
  s_capacity : int;  (** capacity in cost units *)
  s_length : int;  (** resident entries *)
  s_peak : int;  (** largest entry count ever *)
  s_evictions : int;  (** lifetime evictions *)
  s_cost : int;  (** resident cost (= entries under unit cost) *)
  s_peak_cost : int;  (** largest resident cost ever *)
  s_hits : int;  (** lifetime lookup hits *)
  s_misses : int;  (** lifetime lookup misses *)
  s_probationary : int;  (** entries in the probationary segment *)
  s_protected : int;  (** entries in the protected segment (0 under Lru) *)
  s_pinned : int;  (** resident entries currently pinned *)
}
(** One cache's working-set report; all fields are tracked
    unconditionally (no counter enablement needed). *)

val stats : ('k, 'v) t -> stats

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Bumps the hit/miss counter and promotes on hit (to most-recent
    under {!Lru}; probationary entries to protected under
    {!Segmented}). *)

val mem : ('k, 'v) t -> 'k -> bool
(** Residency probe; no promotion, no counters. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts as probationary most-recently-used (replacing an existing
    entry keeps its segment), evicting unpinned entries — probationary
    tail first — until the newcomer fits the budget. *)

val find_or_add : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v

val remove : ('k, 'v) t -> 'k -> unit
(** Drop one entry (no-op if absent).  Deliberate invalidation — the
    catalog dropping a resident summary it no longer trusts — so it
    does not count as an eviction.  Does not forget a pin. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry; pins survive (a pin is policy, not content). *)

val pin : ('k, 'v) t -> 'k -> unit
(** Mark [key] never-evictable (sticky; applies to the current and any
    future entry under the key). *)

val unpin : ('k, 'v) t -> 'k -> unit

val pinned : ('k, 'v) t -> 'k -> bool

val keys_by_recency : ('k, 'v) t -> 'k list
(** Keys from most- to least-recently used; under {!Segmented} the
    protected segment first (MRU to LRU), then probationary
    (test/debug aid — the reverse of eviction order). *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Fold over resident entries in unspecified order (snapshot under
    the cache lock when synchronized). *)
