(** A fixed-size pool of OCaml 5 domains for data-parallel batch work.

    The estimation engine's batch paths ({!Xpest_estimator} and the
    catalog's routed batches) fan independent work units — per-query
    plan executions, per-key query groups — across the pool's domains.
    The pool is {e deterministic by construction}: callers submit a
    fixed array of jobs (or a fixed chunking of an index range), every
    job writes only to slots it owns, and {!run_all} returns only after
    every job finished — so results never depend on scheduling order,
    which is what lets the parallel batch paths keep their bit-identity
    contract against the sequential ones.

    A pool of size [n] holds [n - 1] spawned worker domains; the
    calling domain is the [n]-th worker — it drains the job queue
    itself while waiting, so a pool of size 1 spawns nothing and runs
    everything inline (the sequential path with zero overhead).

    The pool is meant to be driven by {e one} caller at a time (the
    batch entry points take it as an argument per call); submitting
    from two domains concurrently is safe but the calls serialize on
    the shared queue.  Worker domains idle on a condition variable
    between calls and cost nothing while the pool is unused.

    Always {!shutdown} a pool (or use {!with_pool}): worker domains
    are real OS threads and are only reclaimed on join. *)

type t

val max_domains : int
(** 64 — a guard well under the runtime's hard domain limit (128),
    generous for any machine this serves on. *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] total workers (default
    {!Stdlib.Domain.recommended_domain_count}, i.e. the host's cores).
    [domains - 1] domains are spawned immediately.
    @raise Invalid_argument unless [1 <= domains <= max_domains]. *)

val size : t -> int
(** Total worker count, the calling domain included. *)

val run_all : t -> (unit -> unit) array -> unit
(** Run every job to completion, using all the pool's domains (the
    caller included).  Jobs must be independent: they may share
    read-only data and thread-safe structures, and must write only to
    disjoint slots.  If any job raises, the first captured exception is
    re-raised after {e all} jobs finished (no job is abandoned
    mid-flight, so owned slots are never left half-written by a
    surviving job).  With a pool of size 1 the jobs run inline in
    array order.
    @raise Invalid_argument if the pool was shut down. *)

val parallel_chunks :
  t -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** Partition the index range [\[0, n)] into [min (size t) n] balanced
    contiguous chunks and {!run_all} one job per chunk; the callback
    receives its chunk number and half-open range.  The chunking
    depends only on [n] and the pool size, never on scheduling — the
    deterministic-partition primitive the batch paths build on. *)

val async : t -> (unit -> unit) -> unit
(** Enqueue one job and return immediately (no completion latch).  The
    job runs on whichever domain dequeues it first — a spawned worker,
    a concurrent {!run_all} caller draining the queue, or a
    {!try_run_one} caller.  Jobs must never raise: there is no caller
    left to receive the exception, and a raise would kill the worker
    domain.  Wrap the body ({!Xpest_util.Loader_pool} stores outcomes
    in promise cells for exactly this reason).
    @raise Invalid_argument if the pool was shut down. *)

val try_run_one : t -> bool
(** Dequeue one pending job, if any, and run it inline on the calling
    domain; [false] when the queue was empty.  This is how a caller
    blocked on an {!async} result makes progress instead of idling —
    the work-stealing half of the promise layer. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Only call between
    {!run_all}s (never while one is in flight).  Jobs already queued
    at shutdown are {e not} abandoned: workers drain the queue before
    exiting, so every {!async} job submitted before shutdown runs to
    completion. *)

val stopped : t -> bool
(** The pool has fully shut down: {!shutdown} completed and every
    worker domain is joined.  Once [true], no job can be queued or in
    flight — which is what lets {!Loader_pool.await} tell a lost
    future from one still being computed. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] (also on exceptions). *)
