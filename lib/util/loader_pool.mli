(** Futures over {!Domain_pool} — the serving pipeline's async load seam.

    The catalog's staged batch path ({!Xpest_catalog.Catalog.estimate_batch_r})
    wants to start summary loads {e before} their acquire turn comes up,
    while the acquire state machine (clock, health, eviction) stays
    single-owner and strictly ordered.  A [Loader_pool.t] is that seam:
    {!submit} registers a load thunk and returns a future; {!await}
    produces its outcome at the in-order commit point.

    Two shapes behind one API:

    - {!blocking} (and [over pool] when the pool has size 1): the thunk
      is merely stored and runs at the {e first await}, on the awaiting
      domain.  Since the pipeline awaits in acquire order, loads
      execute exactly where the sequential loop would have run them —
      bit-identical for {e any} loader, including loaders drawing from
      a shared order-sensitive fault-injection PRNG stream.

    - [over pool] with pool size > 1: the thunk is enqueued on the
      domain pool at submission, so distinct loads overlap each other
      and the submitter's own work.  This requires the thunk to be
      thread-safe and {e per-key deterministic} (its outcome must not
      depend on cross-key execution order); the catalog documents which
      loaders qualify.  Awaiting a still-pending future work-steals
      other queued jobs before parking, so the caller never idles while
      the queue is non-empty.

    Exception transparency: a thunk that raises has the exception
    captured in the future and re-raised by {!await} on the awaiting
    domain — pool workers never see it, and the awaiting caller
    observes exactly what a direct call would have raised. *)

type t
(** A load-execution policy: {!blocking} or {!over} a domain pool. *)

type 'a future
(** The pending/complete outcome of one submitted thunk. *)

val blocking : t
(** Loads run lazily at first {!await}, on the awaiting domain, in
    await order — the sequential serving path, packaged as a policy. *)

val over : Domain_pool.t -> t
(** Loads run on [pool]'s domains, submitted eagerly — unless the pool
    has size 1, in which case this is {!blocking} (no spare domain
    exists to overlap on). *)

val domains : t -> int
(** 1 for {!blocking}; the pool size for {!over}. *)

val concurrent : t -> bool
(** [domains t > 1] — whether {!submit} actually starts work early.
    The pipeline uses this to decide whether planning a prefetch is
    worth anything (and whether per-group metric attribution is still
    meaningful). *)

val pending : t -> int
(** Queued jobs submitted but not yet completed — the pool's live
    queue depth as seen from the submitting domain; always 0 for
    {!blocking}.  Observability only: the value depends on worker
    scheduling, so determinism-bound callers (admission control) must
    keep their own ledger rather than branch on it. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Register a thunk.  Under {!concurrent} policies it is enqueued
    immediately and must be thread-safe; otherwise nothing runs until
    {!await}.  Submitting against a pool that was already shut down
    does not raise: it returns a {e poisoned} future whose {!await}
    raises [Xpest_error.Error (Overloaded _)] — the caller sees a
    typed refusal at the commit point instead of an [Invalid_argument]
    escaping from inside the pool. *)

val await : 'a future -> 'a
(** The thunk's result: runs it now (blocking futures), or steals
    queued work then parks until done (queued futures).  Re-raises the
    thunk's exception if it raised.

    {b Single-shot:} a future is consumed by its first [await]; a
    second [await] of the same future raises
    [Xpest_error.Error (Internal _)].  The pipeline awaits each
    prefetched load exactly once at its commit point, so a double
    await is a caller bug (two owners for one load) — replaying a
    memoized outcome would mask it, and a replayed result would not
    re-draw from a keyed fault injector, so it could diverge from what
    a real second load would have seen.  Poisoned futures (submitted
    after shutdown) are the exception: their typed [Overloaded] error
    is a property of the future, not a stale outcome, and raises on
    {e every} await.

    Shutdown safety: futures pending when {!Domain_pool.shutdown} runs
    still complete (workers drain the queue before exiting) and await
    normally afterwards.  A future that provably can never complete —
    the pool is {!Domain_pool.stopped}, its queue is dry, and the
    outcome is still pending — raises
    [Xpest_error.Error (Overloaded _)] rather than parking forever. *)
