(** Deterministic fault injection behind a pluggable I/O interface.

    Every file read in the serving stack goes through an {!Io.t}; the
    chaos suites and the resilience benchmark swap the default
    filesystem reader for one wrapped by an {e injector} that, with
    configured probabilities, makes a read fail ([Sys_error]), return
    a truncated prefix, return the data with one bit flipped, or stall
    before succeeding.  The injector draws from {!Prng}
    (splitmix64), so a given [(seed, call sequence)] produces exactly
    the same fault schedule on every run — chaos tests are
    reproducible, and a successful load under injection is
    byte-identical to a fault-free load (faults are injected, never
    silently half-injected).

    With {!none} the wrapper is the identity: {!io} returns the base
    [Io.t] physically unchanged, so the disabled fault layer costs
    nothing on the hot path. *)

(** The storage interface the serving stack reads and persists files
    through. *)
module Io : sig
  type t = {
    read_file : string -> string;
    write_file : string -> string -> unit;
        (** Replace the file's contents with the payload (not atomic
            on its own — see {!atomic_write}). *)
  }

  val default : t
  (** Reads/writes the whole file with stdlib binary I/O.
      @raise Sys_error on I/O failure. *)
end

val atomic_write : ?io:Io.t -> string -> string -> unit
(** [atomic_write path data] writes [data] to [path ^ ".tmp"] (same
    directory) and atomically renames it over [path] — a crash or an
    injected {!config.write_abort} mid-write leaves the target either
    absent or byte-identical to its previous contents, never torn.  An
    aborted temp file is removed before the exception propagates.
    [io] defaults to {!Io.default}; the health/synopsis savers thread
    an injected one through here under test.
    @raise Sys_error on I/O failure (after cleaning up the temp). *)

type config = {
  seed : int;  (** PRNG seed; equal seeds give equal fault schedules *)
  read_error : float;  (** probability a read raises [Sys_error] *)
  truncate : float;  (** probability a read returns a strict prefix *)
  bit_flip : float;  (** probability a read returns one flipped bit *)
  stall : float;  (** probability a read sleeps [stall_seconds] first *)
  stall_seconds : float;
  write_abort : float;
      (** probability a write lands a strict prefix then raises
          [Sys_error] — the process "dying" mid-write.  Injected on the
          {!Io.t.write_file} seam, so only writers routed through it
          (e.g. {!atomic_write}) are exercised. *)
}

val none : config
(** All probabilities zero — the identity wrapper. *)

val uniform : seed:int -> rate:float -> config
(** Total fault probability [rate], split evenly across read errors,
    truncation and bit flips (no stalls); the profile the resilience
    benchmark and chaos suites use.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

type t

val create : config -> t
(** A fresh injector with one shared PRNG stream, consumed in call
    order: reproducible exactly when the global read order is (the
    sequential serving loop; a {!Loader_pool.blocking} pipeline).  Not
    suitable under concurrent loads — use {!create_keyed} there. *)

val create_keyed : config -> t
(** A fresh injector whose fault schedule for each read depends only on
    [(seed, path, per-path attempt index)] — never on how reads of
    {e different} paths interleave.  This is the injector to use when
    summary loads fan out on a {!Loader_pool}: as long as each path's
    own read sequence is deterministic (which the catalog's
    single-owner acquire machinery guarantees), the schedule is
    bit-reproducible at any load-domain count, and identical between
    the blocking and pipelined serving paths.  Thread-safe. *)

val config : t -> config

val injected : t -> int
(** Faults injected so far (counted unconditionally; the global
    [fault.injected] and per-kind [fault.*] counters mirror this when
    enabled). *)

val io : t -> Io.t -> Io.t
(** Wrap a base interface.  Physically the same [Io.t] when the config
    is fault-free ([== base]); otherwise each [read_file] /
    [write_file] call draws one uniform variate to pick a fault (or
    none) plus, for truncation / bit flips / write aborts, the
    variates selecting the damage site — so the schedule depends only
    on the seed and the call order.  (Writes share the read's variate
    discipline: under a keyed injector a write counts as one attempt
    of its own path; under a stream injector it consumes one draw from
    the shared stream.) *)
