module Io = struct
  type t = {
    read_file : string -> string;
    write_file : string -> string -> unit;
  }

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let write_file path data =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)

  let default = { read_file; write_file }
end

(* Crash-safe persistence: write the whole payload to a same-directory
   temp file, then atomically rename over the target — a reader (or a
   restart) sees either the old complete file or the new complete file,
   never a torn prefix.  An aborted write (crash, injected fault) is
   cleaned up and leaves the target untouched. *)
let atomic_write ?(io = Io.default) path data =
  let tmp = path ^ ".tmp" in
  (try io.Io.write_file tmp data
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Observability: one counter per fault kind plus the total the
   resilience report surfaces.  No-ops unless [Counters.set_enabled]. *)
let c_injected = Counters.create "fault.injected"
let c_read_error = Counters.create "fault.read_error"
let c_truncate = Counters.create "fault.truncate"
let c_bit_flip = Counters.create "fault.bit_flip"
let c_stall = Counters.create "fault.stall"
let c_write_abort = Counters.create "fault.write_abort"

type config = {
  seed : int;
  read_error : float;
  truncate : float;
  bit_flip : float;
  stall : float;
  stall_seconds : float;
  write_abort : float;
}

let none =
  {
    seed = 0;
    read_error = 0.0;
    truncate = 0.0;
    bit_flip = 0.0;
    stall = 0.0;
    stall_seconds = 0.0;
    write_abort = 0.0;
  }

let uniform ~seed ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Fault.uniform: rate must be in [0, 1]";
  let each = rate /. 3.0 in
  { none with seed; read_error = each; truncate = each; bit_flip = each }

let fault_free c =
  c.read_error = 0.0 && c.truncate = 0.0 && c.bit_flip = 0.0 && c.stall = 0.0
  && c.write_abort = 0.0

(* Two variate-sourcing disciplines:

   - [Stream]: one shared PRNG stream consumed in call order — the
     historical injector.  Schedules are reproducible only when the
     global read order is, which holds for the sequential serving loop
     but not once loads fan out on a loader pool.

   - [Keyed]: each read gets a fresh PRNG seeded from
     [(seed, path, per-path attempt index)].  The schedule for a path
     depends only on how many times that path was read before — a
     per-key-deterministic quantity under the catalog's single-owner
     acquire machinery — never on cross-path interleaving, so keyed
     injectors stay bit-reproducible under concurrent loads. *)
type mode =
  | Stream of Prng.t
  | Keyed of { attempts : (string, int) Hashtbl.t; m : Mutex.t }

type t = { cfg : config; mode : mode; injected : int Atomic.t }

let create cfg =
  { cfg; mode = Stream (Prng.create cfg.seed); injected = Atomic.make 0 }

let create_keyed cfg =
  {
    cfg;
    mode = Keyed { attempts = Hashtbl.create 16; m = Mutex.create () };
    injected = Atomic.make 0;
  }

let config t = t.cfg
let injected t = Atomic.get t.injected

let call_rng t path =
  match t.mode with
  | Stream rng -> rng
  | Keyed k ->
      Mutex.lock k.m;
      let n = Option.value (Hashtbl.find_opt k.attempts path) ~default:0 in
      Hashtbl.replace k.attempts path (n + 1);
      Mutex.unlock k.m;
      Prng.create (Hashtbl.hash (t.cfg.seed, path, n))

let hit t kind_counter =
  Atomic.incr t.injected;
  Counters.incr c_injected;
  Counters.incr kind_counter

let io t base =
  if fault_free t.cfg then base
  else
    let c = t.cfg in
    let read_file path =
      let rng = call_rng t path in
      (* One variate picks the fault; cumulative thresholds keep the
         stream consumption identical whichever branch fires. *)
      let u = Prng.float rng 1.0 in
      if u < c.read_error then begin
        hit t c_read_error;
        raise
          (Sys_error (Printf.sprintf "%s: injected read error" path))
      end
      else if u < c.read_error +. c.truncate then begin
        hit t c_truncate;
        let data = base.Io.read_file path in
        let n = String.length data in
        if n = 0 then data else String.sub data 0 (Prng.int rng n)
      end
      else if u < c.read_error +. c.truncate +. c.bit_flip then begin
        hit t c_bit_flip;
        let data = base.Io.read_file path in
        let n = String.length data in
        if n = 0 then data
        else begin
          let b = Bytes.of_string data in
          let pos = Prng.int rng n in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Prng.int rng 8)));
          Bytes.unsafe_to_string b
        end
      end
      else if u < c.read_error +. c.truncate +. c.bit_flip +. c.stall then begin
        hit t c_stall;
        if c.stall_seconds > 0.0 then Unix.sleepf c.stall_seconds;
        base.Io.read_file path
      end
      else base.Io.read_file path
    in
    (* Write-abort: the process "dies" mid-write — a strict prefix of
       the payload lands on disk, then the write raises.  What makes
       this worth injecting is the atomic-rename discipline
       ([atomic_write]): the torn prefix only ever hits the temp file,
       so the target must survive byte-identical.  One variate picks
       abort-or-not, a second picks the tear point. *)
    let write_file path data =
      let rng = call_rng t path in
      let u = Prng.float rng 1.0 in
      if u < c.write_abort then begin
        hit t c_write_abort;
        let n = String.length data in
        let torn = if n = 0 then 0 else Prng.int rng n in
        base.Io.write_file path (String.sub data 0 torn);
        raise (Sys_error (Printf.sprintf "%s: injected write abort" path))
      end
      else base.Io.write_file path data
    in
    { Io.read_file; write_file }
