(* Generic bounded cache: one hash table over intrusive doubly-linked
   recency lists, with a pluggable per-entry cost function and a
   capacity expressed in cost units.  This is the single eviction core
   behind the engine's caches — the compiled-plan cache, the path
   join's rel/chain/run caches and the catalog's resident summary set
   are all thin instantiations of it.

   Two replacement policies:

   - [Lru]: the classic single recency list.  Lookups promote to
     most-recent; inserting past capacity evicts from the tail.  With
     the default unit cost this is bit-identical to the historical
     [Plan_cache] behaviour (same eviction order, same counters).

   - [Segmented _]: a scan-resistant segmented LRU (2Q/SLRU family).
     New entries land in a probationary list; a hit on a probationary
     entry promotes it to the protected list (the "second touch" —
     first touch inserted it).  Eviction pressure lands on the
     probationary tail first, so a one-pass scan over many cold keys
     churns probation and never displaces the protected set.  The
     protected list is bounded to [protected_ratio] of the capacity;
     overflow demotes protected-tail entries back to probationary
     most-recent (demotion is not an eviction — the entry stays
     resident, it just becomes evictable again).

   Costs: [cost] maps an entry to a non-negative weight (clamped to a
   minimum of 1 so a byte-costed cache still bounds its entry count);
   the capacity bounds the sum of resident costs.  Inserting evicts
   unpinned entries until the newcomer fits; if nothing evictable
   remains (everything pinned, or the single newcomer exceeds the
   whole budget) the insert is admitted over budget rather than
   rejected — callers prefer an over-budget cache to a lost entry, and
   [stats] makes the overshoot visible.

   Pinning: [pin] marks a key as never-evictable.  Pins are sticky on
   the key, not the entry — pinning an absent key takes effect when it
   is next inserted, and survives [remove]/[clear] (a pin is policy,
   not content).  Pinned entries still count toward the budget and
   still move through the recency lists (a pinned protected entry can
   be demoted; it just cannot be evicted).

   Counters are passed in by the instrumentation site (created once at
   its module initialization) rather than created here: caches are
   instantiated per estimator, and registering fresh counters per
   instance would grow the global registry and duplicate report rows.

   A cache created with [~synchronized:true] guards every operation
   with one mutex so it can be shared across domains (the catalog's
   pool-shared plan cache under parallel batches).  Lock acquisitions
   that had to wait are counted ([contention]); [find_or_add] computes
   misses OUTSIDE the lock, so a slow compute never serializes the
   other domains — the price is a bounded duplicate-compute window
   when two domains miss the same key at once ([races], first writer
   wins).  The default is unsynchronized: per-estimator caches are
   owned by one domain and pay nothing. *)

type policy = Lru | Segmented of { protected_ratio : float }

let default_protected_ratio = 0.8
let segmented = Segmented { protected_ratio = default_protected_ratio }

type segment = Probationary | Protected

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  cost : int;
  mutable seg : segment;  (* which recency list the node is on *)
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

(* One intrusive recency list; [Lru] caches use only [prob]. *)
type ('k, 'v) seglist = {
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable lcost : int;  (* sum of resident node costs *)
  mutable lcount : int;  (* resident node count *)
}

type ('k, 'v) t = {
  capacity : int;  (* in cost units *)
  policy : policy;
  protected_capacity : int;  (* cost budget of the protected list; 0 under Lru *)
  cost_fn : 'k -> 'v -> int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  prob : ('k, 'v) seglist;
  prot : ('k, 'v) seglist;
  pins : ('k, unit) Hashtbl.t;
  hit : Counters.t option;
  miss : Counters.t option;
  evict : Counters.t option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable peak : int;  (* largest entry count ever reached *)
  mutable peak_cost : int;  (* largest resident cost ever reached *)
  lock : Mutex.t option;  (* Some iff synchronized *)
  contention : int Atomic.t;  (* lock acquisitions that had to wait *)
  mutable races : int;  (* duplicate computes in find_or_add *)
}

let default_capacity = 4096
let unit_cost _ _ = 1

let fresh_list () = { head = None; tail = None; lcost = 0; lcount = 0 }

let create ?(capacity = default_capacity) ?(policy = Lru) ?(cost = unit_cost)
    ?(synchronized = false) ?hit ?miss ?evict () =
  if capacity < 1 then invalid_arg "Bounded_cache.create: capacity must be >= 1";
  let protected_capacity =
    match policy with
    | Lru -> 0
    | Segmented { protected_ratio } ->
        if not (protected_ratio > 0.0 && protected_ratio < 1.0) then
          invalid_arg
            "Bounded_cache.create: protected_ratio must be in (0, 1)";
        max 1 (int_of_float (protected_ratio *. float_of_int capacity))
  in
  {
    capacity;
    policy;
    protected_capacity;
    cost_fn = cost;
    table = Hashtbl.create (min capacity 1024);
    prob = fresh_list ();
    prot = fresh_list ();
    pins = Hashtbl.create 8;
    hit;
    miss;
    evict;
    hits = 0;
    misses = 0;
    evictions = 0;
    peak = 0;
    peak_cost = 0;
    lock = (if synchronized then Some (Mutex.create ()) else None);
    contention = Atomic.make 0;
    races = 0;
  }

let synchronized t = t.lock <> None
let contention t = Atomic.get t.contention

(* [with_lock] is the only lock path: try_lock first so contended
   acquisitions are visible in the contention counter. *)
let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m ->
      if not (Mutex.try_lock m) then begin
        Atomic.incr t.contention;
        Mutex.lock m
      end;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let list_of t node =
  match node.seg with Probationary -> t.prob | Protected -> t.prot

let total_cost t = t.prob.lcost + t.prot.lcost

let capacity t = t.capacity
let length t = with_lock t (fun () -> Hashtbl.length t.table)
let cost t = with_lock t (fun () -> total_cost t)
let evictions t = with_lock t (fun () -> t.evictions)
let peak t = with_lock t (fun () -> t.peak)
let races t = with_lock t (fun () -> t.races)

let bump = function Some c -> Counters.incr c | None -> ()

(* Unlink a node from its recency list (it stays in the table). *)
let unlink t node =
  let l = list_of t node in
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> l.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> l.tail <- node.prev);
  node.prev <- None;
  node.next <- None;
  l.lcost <- l.lcost - node.cost;
  l.lcount <- l.lcount - 1

(* Push a node onto the front of [seg]'s list; the node must be
   detached.  Sets [node.seg]. *)
let push_front t seg node =
  node.seg <- seg;
  let l = list_of t node in
  node.next <- l.head;
  node.prev <- None;
  (match l.head with Some h -> h.prev <- Some node | None -> ());
  l.head <- Some node;
  if l.tail = None then l.tail <- Some node;
  l.lcost <- l.lcost + node.cost;
  l.lcount <- l.lcount + 1

(* Rebalance after a promotion: the protected list sheds its tail back
   to probationary most-recent until it fits its budget.  The [> 1]
   guard keeps a single entry costlier than the whole protected budget
   resident in protected rather than looping. *)
let shed_protected t =
  while t.prot.lcost > t.protected_capacity && t.prot.lcount > 1 do
    match t.prot.tail with
    | None -> assert false
    | Some victim ->
        unlink t victim;
        push_front t Probationary victim
  done

(* A hit: Lru promotes within the single list; Segmented promotes a
   probationary entry to protected (its second touch) and refreshes a
   protected entry in place. *)
let touch t node =
  match t.policy with
  | Lru -> (
      match t.prob.head with
      | Some h when h == node -> ()
      | _ ->
          unlink t node;
          push_front t Probationary node)
  | Segmented _ -> (
      match node.seg with
      | Probationary ->
          unlink t node;
          push_front t Protected node;
          shed_protected t
      | Protected -> (
          match t.prot.head with
          | Some h when h == node -> ()
          | _ ->
              unlink t node;
              push_front t Protected node))

(* Oldest unpinned node of one list, or None. *)
let victim_of t l =
  let rec walk = function
    | None -> None
    | Some node ->
        if Hashtbl.mem t.pins node.key then walk node.prev else Some node
  in
  walk l.tail

(* Evict one entry under insertion pressure: probationary tail first
   (under Lru that is the only list), protected tail as a last resort.
   Returns false when nothing is evictable. *)
let evict_one t =
  let victim =
    match victim_of t t.prob with
    | Some _ as v -> v
    | None -> victim_of t t.prot
  in
  match victim with
  | None -> false
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      bump t.evict;
      true

let find_opt_unlocked t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      bump t.hit;
      touch t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      bump t.miss;
      None

let find_opt t key = with_lock t (fun () -> find_opt_unlocked t key)
let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)

let add_unlocked t key value =
  (* Replacement keeps the entry's segment: a protected entry whose
     value is refreshed stays protected. *)
  let seg =
    match Hashtbl.find_opt t.table key with
    | Some old ->
        let seg = old.seg in
        unlink t old;
        Hashtbl.remove t.table key;
        seg
    | None -> Probationary
  in
  let cost = max 1 (t.cost_fn key value) in
  while total_cost t + cost > t.capacity && evict_one t do () done;
  let node = { key; value; cost; seg = Probationary; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t seg node;
  if node.seg = Protected then shed_protected t;
  if Hashtbl.length t.table > t.peak then t.peak <- Hashtbl.length t.table;
  if total_cost t > t.peak_cost then t.peak_cost <- total_cost t

let add t key value = with_lock t (fun () -> add_unlocked t key value)

let find_or_add t key compute =
  match with_lock t (fun () -> find_opt_unlocked t key) with
  | Some v -> v
  | None ->
      (* compute outside the lock: a miss must not serialize the other
         domains on a potentially slow compute.  Two domains missing
         the same key race to insert; the first insert wins and the
         loser's compute is discarded (counted in [races]) — harmless
         because computes are pure functions of the key. *)
      let v = compute key in
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
              t.races <- t.races + 1;
              touch t node;
              node.value
          | None ->
              add_unlocked t key v;
              v)

(* Explicit removal (catalog resident-set invalidation); not an
   eviction, so the eviction counters stay untouched. *)
let remove t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> ()
      | Some node ->
          unlink t node;
          Hashtbl.remove t.table key)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.prob.head <- None;
      t.prob.tail <- None;
      t.prob.lcost <- 0;
      t.prob.lcount <- 0;
      t.prot.head <- None;
      t.prot.tail <- None;
      t.prot.lcost <- 0;
      t.prot.lcount <- 0)

let pin t key = with_lock t (fun () -> Hashtbl.replace t.pins key ())
let unpin t key = with_lock t (fun () -> Hashtbl.remove t.pins key)
let pinned t key = with_lock t (fun () -> Hashtbl.mem t.pins key)

(* Keys from most- to least-recently used; under Segmented the
   protected (hot) list comes first, then probationary — the order an
   eviction walk would spare them, longest-lived first. *)
let keys_by_recency t =
  with_lock t (fun () ->
      let rec walk acc = function
        | None -> acc
        | Some node -> walk (node.key :: acc) node.next
      in
      List.rev (walk (walk [] t.prot.head) t.prob.head))

let fold f t init =
  with_lock t (fun () ->
      Hashtbl.fold (fun key node acc -> f key node.value acc) t.table init)

type stats = {
  s_capacity : int;
  s_length : int;
  s_peak : int;
  s_evictions : int;
  s_cost : int;
  s_peak_cost : int;
  s_hits : int;
  s_misses : int;
  s_probationary : int;
  s_protected : int;
  s_pinned : int;
}

let stats t =
  with_lock t (fun () ->
      let pinned_resident =
        Hashtbl.fold
          (fun key () acc -> if Hashtbl.mem t.table key then acc + 1 else acc)
          t.pins 0
      in
      {
        s_capacity = t.capacity;
        s_length = Hashtbl.length t.table;
        s_peak = t.peak;
        s_evictions = t.evictions;
        s_cost = total_cost t;
        s_peak_cost = t.peak_cost;
        s_hits = t.hits;
        s_misses = t.misses;
        s_probationary = t.prob.lcount;
        s_protected = t.prot.lcount;
        s_pinned = pinned_resident;
      })
