type t =
  | Io_failure of { path : string; reason : string }
  | Corrupt of { path : string; section : string; reason : string }
  | Stale_manifest of { path : string; reason : string }
  | Unknown_key of string
  | Quarantined of { key : string; until : int }
  | Capacity of string
  | Deadline_exceeded of { key : string; needed : int; remaining : int }
  | Overloaded of string
  | Internal of string

let kind = function
  | Io_failure _ -> "io-failure"
  | Corrupt _ -> "corrupt"
  | Stale_manifest _ -> "stale-manifest"
  | Unknown_key _ -> "unknown-key"
  | Quarantined _ -> "quarantined"
  | Capacity _ -> "capacity"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Overloaded _ -> "overloaded"
  | Internal _ -> "internal"

let to_string = function
  | Io_failure { path; reason } ->
      Printf.sprintf "io-failure: %s: %s" path reason
  | Corrupt { path; section; reason } ->
      Printf.sprintf "corrupt: %s [section %s]: %s" path section reason
  | Stale_manifest { path; reason } ->
      Printf.sprintf "stale-manifest: %s: %s" path reason
  | Unknown_key key -> Printf.sprintf "unknown-key: %s" key
  | Quarantined { key; until } ->
      Printf.sprintf "quarantined: %s (backing off until tick %d)" key until
  | Capacity reason -> Printf.sprintf "capacity: %s" reason
  | Deadline_exceeded { key; needed; remaining } ->
      Printf.sprintf
        "deadline-exceeded: %s (needs %d tick(s), %d remaining in the batch \
         budget)"
        key needed remaining
  | Overloaded reason -> Printf.sprintf "overloaded: %s" reason
  | Internal reason -> Printf.sprintf "internal: %s" reason

(* Shed refusals ([Deadline_exceeded], [Overloaded]) are deliberately
   NOT transient: transiency drives the in-attempt retry loop, and
   retrying into an exhausted budget or an open breaker would spin on
   exactly the work the admission layer just refused.  Overload is
   resolved by time (the next batch gets a fresh budget; the breaker
   half-opens on the clock), not by retrying the same call. *)
let transient = function
  | Io_failure _ | Corrupt _ -> true
  | Stale_manifest _ | Unknown_key _ | Quarantined _ | Capacity _
  | Deadline_exceeded _ | Overloaded _ | Internal _ ->
      false

exception Error of t

let raise_error e = raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Xpest_error.Error: " ^ to_string e)
    | _ -> None)
