(** The typed error taxonomy of the serving stack.

    Everything that can go wrong between a key and a float — an I/O
    failure, a corrupted synopsis section, a synopsis rebuilt behind
    its manifest, an unknown key, a quarantined key, a capacity
    refusal — is one constructor of {!t}, so callers can route on the
    {e class} of a failure (retry it, quarantine its key, degrade,
    refuse) without parsing message strings.  Load APIs across
    [lib/synopsis] and [lib/catalog] return [('a, t) result];
    exceptions are confined to the CLI boundary and to programmer
    errors (violated invariants), which stay [Invalid_argument].

    Errors carry enough context to print a one-line operator-grade
    diagnosis: the kind, the path (or key), and — for corruption — the
    wire section the damage was attributed to. *)

type t =
  | Io_failure of { path : string; reason : string }
      (** The bytes could not be read at all (open/read failed). *)
  | Corrupt of { path : string; section : string; reason : string }
      (** The bytes were read but are not a well-formed file: bad
          magic, unsupported version, checksum mismatch, truncation,
          or a malformed section.  [section] is the wire section the
          failure was attributed to (["header"], ["body"], or a named
          section such as ["p_histograms"]); attribution is
          best-effort — a checksum mismatch proves damage but not its
          address. *)
  | Stale_manifest of { path : string; reason : string }
      (** The file is well-formed but does not match its manifest
          entry (size or checksum) — it was rebuilt behind the
          manifest's back. *)
  | Unknown_key of string
      (** The key resolves to no manifest entry / loader source. *)
  | Quarantined of { key : string; until : int }
      (** The key failed repeatedly and is benched until the
          catalog's logical clock reaches [until]; no I/O was
          attempted. *)
  | Capacity of string
      (** A resource bound refused the work (resident set, queue). *)
  | Deadline_exceeded of { key : string; needed : int; remaining : int }
      (** The admission layer shed the query: the batch's remaining
          deadline budget ([remaining] logical-clock ticks) provably
          cannot cover what serving [key] would cost ([needed] ticks —
          the configured cold-load cost, or 1 for a resident hit).  No
          I/O was attempted, and the key's health state is untouched:
          shedding is about the {e system's} budget, not the key. *)
  | Overloaded of string
      (** The admission layer refused the work to protect the system:
          the batch hit its cold-load bound, or the loader circuit
          breaker is open.  Like {!Deadline_exceeded}, no I/O was
          attempted and per-key health is untouched. *)
  | Internal of string
      (** An unexpected exception escaped a component; the payload is
          its message.  Seeing this is a bug report, not an
          operational condition. *)

val kind : t -> string
(** Stable lower-kebab class name (["io-failure"], ["corrupt"],
    ["stale-manifest"], ["unknown-key"], ["quarantined"],
    ["capacity"], ["deadline-exceeded"], ["overloaded"],
    ["internal"]) — what CLIs print and logs grep. *)

val to_string : t -> string
(** One line: [kind: path [section s]: reason]. *)

val transient : t -> bool
(** Whether retrying the same operation can plausibly succeed without
    operator intervention: true for {!Io_failure} and {!Corrupt}
    (read-level faults — a flaky disk or an injected fault — heal on
    re-read; genuinely damaged files just fail again), false for
    everything else.  {!Deadline_exceeded} and {!Overloaded} are
    deliberately non-transient even though overload subsides with
    time: transiency drives the {e immediate} in-attempt retry loop,
    and retrying into an exhausted budget or an open breaker would
    spin on exactly the work the admission layer just refused. *)

exception Error of t
(** For the rare edge where a [result] cannot flow (callbacks with
    fixed types).  Raise with {!raise_error}; catch at the boundary. *)

val raise_error : t -> 'a
