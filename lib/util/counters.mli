(** Process-wide named counters and wall-clock timers for estimator
    observability.

    Instrumentation sites (cache lookups in the path join, equation
    dispatch in the estimator, synopsis build/load) create their
    counters once at module initialization and bump them on every
    event.  Counting is gated on a global flag that defaults to off:
    a disabled bump is one branch, so the hot path pays nothing
    measurable when observability is not requested.

    Counters are process-global and domain-safe: counts are atomics
    and timers accumulate under a per-timer mutex, so increments
    racing in from the batch paths' worker domains are never lost or
    torn.  What is {e not} per-domain is attribution — see the caveat
    on {!delta_between}.  Intended use stays the harness/CLI pattern:
    enable, run, snapshot, report. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Reset all counters, run the thunk with counting enabled, restore
    the previous enablement (counter values survive for reading). *)

val reset : unit -> unit
(** Zero every registered counter and timer. *)

(** {1 Counters} *)

type t

val create : string -> t
(** Register a counter under a dotted name, e.g.
    ["path_join.rel_cache.hit"].  Call once per site, at module
    initialization. *)

val incr : t -> unit
(** Add 1 when enabled; no-op when disabled.  Atomic: concurrent
    increments from several domains all land. *)

val add : t -> int -> unit

val name : t -> string
val value : t -> int

(** {1 Timers} *)

type timer

val create_timer : string -> timer
val record : timer -> float -> unit
(** Accumulate an externally measured duration (seconds) and one call. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration when enabled
    (exceptions still record).  When disabled, just runs the thunk —
    the clock is never read. *)

val timer_name : timer -> string
val timer_calls : timer -> int
val timer_seconds : timer -> float

(** {1 Snapshots} *)

val counters : unit -> (string * int) list
(** Non-zero counters as [(name, count)], sorted by name. *)

type snapshot
(** Values of {e every} registered counter (zeroes included) at one
    point in time. *)

val snapshot : unit -> snapshot

val delta_between : snapshot -> snapshot -> (string * int) list
(** [delta_between before after]: per-counter increments between the
    two snapshots, non-zero entries only, sorted by name.

    {b Caveat — counters are process-global.}  Two live estimators
    bump the same counters, so a raw {!counters} snapshot conflates
    their metrics.  A delta is attributable to one component only when
    that component's work ran {e sequentially} between [before] and
    [after] — which is how the catalog's estimator pool uses it: it
    snapshots around each per-summary batch group, so the per-summary
    rows in its reports are exact even though the underlying counters
    are shared. *)

val timers : unit -> (string * int * float) list
(** Non-zero timers as [(name, calls, seconds)], sorted by name. *)
