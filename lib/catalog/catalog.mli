(** The serving layer: many summaries behind one estimation service.

    The engine's artifacts are two-tier — compiled plans depend only
    on the query, while summaries depend on the document — so serving
    many documents at once splits naturally into a {e synopsis
    catalog} (named summaries, lazily loaded, bounded resident set)
    and an {e estimator pool} (one estimator per resident summary, all
    sharing a single compiled-plan cache).  {!estimate_batch} routes a
    mixed batch: each distinct query is compiled once for the whole
    pool, each summary's group executes against that summary's
    estimator, and every result is bit-identical to a fresh
    single-summary [Estimator.estimate] — caching, pooling, eviction
    and reloading never change a float, only when it is recomputed.

    Summaries enter the resident set on first use and leave it LRU
    when the set exceeds its capacity; their estimators (and per-
    summary join caches) leave with them, but the pool-shared plan
    cache survives evictions, so a query estimated against one summary
    is already compiled when it hits the next.  Loads, hits and
    evictions are counted unconditionally ({!stats}) and mirrored in
    the global observability counters ([catalog.summary.*]). *)

module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Pattern = Xpest_xpath.Pattern

(** {1 Keys} *)

type key = { dataset : string; variance : float }
(** One summary's name: the document (or dataset) it summarizes and
    the variance target both histogram families were built at. *)

val key_to_string : key -> string
(** ["dataset@variance"], e.g. ["dblp@0"] — the key syntax of routed
    query files and the CLI. *)

val key_of_string : string -> (key, string) result
(** Inverse of {!key_to_string}; a bare ["dataset"] means variance 0. *)

val key_filename : key -> string
(** Canonical synopsis file name of a key inside a catalog directory,
    e.g. ["dblp_v0.syn"]. *)

(** {1 Catalogs} *)

type t

val create :
  ?resident_capacity:int ->
  ?config:Xpest_plan.Cache_config.t ->
  ?chain_pruning:bool ->
  loader:(key -> Summary.t) ->
  unit ->
  t
(** A catalog over an arbitrary summary source.  [loader] is called
    once per non-resident key on demand (raise to signal an unknown
    key); [resident_capacity] bounds how many summaries (and their
    estimators) stay in memory at once (default {!default_resident_capacity});
    [config] sets the per-cache capacities of the shared plan cache
    ([config.plan]) and of every pooled estimator's join caches.
    @raise Invalid_argument if [resident_capacity < 1]. *)

val default_resident_capacity : int
(** 8 resident summaries. *)

val of_manifest :
  ?resident_capacity:int ->
  ?config:Xpest_plan.Cache_config.t ->
  ?chain_pruning:bool ->
  dir:string ->
  Manifest.t ->
  t
(** The file-backed instantiation: keys resolve through the manifest
    to synopsis files under [dir], loaded with
    {!Xpest_synopsis.Synopsis_io.load}.  The loader re-verifies each
    file's size and stored checksum against the manifest entry and
    raises [Invalid_argument] on a mismatch (a synopsis rebuilt behind
    the manifest's back) or an unknown key. *)

val manifest_filename : string
(** ["catalog.manifest"] — the manifest's conventional file name
    inside a catalog directory (the CLI reads and writes this). *)

val save_entry : dir:string -> Manifest.t -> key -> Summary.t -> Manifest.t
(** Persist [summary] as [dir ^ "/" ^ key_filename key] and return the
    manifest with that entry added (replacing any previous entry of
    the key).  The caller decides when to {!Manifest.save} the result.
    @raise Sys_error on I/O failure. *)

(** {1 Estimation} *)

val estimate : t -> key -> Pattern.t -> float
(** Route one query: estimate against [key]'s summary, loading it if
    it is not resident.  Bit-identical to [Estimator.estimate] on a
    fresh estimator over the same summary. *)

val estimate_batch : t -> (key * Pattern.t) array -> float array
(** Route a mixed batch.  The batch is grouped by key (first-
    appearance order); each group runs through the pooled estimator's
    [estimate_many] — so duplicate queries inside a group are deduped
    and every distinct query is compiled at most once across {e all}
    groups, because the plan cache is pool-shared.  Results come back
    in input order, each bit-identical to a fresh single-summary
    [Estimator.estimate] of its (key, query) pair.  One load per
    distinct key per batch at most — unless the batch has more
    distinct keys than the resident capacity, in which case summaries
    evict and reload mid-batch (results still do not change). *)

(** {1 Observability} *)

type stats = {
  resident : int;  (** summaries currently in memory *)
  resident_capacity : int;
  loads : int;  (** loader calls (cold + reloads after eviction) *)
  hits : int;  (** estimator-pool hits (summary already resident) *)
  evictions : int;
  plan_cache : Xpest_plan.Plan_cache.stats;
      (** the pool-shared compiled-plan cache *)
}

val stats : t -> stats
(** Tracked unconditionally (no counter enablement needed). *)

val last_batch_metrics : t -> (key * (string * int) list) list
(** Per-key observability-counter deltas of the most recent
    {!estimate_batch} call, in the batch's group order: each group is
    bracketed by {!Xpest_util.Counters.snapshot}, so the rows are
    attributable per summary even though counters are process-global
    (see the caveat in [counters.mli]).  Empty when counters were
    disabled during the batch, or before any batch ran. *)

val keys_by_recency : t -> key list
(** Resident keys, most-recently used first (test/debug aid). *)
