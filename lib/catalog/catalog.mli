(** The serving layer: many summaries behind one estimation service.

    The engine's artifacts are two-tier — compiled plans depend only
    on the query, while summaries depend on the document — so serving
    many documents at once splits naturally into a {e synopsis
    catalog} (named summaries, lazily loaded, bounded resident set)
    and an {e estimator pool} (one estimator per resident summary, all
    sharing a single compiled-plan cache).  {!estimate_batch} routes a
    mixed batch: each distinct query is compiled once for the whole
    pool, each summary's group executes against that summary's
    estimator, and every result is bit-identical to a fresh
    single-summary [Estimator.estimate] — caching, pooling, eviction
    and reloading never change a float, only when it is recomputed.

    Summaries enter the resident set on first use and are evicted by a
    scan-resistant segmented LRU ({!Xpest_util.Bounded_cache}) when
    the set exceeds its budget; their estimators (and per-summary join
    caches) leave with them, but the pool-shared plan cache survives
    evictions, so a query estimated against one summary is already
    compiled when it hits the next.  The budget is an entry count by
    default ([resident_capacity]) or an exact byte budget when
    [config.resident_bytes] is set (each resident costs
    [Summary.size_bytes]); hot keys can be pinned against eviction
    ({!pin}).  Replacement policy, budget unit and pinning only decide
    {e which} summaries stay resident — never a value.  Loads, hits
    and evictions are counted unconditionally ({!stats}) and mirrored
    in the global observability counters ([catalog.summary.*]).

    {2 Fault tolerance}

    Storage is allowed to fail; the serving loop is not.  All load and
    verification failures flow through the typed taxonomy
    {!Xpest_util.Xpest_error.t}, and the [_r] entry points
    ({!estimate_r}, {!estimate_batch_r}, {!acquire_r}) return [result]s
    instead of raising.  Per key, the catalog runs a deterministic
    health state machine on a logical clock (one tick per acquire
    attempt, see {!clock}):

    - {e retry}: a transient failure ([Io_failure], [Corrupt]) is
      retried up to [max_retries] extra times within the same attempt;
    - {e quarantine}: after [failure_threshold] consecutive failed
      attempts the key is quarantined — further attempts are refused
      {e without touching storage} until the clock reaches the
      quarantine deadline, at which point one probe load is allowed.
      A failed probe re-quarantines with doubled backoff (capped at
      [backoff_max]); a success resets the key to healthy;
    - {e degraded serving}: with [verify_resident] on, resident
      summaries are re-verified on every hit; if verification fails
      and [stale_if_error] is set, the resident (known-good when
      loaded) copy keeps serving and the key is marked [Degraded].

    The raising entry points ({!estimate}, {!estimate_batch}) are
    thin wrappers that turn the first typed error into
    [Invalid_argument (Xpest_error.to_string e)] — CLI and legacy
    call sites keep working, new serving paths should use [_r].

    {2 Overload protection}

    Batches can additionally run under admission control
    ({!Xpest_catalog.Admission}, configured per catalog with
    [?admission]): each routed group passes a stage-boundary check
    before its acquire — deadline budget (modeled ticks per batch),
    load-queue bound (cold loads admitted per batch), and a circuit
    breaker over the loader seam.  A query group that fails the check
    is {e shed}: refused with a typed [Deadline_exceeded] or
    [Overloaded] error before any I/O, without ticking the clock or
    touching per-key health.  Under the [Degrade] shed policy, a shed
    group whose dataset has an already-resident sibling variance is
    served from that sibling instead and marked
    {!slot_status.Fallback} in {!last_batch_statuses} — a degraded
    answer beats no answer, and the caller can tell them apart.

    {2 The degradation ladder}

    Batch answers come from a three-rung ladder: {b Exact} (the key's
    own summary, as always) → {b Fallback} (a resident sibling
    variance of the same dataset) → {b Sketch} (the dataset's
    always-resident fallback sketch, {!Xpest_synopsis.Sketch}: order-1
    Markov path counts, a few hundred bytes, coarse but never
    unavailable).  Sketches live in their own tiny byte-budgeted
    region ([?sketch_bytes]), pinned so the resident-set evictor can
    never reclaim them, and are loaded eagerly at construction
    ({!of_manifest}) — never lazily on the failure path they exist to
    cover.  The lower rungs engage on two paths: an admission shed
    under the [Degrade] policy (as above, now with Sketch below
    Fallback), and — {e only when the catalog holds at least one
    sketch} — a failed acquire of an eligible error kind (unhealthy
    storage or pressure: [Io_failure], [Corrupt], [Stale_manifest],
    [Quarantined], [Capacity], [Deadline_exceeded], [Overloaded]; a
    malformed query's [Unknown_key] and bugs' [Internal] still fail).
    A catalog without sketches keeps the historical fail-fast contract
    bit-for-bit.  Sketch answers cost one admission tick (a resident
    hit's price) and are never queued, so the last rung cannot itself
    be shed; rung choice happens at the single-owner commit point, so
    the ladder is deterministic at any domain fan-out.  Each slot's
    rung is reported in {!last_batch_statuses} and the per-tier totals
    in {!stats}.

    Admission decisions are a pure function of (configuration,
    logical clock, route order): shedding reproduces bit-identically
    at any domain count, and with admission inactive (the default
    {!Admission.unlimited}) — or any configuration whose limits never
    bind — results, errors, stats and clock are byte-identical to an
    uncontrolled catalog.

    {2 The serving pipeline}

    Routed batches run a four-stage pipeline (control flow in
    {!Xpest_catalog.Pipeline}): {b route} groups queries by key in
    first-appearance order; {b acquire} — clock ticks, eviction,
    retry/quarantine — stays single-owner in the calling domain,
    strictly in route order; {b load}, the only stage that touches
    I/O, fans distinct-key loads out on an optional
    {!Xpest_util.Loader_pool} ahead of their acquire turn; {b execute}
    runs per-key groups on an optional {!Xpest_util.Domain_pool} (or
    eagerly on the caller, overlapping the remaining loads).

    The ordering contract: every stateful decision — clock value, LRU
    probe and eviction, loader outcome and fault-injector draw, retry
    count, quarantine transition — happens in exactly the order the
    sequential loop makes it, at {e any} load/execute fan-out.  Loads
    are only started early when the planner can prove the acquire will
    need them (non-resident keys cannot become resident mid-batch, and
    quarantine deadlines are exactly predictable from the logical
    clock); a prediction the planner cannot prove just loads inline at
    its turn, exactly like the blocking path.  Consequently results
    (values {e and} errors) and {!stats} are bit-identical to the
    sequential run; only {!last_batch_metrics} is unavailable
    (cleared) outside the fully sequential shape, because per-group
    counter attribution requires inline execution.

    Loader requirements: with a concurrent [loads] policy the loader
    runs on pool domains, so it must be thread-safe and per-key
    deterministic (its outcome must not depend on cross-key call
    order).  File-backed loaders ({!of_manifest}) qualify; a
    {!Xpest_util.Fault} injector must then be the keyed kind
    ([Fault.create_keyed]) — the stream kind is only deterministic
    under the blocking policy.

    The shared plan cache and the resident set are internally
    synchronized, so a catalog is safe to drive with or without pools;
    what is {e not} supported is driving one catalog from several
    domains at once — the acquire machinery belongs to one caller at a
    time. *)

module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Pattern = Xpest_xpath.Pattern
module Estimator = Xpest_estimator.Estimator
module E = Xpest_util.Xpest_error

(** {1 Keys} *)

type key = { dataset : string; variance : float }
(** One summary's name: the document (or dataset) it summarizes and
    the variance target both histogram families were built at. *)

val key_to_string : key -> string
(** ["dataset@variance"], e.g. ["dblp@0"] — the key syntax of routed
    query files and the CLI.  The variance is printed with the
    shortest decimal that parses back to the exact float, so distinct
    keys never print alike.  Round-trips through {!key_of_string} for
    every dataset string (the {e last} ['@'] separates the variance,
    and the printed form always carries one). *)

val key_of_string : string -> (key, string) result
(** Inverse of {!key_to_string}; a bare ["dataset"] (no ['@'])
    means variance 0.  Datasets containing ['@'] are supported — the
    split is at the last ['@'] — but their bare form would parse
    differently, so always use the full ["dataset@variance"] spelling
    for them.  Rejects empty datasets and non-finite or negative
    variances. *)

val key_filename : key -> string
(** Canonical synopsis file name of a key inside a catalog directory,
    e.g. ["dblp_v0.syn"].  Every dataset byte outside [A-Za-z0-9.-]
    (including ['_'], ['%'], ['/'] and ['@']) is %XX-escaped, so the
    name is flat, collision-free and invertible ({!key_of_filename})
    for arbitrary dataset strings. *)

val key_of_filename : string -> (key, string) result
(** Inverse of {!key_filename}: recover the key from a synopsis file
    name.  Errors on a missing [.syn] suffix, missing [_v] separator,
    malformed %-escape, empty dataset, or unparseable variance. *)

(** {1 Resilience policy} *)

type resilience = {
  max_retries : int;
      (** extra loader calls after a transient failure, per attempt
          (default 2) *)
  failure_threshold : int;
      (** consecutive failed attempts before quarantine (default 3) *)
  backoff_base : int;
      (** first quarantine length in clock ticks (default 4) *)
  backoff_max : int;  (** backoff doubling cap, in ticks (default 64) *)
  verify_resident : bool;
      (** re-verify resident summaries on every hit (default false —
          the load-time checksum already guards the bytes) *)
  stale_if_error : bool;
      (** serve the resident copy when re-verification fails, marking
          the key [Degraded], instead of failing the query
          (default true) *)
  max_tracked : int;
      (** bound on the per-key health table; beyond it, fully healthy
          entries are pruned and — if everything tracked is unhealthy —
          new cold keys are refused with [Capacity] (default 4096) *)
}

val default_resilience : resilience

(** {1 Catalogs} *)

type t

val create :
  ?resident_capacity:int ->
  ?resident_policy:Xpest_util.Bounded_cache.policy ->
  ?config:Xpest_plan.Cache_config.t ->
  ?chain_pruning:bool ->
  ?resilience:resilience ->
  ?admission:Admission.config ->
  ?sketch_bytes:int ->
  loader:(key -> Summary.t) ->
  unit ->
  t
(** A catalog over an arbitrary summary source.  [loader] is called
    once per non-resident key on demand; [resident_capacity] bounds
    how many summaries (and their estimators) stay in memory at once
    (default {!default_resident_capacity}) — unless
    [config.resident_bytes] is set, which replaces the count bound
    with a byte budget costed by each summary's exact wire size
    ({!Summary.size_bytes}).  [resident_policy] (default
    {!Xpest_util.Bounded_cache.segmented}) picks the resident set's
    replacement policy; pass [Lru] to compare against plain LRU (the
    s1_thrash bench section does).  [config] also sets the per-cache
    capacities of the shared plan cache ([config.plan]) and of every
    pooled estimator's join caches.  Loader escapes are
    classified into the typed taxonomy ([Sys_error] → [Io_failure],
    [Xpest_error.Error e] → [e], [Invalid_argument] / [Failure] →
    [Internal]) and flow through the same retry/quarantine machinery
    as {!create_r} loaders.
    @raise Invalid_argument if [resident_capacity < 1] or the
    resilience policy is malformed ([max_retries < 0],
    [failure_threshold < 1], [backoff_base < 1],
    [backoff_max < backoff_base], or [max_tracked < 1]), or if
    [config.resident_bytes] is [Some b] with [b < 1], or if the
    [admission] configuration is malformed (see
    {!Admission.create}).  [admission] (default
    {!Admission.unlimited}, a no-op) enables overload protection on
    the batch entry points — see the preamble. *)

val create_r :
  ?resident_capacity:int ->
  ?resident_policy:Xpest_util.Bounded_cache.policy ->
  ?config:Xpest_plan.Cache_config.t ->
  ?chain_pruning:bool ->
  ?resilience:resilience ->
  ?admission:Admission.config ->
  ?sketch_bytes:int ->
  ?verify:(key -> (unit, E.t) result) ->
  loader:(key -> (Summary.t, E.t) result) ->
  unit ->
  t
(** Result-typed form of {!create}: the loader reports failures as
    values, and [verify] (default: always [Ok]) re-validates a
    resident key when [resilience.verify_resident] is set.
    [sketch_bytes] (default {!default_sketch_bytes}) budgets the
    pinned fallback-sketch region; sketches are installed with
    {!install_sketch} (or automatically by {!of_manifest}).
    @raise Invalid_argument as {!create}, or if [sketch_bytes < 1]. *)

val default_resident_capacity : int
(** 8 resident summaries. *)

val default_sketch_bytes : int
(** 256 KiB — the fallback-sketch region's default byte budget.
    Sketches are hundreds of bytes to a few KiB each, so the default
    pins a last-resort tier for hundreds of datasets. *)

val install_sketch : t -> string -> Xpest_synopsis.Sketch.t -> (unit, E.t) result
(** Install (or replace) [dataset]'s fallback sketch in the pinned
    region, arming the degradation ladder (see the preamble).  The
    sketch executor is built here, once.  Fails with [Capacity] —
    without installing anything — when the sketch would push the
    region past its byte budget: the region's budget is a hard bound,
    pre-checked because pinned entries otherwise admit over budget.
    Counted in [stats.sketch_failures] on refusal. *)

val of_manifest :
  ?resident_capacity:int ->
  ?resident_policy:Xpest_util.Bounded_cache.policy ->
  ?config:Xpest_plan.Cache_config.t ->
  ?chain_pruning:bool ->
  ?resilience:resilience ->
  ?admission:Admission.config ->
  ?sketch_bytes:int ->
  ?io:Xpest_util.Fault.Io.t ->
  dir:string ->
  Manifest.t ->
  t
(** The file-backed instantiation: keys resolve through the manifest
    to synopsis files under [dir], loaded with
    {!Xpest_synopsis.Synopsis_io.load_typed}.  The loader re-verifies
    each file's size and stored checksum against the manifest entry —
    a mismatch (a synopsis rebuilt behind the manifest's back) is
    [Stale_manifest], an absent manifest row is [Unknown_key], and
    file damage surfaces as [Io_failure] or [Corrupt].  [io]
    substitutes the storage interface (fault injection under test,
    see {!Xpest_util.Fault.io}); it is threaded through both loading
    and resident re-verification.

    Every sketch in the manifest's sketch table is loaded {e eagerly}
    here (verified against its recorded size and checksum, through the
    same [io]) and installed in the pinned region — the sketch tier
    must be resident before storage degrades, not fetched through the
    failing storage it exists to cover.  A sketch that cannot be
    installed is counted in [stats.sketch_failures], not fatal: it
    only narrows the ladder for its dataset. *)

val manifest_filename : string
(** ["catalog.manifest"] — the manifest's conventional file name
    inside a catalog directory (the CLI reads and writes this). *)

val save_entry : dir:string -> Manifest.t -> key -> Summary.t -> Manifest.t
(** Persist [summary] as [dir ^ "/" ^ key_filename key] and return the
    manifest with that entry added (replacing any previous entry of
    the key).  The caller decides when to {!Manifest.save} the result.
    @raise Sys_error on I/O failure. *)

val sketch_filename : string -> string
(** Canonical sketch file name of a dataset inside a catalog
    directory, e.g. ["dblp.sketch"] (dataset %XX-escaped like
    {!key_filename}). *)

val save_sketch :
  dir:string -> Manifest.t -> string -> Xpest_synopsis.Sketch.t -> Manifest.t
(** Persist [dataset]'s fallback sketch as
    [dir ^ "/" ^ sketch_filename dataset] and return the manifest with
    its sketch entry added (replacing any previous one) — the
    [catalog build] counterpart of {!save_entry} for the sketch tier.
    @raise Sys_error on I/O failure. *)

val sketch_check :
  ?io:Xpest_util.Fault.Io.t ->
  dir:string ->
  Manifest.sketch_entry ->
  (string, E.t) result
(** {!manifest_verify}'s analogue for one sketch entry: header parse +
    size + stored checksum against the manifest record, returning the
    sketch file's path on success (used by [catalog info --health]). *)

val manifest_verify :
  ?io:Xpest_util.Fault.Io.t ->
  dir:string ->
  Manifest.t ->
  key ->
  (unit, E.t) result
(** Check one manifest entry against its on-disk synopsis (header
    parse + size + stored checksum, without decoding the body): the
    verification {!of_manifest} wires in, also used by
    [catalog info --health]. *)

(** {1 Estimation} *)

val acquire_r : t -> key -> (Estimator.t, E.t) result
(** One acquire attempt (one clock tick): return [key]'s pooled
    estimator, loading the summary if it is not resident.  This is
    where the retry/quarantine/degraded machinery runs; see the
    module preamble.  The estimator is only guaranteed valid until
    the next acquire (eviction may retire it) — prefer
    {!estimate_r}/{!estimate_batch_r} unless batching manually. *)

val estimate_r : t -> key -> Pattern.t -> (float, E.t) result
(** Route one query without raising.  [Ok] values are bit-identical
    to {!estimate} (and to a fresh single-summary
    [Estimator.estimate]). *)

val estimate : t -> key -> Pattern.t -> float
(** Route one query: estimate against [key]'s summary, loading it if
    it is not resident.  Bit-identical to [Estimator.estimate] on a
    fresh estimator over the same summary.
    @raise Invalid_argument with the rendered typed error when the
    key cannot be served. *)

val estimate_batch_r :
  ?pool:Xpest_util.Domain_pool.t ->
  ?loads:Xpest_util.Loader_pool.t ->
  t ->
  (key * Pattern.t) array ->
  (float, E.t) result array
(** Route a mixed batch with per-query fault isolation.  The batch is
    grouped by key (first-appearance order); each group runs through
    the pooled estimator's batched path — duplicate queries inside a
    group are deduped and every distinct query is compiled at most
    once across {e all} groups, because the plan cache is pool-shared.
    Results come back in input order: [Ok] floats are bit-identical
    to a fresh single-summary [Estimator.estimate] of their
    (key, query) pair, and a key that cannot be served fails only its
    own queries ([Error] rows) — never the rest of the batch, and
    never by raising.  One load per distinct key per batch at most —
    unless the batch has more distinct keys than the resident
    capacity, in which case summaries evict and reload mid-batch
    (results still do not change).

    With [pool] (size > 1): acquisition runs first, single-owner, in
    group order — every clock tick, LRU decision, loader call, retry
    and quarantine transition happens exactly as in the sequential
    path, so acquire-side [Error]s and {!stats} match it — then the
    acquired groups execute one-per-job across the pool (a
    single-group batch instead chunks its plans via
    [Estimator.estimate_many ~pool]).

    With [loads] (a {!Xpest_util.Loader_pool} over a pool of size >
    1): loads the planner can prove necessary start before their
    acquire turn and are awaited at the in-order commit point; without
    an execute [pool], each group executes on the caller right after
    its commit, overlapping the remaining loads.  The loader must then
    be thread-safe and per-key deterministic (see the preamble).  A
    blocking [loads] policy (the default, or a size-1 pool) defers
    every load to its acquire turn — the exact sequential schedule for
    {e any} loader.

    {b Bit-identity holds} across all combinations: the returned array
    equals the sequential one result-for-result, including under
    mid-batch eviction and fault injection, and {!stats} (clock
    included) match field-for-field (only [prefetched_loads] counts
    pipeline planning).  {!last_batch_metrics} is cleared outside the
    fully sequential shape (see the preamble); the shared plan cache's
    own hit/miss/eviction trace may differ, its contents never affect
    values. *)

val estimate_batch :
  ?pool:Xpest_util.Domain_pool.t ->
  ?loads:Xpest_util.Loader_pool.t ->
  t ->
  (key * Pattern.t) array ->
  float array
(** {!estimate_batch_r} for callers that treat any failure as fatal.
    @raise Invalid_argument with the first failed query's rendered
    typed error. *)

(** {1 Observability} *)

type stats = {
  resident : int;  (** summaries currently in memory *)
  resident_capacity : int;
      (** resident budget, in cost units: entries by default, bytes
          when [config.resident_bytes] set the budget *)
  resident_cost : int;
      (** used budget, in the same units as [resident_capacity] *)
  resident_bytes : int;
      (** exact wire bytes of the resident summaries (equals
          [resident_cost] under a byte budget) *)
  resident_probationary : int;
      (** residents in the probationary segment (all of them under a
          plain-LRU [resident_policy]) *)
  resident_protected : int;
      (** residents promoted to the protected segment (touched at
          least twice; survive cold scans) *)
  resident_pinned : int;  (** residents currently pinned *)
  loads : int;  (** successful loader calls (cold + reloads) *)
  hits : int;  (** estimator-pool hits (summary already resident) *)
  evictions : int;
  failures : int;  (** failed acquire attempts (counted after retries) *)
  retries : int;  (** transient-failure retries across all keys *)
  quarantines : int;  (** quarantine entries across all keys *)
  degraded_hits : int;  (** stale-if-error serves across all keys *)
  prefetched_loads : int;
      (** loads the pipeline started ahead of their acquire turn
          (0 without a concurrent [loads] policy); counts submissions,
          including the rare prefetch a commit-side refusal then
          discards *)
  shed_queries : int;
      (** queries refused by admission control (deadline, queue bound
          or breaker) — each one got a typed error or a fallback
          answer, never silence *)
  fallback_queries : int;
      (** queries served degraded from a resident sibling variance —
          shed ones under the [Degrade] policy, plus acquire failures
          the ladder absorbed (sketch-armed catalogs only) *)
  sketch_queries : int;
      (** queries answered from the sketch tier (the ladder's last
          rung) *)
  sketch_resident : int;  (** fallback sketches installed *)
  sketch_bytes : int;
      (** exact wire bytes pinned in the sketch region; never exceeds
          [sketch_budget] (pre-checked at install) *)
  sketch_budget : int;  (** the region's byte budget ([?sketch_bytes]) *)
  sketch_failures : int;
      (** sketches that could not be installed: over budget,
          unreadable, corrupt, or stale against the manifest *)
  skipped_directives : int;
      (** unknown [!directive] lines skipped by {!load_health} from v3
          health files (forward compatibility with newer writers) *)
  plan_cache : Xpest_plan.Plan_cache.stats;
      (** the pool-shared compiled-plan cache *)
  plan_contention : int;
      (** plan-cache lock acquisitions that had to wait (only parallel
          batches contend; 0 in sequential serving) *)
  plan_races : int;
      (** duplicate plan compiles discarded when two domains missed
          the same query at once (see {!Xpest_plan.Plan_cache.races}) *)
}

val stats : t -> stats
(** Tracked unconditionally (no counter enablement needed). *)

type health_state =
  | Healthy
  | Quarantined of { until : int }
      (** refused without I/O while [clock t < until] *)
  | Degraded  (** resident copy serving despite failed re-verification *)

type key_health = {
  h_key : key;
  h_state : health_state;
  h_consecutive_failures : int;
  h_failures : int;  (** lifetime failed attempts *)
  h_retries : int;
  h_quarantines : int;
  h_degraded_hits : int;
  h_next_backoff : int;  (** length of the next quarantine, in ticks *)
  h_last_error : E.t option;
}

val health : t -> key_health list
(** Health report over every tracked key (keys the catalog has
    attempted at least once and not pruned as healthy), sorted by
    {!key_to_string}.  Tracked unconditionally. *)

val clear_quarantine : t -> key -> key_health option
(** Operator override: discard [key]'s entire failure history —
    quarantine deadline, accumulated backoff, degraded flag, lifetime
    counts — so the next acquire probes the loader immediately with a
    fresh state.  Returns the discarded state ([None] if the key was
    not tracked).  Does not touch the resident set: a resident,
    serving summary stays resident. *)

val clear_all_quarantine : t -> key_health list
(** {!clear_quarantine} over every tracked key at once (the CLI's
    [clear-quarantine --all]).  Returns the discarded states, sorted
    like {!health}.  The circuit breaker is {e not} reset — it guards
    the loader seam, not any key, and recovers through its own
    half-open probe. *)

(** {1 Overload observability}

    See the preamble's overload-protection section and
    {!Xpest_catalog.Admission} for the model. *)

type slot_status =
  | Served  (** answered exactly, from the key's own summary *)
  | Fallback of key
      (** answered degraded from this resident sibling variance of the
          same dataset — after a shed ([Degrade] policy) or an
          eligible acquire failure on a sketch-armed catalog; the
          result array holds the sibling's estimate *)
  | Sketch
      (** answered coarsely from the dataset's pinned fallback sketch,
          the ladder's last rung; the result array holds the sketch
          estimate *)
  | Shed
      (** refused outright; the result array holds the typed error *)

val last_batch_statuses : t -> slot_status array
(** How each query slot of the most recent {!estimate_batch_r} was
    answered, parallel to its result array (empty before any batch).
    All-[Served] whenever the ladder never engaged (admission inactive
    or nothing shed, and no eligible acquire failure on a
    sketch-armed catalog). *)

val admission_config : t -> Admission.config
val admission_stats : t -> Admission.stats
(** Lifetime shed/breaker counters of the catalog's admission
    controller (all zero when admission is inactive). *)

val breaker : t -> Admission.breaker_view
(** The circuit breaker's current state, anchored on {!clock} (for
    stats output and [catalog info --health]). *)

(** {1 Health persistence}

    The failure history can outlive the process: {!save_health} writes
    every tracked key's state to a line-oriented file and
    {!load_health} folds one back in.  Quarantine deadlines are stored
    as {e remaining ticks} and re-anchored on the loading catalog's
    {!clock} — logical clocks are per-instance, absolute deadlines
    would not survive a restart.  [h_last_error] is deliberately not
    persisted (a stale diagnosis); counts, backoff, deadline and the
    degraded flag are. *)

val health_filename : string
(** ["catalog.health"] — the conventional file name inside a catalog
    directory (next to {!manifest_filename}). *)

val save_health : ?io:Xpest_util.Fault.Io.t -> t -> string -> unit
(** Write the health table to [path], crash-safely
    ({!Xpest_util.Fault.atomic_write}: temp file + atomic rename, a
    killed process never leaves a torn file).  The format (v3) also
    carries the circuit breaker's state as a [!breaker] directive
    line, with its probe deadline stored as remaining ticks like
    quarantine deadlines.  [io] substitutes the write interface
    (write-abort injection under test).
    @raise Sys_error on I/O failure (the temp file is cleaned up). *)

val load_health : t -> string -> (int, E.t) result
(** Merge the health file at [path] into the catalog
    ([Hashtbl.replace] per key — on-file state wins; a persisted
    breaker state is re-anchored on this catalog's {!clock}) and
    return how many keys were loaded.  Accepts v2 and v1 files (v1:
    no breaker line).  Forward compatibility (v3 files only): an
    unknown [!directive] line — one whose first tab-field is not
    [!breaker] — is skipped and counted in
    [stats.skipped_directives], so state written by a newer binary
    still loads; a malformed [!breaker] is still corruption.
    Otherwise all-or-nothing: a malformed file is
    [Error (Corrupt {section = "health"; _})] and changes nothing
    (skipped-directive counts included); an unreadable one is
    [Error (Io_failure _)]. *)

val clock : t -> int
(** The catalog's logical clock: one tick per acquire attempt (each
    routed group of {!estimate_batch_r} is one attempt).  Quarantine
    deadlines are expressed on this clock, which is what makes
    backoff deterministic under test. *)

val last_batch_metrics : t -> (key * (string * int) list) list
(** Per-key observability-counter deltas of the most recent
    {!estimate_batch_r} (or {!estimate_batch}) call, in the batch's
    group order: each group is bracketed by
    {!Xpest_util.Counters.snapshot}, so the rows are attributable per
    summary even though counters are process-global (see the caveat
    in [counters.mli]).  Empty when counters were disabled during the
    batch, or before any batch ran. *)

val keys_by_recency : t -> key list
(** Resident keys in retention order: under the default segmented
    policy the protected segment first (most-recent first), then
    probationary — the reverse of eviction order; under a plain-LRU
    [resident_policy], most-recently used first (test/debug aid). *)

(** {1 Pinning}

    A pinned key's summary is never evicted (it still counts against
    the resident budget).  Pins are sticky on the {e key}: pinning a
    key that is not resident yet takes effect when it is next loaded,
    and a pin survives [remove]/eviction of the entry.  The CLI's
    [catalog estimate --pin KEY] uses this to keep hot tenants'
    summaries resident across cold scans. *)

val pin : t -> key -> unit
val unpin : t -> key -> unit
val pinned : t -> key -> bool
