(** Control flow of the staged serving pipeline.

    {!Xpest_catalog.Catalog.estimate_batch_r} is four stages:

    {v
      route ──▶ acquire ──▶ execute
                  ▲
                  │ await (in route order)
                load  (the only I/O stage; fans out on a Loader_pool)
    v}

    - {b route}: group queries by key, keeping the keys'
      first-appearance order (pure, {!route}).
    - {b acquire}: the serving state machine — clock ticks, residency
      probes and evictions, retry/quarantine bookkeeping.  Always
      single-owner: commits run on the calling domain, one key at a
      time, strictly in route order, so every stateful decision happens
      in exactly the order the sequential loop made it.
    - {b load}: the only stage that touches I/O.  Under a concurrent
      {!Xpest_util.Loader_pool} policy, loads whose necessity the
      planner can prove in advance ([ops.prefetchable]) are submitted
      before their acquire turn and awaited at the in-order commit
      point; all other loads run inline at commit, exactly like the
      blocking path.
    - {b execute}: per-key query groups, either eagerly on the caller
      right after each commit (overlapping the remaining loads) or
      fanned across an execute pool once all commits are done.

    Why acquire stays single-owner: eviction, quarantine and clock
    decisions are each a function of all prior decisions, so any second
    owner would need a total order anyway — and the bit-identity
    contract (results, errors, stats equal to the sequential path at
    every pool size) falls out of keeping the one order we already
    have.  The pipeline gains its overlap purely from the stages that
    are {e not} stateful: loads (pure per-key I/O) and execution
    (disjoint output slots, synchronized plan cache).

    This module owns only control flow; {!Xpest_catalog.Catalog}
    supplies the stage bodies and the planning predicate. *)

type ('k, 'q) routed = {
  pairs : ('k * 'q) array;
  order : 'k array;  (** distinct keys, first-appearance order *)
  groups : ('k, int array) Hashtbl.t;
      (** key -> indices into [pairs], ascending *)
}

val route : ('k * 'q) array -> ('k, 'q) routed
(** Group a batch by key.  Deterministic: depends only on the array
    (structural key equality), never on scheduling. *)

val group_count : ('k, 'q) routed -> int
val group_indices : ('k, 'q) routed -> 'k -> int array

(** Stage bodies, supplied by the catalog. *)
type ('k, 'load, 'est, 'err) ops = {
  prefetchable : 'k -> bool;
      (** Called once per routed key, in route order, only under a
          concurrent loader policy.  Must not mutate serving state.
          [true] promises the key's acquire will call the loader with
          an outcome independent of the commits before it — the planner
          may under-approximate (a missed prefetch just loads inline)
          but must never over-approximate. *)
  load : 'k -> 'load;
      (** The I/O body.  Under a concurrent policy it may run on a
          loader domain: it must be thread-safe and must not touch
          acquire state (bookkeeping belongs to [commit]). *)
  commit : 'k -> prefetched:'load Xpest_util.Loader_pool.future option -> ('est, 'err) result;
      (** One acquire step: tick, probe, await-or-load, book.  Runs on
          the calling domain, in route order, never concurrently. *)
  group_begin : 'k -> unit;
  group_end : 'k -> unit;
      (** Bracket one group's commit+execute for per-group metric
          attribution; meaningful only when both stages run inline
          (blocking loads, no execute pool) — pass no-ops otherwise. *)
}

val run :
  ?pool:Xpest_util.Domain_pool.t ->
  loads:Xpest_util.Loader_pool.t ->
  ops:('k, 'load, 'est, 'err) ops ->
  fail:('err -> int array -> unit) ->
  execute:('est -> int array -> unit) ->
  execute_chunked:(Xpest_util.Domain_pool.t -> 'est -> int array -> unit) ->
  ('k, 'q) routed ->
  unit
(** Drive the stages over one routed batch.  [fail] marks a group's
    output slots with its acquire error; [execute] runs one group's
    queries; [execute_chunked] is the one-surviving-group case where
    the group's own plans chunk across the execute pool.  With a
    blocking loader policy and no execute pool (or size 1) this is
    observationally the sequential serving loop. *)
