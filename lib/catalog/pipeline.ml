(* The staged serving pipeline behind [Catalog.estimate_batch_r].

   Stages, in order:

     route    group queries by key, first-appearance order (pure)
     acquire  clock ticks, health/retry/quarantine bookkeeping,
              eviction decisions — single-owner, strictly in route
              order ([ops.commit])
     load     the only stage that touches I/O ([ops.load]), fanned out
              through a [Loader_pool] ahead of each key's acquire turn
              when the planner can prove the acquire will need it
     execute  per-key query groups, on the caller or a domain pool

   The catalog supplies the stage bodies; this module owns only the
   control flow, so the ordering contract lives in one place:

   - [ops.prefetchable] is called once per routed key, in route order,
     and only when the loader policy is concurrent.  It must not
     mutate serving state; it answers "will this key's acquire
     definitely call the loader, with an outcome independent of the
     commits before it?".  Keys it approves have [ops.load] submitted
     immediately; everyone else loads inline at commit time, exactly
     like the blocking path.
   - [ops.commit] runs on the calling domain, one key at a time, in
     route order — the acquire state machine never has two owners.  A
     prefetched future is passed when one was submitted; awaiting it
     at the commit point is what keeps blocking-policy loads on the
     sequential schedule.
   - Execution never mutates acquire state (estimators write disjoint
     output slots; the shared plan cache is synchronized), so the
     execute stage may interleave with later commits without
     observable effect: when loads are fanned out and no execute pool
     is given, each group executes eagerly right after its commit,
     overlapping the remaining loads — that overlap is the pipeline's
     whole point. *)

module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool

type ('k, 'q) routed = {
  pairs : ('k * 'q) array;
  order : 'k array;  (* distinct keys, first-appearance order *)
  groups : ('k, int array) Hashtbl.t;  (* key -> indices into pairs *)
}

let route pairs =
  let tmp : ('k, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun i (k, _) ->
      match Hashtbl.find_opt tmp k with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.add tmp k (ref [ i ]);
          order := k :: !order)
    pairs;
  let order = Array.of_list (List.rev !order) in
  let groups = Hashtbl.create (Array.length order) in
  Array.iter
    (fun k ->
      Hashtbl.add groups k (Array.of_list (List.rev !(Hashtbl.find tmp k))))
    order;
  { pairs; order; groups }

let group_count r = Array.length r.order
let group_indices r k = Hashtbl.find r.groups k

type ('k, 'load, 'est, 'err) ops = {
  prefetchable : 'k -> bool;
      (* route order, concurrent policies only; must not mutate *)
  load : 'k -> 'load;  (* pure I/O; may run on a loader domain *)
  commit : 'k -> prefetched:'load Loader_pool.future option -> ('est, 'err) result;
      (* single-owner acquire step, route order *)
  group_begin : 'k -> unit;  (* sequential-mode metric bracketing *)
  group_end : 'k -> unit;
}

let run ?pool ~loads ~ops ~fail ~execute ~execute_chunked routed =
  (* load stage: start provable-miss loads before their acquire turn *)
  let futures : ('k, 'load Loader_pool.future) Hashtbl.t = Hashtbl.create 8 in
  if Loader_pool.concurrent loads then
    Array.iter
      (fun k ->
        if ops.prefetchable k then
          Hashtbl.replace futures k
            (Loader_pool.submit loads (fun () -> ops.load k)))
      routed.order;
  let exec_pool =
    match pool with Some p when Domain_pool.size p > 1 -> Some p | _ -> None
  in
  match exec_pool with
  | None ->
      (* acquire and execute fused: commit in route order, run each
         group as soon as its estimator is in hand — while the loader
         pool keeps filling the remaining futures *)
      Array.iter
        (fun k ->
          let idxs = group_indices routed k in
          ops.group_begin k;
          (match ops.commit k ~prefetched:(Hashtbl.find_opt futures k) with
          | Ok est -> execute est idxs
          | Error e -> fail e idxs);
          ops.group_end k)
        routed.order
  | Some pool -> (
      (* acquire stage first (still single-owner, route order), then
         fan the surviving groups across the execute pool *)
      let acquired =
        Array.to_list routed.order
        |> List.filter_map (fun k ->
               let idxs = group_indices routed k in
               match ops.commit k ~prefetched:(Hashtbl.find_opt futures k) with
               | Ok est -> Some (est, idxs)
               | Error e ->
                   fail e idxs;
                   None)
      in
      match acquired with
      | [ (est, idxs) ] ->
          (* one group: chunk its own plans across the pool instead *)
          execute_chunked pool est idxs
      | acquired ->
          Domain_pool.run_all pool
            (Array.of_list
               (List.map (fun (est, idxs) () -> execute est idxs) acquired)))
