(* Admission control for the serving catalog: deadline budgets, load
   shedding, and a circuit breaker on the loader seam.

   Everything here is deliberately *deterministic*: decisions are a
   pure function of the configuration, the catalog's logical clock,
   and the order in which the single-owner commit path consults the
   controller.  No wall time, no live queue depths, no scheduler
   state — so a shed schedule reproduces bit-for-bit at any domain
   count, and the differential twins can compare an admission-
   controlled run against an uncontrolled one outcome by outcome.

   The cost model mirrors the catalog's logical clock: serving a
   resident key costs 1 tick, a cold load costs [load_cost] modeled
   ticks.  A batch gets [deadline] ticks of budget; a query whose
   modeled cost no longer fits the remaining budget is shed before any
   I/O happens.  [max_queued_loads] bounds the cold loads one batch
   may admit (which also bounds the prefetch fan-in, since the planner
   only prefetches provably-admittable groups).

   The circuit breaker watches the loader seam: [breaker_threshold]
   consecutive load failures — or [breaker_saturation] consecutive
   batches that hit the queue bound — open it.  While open, cold
   loads are shed immediately; after a cooldown measured on the
   logical clock a single half-open probe load is admitted, closing
   the breaker on success and reopening it with a doubled (capped)
   cooldown on failure.  The cooldown constants deliberately mirror
   the per-key quarantine backoff (base 16, cap 256): one mental model
   for both layers, except the breaker guards the loader as a whole
   where quarantine guards one key. *)

module E = Xpest_util.Xpest_error
module Counters = Xpest_util.Counters

type policy = Reject | Degrade

let policy_to_string = function Reject -> "reject" | Degrade -> "degrade"

let policy_of_string = function
  | "reject" -> Some Reject
  | "degrade" -> Some Degrade
  | _ -> None

type config = {
  deadline : int option;
  max_queued_loads : int option;
  breaker_threshold : int option;
  breaker_saturation : int;
  load_cost : int;
  policy : policy;
}

let breaker_cooldown_base = 16
let breaker_cooldown_max = 256

let unlimited =
  {
    deadline = None;
    max_queued_loads = None;
    breaker_threshold = None;
    breaker_saturation = 4;
    load_cost = 8;
    policy = Degrade;
  }

type breaker_state = Closed | Open of { until : int } | Half_open

type t = {
  config : config;
  (* breaker: survives across batches (and the health file) *)
  mutable breaker : breaker_state;
  mutable failures : int;  (* consecutive loader failures *)
  mutable cooldown : int;  (* next open's cooldown, doubling, capped *)
  mutable breaker_idle : int;
      (* breaker-refused load attempts since the breaker opened.  Shed
         groups never advance the catalog's logical clock, so a
         workload the open breaker sheds entirely would freeze the
         clock and keep the breaker open forever; counting the
         refusals themselves as recovery time breaks that livelock
         while staying a pure function of the decision sequence. *)
  mutable saturated_batches : int;  (* consecutive batches at the queue bound *)
  (* per-batch ledger, reset by [batch_begin] *)
  mutable remaining : int;  (* deadline ticks left in this batch *)
  mutable loads_admitted : int;  (* cold loads admitted this batch *)
  mutable batch_saturated : bool;  (* this batch hit the queue bound *)
  (* lifetime stats *)
  mutable deadline_sheds : int;
  mutable overload_sheds : int;
  mutable breaker_sheds : int;
  mutable breaker_opens : int;
  mutable probes : int;
}

let c_shed = Counters.create "admission.sheds"
let c_breaker_open = Counters.create "admission.breaker_opens"
let c_probe = Counters.create "admission.probes"

let validate config =
  if config.load_cost < 1 then
    invalid_arg "Admission.create: load_cost must be >= 1";
  if config.breaker_saturation < 1 then
    invalid_arg "Admission.create: breaker_saturation must be >= 1";
  let nonneg = function Some n when n < 0 -> true | _ -> false in
  if nonneg config.deadline || nonneg config.max_queued_loads then
    invalid_arg "Admission.create: budgets must be >= 0";
  (match config.breaker_threshold with
  | Some n when n < 1 -> invalid_arg "Admission.create: breaker_threshold must be >= 1"
  | _ -> ())

let create config =
  validate config;
  {
    config;
    breaker = Closed;
    failures = 0;
    cooldown = breaker_cooldown_base;
    breaker_idle = 0;
    saturated_batches = 0;
    remaining = max_int;
    loads_admitted = 0;
    batch_saturated = false;
    deadline_sheds = 0;
    overload_sheds = 0;
    breaker_sheds = 0;
    breaker_opens = 0;
    probes = 0;
  }

let config t = t.config
let policy t = t.config.policy

let active t =
  t.config.deadline <> None
  || t.config.max_queued_loads <> None
  || t.config.breaker_threshold <> None

let breaker_enabled t = t.config.breaker_threshold <> None

let batch_begin t =
  if active t then begin
    t.remaining <- (match t.config.deadline with Some d -> d | None -> max_int);
    t.loads_admitted <- 0;
    t.batch_saturated <- false
  end

let open_breaker t ~clock =
  t.breaker <- Open { until = clock + t.cooldown };
  t.breaker_idle <- 0;
  t.breaker_opens <- t.breaker_opens + 1;
  Counters.incr c_breaker_open

type decision = Admit of { probe : bool } | Shed of E.t

let shed t e =
  Counters.incr c_shed;
  (match e with
  | E.Deadline_exceeded _ -> t.deadline_sheds <- t.deadline_sheds + 1
  | _ -> ());
  Shed e

let decide t ~clock ~key ~would_load =
  if not (active t) then Admit { probe = false }
  else begin
    let cost = if would_load then t.config.load_cost else 1 in
    (* deadline first: a query that no longer fits the batch budget is
       refused outright, breaker state untouched (no probe wasted on a
       query we could not afford anyway) *)
    if cost > t.remaining then
      shed t (E.Deadline_exceeded { key; needed = cost; remaining = t.remaining })
    else if
      (* queue bound: only cold loads occupy the load queue *)
      would_load
      && (match t.config.max_queued_loads with
         | Some m -> t.loads_admitted >= m
         | None -> false)
    then begin
      t.batch_saturated <- true;
      t.overload_sheds <- t.overload_sheds + 1;
      shed t (E.Overloaded (Printf.sprintf "load queue saturated for %s" key))
    end
    else begin
      (* breaker: gates cold loads only — resident keys keep serving
         while the loader seam is suspect *)
      let gate =
        if not (would_load && breaker_enabled t) then `Pass
        else
          match t.breaker with
          | Closed -> `Pass
          | Half_open -> `Refuse
          (* cooldown elapses on the logical clock plus the refusals
             themselves: shed groups don't tick the clock, so without
             the idle term a fully-shed workload could never probe *)
          | Open { until } when clock + t.breaker_idle >= until -> `Probe
          | Open _ -> `Refuse
      in
      match gate with
      | `Refuse ->
          t.breaker_idle <- t.breaker_idle + 1;
          t.breaker_sheds <- t.breaker_sheds + 1;
          shed t
            (E.Overloaded
               (Printf.sprintf "circuit breaker open, load refused for %s" key))
      | (`Pass | `Probe) as gate ->
          let probe = gate = `Probe in
          if probe then begin
            (* cooldown elapsed: this load is the half-open probe *)
            t.breaker <- Half_open;
            t.probes <- t.probes + 1;
            Counters.incr c_probe
          end;
          t.remaining <- t.remaining - cost;
          if would_load then t.loads_admitted <- t.loads_admitted + 1;
          Admit { probe }
    end
  end

(* A sketch-tier answer costs what a resident hit costs: one budget
   tick.  It never occupies the load queue and never consults the
   breaker, so the last rung of the degradation ladder can itself
   never be shed — the budget may go (deterministically) negative,
   which only makes later decides refuse sooner. *)
let charge_sketch_answer t =
  if active t then t.remaining <- t.remaining - 1

let note_load_result t ~clock ~ok =
  if active t && breaker_enabled t then
    if ok then begin
      (match t.breaker with
      | Half_open ->
          (* probe succeeded: close and forgive the cooldown *)
          t.breaker <- Closed;
          t.cooldown <- breaker_cooldown_base
      | Closed | Open _ -> ());
      t.failures <- 0
    end
    else begin
      t.failures <- t.failures + 1;
      match t.breaker with
      | Half_open ->
          (* probe failed: reopen, back off harder *)
          t.cooldown <- min (2 * t.cooldown) breaker_cooldown_max;
          open_breaker t ~clock
      | Closed ->
          (match t.config.breaker_threshold with
          | Some k when t.failures >= k -> open_breaker t ~clock
          | Some _ | None -> ())
      | Open _ -> ()
    end

let batch_end t ~clock =
  if active t && breaker_enabled t then begin
    if t.batch_saturated then
      t.saturated_batches <- t.saturated_batches + 1
    else t.saturated_batches <- 0;
    if t.saturated_batches >= t.config.breaker_saturation then begin
      (match t.breaker with Closed -> open_breaker t ~clock | Open _ | Half_open -> ());
      t.saturated_batches <- 0
    end
  end

(* Worst-case admissibility for the prefetch planner.  A prefetched
   load whose group is later shed would have consumed keyed-injector
   attempts for a result nobody uses — breaking bit-identity across
   load-domain counts.  So the planner only prefetches groups whose
   admission is *provable* against the worst case of the
   [groups_before] groups ordered ahead of it: each could cost a full
   load, each could occupy a queue slot, and each could fail and push
   the breaker toward its threshold.  Conservative by design — a
   group that is not provable is simply loaded inline at commit (same
   outcomes, no overlap). *)
let provable t ~groups_before =
  if not (active t) then true
  else
    groups_before >= 0
    && t.remaining - (groups_before * t.config.load_cost) >= t.config.load_cost
    && (match t.config.max_queued_loads with
       | Some m -> t.loads_admitted + groups_before < m
       | None -> true)
    && (match t.config.breaker_threshold with
       | None -> true
       | Some k -> (
           match t.breaker with
           | Closed -> t.failures + groups_before < k
           | Open _ | Half_open -> false))

(* Observability and persistence *)

type breaker_view = {
  state : [ `Closed | `Open | `Half_open ];
  remaining_ticks : int;
  consecutive_failures : int;
  cooldown : int;
}

let breaker t ~clock =
  let state, remaining_ticks =
    match t.breaker with
    | Closed -> (`Closed, 0)
    | Half_open -> (`Half_open, 0)
    | Open { until } -> (`Open, max 0 (until - clock - t.breaker_idle))
  in
  { state; remaining_ticks; consecutive_failures = t.failures; cooldown = t.cooldown }

let restore_breaker t ~clock view =
  t.breaker_idle <- 0;
  (match view.state with
  | `Closed -> t.breaker <- Closed
  | `Half_open -> t.breaker <- Half_open
  | `Open ->
      (* re-anchor on the restoring catalog's clock, the same way
         quarantine deadlines are re-anchored on load *)
      t.breaker <-
        (if view.remaining_ticks > 0 then Open { until = clock + view.remaining_ticks }
         else Open { until = clock }));
  t.failures <- max 0 view.consecutive_failures;
  t.cooldown <-
    min breaker_cooldown_max (max breaker_cooldown_base view.cooldown)

type stats = {
  s_deadline_sheds : int;
  s_overload_sheds : int;
  s_breaker_sheds : int;
  s_breaker_opens : int;
  s_probes : int;
}

let stats t =
  {
    s_deadline_sheds = t.deadline_sheds;
    s_overload_sheds = t.overload_sheds;
    s_breaker_sheds = t.breaker_sheds;
    s_breaker_opens = t.breaker_opens;
    s_probes = t.probes;
  }

let total_sheds s = s.s_deadline_sheds + s.s_overload_sheds + s.s_breaker_sheds
