(** Admission control, deadline budgets, and load shedding for the
    serving catalog.

    An [Admission.t] sits on the catalog's single-owner commit path
    and answers one question per query group: given the logical clock
    and whether serving this key needs a cold load, may it run now?
    Refusals come back as typed errors
    ({!Xpest_util.Xpest_error.Deadline_exceeded} /
    {!Xpest_util.Xpest_error.Overloaded}) before any I/O happens, so
    an overloaded catalog fails fast instead of queueing itself to
    death.

    {2 Cost model}

    Costs are modeled on the catalog's logical clock: a resident hit
    costs 1 tick, a cold load costs {!config.load_cost} ticks
    (default 8 — a load verifies, decodes, and possibly evicts; it is
    roughly an order of magnitude heavier than a cache probe).  Each
    batch gets {!config.deadline} ticks of budget; a query whose
    modeled cost exceeds the remaining budget is shed with
    [Deadline_exceeded] carrying exactly how short the budget fell.
    {!config.max_queued_loads} bounds the cold loads one batch may
    admit — the load-queue pressure valve.

    {2 Circuit breaker}

    {!config.breaker_threshold} consecutive loader failures — or
    {!config.breaker_saturation} consecutive batches that hit the
    queue bound — open a circuit breaker over the loader seam.  While
    open, cold loads are shed ([Overloaded]) but resident keys keep
    serving.  After a cooldown measured on the logical clock (base 16
    ticks, doubling per reopen, capped at 256 — deliberately the same
    constants as per-key quarantine), one half-open probe load is
    admitted: success closes the breaker, failure reopens it with a
    doubled cooldown.  Because shed groups never advance the catalog's
    logical clock, the cooldown also elapses on the breaker's own
    refusals — otherwise a workload the open breaker sheds entirely
    would freeze the clock and livelock the breaker open.

    {2 Determinism}

    Decisions are a pure function of (configuration, logical clock,
    decision order).  The commit path consults the controller in
    routed order on one domain; nothing here reads wall time, live
    queue depths, or scheduler state.  Hence the contract the
    differential twins enforce: a shed schedule is bit-identical
    across domain counts, and an inactive (or infinite-budget)
    controller leaves the catalog's behavior byte-identical to having
    no controller at all. *)

type policy =
  | Reject  (** shed queries fail with the typed error *)
  | Degrade
      (** shed queries fall back to an already-resident sibling
          variance of the same dataset when one exists (answer marked
          degraded), and fail typed otherwise *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type config = {
  deadline : int option;
      (** per-batch tick budget; [None] = unbounded *)
  max_queued_loads : int option;
      (** cold loads admitted per batch; [None] = unbounded *)
  breaker_threshold : int option;
      (** consecutive loader failures that open the breaker; [None]
          disables the breaker entirely *)
  breaker_saturation : int;
      (** consecutive queue-saturated batches that open the breaker
          (only meaningful when the breaker is enabled) *)
  load_cost : int;  (** modeled ticks per cold load (>= 1) *)
  policy : policy;  (** what the catalog does with a shed query *)
}

val unlimited : config
(** No deadline, no queue bound, breaker disabled;
    [breaker_saturation = 4], [load_cost = 8], [policy = Degrade].
    An {!active}-false controller is a guaranteed no-op. *)

val breaker_cooldown_base : int
val breaker_cooldown_max : int
(** 16 and 256 logical ticks — the quarantine backoff constants. *)

type t

val create : config -> t
(** @raise Invalid_argument on malformed bounds (negative budgets,
    [load_cost < 1], [breaker_threshold < 1],
    [breaker_saturation < 1]). *)

val config : t -> config
val policy : t -> policy

val active : t -> bool
(** Any limit set (deadline, queue bound, or breaker).  When [false],
    {!decide} admits everything without touching any state — the
    bit-identity fast path. *)

(** {2 The decision path} *)

val batch_begin : t -> unit
(** Reset the per-batch ledger (deadline budget, admitted-load count,
    saturation flag).  Call once at the top of every batch. *)

type decision =
  | Admit of { probe : bool }
      (** serve it; [probe] marks the breaker's half-open probe load
          (its outcome decides whether the breaker closes) *)
  | Shed of Xpest_util.Xpest_error.t
      (** refuse it, with the typed reason ([Deadline_exceeded] or
          [Overloaded]); no I/O was attempted and no per-key health
          was touched *)

val decide : t -> clock:int -> key:string -> would_load:bool -> decision
(** The stage-boundary check.  [would_load] is the caller's exact
    prediction of whether serving [key] requires a cold load (the
    catalog computes it from residency, quarantine, and prefetch
    state).  Checks run in order: deadline budget, queue bound,
    breaker.  Admission spends the modeled cost from the batch
    budget; shedding spends nothing. *)

val charge_sketch_answer : t -> unit
(** Spend one budget tick for a query answered from the catalog's
    sketch tier — the same cost as a resident hit.  Sketch answers
    never occupy the load queue and never consult the breaker, so the
    degradation ladder's last rung can never itself be shed; the
    budget may go (deterministically) negative, which only makes later
    {!decide}s refuse sooner.  No-op when admission is inactive. *)

val note_load_result : t -> clock:int -> ok:bool -> unit
(** Feed every admitted cold load's outcome (after retries) to the
    breaker: failures count toward {!config.breaker_threshold},
    success resets the streak, and a probe's outcome closes or
    reopens the breaker. *)

val batch_end : t -> clock:int -> unit
(** Close the batch: update the consecutive-saturated-batch streak
    and open the breaker if it reached
    {!config.breaker_saturation}. *)

val provable : t -> groups_before:int -> bool
(** Would a cold load for a group with [groups_before] uncommitted
    groups ordered ahead of it be admitted {e even in the worst
    case} — every earlier group spending a full load, occupying a
    queue slot, and failing?  The prefetch planner only prefetches
    provable groups: a prefetched-then-shed load would consume keyed
    fault-injector attempts for a discarded result and break
    bit-identity across load-domain counts.  Conservative:
    non-provable groups simply load inline at commit. *)

(** {2 Observability and persistence} *)

type breaker_view = {
  state : [ `Closed | `Open | `Half_open ];
  remaining_ticks : int;
      (** ticks until a half-open probe is allowed (0 unless [`Open]) *)
  consecutive_failures : int;
  cooldown : int;  (** the next open's cooldown length *)
}

val breaker : t -> clock:int -> breaker_view
(** Snapshot for stats, [catalog info --health], and the health
    file.  [remaining_ticks] is relative to [clock], matching how
    quarantine deadlines persist. *)

val restore_breaker : t -> clock:int -> breaker_view -> unit
(** Re-anchor a persisted breaker snapshot on this catalog's clock
    (the health-file load path).  Out-of-range fields are clamped. *)

type stats = {
  s_deadline_sheds : int;
  s_overload_sheds : int;  (** queue-bound sheds *)
  s_breaker_sheds : int;
  s_breaker_opens : int;
  s_probes : int;
}

val stats : t -> stats
val total_sheds : stats -> int
