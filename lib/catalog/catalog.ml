module Counters = Xpest_util.Counters
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Pattern = Xpest_xpath.Pattern
module Plan_cache = Xpest_plan.Plan_cache
module Cache_config = Xpest_plan.Cache_config
module Estimator = Xpest_estimator.Estimator

(* Observability: resident-set behavior of the catalog and routing
   volume.  No-ops unless [Counters.set_enabled true]; the unconditional
   duplicates live in [t] so [stats] works without enablement. *)
let c_load = Counters.create "catalog.summary.load"
let c_hit = Counters.create "catalog.summary.hit"
let c_evict = Counters.create "catalog.summary.evict"
let c_batch = Counters.create "catalog.batch.calls"
let c_routed = Counters.create "catalog.batch.queries"
let c_groups = Counters.create "catalog.batch.groups"
let t_load = Counters.create_timer "catalog.summary.load"

(* ------------------------------------------------------------------ *)
(* Keys.                                                               *)

type key = { dataset : string; variance : float }

let key_to_string k = Printf.sprintf "%s@%g" k.dataset k.variance

let key_of_string s =
  let mk dataset variance =
    if String.length dataset = 0 then
      Error (Printf.sprintf "catalog key %S: empty dataset" s)
    else Ok { dataset; variance }
  in
  match String.index_opt s '@' with
  | None -> mk s 0.0
  | Some i -> (
      let dataset = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt v with
      | Some variance when variance >= 0.0 && Float.is_finite variance ->
          mk dataset variance
      | Some _ | None ->
          Error
            (Printf.sprintf
               "catalog key %S: variance %S is not a non-negative number" s v))

let key_filename k =
  (* '@' is legal in file names but hostile to shells; keep names tame *)
  Printf.sprintf "%s_v%g.syn" k.dataset k.variance

(* ------------------------------------------------------------------ *)
(* The catalog: a bounded LRU of resident summaries, each paired with
   its pooled estimator.  The estimator pool shares one compiled-plan
   cache: plans are summary-independent, so a query compiled for one
   summary is a plan-cache hit when routed to any other.               *)

type resident = { summary : Summary.t; estimator : Estimator.t }

type t = {
  loader : key -> Summary.t;
  config : Cache_config.t;
  chain_pruning : bool option;
  plans : (Pattern.t, Xpest_plan.Plan.t) Plan_cache.t;  (* pool-shared *)
  residents : (key, resident) Plan_cache.t;
  mutable loads : int;
  mutable hits : int;
  mutable last_metrics : (key * (string * int) list) list;
}

let default_resident_capacity = 8

let create ?(resident_capacity = default_resident_capacity) ?config
    ?chain_pruning ~loader () =
  if resident_capacity < 1 then
    invalid_arg "Catalog.create: resident_capacity must be >= 1";
  let config = match config with Some c -> c | None -> Cache_config.default in
  {
    loader;
    config;
    chain_pruning;
    plans = Estimator.create_plan_cache ~capacity:config.Cache_config.plan ();
    residents =
      Plan_cache.create ~capacity:resident_capacity ~hit:c_hit ~miss:c_load
        ~evict:c_evict ();
    loads = 0;
    hits = 0;
    last_metrics = [];
  }

let acquire t key =
  match Plan_cache.find_opt t.residents key with
  | Some r ->
      t.hits <- t.hits + 1;
      r.estimator
  | None ->
      let summary = Counters.time t_load (fun () -> t.loader key) in
      let estimator =
        Estimator.create ?chain_pruning:t.chain_pruning ~config:t.config
          ~plans:t.plans summary
      in
      t.loads <- t.loads + 1;
      Plan_cache.add t.residents key { summary; estimator };
      estimator

(* ------------------------------------------------------------------ *)
(* File-backed catalogs.                                               *)

let manifest_filename = "catalog.manifest"

let save_entry ~dir manifest key summary =
  let file = key_filename key in
  let path = Filename.concat dir file in
  Summary.save summary path;
  let i = Synopsis_io.info path in
  Manifest.add manifest
    {
      Manifest.dataset = key.dataset;
      variance = key.variance;
      file;
      bytes = i.Synopsis_io.total_bytes;
      checksum = i.Synopsis_io.checksum;
    }

let manifest_loader ~dir manifest key =
  match
    Manifest.find manifest ~dataset:key.dataset ~variance:key.variance
  with
  | None ->
      invalid_arg
        (Printf.sprintf "catalog: no entry for key %s in the manifest"
           (key_to_string key))
  | Some e ->
      let path = Filename.concat dir e.Manifest.file in
      let i = Synopsis_io.info path in
      if
        i.Synopsis_io.total_bytes <> e.Manifest.bytes
        || not (Int64.equal i.Synopsis_io.checksum e.Manifest.checksum)
      then
        invalid_arg
          (Printf.sprintf
             "catalog: %s does not match its manifest entry (expected %d \
              bytes, checksum %016Lx; found %d bytes, checksum %016Lx) — \
              rebuild the catalog"
             path e.Manifest.bytes e.Manifest.checksum i.Synopsis_io.total_bytes
             i.Synopsis_io.checksum)
      else Synopsis_io.load path

let of_manifest ?resident_capacity ?config ?chain_pruning ~dir manifest =
  create ?resident_capacity ?config ?chain_pruning
    ~loader:(manifest_loader ~dir manifest)
    ()

(* ------------------------------------------------------------------ *)
(* Routing.                                                            *)

let estimate t key q = Estimator.estimate (acquire t key) q

let estimate_batch t pairs =
  Counters.incr c_batch;
  Counters.add c_routed (Array.length pairs);
  let out = Array.make (Array.length pairs) 0.0 in
  (* group indices by key, keeping the keys' first-appearance order *)
  let groups : (key, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun i (k, _) ->
      match Hashtbl.find_opt groups k with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.add groups k (ref [ i ]);
          order := k :: !order)
    pairs;
  let order = List.rev !order in
  Counters.add c_groups (List.length order);
  let metrics = ref [] in
  List.iter
    (fun k ->
      let idxs = Array.of_list (List.rev !(Hashtbl.find groups k)) in
      let qs = Array.map (fun i -> snd pairs.(i)) idxs in
      (* bracket the whole group — load included — with counter
         snapshots, so the delta is attributable to this summary *)
      let before = Counters.snapshot () in
      let est = acquire t k in
      let vs = Estimator.estimate_many est qs in
      let after = Counters.snapshot () in
      (match Counters.delta_between before after with
      | [] -> ()
      | delta -> metrics := (k, delta) :: !metrics);
      Array.iteri (fun j i -> out.(i) <- vs.(j)) idxs)
    order;
  t.last_metrics <- List.rev !metrics;
  out

(* ------------------------------------------------------------------ *)
(* Observability.                                                      *)

type stats = {
  resident : int;
  resident_capacity : int;
  loads : int;
  hits : int;
  evictions : int;
  plan_cache : Plan_cache.stats;
}

let stats t =
  {
    resident = Plan_cache.length t.residents;
    resident_capacity = Plan_cache.capacity t.residents;
    loads = t.loads;
    hits = t.hits;
    evictions = Plan_cache.evictions t.residents;
    plan_cache = Plan_cache.stats t.plans;
  }

let last_batch_metrics t = t.last_metrics
let keys_by_recency t = Plan_cache.keys_by_recency t.residents
