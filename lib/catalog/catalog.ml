module Counters = Xpest_util.Counters
module Fault = Xpest_util.Fault
module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module E = Xpest_util.Xpest_error
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Sketch = Xpest_synopsis.Sketch
module Pattern = Xpest_xpath.Pattern
module Plan = Xpest_plan.Plan
module Plan_cache = Xpest_plan.Plan_cache
module Bounded_cache = Xpest_util.Bounded_cache
module Cache_config = Xpest_plan.Cache_config
module Estimator = Xpest_estimator.Estimator
module Sketch_exec = Xpest_estimator.Sketch_exec

(* Observability: resident-set behavior of the catalog, routing volume,
   and the fault-tolerance state machine.  No-ops unless
   [Counters.set_enabled true]; the unconditional duplicates live in
   [t] so [stats]/[health] work without enablement. *)
let c_load = Counters.create "catalog.summary.load"
let c_hit = Counters.create "catalog.summary.hit"
let c_evict = Counters.create "catalog.summary.evict"
let c_batch = Counters.create "catalog.batch.calls"
let c_routed = Counters.create "catalog.batch.queries"
let c_groups = Counters.create "catalog.batch.groups"
let c_retry = Counters.create "catalog.load_retries"
let c_fail = Counters.create "catalog.load_failures"
let c_quarantine = Counters.create "catalog.quarantined"
let c_quarantine_skip = Counters.create "catalog.quarantine_skips"
let c_degraded = Counters.create "catalog.degraded_hits"
let c_prefetch = Counters.create "catalog.prefetched_loads"
let c_shed = Counters.create "catalog.shed_queries"
let c_fallback = Counters.create "catalog.fallback_queries"
let c_sketch = Counters.create "catalog.sketch_queries"
let c_sketch_hit = Counters.create "catalog.sketch.hit"
let c_sketch_miss = Counters.create "catalog.sketch.miss"
let c_sketch_evict = Counters.create "catalog.sketch.evict"
let t_load = Counters.create_timer "catalog.summary.load"

(* ------------------------------------------------------------------ *)
(* Keys.                                                               *)

type key = { dataset : string; variance : float }

(* Shortest decimal that parses back to the same float: "%g" when it
   round-trips (the common case: 0, 2, 2.5), "%.17g" otherwise — so
   key strings and file names never silently merge two variances. *)
let fmt_variance v =
  let s = Printf.sprintf "%g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

let key_to_string k = Printf.sprintf "%s@%s" k.dataset (fmt_variance k.variance)

let key_of_string s =
  let mk dataset variance =
    if String.length dataset = 0 then
      Error (Printf.sprintf "catalog key %S: empty dataset" s)
    else Ok { dataset; variance }
  in
  (* the LAST '@' splits off the variance, so dataset names may
     themselves contain '@' (their printed form always carries an
     explicit variance) *)
  match String.rindex_opt s '@' with
  | None -> mk s 0.0
  | Some i -> (
      let dataset = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt v with
      | Some variance when variance >= 0.0 && Float.is_finite variance ->
          mk dataset variance
      | Some _ | None ->
          Error
            (Printf.sprintf
               "catalog key %S: variance %S is not a finite non-negative \
                number" s v))

(* File names must be shell-safe, collision-free and invertible for any
   dataset string, so everything outside [A-Za-z0-9.-] is %XX-escaped —
   in particular '_' and '%', which makes the "_v" separator the only
   '_' in the name and the whole encoding unambiguous. *)
let safe_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '-'

let escape_dataset d =
  let buf = Buffer.create (String.length d + 8) in
  String.iter
    (fun c ->
      if safe_char c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    d;
  Buffer.contents buf

let unescape_dataset s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated %-escape"
      else
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            go (i + 3)
        | _ -> Error (Printf.sprintf "bad %%-escape %S" (String.sub s i 3))
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let syn_suffix = ".syn"

let key_filename k =
  Printf.sprintf "%s_v%s%s" (escape_dataset k.dataset) (fmt_variance k.variance)
    syn_suffix

let key_of_filename name =
  let err reason = Error (Printf.sprintf "synopsis file name %S: %s" name reason) in
  let sn = String.length syn_suffix and n = String.length name in
  if n <= sn || String.sub name (n - sn) sn <> syn_suffix then
    err "missing .syn suffix"
  else
    let stem = String.sub name 0 (n - sn) in
    match String.index_opt stem '_' with
    | None -> err "missing _v separator"
    | Some i ->
        if i + 1 >= String.length stem || stem.[i + 1] <> 'v' then
          err "missing _v separator"
        else
          let enc = String.sub stem 0 i in
          let v = String.sub stem (i + 2) (String.length stem - i - 2) in
          let variance =
            match float_of_string_opt v with
            | Some f when f >= 0.0 && Float.is_finite f -> Ok f
            | Some _ | None ->
                Error
                  (Printf.sprintf "variance %S is not a finite non-negative \
                                   number" v)
          in
          (match unescape_dataset enc with
          | Error reason -> err reason
          | Ok "" -> err "empty dataset"
          | Ok dataset -> (
              match variance with
              | Error reason -> err reason
              | Ok variance -> Ok { dataset; variance }))

(* ------------------------------------------------------------------ *)
(* Resilience policy and per-key health.

   Time is a logical clock that advances one tick per acquire attempt
   (one resident-set probe), so the quarantine/backoff state machine is
   deterministic under test and independent of wall-clock jitter.

   The state machine per key:

     Healthy --load failure x failure_threshold--> Quarantined(backoff)
     Quarantined: acquire attempts are refused without I/O until the
       clock reaches [until]; the first attempt at/after [until] probes
       the loader.  Probe failure re-quarantines with doubled backoff
       (capped at backoff_max); probe success resets to Healthy and
       backoff_base.
     Degraded: the key is resident but its manifest re-verification
       failed and [stale_if_error] kept serving the in-memory copy;
       cleared by the next successful verification or reload.          *)

type resilience = {
  max_retries : int;
  failure_threshold : int;
  backoff_base : int;
  backoff_max : int;
  verify_resident : bool;
  stale_if_error : bool;
  max_tracked : int;
}

let default_resilience =
  {
    max_retries = 2;
    failure_threshold = 3;
    backoff_base = 4;
    backoff_max = 64;
    verify_resident = false;
    stale_if_error = true;
    max_tracked = 4096;
  }

type hstate = {
  mutable consecutive : int;
  mutable failures : int;
  mutable retries : int;
  mutable quarantines : int;
  mutable degraded_hits : int;
  mutable backoff : int;  (* length of the next quarantine, in ticks *)
  mutable until : int;  (* quarantined while clock < until *)
  mutable is_degraded : bool;
  mutable last_error : E.t option;
}

type health_state = Healthy | Quarantined of { until : int } | Degraded

type key_health = {
  h_key : key;
  h_state : health_state;
  h_consecutive_failures : int;
  h_failures : int;
  h_retries : int;
  h_quarantines : int;
  h_degraded_hits : int;
  h_next_backoff : int;
  h_last_error : E.t option;
}

(* ------------------------------------------------------------------ *)
(* The catalog: a bounded set of resident summaries, each paired with
   its pooled estimator.  The estimator pool shares one compiled-plan
   cache: plans are summary-independent, so a query compiled for one
   summary is a plan-cache hit when routed to any other.

   Residency runs on the segmented (scan-resistant) policy by default:
   a cyclic scan over more tenants than fit resident is LRU's worst
   case — every access evicts the summary it will need next round —
   while under the segmented policy the re-used (twice-touched)
   summaries sit in the protected segment and survive the scan (the
   eviction-policy item in ROADMAP.md, measured by the s1_thrash bench
   section).  [~resident_policy] restores plain LRU for comparison.

   The bound is either the historical entry count
   ([resident_capacity]) or, when [config.resident_bytes] is set, a
   byte budget costed by the exact wire size of each resident summary
   ([Summary.size_bytes]) — tenants' summaries differ by an order of
   magnitude, so counting entries either wastes memory on small ones
   or blows the budget on big ones.  Hot keys can be pinned
   ([pin]/[unpin]): pinned summaries still count against the budget
   but are never evicted.  Which summaries are resident never affects
   estimates — values are pure functions of (summary, plan).           *)

type resident = { summary : Summary.t; estimator : Estimator.t }

(* One rung below the resident set: a pinned per-dataset fallback
   sketch paired with its executor (built once at install). *)
type sketch_resident = { sketch : Sketch.t; sexec : Sketch_exec.t }

(* How each query slot of the last batch was answered, parallel to the
   result array — the degradation ladder's rungs: served exactly
   (Served), served degraded from a resident sibling variance
   (Fallback), served coarsely from the dataset's fallback sketch
   (Sketch), or shed outright. *)
type slot_status = Served | Fallback of key | Sketch | Shed

(* What the execute stage runs a group against: the exact tier's
   pooled estimator, or the sketch tier's executor.  The pipeline is
   polymorphic in this type, so tiering never touches pipeline.ml. *)
type served = Exact of Estimator.t | Via_sketch of Sketch_exec.t

type t = {
  loader : key -> (Summary.t, E.t) result;
  verify : key -> (unit, E.t) result;
  config : Cache_config.t;
  chain_pruning : bool option;
  resilience : resilience;
  admission : Admission.t;
  plans : (Pattern.t, Plan.t) Plan_cache.t;  (* pool-shared *)
  residents : (key, resident) Bounded_cache.t;
  (* the ladder's last rung: per-dataset fallback sketches, pinned in
     their own byte-budgeted region the resident evictor never sees *)
  sketches : (string, sketch_resident) Bounded_cache.t;
  health_tbl : (key, hstate) Hashtbl.t;
  mutable clock : int;
  mutable loads : int;
  mutable hits : int;
  mutable failures : int;
  mutable retries : int;
  mutable quarantines : int;
  mutable degraded_hits : int;
  mutable prefetches : int;
  mutable sheds : int;  (* queries refused by admission control *)
  mutable fallbacks : int;
      (* shed or load-failed queries served by a resident sibling *)
  mutable sketch_served : int;  (* queries answered from the sketch tier *)
  mutable sketch_failures : int;
      (* sketches that could not be installed: over budget, unreadable,
         corrupt, or stale against the manifest *)
  mutable skipped_directives : int;
      (* unknown !directive lines skipped by v3 health-state loads *)
  mutable last_metrics : (key * (string * int) list) list;
  mutable last_statuses : slot_status array;
}

let default_resident_capacity = 8

(* Sketches are hundreds of bytes to a few KiB each; 256 KiB pins a
   last-resort answer tier for hundreds of datasets. *)
let default_sketch_bytes = 262144

let create_r ?(resident_capacity = default_resident_capacity)
    ?(resident_policy = Bounded_cache.segmented) ?config ?chain_pruning
    ?(resilience = default_resilience) ?(admission = Admission.unlimited)
    ?(sketch_bytes = default_sketch_bytes) ?(verify = fun _ -> Ok ()) ~loader
    () =
  if resident_capacity < 1 then
    invalid_arg "Catalog.create: resident_capacity must be >= 1";
  if sketch_bytes < 1 then
    invalid_arg "Catalog.create: sketch_bytes must be >= 1";
  if
    resilience.max_retries < 0 || resilience.failure_threshold < 1
    || resilience.backoff_base < 1
    || resilience.backoff_max < resilience.backoff_base
    || resilience.max_tracked < 1
  then invalid_arg "Catalog.create: malformed resilience policy";
  let config = match config with Some c -> c | None -> Cache_config.default in
  (* [config.resident_bytes] switches the resident bound from entry
     count to a byte budget: each resident costs its exact wire size. *)
  let resident_budget, resident_cost =
    match config.Cache_config.resident_bytes with
    | None -> (resident_capacity, None)
    | Some bytes ->
        if bytes < 1 then
          invalid_arg "Catalog.create: resident_bytes must be >= 1";
        (bytes, Some (fun _ r -> Summary.size_bytes r.summary))
  in
  {
    loader;
    verify;
    config;
    chain_pruning;
    resilience;
    admission = Admission.create admission;
    (* both shared caches are synchronized: parallel batches compile
       plans from worker domains, and synchronization on the resident
       set costs one uncontended try_lock per acquire otherwise *)
    plans =
      Estimator.create_plan_cache ~capacity:config.Cache_config.plan
        ~synchronized:true ();
    residents =
      Bounded_cache.create ~capacity:resident_budget ~policy:resident_policy
        ?cost:resident_cost ~synchronized:true ~hit:c_hit ~miss:c_load
        ~evict:c_evict ();
    (* the sketch region is byte-budgeted by exact wire size and only
       ever touched from the single-owner commit path, so it needs no
       synchronization; entries are pinned at install and admission is
       pre-checked, so it can neither evict nor overshoot *)
    sketches =
      Bounded_cache.create ~capacity:sketch_bytes
        ~cost:(fun _ sr -> Sketch.size_bytes sr.sketch)
        ~hit:c_sketch_hit ~miss:c_sketch_miss ~evict:c_sketch_evict ();
    health_tbl = Hashtbl.create 16;
    clock = 0;
    loads = 0;
    hits = 0;
    failures = 0;
    retries = 0;
    quarantines = 0;
    degraded_hits = 0;
    prefetches = 0;
    sheds = 0;
    fallbacks = 0;
    sketch_served = 0;
    sketch_failures = 0;
    skipped_directives = 0;
    last_metrics = [];
    last_statuses = [||];
  }

(* Install one dataset's fallback sketch into the pinned region.
   Admission is pre-checked against the byte budget: [Bounded_cache]
   admits a pinned entry over budget when nothing is evictable (by
   design — see bounded_cache.mli), and a last-resort tier that could
   silently outgrow its budget would defeat the point of having one.
   Re-installing a dataset replaces its sketch.  The executor is built
   here, once, not per query. *)
let install_sketch t dataset sketch =
  Bounded_cache.remove t.sketches dataset;
  let size = max 1 (Sketch.size_bytes sketch) in
  let st = Bounded_cache.stats t.sketches in
  if st.Bounded_cache.s_cost + size > st.Bounded_cache.s_capacity then begin
    t.sketch_failures <- t.sketch_failures + 1;
    Error
      (E.Capacity
         (Printf.sprintf
            "catalog sketch region full (%d + %d > %d bytes); refusing \
             sketch for %s"
            st.Bounded_cache.s_cost size st.Bounded_cache.s_capacity dataset))
  end
  else begin
    Bounded_cache.pin t.sketches dataset;
    Bounded_cache.add t.sketches dataset
      { sketch; sexec = Sketch_exec.create sketch };
    Ok ()
  end

(* The ladder is armed by provisioning: a catalog holding at least one
   fallback sketch opts its failure paths into degraded answers. *)
let ladder_armed t = Bounded_cache.length t.sketches > 0

(* Raising-loader form, for in-memory sources: escaped exceptions are
   classified so legacy loaders still flow through the typed machinery. *)
let create ?resident_capacity ?resident_policy ?config ?chain_pruning
    ?resilience ?admission ?sketch_bytes ~loader () =
  let typed_loader k =
    match loader k with
    | s -> Ok s
    | exception Sys_error reason ->
        Error (E.Io_failure { path = key_to_string k; reason })
    | exception E.Error e -> Error e
    | exception Invalid_argument reason | exception Failure reason ->
        Error (E.Internal reason)
  in
  create_r ?resident_capacity ?resident_policy ?config ?chain_pruning
    ?resilience ?admission ?sketch_bytes ~loader:typed_loader ()

(* -------------------- health bookkeeping -------------------- *)

let fresh_hstate t =
  {
    consecutive = 0;
    failures = 0;
    retries = 0;
    quarantines = 0;
    degraded_hits = 0;
    backoff = t.resilience.backoff_base;
    until = 0;
    is_degraded = false;
    last_error = None;
  }

(* Drop fully-healthy entries when the table reaches its bound; the
   bound only bites under a storm of distinct failing keys. *)
let prune_health t =
  if Hashtbl.length t.health_tbl >= t.resilience.max_tracked then begin
    let victims =
      Hashtbl.fold
        (fun k h acc ->
          if h.consecutive = 0 && h.until <= t.clock && not h.is_degraded then
            k :: acc
          else acc)
        t.health_tbl []
    in
    List.iter (Hashtbl.remove t.health_tbl) victims
  end

(* Hard-bounded tracking for cold keys: a flood of never-loadable keys
   must not grow the health table without limit. *)
let hstate_tracked t key =
  match Hashtbl.find_opt t.health_tbl key with
  | Some h -> Ok h
  | None ->
      prune_health t;
      if Hashtbl.length t.health_tbl >= t.resilience.max_tracked then
        Error
          (E.Capacity
             (Printf.sprintf
                "catalog health table full (%d unhealthy keys tracked); \
                 refusing to track %s"
                (Hashtbl.length t.health_tbl)
                (key_to_string key)))
      else begin
        let h = fresh_hstate t in
        Hashtbl.add t.health_tbl key h;
        Ok h
      end

(* Soft form for resident keys (bounded by the resident set anyway). *)
let hstate_force t key =
  match Hashtbl.find_opt t.health_tbl key with
  | Some h -> h
  | None ->
      prune_health t;
      let h = fresh_hstate t in
      Hashtbl.add t.health_tbl key h;
      h

let note_success t (h : hstate) =
  h.consecutive <- 0;
  h.until <- 0;
  h.backoff <- t.resilience.backoff_base;
  h.is_degraded <- false;
  h.last_error <- None

let note_failure t (h : hstate) e =
  h.consecutive <- h.consecutive + 1;
  h.failures <- h.failures + 1;
  h.last_error <- Some e;
  t.failures <- t.failures + 1;
  Counters.incr c_fail;
  if h.consecutive >= t.resilience.failure_threshold then begin
    h.until <- t.clock + h.backoff;
    h.backoff <- min (2 * h.backoff) t.resilience.backoff_max;
    h.quarantines <- h.quarantines + 1;
    t.quarantines <- t.quarantines + 1;
    Counters.incr c_quarantine
  end

(* The retry loop, split from its bookkeeping so the loop itself is
   pure serving-state-wise: it only calls the loader.  That is what
   lets the pipeline run it on a loader domain ahead of the key's
   acquire turn — the consumed-retry count travels with the result and
   is booked at the single-owner commit point. *)
let load_with_policy t key =
  let rec go attempt retries =
    match t.loader key with
    | Ok s -> (Ok s, retries)
    | Error e when E.transient e && attempt < t.resilience.max_retries ->
        go (attempt + 1) (retries + 1)
    | Error e -> (Error e, retries)
  in
  go 0 0

(* One load, timed; safe on any domain (Counters are atomic, the timer
   is mutex-guarded). *)
let load_job t key () = Counters.time t_load (fun () -> load_with_policy t key)

let book_retries t (h : hstate) retries =
  if retries > 0 then begin
    h.retries <- h.retries + retries;
    t.retries <- t.retries + retries;
    Counters.add c_retry retries
  end

(* -------------------- acquisition -------------------- *)

(* One acquire step.  [prefetched] is the pipeline's seam: when the
   load stage already has this key's load in flight (or deferred), the
   commit awaits it here — at exactly the point the blocking path would
   have called the loader — and books the outcome; otherwise the load
   runs inline.  Everything else (clock, residency, health) is
   identical either way. *)
let acquire_with t ~prefetched key =
  t.clock <- t.clock + 1;
  match Bounded_cache.find_opt t.residents key with
  | Some r ->
      t.hits <- t.hits + 1;
      if not t.resilience.verify_resident then Ok r.estimator
      else (
        match t.verify key with
        | Ok () ->
            (match Hashtbl.find_opt t.health_tbl key with
            | Some h ->
                h.is_degraded <- false;
                h.last_error <- None
            | None -> ());
            Ok r.estimator
        | Error e ->
            let h = hstate_force t key in
            if t.resilience.stale_if_error then begin
              (* degraded mode: the in-memory copy verified when it was
                 loaded; serving it beats failing the query *)
              h.is_degraded <- true;
              h.last_error <- Some e;
              h.degraded_hits <- h.degraded_hits + 1;
              t.degraded_hits <- t.degraded_hits + 1;
              Counters.incr c_degraded;
              Ok r.estimator
            end
            else begin
              Bounded_cache.remove t.residents key;
              note_failure t h e;
              Error e
            end)
  | None -> (
      match hstate_tracked t key with
      | Error e -> Error e
      | Ok h ->
          if t.clock < h.until then begin
            Counters.incr c_quarantine_skip;
            Error (E.Quarantined { key = key_to_string key; until = h.until })
          end
          else begin
            let result, retries =
              match prefetched with
              | Some fut -> Loader_pool.await fut
              | None -> load_job t key ()
            in
            book_retries t h retries;
            match result with
            | Ok summary ->
                let estimator =
                  Estimator.create ?chain_pruning:t.chain_pruning
                    ~config:t.config ~plans:t.plans summary
                in
                t.loads <- t.loads + 1;
                note_success t h;
                Bounded_cache.add t.residents key { summary; estimator };
                Ok estimator
            | Error e ->
                note_failure t h e;
                Error e
          end)

let acquire_r t key = acquire_with t ~prefetched:None key

let acquire t key =
  match acquire_r t key with
  | Ok est -> est
  | Error e -> invalid_arg (E.to_string e)

(* ------------------------------------------------------------------ *)
(* File-backed catalogs.                                               *)

let manifest_filename = "catalog.manifest"

let save_entry ~dir manifest key summary =
  let file = key_filename key in
  let path = Filename.concat dir file in
  Summary.save summary path;
  let i = Synopsis_io.info path in
  Manifest.add manifest
    {
      Manifest.dataset = key.dataset;
      variance = key.variance;
      file;
      bytes = i.Synopsis_io.total_bytes;
      checksum = i.Synopsis_io.checksum;
    }

let sketch_suffix = ".sketch"
let sketch_filename dataset = escape_dataset dataset ^ sketch_suffix

(* One fallback sketch per dataset, next to its summaries, registered
   in the manifest's sketch table with the same size+checksum
   discipline as synopsis entries. *)
let save_sketch ~dir manifest dataset sketch =
  let file = sketch_filename dataset in
  let path = Filename.concat dir file in
  Sketch.save sketch path;
  let i = Synopsis_io.info path in
  Manifest.add_sketch manifest
    {
      Manifest.s_dataset = dataset;
      s_file = file;
      s_bytes = i.Synopsis_io.total_bytes;
      s_checksum = i.Synopsis_io.checksum;
    }

(* Re-verification of one manifest entry against the on-disk file:
   shared by the lazy loader, resident re-validation and the CLI's
   health report. *)
let manifest_check ?io ~dir (e : Manifest.entry) =
  let path = Filename.concat dir e.Manifest.file in
  match Synopsis_io.info_typed ?io path with
  | Error err -> Error err
  | Ok i ->
      if not i.Synopsis_io.checksum_ok then
        (* the read itself is damaged, so the size/checksum comparison
           below would misdiagnose a transient fault as staleness —
           report corruption (retryable) instead *)
        Error
          (E.Corrupt
             {
               path;
               section = "body";
               reason = "checksum mismatch (corrupted or truncated read)";
             })
      else if
        i.Synopsis_io.total_bytes <> e.Manifest.bytes
        || not (Int64.equal i.Synopsis_io.checksum e.Manifest.checksum)
      then
        Error
          (E.Stale_manifest
             {
               path;
               reason =
                 Printf.sprintf
                   "expected %d bytes, checksum %016Lx; found %d bytes, \
                    checksum %016Lx — rebuild the catalog"
                   e.Manifest.bytes e.Manifest.checksum
                   i.Synopsis_io.total_bytes i.Synopsis_io.checksum;
             })
      else Ok path

let manifest_entry manifest key =
  match
    Manifest.find manifest ~dataset:key.dataset ~variance:key.variance
  with
  | None -> Error (E.Unknown_key (key_to_string key))
  | Some e -> Ok e

let manifest_verify ?io ~dir manifest key =
  match manifest_entry manifest key with
  | Error e -> Error e
  | Ok e -> ( match manifest_check ?io ~dir e with Error e -> Error e | Ok _ -> Ok ())

let manifest_loader ?io ~dir manifest key =
  match manifest_entry manifest key with
  | Error e -> Error e
  | Ok e -> (
      match manifest_check ?io ~dir e with
      | Error e -> Error e
      | Ok path -> Synopsis_io.load_typed ?io path)

(* Sketch files get the same re-verification discipline as synopsis
   files: size + body checksum against the manifest before decoding. *)
let sketch_check ?io ~dir (e : Manifest.sketch_entry) =
  let path = Filename.concat dir e.Manifest.s_file in
  match Synopsis_io.info_typed ?io path with
  | Error err -> Error err
  | Ok i ->
      if not i.Synopsis_io.checksum_ok then
        Error
          (E.Corrupt
             {
               path;
               section = "body";
               reason = "checksum mismatch (corrupted or truncated read)";
             })
      else if
        i.Synopsis_io.total_bytes <> e.Manifest.s_bytes
        || not (Int64.equal i.Synopsis_io.checksum e.Manifest.s_checksum)
      then
        Error
          (E.Stale_manifest
             {
               path;
               reason =
                 Printf.sprintf
                   "expected %d bytes, checksum %016Lx; found %d bytes, \
                    checksum %016Lx — rebuild the catalog"
                   e.Manifest.s_bytes e.Manifest.s_checksum
                   i.Synopsis_io.total_bytes i.Synopsis_io.checksum;
             })
      else Ok path

let load_sketch ?io ~dir (e : Manifest.sketch_entry) =
  match sketch_check ?io ~dir e with
  | Error e -> Error e
  | Ok path -> Sketch.load_typed ?io path

let of_manifest ?resident_capacity ?resident_policy ?config ?chain_pruning
    ?resilience ?admission ?sketch_bytes ?io ~dir manifest =
  let t =
    create_r ?resident_capacity ?resident_policy ?config ?chain_pruning
      ?resilience ?admission ?sketch_bytes
      ~verify:(manifest_verify ?io ~dir manifest)
      ~loader:(manifest_loader ?io ~dir manifest)
      ()
  in
  (* The sketch tier is always-resident by construction: every
     manifest sketch is read eagerly here, while storage is presumed
     healthy, never lazily on the failure path it exists to cover.  A
     sketch that cannot be installed (unreadable, corrupt, stale, or
     over budget) is counted, not fatal — it only narrows the ladder
     back to PR-era behavior for its dataset. *)
  List.iter
    (fun (e : Manifest.sketch_entry) ->
      match load_sketch ?io ~dir e with
      | Error _ -> t.sketch_failures <- t.sketch_failures + 1
      | Ok sketch -> ignore (install_sketch t e.Manifest.s_dataset sketch))
    manifest.Manifest.sketches;
  t

(* ------------------------------------------------------------------ *)
(* Routing.                                                            *)

let estimate_r t key q =
  match acquire_r t key with
  | Ok est -> Estimator.try_estimate est q
  | Error e -> Error e

let estimate t key q = Estimator.estimate (acquire t key) q

(* -------------------- admission support -------------------- *)

(* Exact prediction of whether acquiring [key] right now would call
   the loader — [acquire_with]'s decision tree evaluated one tick
   ahead (acquire ticks the clock before anything else).  Admission
   charges [load_cost] only when this is [true]; a quarantine or
   capacity refusal costs a plain tick like a hit.  Uses only
   non-mutating probes ([Bounded_cache.mem], table lookups), so a
   prediction for a group that ends up shed leaves no trace. *)
let would_load t key =
  (not (Bounded_cache.mem t.residents key))
  && (match Hashtbl.find_opt t.health_tbl key with
     | Some h -> t.clock + 1 >= h.until
     | None ->
         (* mirror [hstate_tracked]: room in the table, or the prune
            it triggers would free at least one fully-healthy slot *)
         Hashtbl.length t.health_tbl < t.resilience.max_tracked
         || Hashtbl.fold
              (fun _ h free ->
                free
                || (h.consecutive = 0 && h.until <= t.clock + 1
                   && not h.is_degraded))
              t.health_tbl false)

(* The degraded fallback tier: an already-resident summary of the same
   dataset, nearest by |Δvariance| (ties broken toward the smaller
   variance), chosen with a non-promoting fold so the probe neither
   touches recency nor depends on the fold's visit order — the
   comparator is a strict total order over the dataset's resident
   variances, so the winner is a pure function of the resident set. *)
let resident_sibling t key =
  Bounded_cache.fold
    (fun k r best ->
      if not (String.equal k.dataset key.dataset) then best
      else
        match best with
        | None -> Some (k, r)
        | Some (bk, _) ->
            let d = Float.abs (k.variance -. key.variance)
            and bd = Float.abs (bk.variance -. key.variance) in
            if d < bd || (d = bd && k.variance < bk.variance) then Some (k, r)
            else best)
    t.residents None

(* Which acquire failures the ladder may absorb: unhealthy-storage and
   pressure refusals.  [Unknown_key] stays an error (the query is
   malformed, not the storage) and so does [Internal] (a bug must
   surface, not be papered over with a coarse estimate). *)
let rung_eligible = function
  | E.Io_failure _ | E.Corrupt _ | E.Stale_manifest _ | E.Quarantined _
  | E.Capacity _ | E.Deadline_exceeded _ | E.Overloaded _ ->
      true
  | E.Unknown_key _ | E.Internal _ -> false

(* [find_opt] promotes and counts hits, but the sketch region is
   all-pinned so recency is inert — the lookup is effect-free on
   eviction order. *)
let sketch_of t dataset = Bounded_cache.find_opt t.sketches dataset

(* Routed batches run the staged pipeline (see pipeline.mli): route,
   then a single-owner acquire scan in route order, with loads fanned
   out ahead of their turn when a concurrent [Loader_pool] policy is
   given and execution fanned out when a domain pool is.  The acquire
   scan is [acquire_with] — the same state machine as [acquire_r] —
   so clock ticks, LRU probes and evictions, loader outcomes, retries
   and quarantine transitions happen in exactly the sequential order,
   and acquire-side [Error]s and {!stats} are identical to the blocking
   path at any load/execute fan-out.  An acquired estimator stays valid
   even if a later acquire evicts its key: the resident set drops its
   reference, not the object. *)

(* Planning predicate for the load stage (concurrent loader policies
   only; route order).  [true] must {e prove} the key's acquire will
   call the loader with an outcome independent of the commits before
   it:

   - non-resident keys stay non-resident until their own commit
     (nothing else in the batch adds them), so a miss is certain;
   - quarantine is exactly predictable: the key's acquire runs at
     clock [t.clock + position + 1] (one tick per routed key), and only
     the key's own acquire mutates its health state — batch keys are
     distinct;
   - the health-table capacity guard over-counts possible additions
     (any key without an entry may add one, and re-additions of pruned
     entries never exceed their removals), so a [true] can never meet
     a [Capacity] refusal at commit.

   Resident keys are never prefetched: an earlier commit may evict
   them, in which case their own commit loads inline — still the exact
   sequential schedule for that key.  Under-approximation is the safe
   direction throughout: a skipped prefetch only costs overlap.

   Admission control adds two proof obligations.  First, a prefetched
   group must be provably admitted at its commit ([Admission.provable]
   against the worst case of every earlier group): a prefetched load
   whose group is then shed would consume keyed-injector attempts for
   a discarded result and break bit-identity across load-domain
   counts.  Second, shed groups do not tick the clock, so the exact
   clock-at-turn prediction degrades to a range; the quarantine check
   then uses the earliest possible clock (every earlier group shed) —
   conservative, never wrong. *)
let prefetch_planner t =
  let pos = ref 0 in
  let will_add = ref 0 in
  fun key ->
    incr pos;
    let clock_at_turn =
      if Admission.active t.admission then t.clock + 1 else t.clock + !pos
    in
    let has_entry = Hashtbl.mem t.health_tbl key in
    let decision =
      (not (Bounded_cache.mem t.residents key))
      && (match Hashtbl.find_opt t.health_tbl key with
         | Some h -> clock_at_turn >= h.until
         | None -> true)
      && Hashtbl.length t.health_tbl + !will_add < t.resilience.max_tracked
      && Admission.provable t.admission ~groups_before:(!pos - 1)
    in
    if not has_entry then incr will_add;
    if decision then begin
      t.prefetches <- t.prefetches + 1;
      Counters.incr c_prefetch
    end;
    decision

let estimate_batch_r ?pool ?loads t pairs =
  Counters.incr c_batch;
  Counters.add c_routed (Array.length pairs);
  Admission.batch_begin t.admission;
  let out =
    Array.make (Array.length pairs)
      (Error (E.Internal "catalog: unrouted query slot") : (float, E.t) result)
  in
  let routed = Pipeline.route pairs in
  Counters.add c_groups (Pipeline.group_count routed);
  let loads = match loads with Some l -> l | None -> Loader_pool.blocking in
  (* Per-group counter attribution needs commit and execute inline, in
     order, with nothing else running (see counters.mli) — only the
     fully sequential shape qualifies; pipelined or pooled batches
     clear [last_metrics] instead of lying. *)
  let seq_metrics =
    (not (Loader_pool.concurrent loads))
    && (match pool with Some p -> Domain_pool.size p <= 1 | None -> true)
  in
  let metrics = ref [] in
  let group_begin, group_end =
    if seq_metrics then (
      let before = ref (Counters.snapshot ()) in
      ( (fun _ -> before := Counters.snapshot ()),
        fun k ->
          (* bracket the whole group — load included — with counter
             snapshots, so the delta is attributable to this summary *)
          match Counters.delta_between !before (Counters.snapshot ()) with
          | [] -> ()
          | delta -> metrics := (k, delta) :: !metrics ))
    else ((fun _ -> ()), fun _ -> ())
  in
  (* Per-group statuses, recorded on the single-owner commit path and
     materialized per slot after the run (only exceptional statuses
     are stored; everything else is [Served]). *)
  let gstatus : (key, slot_status) Hashtbl.t = Hashtbl.create 4 in
  let group_size k = Array.length (Pipeline.group_indices routed k) in
  (* The ladder's lower rungs, shared by both failure paths (admission
     shed, failed acquire): a resident sibling variance first, the
     dataset's pinned sketch second.  Both run at the single-owner
     commit point, so rung choice is a pure function of sequential
     catalog state — deterministic at any fan-out. *)
  let fallback_rung k =
    match resident_sibling t k with
    | Some (sib, r) ->
        let n = group_size k in
        t.fallbacks <- t.fallbacks + n;
        Counters.add c_fallback n;
        Hashtbl.replace gstatus k (Fallback sib);
        Some (Exact r.estimator)
    | None -> (
        match sketch_of t k.dataset with
        | Some sr ->
            let n = group_size k in
            t.sketch_served <- t.sketch_served + n;
            Counters.add c_sketch n;
            Hashtbl.replace gstatus k Sketch;
            Some (Via_sketch sr.sexec)
        | None -> None)
  in
  (* The exact tier, with the ladder under it: an acquire failure of an
     eligible kind (unhealthy storage or pressure — never Unknown_key
     or Internal) degrades instead of erroring, but only when the
     catalog was provisioned with sketches; an unprovisioned catalog
     keeps the historical fail-fast contract bit-for-bit. *)
  let acquire_tiered ~prefetched k =
    match acquire_with t ~prefetched k with
    | Ok est -> Ok (Exact est)
    | Error e -> (
        if not (ladder_armed t && rung_eligible e) then Error e
        else match fallback_rung k with Some s -> Ok s | None -> Error e)
  in
  (* The stage-boundary admission check wraps the acquire step.  A
     shed consults nothing downstream: no clock tick, no I/O, no
     per-key health mutation — the refusal is about the system, not
     the key.  Admitted cold loads report their final outcome to the
     breaker at this same single-owner point, in route order, which is
     what keeps breaker transitions deterministic at any fan-out. *)
  let commit k ~prefetched =
    if not (Admission.active t.admission) then acquire_tiered ~prefetched k
    else begin
      let wl = would_load t k in
      match
        Admission.decide t.admission ~clock:t.clock ~key:(key_to_string k)
          ~would_load:wl
      with
      | Admission.Admit { probe = _ } ->
          let r = acquire_with t ~prefetched k in
          if wl then
            Admission.note_load_result t.admission ~clock:t.clock
              ~ok:(Result.is_ok r);
          (match r with
          | Ok est -> Ok (Exact est)
          | Error e -> (
              if not (ladder_armed t && rung_eligible e) then Error e
              else
                match fallback_rung k with Some s -> Ok s | None -> Error e))
      | Admission.Shed e -> (
          let n = group_size k in
          t.sheds <- t.sheds + n;
          Counters.add c_shed n;
          match
            if Admission.policy t.admission = Admission.Degrade then
              fallback_rung k
            else None
          with
          | Some (Via_sketch _ as s) ->
              (* a sketch answer costs what a resident hit costs, and
                 is never queued — the last rung cannot be shed *)
              Admission.charge_sketch_answer t.admission;
              Ok s
          | Some s -> Ok s
          | None ->
              Hashtbl.replace gstatus k Shed;
              Error e)
    end
  in
  let ops =
    {
      Pipeline.prefetchable = prefetch_planner t;
      load = (fun k -> load_job t k ());
      commit;
      group_begin;
      group_end;
    }
  in
  let slot idxs vs = Array.iteri (fun j i -> out.(i) <- vs.(j)) idxs in
  (* Sketch-tier execution reuses the pool-shared plan IR: the same
     compile (and cache entry) the exact tier would use, so routing
     and dedupe are tier-independent.  Estimation over the label-split
     synopsis is pure, so no fan-out is needed for bit-identity —
     sketch groups always run inline. *)
  let sketch_one sx q =
    match
      Sketch_exec.estimate_plan sx (Plan_cache.find_or_add t.plans q Plan.compile)
    with
    | v -> Ok v
    | exception E.Error e -> Error e
    | exception exn -> Error (E.Internal (Printexc.to_string exn))
  in
  let execute est idxs =
    match est with
    | Exact est ->
        slot idxs
          (Estimator.try_estimate_many est
             (Array.map (fun i -> snd pairs.(i)) idxs))
    | Via_sketch sx ->
        slot idxs (Array.map (fun i -> sketch_one sx (snd pairs.(i))) idxs)
  in
  let execute_chunked pool est idxs =
    (* one surviving group: chunk its own plans across the pool *)
    match est with
    | Exact est ->
        slot idxs
          (Estimator.try_estimate_many ~pool est
             (Array.map (fun i -> snd pairs.(i)) idxs))
    | Via_sketch sx ->
        slot idxs (Array.map (fun i -> sketch_one sx (snd pairs.(i))) idxs)
  in
  (* one poisoned key fails its own queries, nobody else's *)
  let fail e idxs = Array.iter (fun i -> out.(i) <- Error e) idxs in
  Pipeline.run ?pool ~loads ~ops ~fail ~execute ~execute_chunked routed;
  Admission.batch_end t.admission ~clock:t.clock;
  t.last_metrics <- (if seq_metrics then List.rev !metrics else []);
  let statuses = Array.make (Array.length pairs) Served in
  Hashtbl.iter
    (fun k st ->
      Array.iter (fun i -> statuses.(i) <- st) (Pipeline.group_indices routed k))
    gstatus;
  t.last_statuses <- statuses;
  out

let estimate_batch ?pool ?loads t pairs =
  Array.map
    (function Ok v -> v | Error e -> invalid_arg (E.to_string e))
    (estimate_batch_r ?pool ?loads t pairs)

(* ------------------------------------------------------------------ *)
(* Observability.                                                      *)

type stats = {
  resident : int;
  resident_capacity : int;
  resident_cost : int;
  resident_bytes : int;
  resident_probationary : int;
  resident_protected : int;
  resident_pinned : int;
  loads : int;
  hits : int;
  evictions : int;
  failures : int;
  retries : int;
  quarantines : int;
  degraded_hits : int;
  prefetched_loads : int;
  shed_queries : int;
  fallback_queries : int;
  sketch_queries : int;
  sketch_resident : int;
  sketch_bytes : int;
  sketch_budget : int;
  sketch_failures : int;
  skipped_directives : int;
  plan_cache : Plan_cache.stats;
  plan_contention : int;
  plan_races : int;
}

let stats t =
  let rs = Bounded_cache.stats t.residents in
  {
    resident = rs.Bounded_cache.s_length;
    resident_capacity = rs.Bounded_cache.s_capacity;
    resident_cost = rs.Bounded_cache.s_cost;
    (* exact bytes regardless of the cost unit: under a byte budget
       this equals [resident_cost]; under the count bound it is still
       the honest memory figure (size_bytes is memoized, so the fold
       costs one encode per summary, once) *)
    resident_bytes =
      Bounded_cache.fold
        (fun _ r acc -> acc + Summary.size_bytes r.summary)
        t.residents 0;
    resident_probationary = rs.Bounded_cache.s_probationary;
    resident_protected = rs.Bounded_cache.s_protected;
    resident_pinned = rs.Bounded_cache.s_pinned;
    loads = t.loads;
    hits = t.hits;
    evictions = rs.Bounded_cache.s_evictions;
    failures = t.failures;
    retries = t.retries;
    quarantines = t.quarantines;
    degraded_hits = t.degraded_hits;
    prefetched_loads = t.prefetches;
    shed_queries = t.sheds;
    fallback_queries = t.fallbacks;
    sketch_queries = t.sketch_served;
    sketch_resident = Bounded_cache.length t.sketches;
    sketch_bytes = (Bounded_cache.stats t.sketches).Bounded_cache.s_cost;
    sketch_budget = Bounded_cache.capacity t.sketches;
    sketch_failures = t.sketch_failures;
    skipped_directives = t.skipped_directives;
    plan_cache = Plan_cache.stats t.plans;
    plan_contention = Plan_cache.contention t.plans;
    plan_races = Plan_cache.races t.plans;
  }

let clock t = t.clock

let key_health_of_hstate t k (h : hstate) =
  {
    h_key = k;
    h_state =
      (if h.until > t.clock then Quarantined { until = h.until }
       else if h.is_degraded then Degraded
       else Healthy);
    h_consecutive_failures = h.consecutive;
    h_failures = h.failures;
    h_retries = h.retries;
    h_quarantines = h.quarantines;
    h_degraded_hits = h.degraded_hits;
    h_next_backoff = h.backoff;
    h_last_error = h.last_error;
  }

let health t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.health_tbl []
  |> List.map (fun (k, h) -> key_health_of_hstate t k h)
  |> List.sort (fun a b ->
         String.compare (key_to_string a.h_key) (key_to_string b.h_key))

(* Operator override: forget a key's accumulated failure history so
   the next acquire probes the loader immediately — quarantine
   deadline, doubled backoff, degraded flag, everything.  Returns the
   state being discarded so the CLI can show what was cleared. *)
let clear_quarantine t key =
  match Hashtbl.find_opt t.health_tbl key with
  | None -> None
  | Some h ->
      let prior = key_health_of_hstate t key h in
      Hashtbl.remove t.health_tbl key;
      Some prior

(* The --all form: forget every tracked key at once.  Returns the
   discarded states (sorted, like [health]) so the CLI can show what
   was cleared.  The circuit breaker is deliberately left alone — it
   guards the loader seam, not any key, and has its own half-open
   recovery path. *)
let clear_all_quarantine t =
  let prior = health t in
  Hashtbl.reset t.health_tbl;
  prior

let last_batch_metrics t = t.last_metrics
let last_batch_statuses t = t.last_statuses
let admission_config t = Admission.config t.admission
let admission_stats t = Admission.stats t.admission
let breaker t = Admission.breaker t.admission ~clock:t.clock
let keys_by_recency t = Bounded_cache.keys_by_recency t.residents

(* Pins are sticky on the key (they survive eviction and apply to the
   next load), so pinning never needs the summary resident yet. *)
let pin t key = Bounded_cache.pin t.residents key
let unpin t key = Bounded_cache.unpin t.residents key
let pinned t key = Bounded_cache.pinned t.residents key

(* ------------------------------------------------------------------ *)
(* Health persistence.

   The per-key failure history (quarantine deadlines, doubled
   backoffs, lifetime counts) is what makes the catalog skip known-bad
   storage without probing it — state worth carrying across process
   restarts.  The format is line-oriented: a magic header, then one
   row per tracked key.  Quarantine deadlines are stored as {e
   remaining} ticks (deadline minus the saving catalog's clock), so a
   loading catalog re-anchors them on its own clock: logical clocks
   are per-instance and absolute deadlines would not survive the
   restart.  [last_error] is not persisted — errors reference live
   paths and reasons that may no longer hold; a restart starts with
   the counts and the deadline, not the stale diagnosis. *)

let health_filename = "catalog.health"
let health_magic = "xpest-catalog-health/3"
let health_magic_v2 = "xpest-catalog-health/2"
let health_magic_v1 = "xpest-catalog-health/1"

(* v2 added one optional directive line right after the magic —
   "!breaker<TAB>state<TAB>remaining<TAB>failures<TAB>cooldown" — for
   the circuit breaker over the loader seam.  '!' cannot start a key
   row (escape_dataset %-encodes it), so the directive space is
   unambiguous.  v3 makes that space forward-compatible: an unknown
   "!name..." directive is skipped (counted in the skipped_directives
   stat) instead of corrupting the whole file, so a binary at this
   version survives state written by a newer one.  A malformed
   "!breaker" is still corruption — a directive we do understand must
   parse.  v2 keeps its stricter all-or-nothing contract ('!' lines
   must be well-formed !breaker directives) and v1 files load
   unchanged (no directives, breaker starts closed). *)
let breaker_state_to_string = function
  | `Closed -> "closed"
  | `Open -> "open"
  | `Half_open -> "half-open"

let breaker_state_of_string = function
  | "closed" -> Some `Closed
  | "open" -> Some `Open
  | "half-open" -> Some `Half_open
  | _ -> None

let save_health ?io t path =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (health_magic ^ "\n");
  let bv = Admission.breaker t.admission ~clock:t.clock in
  Buffer.add_string buf
    (Printf.sprintf "!breaker\t%s\t%d\t%d\t%d\n"
       (breaker_state_to_string bv.Admission.state)
       bv.Admission.remaining_ticks bv.Admission.consecutive_failures
       bv.Admission.cooldown);
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.health_tbl []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (key_to_string a) (key_to_string b))
  |> List.iter (fun (k, (h : hstate)) ->
         Buffer.add_string buf
           (Printf.sprintf "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n"
              (escape_dataset (key_to_string k))
              h.consecutive h.failures h.retries h.quarantines h.degraded_hits
              h.backoff
              (max 0 (h.until - t.clock))
              (if h.is_degraded then 1 else 0)));
  Fault.atomic_write ?io path (Buffer.contents buf)

let load_health t path =
  let corrupt reason = Error (E.Corrupt { path; section = "health"; reason }) in
  let parse_row line =
    match String.split_on_char '\t' line with
    | [ ek; consecutive; failures; retries; quarantines; degraded_hits;
        backoff; remaining; degraded ] -> (
        let ints =
          List.map int_of_string_opt
            [ consecutive; failures; retries; quarantines; degraded_hits;
              backoff; remaining; degraded ]
        in
        match (unescape_dataset ek, ints) with
        | ( Ok ks,
            [ Some consecutive; Some failures; Some retries; Some quarantines;
              Some degraded_hits; Some backoff; Some remaining; Some degraded ] )
          when List.for_all (fun f -> f >= 0)
                 [ consecutive; failures; retries; quarantines; degraded_hits;
                   remaining ]
               && backoff >= 1
               && (degraded = 0 || degraded = 1) -> (
            match key_of_string ks with
            | Error reason -> Error reason
            | Ok key ->
                Ok
                  ( key,
                    {
                      consecutive;
                      failures;
                      retries;
                      quarantines;
                      degraded_hits;
                      backoff;
                      until = (if remaining > 0 then t.clock + remaining else 0);
                      is_degraded = degraded = 1;
                      last_error = None;
                    } ))
        | Error reason, _ -> Error reason
        | Ok _, _ -> Error "malformed counters")
    | _ -> Error "wrong field count"
  in
  let parse_breaker line =
    match String.split_on_char '\t' line with
    | [ "!breaker"; state; remaining; failures; cooldown ] -> (
        match
          ( breaker_state_of_string state,
            int_of_string_opt remaining,
            int_of_string_opt failures,
            int_of_string_opt cooldown )
        with
        | Some state, Some remaining, Some failures, Some cooldown
          when remaining >= 0 && failures >= 0 && cooldown >= 1 ->
            Ok
              {
                Admission.state;
                remaining_ticks = remaining;
                consecutive_failures = failures;
                cooldown;
              }
        | _ -> Error "malformed !breaker directive")
    | _ -> Error "malformed !breaker directive"
  in
  match open_in path with
  | exception Sys_error reason -> Error (E.Io_failure { path; reason })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> corrupt "empty file"
          | magic
            when magic <> health_magic
                 && magic <> health_magic_v2
                 && magic <> health_magic_v1 ->
              corrupt (Printf.sprintf "bad magic %S (want %S)" magic health_magic)
          | magic ->
              (* v2/v3 add '!'-prefixed directives; under v1 no line
                 can start with '!' (escape_dataset %-encodes it), so
                 a directive there is plain corruption.  Under v3 an
                 unknown directive name is skipped and counted, so
                 newer writers don't brick older readers; a known
                 directive ("!breaker") must still parse. *)
              let directives_ok = magic <> health_magic_v1 in
              let skip_unknown = magic = health_magic in
              let is_breaker line =
                match String.index_opt line '\t' with
                | Some i -> String.sub line 0 i = "!breaker"
                | None -> line = "!breaker"
              in
              let breaker = ref None in
              let skipped = ref 0 in
              let rec rows acc lineno =
                match input_line ic with
                | exception End_of_file -> Ok (List.rev acc)
                | "" -> rows acc (lineno + 1)
                | line when directives_ok && String.length line > 0 && line.[0] = '!'
                  ->
                    if skip_unknown && not (is_breaker line) then begin
                      incr skipped;
                      rows acc (lineno + 1)
                    end
                    else (
                      match parse_breaker line with
                      | Ok view ->
                          breaker := Some view;
                          rows acc (lineno + 1)
                      | Error reason ->
                          corrupt (Printf.sprintf "line %d: %s" lineno reason))
                | line -> (
                    match parse_row line with
                    | Ok row -> rows (row :: acc) (lineno + 1)
                    | Error reason ->
                        corrupt (Printf.sprintf "line %d: %s" lineno reason))
              in
              (* parse everything before touching the table: a corrupt
                 file must not half-apply *)
              (match rows [] 2 with
              | Error _ as e -> e
              | Ok rows ->
                  List.iter
                    (fun (key, h) -> Hashtbl.replace t.health_tbl key h)
                    rows;
                  Option.iter
                    (Admission.restore_breaker t.admission ~clock:t.clock)
                    !breaker;
                  t.skipped_directives <- t.skipped_directives + !skipped;
                  Ok (List.length rows)))
