(** Bounded cache for the estimation engine — a thin instantiation of
    {!Xpest_util.Bounded_cache} with unit cost (capacity in entries)
    and plain-LRU replacement by default.

    Backs the estimator's compiled-plan cache and historically also
    the path join's rel/chain/run caches (which now instantiate
    [Bounded_cache] directly).  With the default policy, lookups
    promote an entry to most-recently-used and inserting past capacity
    evicts the least-recently-used entry — bit-identical to the
    standalone LRU this module used to carry.  All operations are
    O(1).

    [t] and [stats] are transparently [Bounded_cache]'s, so call sites
    can mix the two modules freely (e.g. the catalog's byte-budgeted
    resident set reports through the same stats record).

    Hit/miss/evict observability counters are supplied by the caller
    (created once at its module initialization, see
    {!Xpest_util.Counters}); caches themselves are per-estimator
    instances, so creating counters here would duplicate registry
    entries.

    A cache created with [~synchronized:true] is safe to share across
    domains: every operation runs under one internal mutex, contended
    acquisitions are counted ({!contention}), and {!find_or_add}
    computes misses outside the lock — two domains missing the same
    key may both compute, the first insert wins, and the duplicate is
    counted ({!races}).  That is only sound when the compute function
    is a pure function of the key (plan compilation is), so both
    computed values are interchangeable.  The default is
    unsynchronized: a single-domain cache pays no locking at all. *)

type ('k, 'v) t = ('k, 'v) Xpest_util.Bounded_cache.t

val default_capacity : int
(** 4096 entries — documented in DESIGN.md ("Estimation engine"). *)

val create :
  ?capacity:int ->
  ?policy:Xpest_util.Bounded_cache.policy ->
  ?synchronized:bool ->
  ?hit:Xpest_util.Counters.t ->
  ?miss:Xpest_util.Counters.t ->
  ?evict:Xpest_util.Counters.t ->
  unit ->
  ('k, 'v) t
(** [policy] defaults to [Lru] (the historical behaviour),
    [synchronized] to [false].
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val synchronized : ('k, 'v) t -> bool

val contention : ('k, 'v) t -> int
(** Lock acquisitions that found the mutex held and had to wait
    (always 0 for unsynchronized caches).  A cheap congestion signal
    for the pool-shared caches, reported in the parallel bench
    section. *)

val races : ('k, 'v) t -> int
(** {!find_or_add} calls whose computed value was discarded because
    another domain inserted the key first.  Bounds the duplicate work
    the compute-outside-the-lock design admits. *)

val evictions : ('k, 'v) t -> int
(** Total evictions over the cache's lifetime (counted even when the
    global counter switch is off). *)

val peak : ('k, 'v) t -> int
(** Largest occupancy the cache ever reached — the working-set size a
    capacity must cover to avoid evictions (reported per cache in
    [BENCH_engine.json]). *)

type stats = Xpest_util.Bounded_cache.stats = {
  s_capacity : int;
  s_length : int;
  s_peak : int;
  s_evictions : int;
  s_cost : int;
  s_peak_cost : int;
  s_hits : int;
  s_misses : int;
  s_probationary : int;
  s_protected : int;
  s_pinned : int;
}
(** One cache's working-set report, re-exported from
    {!Xpest_util.Bounded_cache.stats}; all fields are tracked
    unconditionally (no counter enablement needed).  Under the default
    unit cost [s_cost] equals [s_length]. *)

val stats : ('k, 'v) t -> stats

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Bumps the hit/miss counter and promotes on hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts (or replaces) as most-recently-used, evicting the LRU
    entry when at capacity. *)

val find_or_add : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v

val remove : ('k, 'v) t -> 'k -> unit
(** Drop one entry (no-op if absent).  Deliberate invalidation — the
    catalog dropping a resident summary it no longer trusts — so it
    does not count as an eviction. *)

val clear : ('k, 'v) t -> unit

val keys_by_recency : ('k, 'v) t -> 'k list
(** Keys from most- to least-recently used (test/debug aid). *)
