(** Capacity and policy knobs for the estimation engine's bounded
    caches.

    The engine keeps four caches per estimator: the compiled-plan
    cache and the path join's tag-relationship, chain-feasibility and
    join-result caches.  They have very different working sets — the
    relationship cache is keyed on (encoding, axis, tag pair) and
    grows with the document's path diversity, while the plan and run
    caches are keyed on query shapes and grow with the workload — so a
    single shared capacity either wastes memory or thrashes the
    smallest cache.  This record gives each cache its own capacity;
    {!default} preserves the historical shared default
    ({!Plan_cache.default_capacity} for every cache).

    Two policy knobs ride along for the {!Xpest_util.Bounded_cache}
    core: [segmented] switches the engine caches from plain LRU to the
    scan-resistant segmented policy (estimates are bit-identical
    either way — the policy only changes which entries stay resident),
    and [resident_bytes] gives the catalog's resident summary set a
    byte budget (costed by [Summary.size_bytes]) instead of the
    count-based bound. *)

type t = {
  plan : int;  (** compiled-plan cache ([Estimator]) *)
  rel : int;  (** tag-relationship cache ([Path_join]) *)
  chain : int;  (** chain-feasibility cache ([Path_join]) *)
  run : int;  (** join-result cache ([Path_join]) *)
  segmented : bool;
      (** segmented-LRU policy for the four engine caches (default
          [false]: historical plain LRU) *)
  resident_bytes : int option;
      (** catalog resident-set byte budget; [None] (default) keeps the
          count-based [resident_capacity] bound *)
}

val default : t
(** Every capacity = {!Plan_cache.default_capacity} (4096), plain LRU,
    no byte budget. *)

val uniform : int -> t
(** One capacity for all four caches — the old [?cache_capacity]
    behavior.  @raise Invalid_argument if [capacity < 1]. *)

val for_dataset : ?bench_json:string -> string -> t
(** Tuned capacities for the benchmark datasets ([ssplays], [dblp],
    [xmark]; case-insensitive), sized from the cache working-set peaks
    recorded in [BENCH_engine.json] — each capacity is the next power
    of two above twice the observed peak (floored at 512), with extra
    headroom for the chain cache, which thrashed at the shared default
    on every dataset.

    With [?bench_json] the peaks are read from that live bench file
    and the capacities derived from them; when the file is missing,
    malformed, or lacks the dataset's cache peaks, the built-in table
    (frozen from the scale-0.1 run) is the fallback — a half-parsed
    file never produces half-tuned capacities.  Unknown names get
    {!default}. *)
