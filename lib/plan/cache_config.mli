(** Per-cache capacity knobs for the estimation engine's bounded LRU
    caches.

    The engine keeps four caches per estimator: the compiled-plan
    cache and the path join's tag-relationship, chain-feasibility and
    join-result caches.  They have very different working sets — the
    relationship cache is keyed on (encoding, axis, tag pair) and
    grows with the document's path diversity, while the plan and run
    caches are keyed on query shapes and grow with the workload — so a
    single shared capacity either wastes memory or thrashes the
    smallest cache.  This record gives each cache its own capacity;
    {!default} preserves the historical shared default
    ({!Plan_cache.default_capacity} for every cache). *)

type t = {
  plan : int;  (** compiled-plan cache ([Estimator]) *)
  rel : int;  (** tag-relationship cache ([Path_join]) *)
  chain : int;  (** chain-feasibility cache ([Path_join]) *)
  run : int;  (** join-result cache ([Path_join]) *)
}

val default : t
(** Every capacity = {!Plan_cache.default_capacity} (4096). *)

val uniform : int -> t
(** One capacity for all four caches — the old [?cache_capacity]
    behavior.  @raise Invalid_argument if [capacity < 1]. *)

val for_dataset : string -> t
(** Tuned capacities for the benchmark datasets ([ssplays], [dblp],
    [xmark]; case-insensitive), sized from the cache working-set peaks
    recorded in [BENCH_engine.json] — each capacity is the next power
    of two above the observed peak, with extra headroom for the chain
    cache, which thrashed at the shared default on every dataset.
    Unknown names get {!default}. *)
