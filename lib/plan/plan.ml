module Pattern = Xpest_xpath.Pattern

(* ------------------------------------------------------------------ *)
(* Equation selection (compile-time dispatch).                         *)

type equation =
  | Theorem_4_1
  | Equation_2
  | Equation_3
  | Equation_4
  | Equation_5
  | Conversion_5_3

let equation_name = function
  | Theorem_4_1 -> "theorem_4_1"
  | Equation_2 -> "equation_2"
  | Equation_3 -> "equation_3"
  | Equation_4 -> "equation_4"
  | Equation_5 -> "equation_5"
  | Conversion_5_3 -> "conversion_5_3"

let equation_doc = function
  | Theorem_4_1 -> "joined frequency of the target node"
  | Equation_2 -> "branch target through the order-free simple query Q'"
  | Equation_3 -> "order-head target scaled by the o-histogram survival ratio"
  | Equation_4 -> "deep order target scaled by the head's survival ratio"
  | Equation_5 -> "trunk target: min of order-free and both head bounds"
  | Conversion_5_3 -> "following/preceding via sibling-axis gap conversion"

let equation_of shape target =
  match ((shape : Pattern.shape), (target : Pattern.position)) with
  | Simple _, _ -> Theorem_4_1
  | Branch _, In_trunk _ -> Theorem_4_1
  | Branch _, (In_branch _ | In_tail _) -> Equation_2
  | Branch _, (In_first _ | In_second _) ->
      invalid_arg "Plan.compile: order position in a branch shape"
  | Ordered { axis = Following | Preceding; _ }, _ -> Conversion_5_3
  | Ordered _, (In_first 0 | In_second 0) -> Equation_3
  | Ordered _, (In_first _ | In_second _) -> Equation_4
  | Ordered _, In_trunk _ -> Equation_5
  | Ordered _, (In_branch _ | In_tail _) ->
      invalid_arg "Plan.compile: branch position in an ordered shape"

(* ------------------------------------------------------------------ *)
(* Compiled join graph.                                                *)

type jnode = { tag : string; position : Pattern.position }
type jedge = { parent : int; child : int; axis : Pattern.axis }

(* One root-to-leaf chain of the query tree: the trunk alone (Simple)
   or the trunk extended by one branch part.  [anchored] is true when
   the head step is a child of the virtual document node ([/n1]);
   [steps] pairs each chain node's incoming axis with its tag;
   [node_ids] indexes the chain back into the node array. *)
type chain = {
  anchored : bool;
  steps : (Pattern.axis * string) list;
  node_ids : int list;
}

type join_spec = {
  shape : Pattern.shape;  (* canonical cache key of the spec *)
  nodes : jnode array;
  edges : jedge list;
  node_axes : Pattern.axis array;
      (* incoming axis per node; the head gets the anchoring axis *)
  first_axis : Pattern.axis;
  chains : chain list;
}

(* Flatten a shape into join nodes, parent-child edges and pattern
   chains.  Ordered shapes join via their counterpart, but node
   positions keep the original flavor so lookups can use
   In_first/In_second. *)
let join_of_shape (shape : Pattern.shape) =
  let nodes = ref [] and edges = ref [] and count = ref 0 in
  let add tag position =
    nodes := { tag; position } :: !nodes;
    incr count;
    !count - 1
  in
  let add_spine spine ~anchor ~pos_of =
    List.fold_left
      (fun (i, parent) (s : Pattern.step) ->
        let id = add s.tag (pos_of i) in
        (match parent with
        | Some p -> edges := { parent = p; child = id; axis = s.axis } :: !edges
        | None -> ());
        (i + 1, Some id))
      (0, anchor) spine
    |> snd
  in
  let head_axis spine =
    match spine with [] -> Pattern.Child | s :: _ -> s.Pattern.axis
  in
  (match shape with
  | Simple spine ->
      ignore (add_spine spine ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i))
  | Branch { trunk; branch; tail } ->
      let attach =
        add_spine trunk ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i)
      in
      ignore (add_spine branch ~anchor:attach ~pos_of:(fun i -> Pattern.In_branch i));
      ignore (add_spine tail ~anchor:attach ~pos_of:(fun i -> Pattern.In_tail i))
  | Ordered { trunk; first; axis; second } ->
      let attach =
        add_spine trunk ~anchor:None ~pos_of:(fun i -> Pattern.In_trunk i)
      in
      ignore (add_spine first ~anchor:attach ~pos_of:(fun i -> Pattern.In_first i));
      (* The counterpart reattaches [second] under the trunk with the
         axis implied by the order axis; Pattern.v has already forced
         the head axis to match, so the spine is usable as-is. *)
      ignore axis;
      ignore (add_spine second ~anchor:attach ~pos_of:(fun i -> Pattern.In_second i)));
  let nodes = Array.of_list (List.rev !nodes) in
  let edges = List.rev !edges in
  let first_axis =
    match shape with
    | Simple spine | Branch { trunk = spine; _ } | Ordered { trunk = spine; _ } ->
        head_axis spine
  in
  let node_axes = Array.make (Array.length nodes) first_axis in
  List.iter (fun { child; axis; _ } -> node_axes.(child) <- axis) edges;
  (* chains of node indices: trunk alone (Simple) or trunk extended by
     each branch part *)
  let chain_ids =
    let len l = List.length l in
    let ids lo n = List.init n (fun i -> lo + i) in
    match shape with
    | Simple spine -> [ ids 0 (len spine) ]
    | Branch { trunk; branch; tail } ->
        let t = len trunk and b = len branch and a = len tail in
        (ids 0 t @ ids t b)
        :: (if a > 0 then [ ids 0 t @ ids (t + b) a ] else [])
    | Ordered { trunk; first; second; _ } ->
        let t = len trunk and f = len first and s = len second in
        [ ids 0 t @ ids t f; ids 0 t @ ids (t + f) s ]
  in
  let chains =
    List.map
      (fun ids ->
        {
          anchored = first_axis = Pattern.Child;
          steps = List.map (fun id -> (node_axes.(id), nodes.(id).tag)) ids;
          node_ids = ids;
        })
      chain_ids
  in
  { shape; nodes; edges; node_axes; first_axis; chains }

(* ------------------------------------------------------------------ *)
(* Equation (2) pre-compilation.                                       *)

(* Equation (2) estimates through the simple query Q' = trunk/own that
   drops the other branch; [ni] is the last trunk node, [pos_in_q']
   the target's position once the branch part is spliced after the
   trunk. *)
type eq2 = {
  q_prime : join_spec;
  pos_in_q' : Pattern.position;
  ni : Pattern.position;
}

let compile_eq2 ~trunk ~own ~own_index =
  {
    q_prime = join_of_shape (Pattern.Simple (trunk @ own));
    pos_in_q' = Pattern.In_trunk (List.length trunk + own_index);
    ni = Pattern.In_trunk (List.length trunk - 1);
  }

(* ------------------------------------------------------------------ *)
(* The plan record.                                                    *)

type t = {
  pattern : Pattern.t;
  equation : equation;
  join : join_spec;
  eq2 : eq2 option;  (* [Some] iff [equation = Equation_2] *)
}

let pattern t = t.pattern
let equation t = t.equation
let target t = Pattern.target t.pattern

let compile pattern =
  let shape = Pattern.shape pattern and target = Pattern.target pattern in
  let equation = equation_of shape target in
  let eq2 =
    match (shape, target) with
    | Pattern.Branch { trunk; branch; _ }, Pattern.In_branch i ->
        Some (compile_eq2 ~trunk ~own:branch ~own_index:i)
    | Pattern.Branch { trunk; tail; _ }, Pattern.In_tail i ->
        Some (compile_eq2 ~trunk ~own:tail ~own_index:i)
    | _ -> None
  in
  { pattern; equation; join = join_of_shape shape; eq2 }

let compile_position pattern position =
  compile (Pattern.v (Pattern.shape pattern) position)

let key t = Pattern.to_string t.pattern

(* ------------------------------------------------------------------ *)
(* Human-readable plan dumps.                                          *)

let position_name = function
  | Pattern.In_trunk i -> Printf.sprintf "trunk[%d]" i
  | Pattern.In_branch i -> Printf.sprintf "branch[%d]" i
  | Pattern.In_tail i -> Printf.sprintf "tail[%d]" i
  | Pattern.In_first i -> Printf.sprintf "first[%d]" i
  | Pattern.In_second i -> Printf.sprintf "second[%d]" i

let axis_symbol = function Pattern.Child -> "/" | Pattern.Descendant -> "//"

let render_steps steps =
  String.concat ""
    (List.map (fun (axis, tag) -> axis_symbol axis ^ tag) steps)

let render_spine spine =
  render_steps (List.map (fun (s : Pattern.step) -> (s.axis, s.tag)) spine)

let pp ppf t =
  let open Format in
  let spec = t.join in
  fprintf ppf "@[<v>plan %s@," (Pattern.to_string t.pattern);
  fprintf ppf "  equation  %s  (%s)@," (equation_name t.equation)
    (equation_doc t.equation);
  let target = Pattern.target t.pattern in
  fprintf ppf "  target    %s = %s@," (position_name target)
    (match Pattern.tag_at t.pattern target with Some tag -> tag | None -> "?");
  fprintf ppf "  join      %d nodes, %d edges, head axis %s%s@,"
    (Array.length spec.nodes)
    (List.length spec.edges)
    (axis_symbol spec.first_axis)
    (if spec.first_axis = Pattern.Child then " (anchored at the document root)"
     else "");
  Array.iteri
    (fun i (n : jnode) ->
      let parent =
        List.find_opt (fun (e : jedge) -> e.child = i) spec.edges
      in
      fprintf ppf "    n%-2d %-10s %s%s%s@," i
        (position_name n.position)
        (axis_symbol spec.node_axes.(i))
        n.tag
        (match parent with
        | Some e -> Printf.sprintf "   <- n%d" e.parent
        | None -> ""))
    spec.nodes;
  List.iteri
    (fun i (c : chain) ->
      fprintf ppf "  chain %d   %s  (nodes %s%s)@," i (render_steps c.steps)
        (String.concat "," (List.map (fun id -> "n" ^ string_of_int id) c.node_ids))
        (if c.anchored then "; anchored" else ""))
    spec.chains;
  (match t.eq2 with
  | Some e ->
      let q'_spine =
        match e.q_prime.shape with
        | Pattern.Simple spine -> render_spine spine
        | Pattern.Branch _ | Pattern.Ordered _ -> "?"
      in
      fprintf ppf "  eq2       Q' = %s, n_i = %s, target in Q' = %s@," q'_spine
        (position_name e.ni)
        (position_name e.pos_in_q')
  | None -> ());
  fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
