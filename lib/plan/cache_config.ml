type t = { plan : int; rel : int; chain : int; run : int }

let default =
  {
    plan = Plan_cache.default_capacity;
    rel = Plan_cache.default_capacity;
    chain = Plan_cache.default_capacity;
    run = Plan_cache.default_capacity;
  }

let uniform capacity =
  if capacity < 1 then invalid_arg "Cache_config.uniform: capacity must be >= 1";
  { plan = capacity; rel = capacity; chain = capacity; run = capacity }

(* Per-dataset defaults derived from the BENCH_engine.json cache peaks
   at scale 0.1 (next power of two above the observed peak, with
   headroom for the chain cache, which thrashed at 4096 on every
   dataset).  Observed peaks — SSPlays: plan 1357 / rel 227 /
   chain 4096+19652 evictions / run 1353; DBLP: plan 2170 / rel 178 /
   chain thrashing / run 1689; XMark: plan 1510 / rel 3471 /
   chain 4096+320809 evictions / run 1983. *)
let for_dataset dataset =
  match String.lowercase_ascii dataset with
  | "ssplays" -> { plan = 2048; rel = 512; chain = 8192; run = 2048 }
  | "dblp" -> { plan = 4096; rel = 512; chain = 8192; run = 4096 }
  | "xmark" -> { plan = 2048; rel = 8192; chain = 16384; run = 4096 }
  | _ -> default
