type t = {
  plan : int;
  rel : int;
  chain : int;
  run : int;
  segmented : bool;
  resident_bytes : int option;
}

let caps plan rel chain run =
  { plan; rel; chain; run; segmented = false; resident_bytes = None }

let default =
  let c = Plan_cache.default_capacity in
  caps c c c c

let uniform capacity =
  if capacity < 1 then invalid_arg "Cache_config.uniform: capacity must be >= 1";
  caps capacity capacity capacity capacity

(* Per-dataset defaults derived from the BENCH_engine.json cache peaks
   at scale 0.1 (next power of two above the observed peak, with
   headroom for the chain cache, which thrashed at 4096 on every
   dataset).  Observed peaks — SSPlays: plan 1357 / rel 227 /
   chain 4096+19652 evictions / run 1353; DBLP: plan 2170 / rel 178 /
   chain thrashing / run 1689; XMark: plan 1510 / rel 3471 /
   chain 4096+320809 evictions / run 1983. *)
let builtin_for_dataset dataset =
  match String.lowercase_ascii dataset with
  | "ssplays" -> Some (caps 2048 512 8192 2048)
  | "dblp" -> Some (caps 4096 512 8192 4096)
  | "xmark" -> Some (caps 2048 8192 16384 4096)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Peak extraction from a live BENCH_engine.json.

   The container ships no JSON library, and the bench file is machine-
   written with a fixed shape, so a small string scan is enough: find
   the requested dataset's block ("dataset": "<name>" up to the next
   "dataset":), then each cache object's "peak": <int> inside it.  Any
   deviation — missing file, missing dataset, missing cache, non-digit
   peak — yields None and the caller falls back to the built-in
   table.  Strictness over cleverness: a half-parsed file must never
   produce half-tuned capacities. *)

let find_sub ?(from = 0) haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  if from < 0 then None else go from

let int_after block key =
  match find_sub block ("\"" ^ key ^ "\":") with
  | None -> None
  | Some i -> (
      let n = String.length block in
      let j = ref (i + String.length key + 3) in
      while !j < n && block.[!j] = ' ' do incr j done;
      let start = !j in
      while !j < n && block.[!j] >= '0' && block.[!j] <= '9' do incr j done;
      if !j = start then None
      else
        match int_of_string_opt (String.sub block start (!j - start)) with
        | Some v when v >= 0 -> Some v
        | _ -> None)

let cache_peak block name =
  match find_sub block ("\"" ^ name ^ "\":") with
  | None -> None
  | Some i ->
      (* the cache object is small and "peak" appears once inside it;
         scan a bounded window so we never read a later cache's peak *)
      let stop = min (String.length block) (i + 256) in
      int_after (String.sub block i (stop - i)) "peak"

let dataset_block text dataset =
  match find_sub text (Printf.sprintf "\"dataset\": %S" dataset) with
  | None -> None
  | Some i ->
      let stop =
        match find_sub ~from:(i + 1) text "\"dataset\":" with
        | Some j -> j
        | None -> String.length text
      in
      Some (String.sub text i (stop - i))

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception _ -> None)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* One power of two of headroom above the observed peak (so a modest
   workload drift does not immediately thrash), floored at 512. *)
let derived_capacity peak = max 512 (next_pow2 (max 1 (2 * peak)))

let peaks_from_bench path dataset =
  match read_file path with
  | None -> None
  | Some text -> (
      match dataset_block text dataset with
      | None -> None
      | Some block -> (
          match
            ( cache_peak block "plan",
              cache_peak block "rel",
              cache_peak block "chain",
              cache_peak block "run" )
          with
          | Some p, Some r, Some c, Some u -> Some (p, r, c, u)
          | _ -> None))

let for_dataset ?bench_json dataset =
  let from_bench =
    match bench_json with
    | None -> None
    | Some path -> (
        match peaks_from_bench path (String.lowercase_ascii dataset) with
        | None -> None
        | Some (p, r, c, u) ->
            Some
              (caps (derived_capacity p) (derived_capacity r)
                 (derived_capacity c) (derived_capacity u)))
  in
  match from_bench with
  | Some cfg -> cfg
  | None -> (
      match builtin_for_dataset dataset with Some cfg -> cfg | None -> default)
