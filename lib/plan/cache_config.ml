type t = { plan : int; rel : int; chain : int; run : int }

let default =
  {
    plan = Plan_cache.default_capacity;
    rel = Plan_cache.default_capacity;
    chain = Plan_cache.default_capacity;
    run = Plan_cache.default_capacity;
  }

let uniform capacity =
  if capacity < 1 then invalid_arg "Cache_config.uniform: capacity must be >= 1";
  { plan = capacity; rel = capacity; chain = capacity; run = capacity }
