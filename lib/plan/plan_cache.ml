module Counters = Xpest_util.Counters

(* Bounded LRU cache: a hash table over an intrusive doubly-linked
   recency list.  [find_opt] promotes to most-recent; inserting past
   capacity evicts the least-recent entry.  All operations are O(1).

   Counters are passed in by the instrumentation site (created once at
   its module initialization) rather than created here: caches are
   instantiated per estimator, and registering fresh counters per
   instance would grow the global registry and duplicate report rows.

   A cache created with [~synchronized:true] guards every operation
   with one mutex so it can be shared across domains (the catalog's
   pool-shared plan cache under parallel batches).  Lock acquisitions
   that had to wait are counted ([contention]); [find_or_add] computes
   misses OUTSIDE the lock, so a slow compute never serializes the
   other domains — the price is a bounded duplicate-compute window
   when two domains miss the same key at once ([races], first writer
   wins).  The default is unsynchronized: per-estimator caches are
   owned by one domain and pay nothing. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  hit : Counters.t option;
  miss : Counters.t option;
  evict : Counters.t option;
  mutable evictions : int;
  mutable peak : int;  (* largest occupancy ever reached *)
  lock : Mutex.t option;  (* Some iff synchronized *)
  contention : int Atomic.t;  (* lock acquisitions that had to wait *)
  mutable races : int;  (* duplicate computes in find_or_add *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ?(synchronized = false) ?hit ?miss
    ?evict () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hit;
    miss;
    evict;
    evictions = 0;
    peak = 0;
    lock = (if synchronized then Some (Mutex.create ()) else None);
    contention = Atomic.make 0;
    races = 0;
  }

let synchronized t = t.lock <> None
let contention t = Atomic.get t.contention

(* [with_lock] is the only lock path: try_lock first so contended
   acquisitions are visible in the contention counter. *)
let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m ->
      if not (Mutex.try_lock m) then begin
        Atomic.incr t.contention;
        Mutex.lock m
      end;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let capacity t = t.capacity
let length t = with_lock t (fun () -> Hashtbl.length t.table)
let evictions t = with_lock t (fun () -> t.evictions)
let peak t = with_lock t (fun () -> t.peak)
let races t = with_lock t (fun () -> t.races)

type stats = { s_capacity : int; s_length : int; s_peak : int; s_evictions : int }

let stats t =
  with_lock t (fun () ->
      {
        s_capacity = t.capacity;
        s_length = Hashtbl.length t.table;
        s_peak = t.peak;
        s_evictions = t.evictions;
      })

let bump = function Some c -> Counters.incr c | None -> ()

(* Unlink a node from the recency list (it stays in the table). *)
let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      t.evictions <- t.evictions + 1;
      bump t.evict

let find_opt_unlocked t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      bump t.hit;
      promote t node;
      Some node.value
  | None ->
      bump t.miss;
      None

let find_opt t key = with_lock t (fun () -> find_opt_unlocked t key)

let add_unlocked t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  if Hashtbl.length t.table > t.peak then t.peak <- Hashtbl.length t.table

let add t key value = with_lock t (fun () -> add_unlocked t key value)

let find_or_add t key compute =
  match with_lock t (fun () -> find_opt_unlocked t key) with
  | Some v -> v
  | None ->
      (* compute outside the lock: a miss must not serialize the other
         domains on a potentially slow compute.  Two domains missing
         the same key race to insert; the first insert wins and the
         loser's compute is discarded (counted in [races]) — harmless
         because computes are pure functions of the key. *)
      let v = compute key in
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
              t.races <- t.races + 1;
              promote t node;
              node.value
          | None ->
              add_unlocked t key v;
              v)

(* Explicit removal (catalog resident-set invalidation); not an
   eviction, so the eviction counters stay untouched. *)
let remove t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> ()
      | Some node ->
          unlink t node;
          Hashtbl.remove t.table key)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

(* Keys from most- to least-recently used; test/debug aid. *)
let keys_by_recency t =
  with_lock t (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some node -> walk (node.key :: acc) node.next
      in
      walk [] t.head)
