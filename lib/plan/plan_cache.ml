module Bounded_cache = Xpest_util.Bounded_cache

(* Thin instantiation of the generic cost-aware cache core: unit cost
   (capacity in entries) and plain-LRU replacement by default, which
   is bit-identical to the historical standalone implementation this
   module used to carry — same eviction order, same counters, same
   ~synchronized / find_or_add contract.  The whole API is a
   re-export; [t] and [stats] are transparently [Bounded_cache]'s, so
   call sites can mix the two modules freely. *)

type ('k, 'v) t = ('k, 'v) Bounded_cache.t

type stats = Bounded_cache.stats = {
  s_capacity : int;
  s_length : int;
  s_peak : int;
  s_evictions : int;
  s_cost : int;
  s_peak_cost : int;
  s_hits : int;
  s_misses : int;
  s_probationary : int;
  s_protected : int;
  s_pinned : int;
}

let default_capacity = Bounded_cache.default_capacity

let create ?(capacity = default_capacity) ?(policy = Bounded_cache.Lru)
    ?(synchronized = false) ?hit ?miss ?evict () =
  (* validated here too so callers keep seeing this module's name in
     the historical error message *)
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  Bounded_cache.create ~capacity ~policy ~synchronized ?hit ?miss ?evict ()

let capacity = Bounded_cache.capacity
let length = Bounded_cache.length
let synchronized = Bounded_cache.synchronized
let contention = Bounded_cache.contention
let races = Bounded_cache.races
let evictions = Bounded_cache.evictions
let peak = Bounded_cache.peak
let stats = Bounded_cache.stats
let find_opt = Bounded_cache.find_opt
let add = Bounded_cache.add
let find_or_add = Bounded_cache.find_or_add
let remove = Bounded_cache.remove
let clear = Bounded_cache.clear
let keys_by_recency = Bounded_cache.keys_by_recency
