module Counters = Xpest_util.Counters

(* Bounded LRU cache: a hash table over an intrusive doubly-linked
   recency list.  [find_opt] promotes to most-recent; inserting past
   capacity evicts the least-recent entry.  All operations are O(1).

   Counters are passed in by the instrumentation site (created once at
   its module initialization) rather than created here: caches are
   instantiated per estimator, and registering fresh counters per
   instance would grow the global registry and duplicate report rows. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  hit : Counters.t option;
  miss : Counters.t option;
  evict : Counters.t option;
  mutable evictions : int;
  mutable peak : int;  (* largest occupancy ever reached *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ?hit ?miss ?evict () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hit;
    miss;
    evict;
    evictions = 0;
    peak = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions
let peak t = t.peak

type stats = { s_capacity : int; s_length : int; s_peak : int; s_evictions : int }

let stats t =
  {
    s_capacity = t.capacity;
    s_length = Hashtbl.length t.table;
    s_peak = t.peak;
    s_evictions = t.evictions;
  }

let bump = function Some c -> Counters.incr c | None -> ()

(* Unlink a node from the recency list (it stays in the table). *)
let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      t.evictions <- t.evictions + 1;
      bump t.evict

let find_opt t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      bump t.hit;
      promote t node;
      Some node.value
  | None ->
      bump t.miss;
      None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  if Hashtbl.length t.table > t.peak then t.peak <- Hashtbl.length t.table

let find_or_add t key compute =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = compute key in
      add t key v;
      v

(* Explicit removal (catalog resident-set invalidation); not an
   eviction, so the eviction counters stay untouched. *)
let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

(* Keys from most- to least-recently used; test/debug aid. *)
let keys_by_recency t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head
