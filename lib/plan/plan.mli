(** Compiled query plans — the analysis half of the estimation engine.

    The paper's estimation procedure is two-phase: {e analyze} the
    XPath pattern (decompose it into root-to-leaf chains, determine
    the anchoring axis, pick which of Theorem 4.1 / Equations 2–5 /
    the Example 5.3 conversion applies to the target) and {e execute}
    joins against a synopsis.  [Plan.compile] performs the whole first
    phase once, independently of any {!Xpest_synopsis.Summary}: the
    resulting plan record is reusable across summaries, cacheable (see
    {!Plan_cache}) and batchable (identical plans share one
    execution in [Estimator.estimate_many]). *)

module Pattern = Xpest_xpath.Pattern

(** {1 Equation selection} *)

(** Which estimation formula the executor must apply to the target,
    decided purely from the pattern's shape and target position. *)
type equation =
  | Theorem_4_1  (** simple query, or branch query with a trunk target *)
  | Equation_2  (** branch/tail target via the simple query Q' *)
  | Equation_3  (** order-head target (first/second position 0) *)
  | Equation_4  (** deeper order target, scaled by the head's ratio *)
  | Equation_5  (** trunk target of an order query (min of bounds) *)
  | Conversion_5_3
      (** [following]/[preceding]: converted at execution time into
          sibling-axis queries along the encoding-table gaps *)

val equation_name : equation -> string
(** Stable lower-case tag, e.g. ["theorem_4_1"] — used by [pp], the
    CLI and the plan tests. *)

val equation_doc : equation -> string
(** One-line human description. *)

val equation_of : Pattern.shape -> Pattern.position -> equation
(** The compile-time dispatch.  @raise Invalid_argument on positions
    that cannot occur in the shape (excluded by {!Pattern.v}). *)

(** {1 Compiled join graph} *)

type jnode = { tag : string; position : Pattern.position }
type jedge = { parent : int; child : int; axis : Pattern.axis }

type chain = {
  anchored : bool;
  steps : (Pattern.axis * string) list;
  node_ids : int list;
}
(** One root-to-leaf chain of the query tree with its anchoring: the
    chain-feasibility pruning of the path join tests these against a
    pid's path types. *)

type join_spec = {
  shape : Pattern.shape;  (** canonical cache key of the spec *)
  nodes : jnode array;
  edges : jedge list;
  node_axes : Pattern.axis array;
      (** incoming axis per node; the head gets the anchoring axis *)
  first_axis : Pattern.axis;
  chains : chain list;
}
(** Everything the path join needs to execute, precomputed from the
    shape alone. *)

val join_of_shape : Pattern.shape -> join_spec

(** {1 Equation-2 pre-compilation} *)

type eq2 = {
  q_prime : join_spec;  (** Q' = trunk/own, the other branch dropped *)
  pos_in_q' : Pattern.position;  (** the target spliced after the trunk *)
  ni : Pattern.position;  (** the last trunk node *)
}

(** {1 Plans} *)

type t = {
  pattern : Pattern.t;
  equation : equation;
  join : join_spec;
  eq2 : eq2 option;  (** [Some] iff [equation = Equation_2] *)
}

val compile : Pattern.t -> t
(** Summary-independent compilation; pure and deterministic.

    {b Invariant.}  Compilation can only raise on a shape/position
    pair that {!Pattern.v} would never produce (an order position in
    a branch shape or vice versa) — for any pattern built by
    [Pattern.v]/[Pattern.of_string] it is total.  The raises survive
    as guards against hand-assembled inconsistent IR, not as a
    reachable failure mode of the serving path. *)

val compile_position : Pattern.t -> Pattern.position -> t
(** Compile with the target overridden.  @raise Invalid_argument if
    the position is not in the pattern ({!Pattern.v}). *)

val pattern : t -> Pattern.t
val equation : t -> equation
val target : t -> Pattern.position

val key : t -> string
(** Canonical text of the normalized plan ({!Pattern.to_string} of the
    pattern); equal keys mean identical plans. *)

(** {1 Rendering} *)

val position_name : Pattern.position -> string
(** e.g. ["tail[1]"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line plan dump: pattern, equation tag, target, join graph
    (nodes, edges, anchoring), decomposed chains, and the
    Equation-2 pieces when present.  The CLI's [plan] command prints
    this. *)

val to_string : t -> string
