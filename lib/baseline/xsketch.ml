module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern

type cls = {
  tag : int; (* tag code *)
  count : int;
  edges : (int * int) array; (* (child class, #children of members there) *)
}

type t = {
  doc_max_depth : int;
  root_class : int;
  classes : cls array;
  by_tag : int list array; (* tag code -> classes with that tag *)
  tag_of_name : (string, int) Hashtbl.t;
  steps : int;
}

(* ------------------------------------------------------------------ *)
(* Construction: label split + greedy backward-stability refinement.   *)

type build_state = {
  doc : Doc.t;
  mutable class_of : int array;
  mutable num_classes : int;
  mutable class_tag : int array;
}

let grow a n default =
  if n <= Array.length a then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* members per class, recomputed on demand *)
let members st =
  let m = Array.make st.num_classes [] in
  for node = Doc.size st.doc - 1 downto 0 do
    let c = st.class_of.(node) in
    m.(c) <- node :: m.(c)
  done;
  m

let edge_counts st =
  let tbl = Hashtbl.create 256 in
  Doc.iter st.doc (fun node ->
      match Doc.parent st.doc node with
      | None -> ()
      | Some p ->
          let key = (st.class_of.(p), st.class_of.(node)) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
  tbl

let byte_size_of ~num_classes ~num_edges = (6 * num_classes) + (8 * num_edges)

(* Heterogeneity of a class: summed per-child-class variance of its
   members' fan-outs.  0 means the class is child-stable. *)
let heterogeneity st member_lists c =
  let mem = member_lists.(c) in
  let n = List.length mem in
  if n < 2 then 0.0
  else begin
    (* accumulate per-child-class sum and sum of squares of fan-outs *)
    let sums = Hashtbl.create 8 in
    List.iter
      (fun x ->
        let local = Hashtbl.create 8 in
        List.iter
          (fun ch ->
            let cc = st.class_of.(ch) in
            Hashtbl.replace local cc
              (1 + Option.value ~default:0 (Hashtbl.find_opt local cc)))
          (Doc.children st.doc x);
        Hashtbl.iter
          (fun cc k ->
            let s, s2 = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt sums cc) in
            Hashtbl.replace sums cc (s +. Float.of_int k, s2 +. Float.of_int (k * k)))
          local)
      mem;
    let fn = Float.of_int n in
    Hashtbl.fold
      (fun _cc (s, s2) acc ->
        let mean = s /. fn in
        acc +. Float.max 0.0 ((s2 /. fn) -. (mean *. mean)))
      sums 0.0
  end

(* Split class c by the parent class of each member.  Returns true if
   an actual split happened. *)
let split_by_parent st member_lists c =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun x ->
      let key =
        match Doc.parent st.doc x with Some p -> st.class_of.(p) | None -> -1
      in
      Hashtbl.replace groups key (x :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    member_lists.(c);
  if Hashtbl.length groups < 2 then false
  else begin
    (* first group keeps id c, the rest get fresh ids *)
    let first = ref true in
    Hashtbl.iter
      (fun _key nodes ->
        if !first then first := false
        else begin
          let fresh = st.num_classes in
          st.num_classes <- st.num_classes + 1;
          st.class_tag <- grow st.class_tag st.num_classes 0;
          st.class_tag.(fresh) <- st.class_tag.(c);
          List.iter (fun x -> st.class_of.(x) <- fresh) nodes
        end)
      groups;
    true
  end

let build ?(budget_bytes = 16384) doc =
  let st =
    {
      doc;
      class_of = Array.make (Doc.size doc) 0;
      num_classes = Doc.num_tags doc;
      class_tag = Array.init (Doc.num_tags doc) Fun.id;
    }
  in
  Doc.iter doc (fun n -> st.class_of.(n) <- Doc.tag_code doc n);
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    let edges = edge_counts st in
    let size =
      byte_size_of ~num_classes:st.num_classes ~num_edges:(Hashtbl.length edges)
    in
    if size >= budget_bytes then continue := false
    else begin
      (* rank classes by heterogeneity and split the best splittable
         one; a class whose members cannot be distinguished by parent
         class is halved in document order (positional refinement) *)
      let member_lists = members st in
      let candidates =
        List.init st.num_classes (fun c -> (c, heterogeneity st member_lists c))
        |> List.filter (fun (_, h) -> h > 0.0)
        |> List.sort (fun (_, h1) (_, h2) -> Float.compare h2 h1)
      in
      let split_halves c =
        let mem = member_lists.(c) in
        let n = List.length mem in
        if n < 2 then false
        else begin
          let fresh = st.num_classes in
          st.num_classes <- st.num_classes + 1;
          st.class_tag <- grow st.class_tag st.num_classes 0;
          st.class_tag.(fresh) <- st.class_tag.(c);
          List.iteri (fun i x -> if i >= n / 2 then st.class_of.(x) <- fresh) mem;
          true
        end
      in
      let rec try_candidates = function
        | [] -> false
        | (c, _) :: rest ->
            split_by_parent st member_lists c
            || split_halves c
            || try_candidates rest
      in
      if try_candidates candidates then incr steps else continue := false
    end
  done;
  (* freeze *)
  let counts = Array.make st.num_classes 0 in
  Doc.iter doc (fun n -> counts.(st.class_of.(n)) <- counts.(st.class_of.(n)) + 1);
  let edges = edge_counts st in
  let edge_lists = Array.make st.num_classes [] in
  Hashtbl.iter
    (fun (p, c) k -> edge_lists.(p) <- (c, k) :: edge_lists.(p))
    edges;
  let classes =
    Array.init st.num_classes (fun c ->
        {
          tag = st.class_tag.(c);
          count = counts.(c);
          edges = Array.of_list edge_lists.(c);
        })
  in
  let by_tag = Array.make (Doc.num_tags doc) [] in
  Array.iteri (fun c (cl : cls) -> by_tag.(cl.tag) <- c :: by_tag.(cl.tag)) classes;
  let tag_of_name = Hashtbl.create 64 in
  for code = 0 to Doc.num_tags doc - 1 do
    Hashtbl.replace tag_of_name (Doc.tag_name doc code) code
  done;
  {
    doc_max_depth = Doc.max_depth doc;
    root_class = st.class_of.(Doc.root doc);
    classes;
    by_tag;
    tag_of_name;
    steps = !steps;
  }

let num_classes t = Array.length t.classes
let refinement_steps t = t.steps

(* ------------------------------------------------------------------ *)
(* Label-split export: the budget-0 graph (one class per tag) is plain
   order-1 Markov data — tag counts plus counted parent-child tag
   pairs — which is what the serving layer's fallback sketches persist.
   Edges are sorted by child tag so the exported form (and anything
   serialized from it) is deterministic regardless of hash order.      *)

type export = {
  x_doc_max_depth : int;
  x_root_tag : int;
  x_tags : string array;  (* tag code -> name *)
  x_counts : int array;  (* tag code -> element count *)
  x_edges : (int * int) array array;
      (* parent tag -> (child tag, #children), child-tag ascending *)
}

let export_label_split t =
  let n = Array.length t.classes in
  if n <> Array.length t.by_tag then
    invalid_arg "Xsketch.export_label_split: refined synopsis (build with \
                 ~budget_bytes:0)";
  Array.iteri
    (fun c (cl : cls) ->
      if cl.tag <> c then
        invalid_arg "Xsketch.export_label_split: refined synopsis (build \
                     with ~budget_bytes:0)")
    t.classes;
  let tags = Array.make n "" in
  Hashtbl.iter (fun name code -> tags.(code) <- name) t.tag_of_name;
  {
    x_doc_max_depth = t.doc_max_depth;
    x_root_tag = t.classes.(t.root_class).tag;
    x_tags = tags;
    x_counts = Array.map (fun (cl : cls) -> cl.count) t.classes;
    x_edges =
      Array.map
        (fun (cl : cls) ->
          let e = Array.copy cl.edges in
          Array.sort (fun (a, _) (b, _) -> compare a b) e;
          e)
        t.classes;
  }

let of_export (x : export) =
  let n = Array.length x.x_tags in
  if Array.length x.x_counts <> n || Array.length x.x_edges <> n then
    invalid_arg "Xsketch.of_export: mismatched array lengths";
  if n = 0 then invalid_arg "Xsketch.of_export: empty tag set";
  if x.x_root_tag < 0 || x.x_root_tag >= n then
    invalid_arg "Xsketch.of_export: root tag out of range";
  let classes =
    Array.init n (fun c ->
        Array.iter
          (fun (w, k) ->
            if w < 0 || w >= n || k < 0 then
              invalid_arg "Xsketch.of_export: malformed edge")
          x.x_edges.(c);
        { tag = c; count = x.x_counts.(c); edges = x.x_edges.(c) })
  in
  let by_tag = Array.init n (fun c -> [ c ]) in
  let tag_of_name = Hashtbl.create (2 * n) in
  Array.iteri (fun code name -> Hashtbl.replace tag_of_name name code) x.x_tags;
  {
    doc_max_depth = x.x_doc_max_depth;
    root_class = x.x_root_tag;
    classes;
    by_tag;
    tag_of_name;
    steps = 0;
  }

let byte_size t =
  let num_edges =
    Array.fold_left (fun acc (c : cls) -> acc + Array.length c.edges) 0 t.classes
  in
  byte_size_of ~num_classes:(Array.length t.classes) ~num_edges

(* ------------------------------------------------------------------ *)
(* Estimation.                                                          *)

(* Push one child step: dist'[w] = sum_v dist[v] * edge(v,w)/count(v). *)
let push_children t dist =
  let out = Array.make (Array.length t.classes) 0.0 in
  Array.iteri
    (fun v dv ->
      if dv > 0.0 then
        let cl = t.classes.(v) in
        let cv = Float.of_int cl.count in
        Array.iter
          (fun (w, k) -> out.(w) <- out.(w) +. (dv *. Float.of_int k /. cv))
          cl.edges)
    dist;
  out

(* Expected number of distinct elements matching a step from dist. *)
let step_dist t dist (s : Pattern.step) =
  let tag = Hashtbl.find_opt t.tag_of_name s.tag in
  let matches w =
    match tag with Some code -> t.classes.(w).tag = code | None -> false
  in
  match s.axis with
  | Pattern.Child ->
      let pushed = push_children t dist in
      Array.mapi
        (fun w x ->
          if matches w then Float.min x (Float.of_int t.classes.(w).count)
          else 0.0)
        pushed
  | Pattern.Descendant ->
      let acc = Array.make (Array.length t.classes) 0.0 in
      let level = ref dist in
      for _depth = 1 to t.doc_max_depth do
        level := push_children t !level;
        Array.iteri (fun w x -> if matches w then acc.(w) <- acc.(w) +. x) !level
      done;
      Array.mapi
        (fun w x -> Float.min x (Float.of_int t.classes.(w).count))
        acc

(* Expected number of embeddings of [spine] strictly below one element
   of class [v]. *)
let rec expect_spine t v (spine : Pattern.spine) =
  match spine with
  | [] -> 1.0
  | _ ->
      let unit_dist = Array.make (Array.length t.classes) 0.0 in
      unit_dist.(v) <- 1.0;
      expect_from t unit_dist spine

and expect_from t dist = function
  | [] -> Array.fold_left ( +. ) 0.0 dist
  | s :: rest ->
      (* no capping inside expectations: these are embedding counts *)
      let tag = Hashtbl.find_opt t.tag_of_name s.Pattern.tag in
      let matches w =
        match tag with Some code -> t.classes.(w).tag = code | None -> false
      in
      let next =
        match s.Pattern.axis with
        | Pattern.Child ->
            let pushed = push_children t dist in
            Array.mapi (fun w x -> if matches w then x else 0.0) pushed
        | Pattern.Descendant ->
            let acc = Array.make (Array.length t.classes) 0.0 in
            let level = ref dist in
            for _depth = 1 to t.doc_max_depth do
              level := push_children t !level;
              Array.iteri
                (fun w x -> if matches w then acc.(w) <- acc.(w) +. x)
                !level
            done;
            acc
      in
      expect_from t next rest

(* Satisfaction probability of a branch below one element of class v. *)
let sat t v spine = Float.min 1.0 (expect_spine t v spine)

let anchor_dist t (spine : Pattern.spine) =
  match spine with
  | [] -> Array.make (Array.length t.classes) 0.0
  | s :: _ ->
      let dist = Array.make (Array.length t.classes) 0.0 in
      (match s.axis with
      | Pattern.Child ->
          if
            Hashtbl.find_opt t.tag_of_name s.tag
            = Some t.classes.(t.root_class).tag
          then dist.(t.root_class) <- 1.0
      | Pattern.Descendant -> (
          match Hashtbl.find_opt t.tag_of_name s.tag with
          | Some code ->
              List.iter
                (fun c -> dist.(c) <- Float.of_int t.classes.(c).count)
                t.by_tag.(code)
          | None -> ()));
      dist

(* Forward distribution after binding the first (i+1) steps of spine,
   starting from the anchored head. *)
let forward t spine upto =
  let rec go dist i = function
    | [] -> dist
    | s :: rest -> if i >= upto then dist else go (step_dist t dist s) (i + 1) rest
  in
  match spine with
  | [] -> Array.make (Array.length t.classes) 0.0
  | _ :: rest -> go (anchor_dist t spine) 0 rest

let total = Array.fold_left ( +. ) 0.0

(* Weighted satisfaction of extra constraints at the attach point. *)
let apply_sat t dist spine =
  Array.mapi (fun v x -> if x > 0.0 then x *. sat t v spine else 0.0) dist

(* Remaining trunk below a trunk target, terminated by the branch
   constraints: expected embeddings below one element of v. *)
let expect_continuation t v ~rest_trunk ~branch ~tail =
  match rest_trunk with
  | [] ->
      (* v itself is the attach point *)
      sat t v branch *. sat t v tail
  | _ ->
      (* push the remaining trunk from a unit element, then weigh the
         attach distribution by both branch satisfactions *)
      let unit_dist = Array.make (Array.length t.classes) 0.0 in
      unit_dist.(v) <- 1.0;
      let rec go dist = function
        | [] -> dist
        | (s : Pattern.step) :: rest ->
            let tag = Hashtbl.find_opt t.tag_of_name s.tag in
            let matches w =
              match tag with Some code -> t.classes.(w).tag = code | None -> false
            in
            let next =
              match s.axis with
              | Pattern.Child ->
                  let pushed = push_children t dist in
                  Array.mapi (fun w x -> if matches w then x else 0.0) pushed
              | Pattern.Descendant ->
                  let acc = Array.make (Array.length t.classes) 0.0 in
                  let level = ref dist in
                  for _ = 1 to t.doc_max_depth do
                    level := push_children t !level;
                    Array.iteri
                      (fun w x -> if matches w then acc.(w) <- acc.(w) +. x)
                      !level
                  done;
                  acc
            in
            go next rest
      in
      let attach = go unit_dist rest_trunk in
      let weighted = apply_sat t (apply_sat t attach branch) tail in
      Float.min 1.0 (total weighted)

let split_at i l =
  let rec go acc i = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (i - 1) rest
  in
  go [] i l

let estimate_shape t (shape : Pattern.shape) (position : Pattern.position) =
  match (shape, position) with
  | Simple spine, In_trunk i ->
      let dist = forward t spine (i + 1) in
      let _, rest = split_at (i + 1) spine in
      total
        (Array.mapi
           (fun v x -> if x > 0.0 then x *. sat t v rest else 0.0)
           dist)
  | Branch { trunk; branch; tail }, In_trunk i ->
      let dist = forward t trunk (i + 1) in
      let _, rest_trunk = split_at (i + 1) trunk in
      total
        (Array.mapi
           (fun v x ->
             if x > 0.0 then x *. expect_continuation t v ~rest_trunk ~branch ~tail
             else 0.0)
           dist)
  | Branch { trunk; branch; tail }, In_branch i ->
      let attach = apply_sat t (forward t trunk (List.length trunk)) tail in
      let rec walk dist j = function
        | [] -> dist
        | s :: rest ->
            if j > i then dist else walk (step_dist t dist s) (j + 1) rest
      in
      let dist = walk attach 0 branch in
      let _, rest = split_at (i + 1) branch in
      total
        (Array.mapi (fun v x -> if x > 0.0 then x *. sat t v rest else 0.0) dist)
  | Branch { trunk; branch; tail }, In_tail i ->
      let attach = apply_sat t (forward t trunk (List.length trunk)) branch in
      let rec walk dist j = function
        | [] -> dist
        | s :: rest ->
            if j > i then dist else walk (step_dist t dist s) (j + 1) rest
      in
      let dist = walk attach 0 tail in
      let _, rest = split_at (i + 1) tail in
      total
        (Array.mapi (fun v x -> if x > 0.0 then x *. sat t v rest else 0.0) dist)
  | Simple _, (In_branch _ | In_tail _ | In_first _ | In_second _)
  | Branch _, (In_first _ | In_second _) ->
      invalid_arg "Xsketch.estimate: position not in shape"
  | Ordered _, _ -> invalid_arg "Xsketch.estimate: unlowered ordered shape"

let estimate t (q : Pattern.t) =
  match Pattern.shape q with
  | (Pattern.Simple _ | Pattern.Branch _) as shape ->
      estimate_shape t shape (Pattern.target q)
  | Pattern.Ordered _ as shape ->
      estimate_shape t (Pattern.counterpart shape)
        (Pattern.counterpart_position (Pattern.target q))
