(** A simplified XSketch graph synopsis (Polyzotis & Garofalakis,
    SIGMOD 2002) — the comparator of the paper's Figure 11 and
    Table 4.

    No open-source XSketch exists, so this is a faithful-in-spirit
    reimplementation of its core recipe on tree data:

    - the synopsis is a graph of element classes: each class holds a
      tag, the number of document elements in it, and counted edges to
      the classes of their children;
    - construction starts from the label-split graph (one class per
      tag) and greedily refines: at each step the most heterogeneous
      class (largest variance of its per-element child fan-outs) is
      split by its elements' parent class — a backward-stability
      refinement — until a byte budget is reached;
    - estimation walks the synopsis with the usual independence and
      uniformity assumptions, multiplying per-edge traversal ratios
      and capping by class cardinalities; branch predicates multiply
      satisfaction fractions.

    The greedy loop re-scans all classes per refinement step, which
    reproduces XSketch's characteristic construction-time growth with
    synopsis size (paper Table 4). *)

type t

val build : ?budget_bytes:int -> Xpest_xml.Doc.t -> t
(** [budget_bytes] defaults to 16 KiB. *)

val byte_size : t -> int
(** Modeled size: 6 bytes per class (2-byte tag + 4-byte count) + 8
    bytes per edge (2 + 2 + 4). *)

val num_classes : t -> int

val refinement_steps : t -> int
(** Number of greedy splits performed (diagnostics). *)

val estimate : t -> Xpest_xpath.Pattern.t -> float
(** Estimated selectivity of the pattern's target node.  Order axes
    carry no information in an XSketch, so [Ordered] patterns are
    estimated through their order-free counterpart (an upper bound). *)

(** {1 Label-split export}

    A budget-0 build never refines, so its class graph {e is} the
    label-split graph: one class per tag, counted parent-child tag
    edges — plain order-1 Markov path statistics.  That form is small,
    flat, and deterministic, which makes it the persistence format for
    the serving layer's last-resort fallback sketches. *)

type export = {
  x_doc_max_depth : int;  (** maximum element depth in the document *)
  x_root_tag : int;  (** tag code of the document root *)
  x_tags : string array;  (** tag code -> tag name *)
  x_counts : int array;  (** tag code -> element count *)
  x_edges : (int * int) array array;
      (** parent tag code -> [(child tag code, #children)], sorted by
          child tag code ascending so the export is deterministic
          regardless of construction hash order *)
}

val export_label_split : t -> export
(** Export a budget-0 (label-split) synopsis.  Raises [Invalid_argument]
    if the synopsis was refined ([num_classes t] differs from the tag
    count), since a refined graph cannot be represented tag-per-class. *)

val of_export : export -> t
(** Rebuild an estimating synopsis from an export.  The result
    estimates bit-identically to the budget-0 build it was exported
    from.  Raises [Invalid_argument] on malformed data (mismatched
    array lengths, out-of-range tag codes, negative edge counts). *)
