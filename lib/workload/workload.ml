module Prng = Xpest_util.Prng
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Encoding_table = Xpest_encoding.Encoding_table

type item = { pattern : Pattern.t; actual : int }

type t = {
  simple : item list;
  branch : item list;
  order_branch_target : item list;
  order_trunk_target : item list;
}

type config = {
  seed : int;
  num_simple : int;
  num_branch : int;
  min_size : int;
  max_size : int;
  nonsibling_fraction : float;
}

let default_config =
  {
    seed = 7001;
    num_simple = 4000;
    num_branch = 4000;
    min_size = 3;
    max_size = 12;
    nonsibling_fraction = 0.0;
  }

(* Sorted random combination of k positions out of n. *)
let pick_positions rng ~n ~k =
  let positions = Array.init n Fun.id in
  Prng.shuffle rng positions;
  let picked = Array.sub positions 0 k in
  Array.sort Int.compare picked;
  picked

(* Subsequence of [path] (an array of tags) at sorted [positions],
   rendered as pattern steps: a pick adjacent to the previous one is a
   child step, a gap a descendant step.  The first step is a child
   step only when it picks the path root. *)
let steps_of_positions path positions =
  let prev = ref (-1) in
  Array.to_list
    (Array.map
       (fun p ->
         let axis = if p = !prev + 1 then Pattern.Child else Pattern.Descendant in
         prev := p;
         Pattern.{ axis; tag = path.(p) })
       positions)

let random_subsequence rng path ~min_size ~max_size =
  let n = Array.length path in
  let k = min n (Prng.int_in_range rng min_size max_size) in
  steps_of_positions path (pick_positions rng ~n ~k)

(* Merge two paths sharing a prefix into a branch shape. *)
let random_branch_shape rng p1 p2 ~min_size ~max_size =
  let common = ref 0 in
  while
    !common < Array.length p1
    && !common < Array.length p2
    && String.equal p1.(!common) p2.(!common)
  do
    incr common
  done;
  if !common = 0 then None
  else
    (* split point: trunk covers positions < c on both paths *)
    let c = Prng.int_in_range rng 1 !common in
    if c >= Array.length p1 || c >= Array.length p2 then None
    else
      let budget = max min_size (Prng.int_in_range rng min_size max_size) in
      let pick_part lo hi want =
        (* want >=1 positions within [lo..hi] *)
        let n = hi - lo + 1 in
        if n <= 0 || want <= 0 then None
        else
          let k = min n want in
          Some (Array.map (fun p -> p + lo) (pick_positions rng ~n ~k))
      in
      let trunk_want = max 1 (Prng.int_in_range rng 1 (min c (budget - 2))) in
      let rest = max 2 (budget - trunk_want) in
      let branch_want = max 1 (rest / 2) in
      let tail_want = max 1 (rest - branch_want) in
      match
        ( pick_part 0 (c - 1) trunk_want,
          pick_part c (Array.length p1 - 1) branch_want,
          pick_part c (Array.length p2 - 1) tail_want )
      with
      | Some tpos, Some bpos, Some apos ->
          let trunk = steps_of_positions p1 tpos in
          let last_trunk_pos = tpos.(Array.length tpos - 1) in
          let part_steps path pos =
            let prev = ref last_trunk_pos in
            Array.to_list
              (Array.map
                 (fun p ->
                   let axis =
                     if p = !prev + 1 then Pattern.Child else Pattern.Descendant
                   in
                   prev := p;
                   Pattern.{ axis; tag = path.(p) })
                 pos)
          in
          let branch = part_steps p1 bpos in
          let tail = part_steps p2 apos in
          Some (Pattern.Branch { trunk; branch; tail })
      | _, _, _ -> None

let dedup_and_filter doc patterns =
  let seen = Hashtbl.create 256 in
  List.filter_map
    (fun pattern ->
      let key = Pattern.to_string pattern in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        let actual = Truth.selectivity doc pattern in
        if actual > 0 then Some { pattern; actual } else None
      end)
    patterns

let generate ?(config = default_config) doc =
  let rng = Prng.create config.seed in
  let table = Encoding_table.build doc in
  let paths =
    Array.of_list (List.map Array.of_list (Encoding_table.paths table))
  in
  (* --- simple --- *)
  let simple_raw =
    List.init config.num_simple (fun _ ->
        let path = Prng.choose rng paths in
        let spine =
          random_subsequence rng path ~min_size:config.min_size
            ~max_size:config.max_size
        in
        Pattern.v (Pattern.Simple spine)
          (Pattern.In_trunk (List.length spine - 1)))
  in
  let simple = dedup_and_filter doc simple_raw in
  (* --- branch --- *)
  let branch_raw =
    List.filter_map
      (fun _ ->
        let p1 = Prng.choose rng paths and p2 = Prng.choose rng paths in
        match
          random_branch_shape rng p1 p2 ~min_size:config.min_size
            ~max_size:config.max_size
        with
        | Some (Pattern.Branch { tail; _ } as shape) ->
            Some (Pattern.v shape (Pattern.In_tail (List.length tail - 1)))
        | Some _ | None -> None)
      (List.init config.num_branch Fun.id)
  in
  let branch = dedup_and_filter doc branch_raw in
  (* --- order: fix sibling order between the two branch heads --- *)
  let to_ordered rng (it : item) =
    match Pattern.shape it.pattern with
    | Pattern.Branch { trunk; branch; tail }
      when branch <> [] && tail <> []
           && (List.hd branch).Pattern.axis = Pattern.Child
           && (List.hd tail).Pattern.axis = Pattern.Child ->
        let axis =
          if Prng.bool rng then Pattern.Following_sibling
          else Pattern.Preceding_sibling
        in
        let axis, second =
          if Prng.float rng 1.0 < config.nonsibling_fraction then
            let widened : Pattern.order_axis =
              match axis with
              | Pattern.Following_sibling -> Pattern.Following
              | Pattern.Preceding_sibling -> Pattern.Preceding
              | (Pattern.Following | Pattern.Preceding) as a -> a
            in
            match tail with
            | s :: rest -> (widened, { s with Pattern.axis = Pattern.Descendant } :: rest)
            | [] -> (axis, tail)
          else (axis, tail)
        in
        Some (Pattern.Ordered { trunk; first = branch; axis; second })
    | Pattern.Branch _ | Pattern.Simple _ | Pattern.Ordered _ -> None
  in
  let ordered_shapes = List.filter_map (to_ordered rng) branch in
  let with_target pick_position shapes =
    List.filter_map
      (fun shape ->
        match pick_position shape with
        | Some pos -> Some (Pattern.v shape pos)
        | None -> None)
      shapes
  in
  let order_branch_target =
    dedup_and_filter doc
      (with_target
         (fun shape ->
           match shape with
           | Pattern.Ordered { first; second; _ } ->
               (* alternate between the two branch parts *)
               let in_first = Prng.bool rng in
               if in_first then
                 Some (Pattern.In_first (Prng.int rng (List.length first)))
               else Some (Pattern.In_second (Prng.int rng (List.length second)))
           | Pattern.Simple _ | Pattern.Branch _ -> None)
         ordered_shapes)
  in
  let order_trunk_target =
    dedup_and_filter doc
      (with_target
         (fun shape ->
           match shape with
           | Pattern.Ordered { trunk; _ } ->
               Some (Pattern.In_trunk (Prng.int rng (List.length trunk)))
           | Pattern.Simple _ | Pattern.Branch _ -> None)
         ordered_shapes)
  in
  { simple; branch; order_branch_target; order_trunk_target }

let all_items t =
  t.simple @ t.branch @ t.order_branch_target @ t.order_trunk_target

let patterns items = Array.of_list (List.map (fun it -> it.pattern) items)

let total_without_order t = List.length t.simple + List.length t.branch

let total_with_order t =
  List.length t.order_branch_target + List.length t.order_trunk_target
