(** Query workload generation (paper Section 7).

    Following the paper's recipe:

    - {e simple} queries are random subsequences of the document's
      root-to-leaf paths (consecutive picks become [/] steps, gaps
      become [//] steps, an initial pick at the path root anchors with
      [/]);
    - {e branch} queries merge two subsequences of two paths that
      share a prefix: the shared part becomes the trunk, the remainders
      become branch and tail;
    - {e order} queries fix the sibling order between the two branch
      heads of branch queries whose heads are both child steps, giving
      [folls]/[pres] queries; optionally a fraction is widened to
      [following]/[preceding] by re-anchoring the second head as a
      descendant.

    Duplicate queries and negative queries (true selectivity 0) are
    removed; each surviving query carries its exact selectivity so
    experiments never recompute ground truth. *)

type item = { pattern : Xpest_xpath.Pattern.t; actual : int }

type t = {
  simple : item list;
  branch : item list;  (** targets on the tail (the paper's default) *)
  order_branch_target : item list;
      (** order queries with the target in a branch part (Figure 12) *)
  order_trunk_target : item list;
      (** the same order constraints with trunk targets (Figure 13) *)
}

type config = {
  seed : int;
  num_simple : int;  (** generation attempts, before dedup/negatives *)
  num_branch : int;
  min_size : int;  (** min query size in nodes *)
  max_size : int;
  nonsibling_fraction : float;
      (** fraction of order queries converted to [following]/[preceding];
          0 reproduces the paper's workload *)
}

val default_config : config
(** [seed=7001; num_simple=4000; num_branch=4000; min_size=3;
    max_size=12; nonsibling_fraction=0.] — the paper's parameters. *)

val generate : ?config:config -> Xpest_xml.Doc.t -> t

val all_items : t -> item list
(** All four classes concatenated (simple, branch, order-branch,
    order-trunk) — the natural unit for batched estimation. *)

val patterns : item list -> Xpest_xpath.Pattern.t array
(** The items' patterns in order, ready for
    [Estimator.estimate_many]. *)

val total_without_order : t -> int
val total_with_order : t -> int
(** The two totals of the paper's Table 2. *)
