(** The complete estimation synopsis for one document.

    Bundles everything the estimator reads: the encoding table, the
    path-id labeling, the p-histograms (path information) and the
    o-histograms (order information), built at given variance
    thresholds.  Construction is staged so the harness can time and
    size each stage separately (paper Tables 4 and 5):

    {[
      let base  = Summary.collect doc in          (* paths + order *)
      let s     = Summary.assemble ~p_variance:0. ~o_variance:0. base
    ]}

    [Summary.build] composes both stages. *)

type base
(** Variance-independent statistics: encoding table, labeling,
    pathId-frequency and path-order tables. *)

type t

val collect : Xpest_xml.Doc.t -> base
val collect_paths_only : Xpest_xml.Doc.t -> base
(** Like {!collect} but skips the path-order sweep; {!assemble} on the
    result supports only order-free estimation (order lookups return
    0).  Used when benchmarking path collection in isolation. *)

val assemble : ?p_variance:float -> ?o_variance:float -> base -> t
(** Variances default to 0 (exact summaries). *)

val without_order : base -> base
(** Drop the path-order statistics (subsequent {!assemble} calls skip
    o-histogram construction; order lookups return 0).  Shares the
    path-side components with the input. *)

val build :
  ?p_variance:float -> ?o_variance:float -> Xpest_xml.Doc.t -> t

(** {1 Accessors} *)

val doc : t -> Xpest_xml.Doc.t
(** @raise Invalid_argument on a synopsis loaded with {!load} (the
    document is not persisted — that is the point of a synopsis). *)

val base : t -> base
(** @raise Invalid_argument on a loaded synopsis. *)

val labeler : t -> Xpest_encoding.Labeler.t
(** @raise Invalid_argument on a loaded synopsis. *)

val encoding_table : t -> Xpest_encoding.Encoding_table.t

val root_pid : t -> Xpest_util.Bitvec.t
(** Path id of the document root (the all-paths vector); anchors
    absolute [/n1] steps in the path join. *)

val tags : t -> string array
(** All element tags the synopsis knows, by tag code. *)

val pf_table : base -> Pf_table.t
val po_table : base -> Po_table.t option
val p_variance : t -> float
val o_variance : t -> float

val tag_pids : t -> string -> (Xpest_util.Bitvec.t * float) list
(** Distinct path ids carried by a tag with their p-histogram
    frequency estimates — the input rows of the path join.  Empty for
    unknown tags. *)

val tag_total : t -> string -> float
(** Estimated total frequency of a tag (sum of its pid estimates). *)

val order_frequency :
  t ->
  tag:string ->
  pid:Xpest_util.Bitvec.t ->
  other:string ->
  region:Po_table.region ->
  float
(** o-histogram estimate of the path-order cell
    [g (pid, other, region)] in [tag]'s table (0 when uncovered or
    when order statistics were not collected). *)

val p_histogram_buckets : t -> (string * int) list
(** Bucket count of every tag's p-histogram, sorted by tag — the
    knob variance-target tuning turns ([xpest synopsis info] reports
    the distribution). *)

val o_histogram_boxes : t -> (string * int) list
(** Box count of every tag's o-histogram, sorted by tag; empty when
    order statistics were not collected. *)

(** {1 Memory accounting (modeled bytes, cf. Tables 3-5 and Fig. 9)} *)

val p_histogram_bytes : t -> int
val o_histogram_bytes : t -> int
val encoding_table_bytes : t -> int
val pid_tree_bytes : t -> int

val total_bytes : t -> int
(** encoding table + pid binary tree + p-histograms (the paper's
    "total memory usage" in Figure 11). *)

val size_bytes : t -> int
(** Exact wire size of the summary — [String.length (encode t)],
    derived from the codec rather than modeled, so it is the number a
    byte-budgeted resident set should charge.  Memoized: {!decode}
    records it for free, a built summary pays one {!encode} on first
    call.  (Contrast {!total_bytes}, which models the paper's
    in-memory structures for the Figure 11 replication.) *)

(** {1 Persistence}

    A synopsis file holds exactly the document-independent core —
    encoding table, distinct path ids, tag vocabulary and the two
    histogram families — as named sections inside {!Wire}'s versioned,
    checksummed container (no [Marshal], so files survive compiler
    upgrades; the checksum rejects corruption before any decoding).
    Saves are canonical — histogram sections are written in sorted tag
    order — so save→load→save is byte-identical.  A loaded synopsis
    estimates identically to the saved one but cannot answer
    document-level queries ({!doc}/{!base}/{!labeler} raise).

    {!Synopsis_io} adds file-level tooling (header inspection,
    per-section size reports) on top of this format. *)

val encode : t -> string
(** The synopsis file bytes ({!save} without the file system). *)

val decode : string -> t
(** Inverse of {!encode}.
    @raise Invalid_argument on malformed input. *)

val save : ?io:Xpest_util.Fault.Io.t -> t -> string -> unit
(** Crash-safe persistence: the bytes are written to a same-directory
    temp file and atomically renamed over [path]
    ({!Xpest_util.Fault.atomic_write}), so a killed process never
    leaves a torn synopsis — [path] is either absent, its previous
    complete contents, or the new complete contents.  [io] substitutes
    the write interface (write-abort injection under test).
    @raise Sys_error on I/O failure (the temp file is cleaned up). *)

val load : string -> t
(** @raise Invalid_argument on malformed input, [Sys_error] on I/O
    failure. *)
