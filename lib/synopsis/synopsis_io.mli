(** File-level tooling over the synopsis persistence format.

    {!Summary.save}/{!Summary.load} do the encoding; this module adds
    what operators and the serving stack need around them: header
    inspection without decoding ([xpest synopsis info]), typed-error
    loading for the catalog's fault-tolerance layer, and string-error
    wrappers for simple CLI paths.

    All reads go through a {!Xpest_util.Fault.Io.t}; pass [?io] to
    substitute the reader (the chaos suites inject faults there).
    Omitting it reads the real filesystem. *)

type info = {
  path : string;
  version : int;  (** format version byte from the header *)
  supported : bool;  (** [version = Wire.format_version] *)
  total_bytes : int;  (** on-disk file size *)
  checksum : int64;  (** stored FNV-1a 64 of the body *)
  checksum_ok : bool;  (** stored checksum matches the body *)
  sections : (string * int) list;
      (** per-component payload sizes in bytes (encoding table, path
          ids, tags, p-/o-histograms); empty if the checksum fails *)
}

val info : ?io:Xpest_util.Fault.Io.t -> string -> info
(** Parse only the container header and section table — constant work
    in the number of sections, no histogram decoding.
    @raise Invalid_argument if the file is not a synopsis file at all
    (bad magic, legacy format, truncated header); [Sys_error] on I/O
    failure. *)

val kind : info -> [ `Synopsis | `Catalog_manifest | `Sketch | `Unknown ]
(** What the file holds, judged from its section names alone:
    a synopsis, a catalog manifest ({!Manifest}), a fallback sketch
    ({!Sketch}), or — when the checksum failed and the section table
    is untrustworthy — [`Unknown]. *)

val overhead_bytes : info -> int
(** Container overhead: file size minus the summed section payloads
    (magic, version, checksum, section table). *)

val save : ?io:Xpest_util.Fault.Io.t -> Summary.t -> string -> unit
(** Alias of {!Summary.save} (crash-safe: temp file + atomic rename). *)

val load : string -> Summary.t
(** Alias of {!Summary.load}. *)

(** {1 Typed-error loading}

    The serving stack's entry points: failures come back as
    {!Xpest_util.Xpest_error.t} values that callers can route on —
    [Io_failure] for unreadable files, [Corrupt] (with a best-effort
    wire-section attribution) for malformed bytes.  Never raises. *)

val info_typed :
  ?io:Xpest_util.Fault.Io.t -> string -> (info, Xpest_util.Xpest_error.t) result

val load_typed :
  ?io:Xpest_util.Fault.Io.t ->
  string ->
  (Summary.t, Xpest_util.Xpest_error.t) result
(** Any single flipped bit or truncation anywhere in the file yields
    [Error (Corrupt _)] — the container checksum vouches for every
    section before any payload is decoded, so a damaged file can never
    decode to a synopsis that estimates differently. *)

val info_result : string -> (info, string) result
val load_result : string -> (Summary.t, string) result
(** {!info_typed}/{!load_typed} with the error rendered
    ({!Xpest_util.Xpest_error.to_string}). *)
