(** File-level tooling over the synopsis persistence format.

    {!Summary.save}/{!Summary.load} do the encoding; this module adds
    what operators need around them: header inspection without
    decoding ([xpest synopsis info]) and [result]-typed wrappers so
    the CLI can report malformed files without catching exceptions all
    over. *)

type info = {
  path : string;
  version : int;  (** format version byte from the header *)
  supported : bool;  (** [version = Wire.format_version] *)
  total_bytes : int;  (** on-disk file size *)
  checksum : int64;  (** stored FNV-1a 64 of the body *)
  checksum_ok : bool;  (** stored checksum matches the body *)
  sections : (string * int) list;
      (** per-component payload sizes in bytes (encoding table, path
          ids, tags, p-/o-histograms); empty if the checksum fails *)
}

val info : string -> info
(** Parse only the container header and section table — constant work
    in the number of sections, no histogram decoding.
    @raise Invalid_argument if the file is not a synopsis file at all
    (bad magic, legacy format, truncated header); [Sys_error] on I/O
    failure. *)

val kind : info -> [ `Synopsis | `Catalog_manifest | `Unknown ]
(** What the file holds, judged from its section names alone:
    a synopsis, a catalog manifest ({!Manifest}), or — when the
    checksum failed and the section table is untrustworthy —
    [`Unknown]. *)

val overhead_bytes : info -> int
(** Container overhead: file size minus the summed section payloads
    (magic, version, checksum, section table). *)

val save : Summary.t -> string -> unit
(** Alias of {!Summary.save}. *)

val load : string -> Summary.t
(** Alias of {!Summary.load}. *)

val info_result : string -> (info, string) result
val load_result : string -> (Summary.t, string) result
(** Like {!info}/{!load} but return malformed-file and I/O errors as
    [Error] messages. *)
