module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error

type entry = {
  dataset : string;
  variance : float;
  file : string;
  bytes : int;
  checksum : int64;
}

type sketch_entry = {
  s_dataset : string;
  s_file : string;
  s_bytes : int;
  s_checksum : int64;
}

type t = { entries : entry list; sketches : sketch_entry list }

let empty = { entries = []; sketches = [] }

let same_key a b = String.equal a.dataset b.dataset && a.variance = b.variance

let add t entry =
  if List.exists (same_key entry) t.entries then
    {
      t with
      entries =
        List.map (fun e -> if same_key entry e then entry else e) t.entries;
    }
  else { t with entries = t.entries @ [ entry ] }

let find t ~dataset ~variance =
  List.find_opt
    (fun e -> String.equal e.dataset dataset && e.variance = variance)
    t.entries

let add_sketch t entry =
  let same e = String.equal e.s_dataset entry.s_dataset in
  if List.exists same t.sketches then
    {
      t with
      sketches = List.map (fun e -> if same e then entry else e) t.sketches;
    }
  else { t with sketches = t.sketches @ [ entry ] }

let find_sketch t ~dataset =
  List.find_opt (fun e -> String.equal e.s_dataset dataset) t.sketches

let section_name = "catalog_manifest"
let sketch_section_name = "catalog_sketches"

let encode t =
  let open Wire in
  let buf = Buffer.create 256 in
  put_list buf
    (fun buf e ->
      put_string buf e.dataset;
      put_float buf e.variance;
      put_string buf e.file;
      put_int buf e.bytes;
      put_int64 buf e.checksum)
    t.entries;
  let sections = [ (section_name, Buffer.contents buf) ] in
  (* The sketch table rides in its own section, emitted only when
     non-empty: a sketch-free manifest stays byte-identical to the
     pre-sketch format, and older readers that look up sections by
     name skip the new one untouched. *)
  let sections =
    if t.sketches = [] then sections
    else begin
      let sbuf = Buffer.create 128 in
      put_list sbuf
        (fun buf e ->
          put_string buf e.s_dataset;
          put_string buf e.s_file;
          put_int buf e.s_bytes;
          put_int64 buf e.s_checksum)
        t.sketches;
      sections @ [ (sketch_section_name, Buffer.contents sbuf) ]
    end
  in
  encode_container sections

let decode data =
  let open Wire in
  let sections = decode_container data in
  match List.assoc_opt section_name sections with
  | None ->
      invalid_arg
        (Printf.sprintf "catalog manifest: missing section %S (is this a \
                         synopsis file?)"
           section_name)
  | Some payload ->
      let r = reader ~context:"catalog manifest" payload in
      let entries =
        get_list r (fun r ->
            let dataset = get_string r in
            let variance = get_float r in
            let file = get_string r in
            let bytes = get_int r in
            let checksum = get_int64 r in
            { dataset; variance; file; bytes; checksum })
      in
      expect_end r;
      let sketches =
        match List.assoc_opt sketch_section_name sections with
        | None -> []
        | Some payload ->
            let r = reader ~context:"catalog sketch table" payload in
            let sketches =
              get_list r (fun r ->
                  let s_dataset = get_string r in
                  let s_file = get_string r in
                  let s_bytes = get_int r in
                  let s_checksum = get_int64 r in
                  { s_dataset; s_file; s_bytes; s_checksum })
            in
            expect_end r;
            sketches
      in
      { entries; sketches }

(* Same crash-safety discipline as Summary.save: temp file + atomic
   rename, so a manifest rewrite can never tear the catalog's index. *)
let save t path = Fault.atomic_write path (encode t)

let load path = decode (Fault.Io.default.Fault.Io.read_file path)

let load_typed ?(io = Fault.Io.default) path =
  match decode (io.Fault.Io.read_file path) with
  | v -> Ok v
  | exception Sys_error reason -> Error (E.Io_failure { path; reason })
  | exception Invalid_argument reason ->
      Error (E.Corrupt { path; section = section_name; reason })
  | exception E.Error e -> Error e

let load_result path = Result.map_error E.to_string (load_typed path)
