module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error

type entry = {
  dataset : string;
  variance : float;
  file : string;
  bytes : int;
  checksum : int64;
}

type t = { entries : entry list }

let empty = { entries = [] }

let same_key a b = String.equal a.dataset b.dataset && a.variance = b.variance

let add t entry =
  if List.exists (same_key entry) t.entries then
    { entries = List.map (fun e -> if same_key entry e then entry else e) t.entries }
  else { entries = t.entries @ [ entry ] }

let find t ~dataset ~variance =
  List.find_opt
    (fun e -> String.equal e.dataset dataset && e.variance = variance)
    t.entries

let section_name = "catalog_manifest"

let encode t =
  let open Wire in
  let buf = Buffer.create 256 in
  put_list buf
    (fun buf e ->
      put_string buf e.dataset;
      put_float buf e.variance;
      put_string buf e.file;
      put_int buf e.bytes;
      put_int64 buf e.checksum)
    t.entries;
  encode_container [ (section_name, Buffer.contents buf) ]

let decode data =
  let open Wire in
  let sections = decode_container data in
  match List.assoc_opt section_name sections with
  | None ->
      invalid_arg
        (Printf.sprintf "catalog manifest: missing section %S (is this a \
                         synopsis file?)"
           section_name)
  | Some payload ->
      let r = reader ~context:"catalog manifest" payload in
      let entries =
        get_list r (fun r ->
            let dataset = get_string r in
            let variance = get_float r in
            let file = get_string r in
            let bytes = get_int r in
            let checksum = get_int64 r in
            { dataset; variance; file; bytes; checksum })
      in
      expect_end r;
      { entries }

(* Same crash-safety discipline as Summary.save: temp file + atomic
   rename, so a manifest rewrite can never tear the catalog's index. *)
let save t path = Fault.atomic_write path (encode t)

let load path = decode (Fault.Io.default.Fault.Io.read_file path)

let load_typed ?(io = Fault.Io.default) path =
  match decode (io.Fault.Io.read_file path) with
  | v -> Ok v
  | exception Sys_error reason -> Error (E.Io_failure { path; reason })
  | exception Invalid_argument reason ->
      Error (E.Corrupt { path; section = section_name; reason })
  | exception E.Error e -> Error e

let load_result path = Result.map_error E.to_string (load_typed path)
