(** Fallback sketches: the last rung of the serving layer's
    degradation ladder.

    A sketch is the label-split (budget-0) form of
    {!Xpest_baseline.Xsketch} — per-tag element counts plus counted
    parent-child tag edges, i.e. order-1 Markov path statistics — for
    one dataset.  It is built by [catalog build] alongside the full
    summary, persisted in the same versioned, checksummed {!Wire}
    container under its own ["sketch"] section (so
    {!Synopsis_io.kind} tells the three file kinds apart), and pinned
    resident by {!Xpest_catalog.Catalog} so that a query whose
    summaries are quarantined or shed can still be answered.

    Sketches are hundreds of bytes to a few KiB where summaries are
    tens to hundreds of KiB; the estimates they back are coarse
    (independence + uniformity over tag transitions) but never
    unavailable. *)

type t

val build : Xpest_xml.Doc.t -> t
(** Build the label-split sketch of a document (a budget-0
    {!Xpest_baseline.Xsketch.build} export). *)

val of_export : Xpest_baseline.Xsketch.export -> t
val export : t -> Xpest_baseline.Xsketch.export

val num_tags : t -> int
val total_elements : t -> int

val section_name : string
(** ["sketch"] — how {!Synopsis_io.kind} tells a sketch from a
    summary or a manifest. *)

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input (bad magic, version,
    checksum, payload, or out-of-range tag codes). *)

val size_bytes : t -> int
(** Exact wire size in bytes, memoized like {!Summary.size_bytes}:
    recorded by [encode]/[decode], computed by a throwaway encode the
    first time otherwise.  This is the cost function of the catalog's
    pinned sketch region. *)

val save : ?io:Xpest_util.Fault.Io.t -> t -> string -> unit
(** Crash-safe: temp file + atomic rename
    ({!Xpest_util.Fault.atomic_write}).
    @raise Sys_error on I/O failure. *)

val load_typed :
  ?io:Xpest_util.Fault.Io.t -> string -> (t, Xpest_util.Xpest_error.t) result
(** Typed-error load for the serving stack: [Io_failure] when the file
    cannot be read, [Corrupt] when it is not a well-formed sketch.
    Reads through [?io] (fault-injectable); never raises. *)
