(** Catalog manifests: the on-disk entry table of a synopsis catalog.

    A catalog directory holds one synopsis file per
    [(dataset, variance)] key plus a manifest naming them.  The
    manifest reuses {!Wire}'s versioned, checksummed container (same
    magic, same corruption rejection) with a single
    ["catalog_manifest"] section, so [xpest synopsis info] recognizes
    both kinds of file and the catalog can refuse corrupted manifests
    before touching any synopsis.

    Entries record the synopsis file's size and body checksum at save
    time; {!Xpest_catalog.Catalog} re-verifies them on lazy load, so a
    synopsis rebuilt behind the manifest's back is detected instead of
    silently served. *)

type entry = {
  dataset : string;
  variance : float;
      (** the variance target both histogram families were built at *)
  file : string;  (** synopsis file name, relative to the manifest *)
  bytes : int;  (** synopsis file size at save time *)
  checksum : int64;  (** the synopsis file's stored body checksum *)
}

type sketch_entry = {
  s_dataset : string;
  s_file : string;  (** sketch file name, relative to the manifest *)
  s_bytes : int;  (** sketch file size at save time *)
  s_checksum : int64;  (** the sketch file's stored body checksum *)
}
(** One fallback sketch ({!Sketch}) per dataset — the last rung of the
    catalog's degradation ladder.  Sketches are keyed by dataset
    alone: one sketch covers every variance of its dataset. *)

type t = { entries : entry list; sketches : sketch_entry list }

val empty : t

val add : t -> entry -> t
(** Append, replacing any entry with the same [(dataset, variance)]
    key (entry order is otherwise preserved). *)

val find : t -> dataset:string -> variance:float -> entry option

val add_sketch : t -> sketch_entry -> t
(** Append, replacing any sketch entry with the same dataset. *)

val find_sketch : t -> dataset:string -> sketch_entry option

val section_name : string
(** ["catalog_manifest"] — how {!Synopsis_io.kind} tells a manifest
    from a synopsis. *)

val sketch_section_name : string
(** ["catalog_sketches"] — the manifest's optional sketch table.  Only
    emitted when sketches exist, so a sketch-free manifest stays
    byte-identical to the pre-sketch wire format, and decoding a
    pre-sketch manifest yields an empty sketch table. *)

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input (bad magic, version,
    checksum, or payload). *)

val save : t -> string -> unit
(** Crash-safe: temp file + atomic rename
    ({!Xpest_util.Fault.atomic_write}), so a manifest rewrite never
    leaves a torn index behind.
    @raise Sys_error on I/O failure. *)

val load : string -> t

val load_typed :
  ?io:Xpest_util.Fault.Io.t -> string -> (t, Xpest_util.Xpest_error.t) result
(** Typed-error load for the serving stack: [Io_failure] when the
    file cannot be read, [Corrupt] when it is not a well-formed
    manifest.  Reads through [?io] (fault-injectable); never raises. *)

val load_result : string -> (t, string) result
(** {!load_typed} with the error rendered. *)
