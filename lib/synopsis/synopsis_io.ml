module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error

type info = {
  path : string;
  version : int;
  supported : bool;
  total_bytes : int;
  checksum : int64;
  checksum_ok : bool;
  sections : (string * int) list;
}

let info ?(io = Fault.Io.default) path =
  let data = io.Fault.Io.read_file path in
  let h = Wire.read_header data in
  {
    path;
    version = h.Wire.version;
    supported = h.Wire.version = Wire.format_version;
    total_bytes = h.Wire.total_bytes;
    checksum = h.Wire.checksum;
    checksum_ok = h.Wire.checksum_ok;
    sections = h.Wire.sections;
  }

(* The three file kinds share Wire's container; the section names tell
   them apart without decoding any payload. *)
let kind i =
  if List.mem_assoc Manifest.section_name i.sections then `Catalog_manifest
  else if List.mem_assoc "encoding_table" i.sections then `Synopsis
  else if List.mem_assoc Sketch.section_name i.sections then `Sketch
  else `Unknown

let overhead_bytes i =
  i.total_bytes - List.fold_left (fun acc (_, n) -> acc + n) 0 i.sections

let save = Summary.save
let load = Summary.load

(* ------------------------------------------------------------------ *)
(* Typed loading: Invalid_argument leaks from the codec are classified
   into the error taxonomy.  The wire layer reports failures with a
   positional context string; [section_of_reason] maps that back to a
   wire section name, best-effort (a checksum mismatch proves damage
   without addressing it, so those attribute to "body").              *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let section_of_reason reason =
  (* wire section decoders fail with context "synopsis section "name"" *)
  let named_prefix = "synopsis section \"" in
  if
    String.length reason > String.length named_prefix
    && String.sub reason 0 (String.length named_prefix) = named_prefix
  then begin
    let rest =
      String.sub reason
        (String.length named_prefix)
        (String.length reason - String.length named_prefix)
    in
    match String.index_opt rest '"' with
    | Some i -> String.sub rest 0 i
    | None -> "body"
  end
  else if
    contains ~sub:"magic" reason || contains ~sub:"version" reason
    || contains ~sub:"legacy" reason
    || contains ~sub:"truncated header" reason
  then "header"
  else if contains ~sub:"checksum" reason then "body"
  else "container"

let classify path = function
  | Sys_error reason -> E.Io_failure { path; reason }
  | Invalid_argument reason ->
      E.Corrupt { path; section = section_of_reason reason; reason }
  | E.Error e -> e
  | exn -> E.Internal (Printexc.to_string exn)

let typed path f = match f () with v -> Ok v | exception exn -> Error (classify path exn)

let info_typed ?io path = typed path (fun () -> info ?io path)

let load_typed ?(io = Fault.Io.default) path =
  typed path (fun () -> Summary.decode (io.Fault.Io.read_file path))

let info_result path = Result.map_error E.to_string (info_typed path)
let load_result path = Result.map_error E.to_string (load_typed path)
