type info = {
  path : string;
  version : int;
  supported : bool;
  total_bytes : int;
  checksum : int64;
  checksum_ok : bool;
  sections : (string * int) list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let info path =
  let data = read_file path in
  let h = Wire.read_header data in
  {
    path;
    version = h.Wire.version;
    supported = h.Wire.version = Wire.format_version;
    total_bytes = h.Wire.total_bytes;
    checksum = h.Wire.checksum;
    checksum_ok = h.Wire.checksum_ok;
    sections = h.Wire.sections;
  }

(* The two file kinds share Wire's container; the section names tell
   them apart without decoding any payload. *)
let kind i =
  if List.mem_assoc Manifest.section_name i.sections then `Catalog_manifest
  else if List.mem_assoc "encoding_table" i.sections then `Synopsis
  else `Unknown

let overhead_bytes i =
  i.total_bytes - List.fold_left (fun acc (_, n) -> acc + n) 0 i.sections

let save = Summary.save
let load = Summary.load

let wrap f = match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg

let info_result path = wrap (fun () -> info path)
let load_result path = wrap (fun () -> load path)
