(** P-histograms (paper Section 6, Algorithm 1).

    One histogram per element tag summarizes that tag's
    pathId-frequency row.  The row is sorted by frequency and scanned
    greedily: path ids are added to the current bucket while the
    intra-bucket frequency variance (population standard deviation,
    the paper's definition) stays within the threshold [v].  Each
    bucket stores its path ids and their average frequency; [v = 0]
    therefore reproduces the exact table — equal frequencies can still
    share a bucket. *)

type bucket = {
  pid_indices : int array; (* in frequency-sorted scan order *)
  frequencies : int array; (* exact frequencies, for diagnostics/tests *)
  avg_frequency : float;
}

type t

val build : variance:float -> Pf_table.entry array -> t
(** Histogram for one tag's row.  @raise Invalid_argument if
    [variance < 0]. *)

val build_all : variance:float -> Pf_table.t -> (string * t) list
(** One histogram per tag of the table. *)

val buckets : t -> bucket list

val bucket_of_parts : pid_indices:int array -> frequencies:int array -> bucket
(** Reconstruct a bucket (recomputing its average); for the synopsis
    codec.  @raise Invalid_argument on length mismatch or emptiness.
    On the serving path this raise is only reachable through the wire
    reader, where [Synopsis_io.load_typed] classifies the escape as a
    typed [Corrupt] error instead of letting it propagate. *)

val of_buckets : bucket list -> t
(** Reassemble a histogram from buckets (for the synopsis codec);
    bucket order defines the pid order. *)

val frequency : t -> int -> float option
(** Estimated frequency of a pid index: its bucket's average.  [None]
    if the pid is not in the histogram (the tag never carries it). *)

val pid_order : t -> int array
(** All pid indices in histogram (frequency-sorted) order — the column
    order the o-histogram uses ("path ids order in p-histogram",
    Algorithm 2). *)

val max_intra_variance : t -> float
(** Largest realized intra-bucket variance; always [<=] the build
    threshold (tests rely on this). *)

val byte_size : t -> int
(** Modeled storage: 6 bytes per bucket (4-byte average + 2-byte
    count) + 2 bytes per pid id. *)
