module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Xsketch = Xpest_baseline.Xsketch

type t = { x : Xsketch.export; mutable wire_bytes : int }

let of_export x = { x; wire_bytes = 0 }
let export t = t.x

let build doc =
  of_export (Xsketch.export_label_split (Xsketch.build ~budget_bytes:0 doc))

let num_tags t = Array.length t.x.Xsketch.x_tags

let total_elements t =
  Array.fold_left ( + ) 0 t.x.Xsketch.x_counts

let section_name = "sketch"

let encode t =
  let open Wire in
  let open Xsketch in
  let buf = Buffer.create 256 in
  put_int buf t.x.x_doc_max_depth;
  put_int buf t.x.x_root_tag;
  put_array buf put_string t.x.x_tags;
  put_array buf put_int t.x.x_counts;
  put_array buf
    (fun buf edges ->
      put_array buf
        (fun buf (child, k) ->
          put_int buf child;
          put_int buf k)
        edges)
    t.x.x_edges;
  let data = encode_container [ (section_name, Buffer.contents buf) ] in
  t.wire_bytes <- String.length data;
  data

let decode data =
  let open Wire in
  let sections = decode_container data in
  match List.assoc_opt section_name sections with
  | None ->
      invalid_arg
        (Printf.sprintf
           "fallback sketch: missing section %S (is this a synopsis file?)"
           section_name)
  | Some payload ->
      let r = reader ~context:"fallback sketch" payload in
      let x_doc_max_depth = get_int r in
      let x_root_tag = get_int r in
      let x_tags = get_array r get_string in
      let x_counts = get_array r get_int in
      let x_edges =
        get_array r (fun r ->
            get_array r (fun r ->
                let child = get_int r in
                let k = get_int r in
                (child, k)))
      in
      expect_end r;
      let n = Array.length x_tags in
      if Array.length x_counts <> n || Array.length x_edges <> n then
        fail r "mismatched tag/count/edge table lengths";
      if n = 0 then fail r "empty tag set";
      if x_root_tag >= n then fail r "root tag out of range";
      Array.iter
        (Array.iter (fun (child, _) ->
             if child >= n then fail r "edge child tag out of range"))
        x_edges;
      let t =
        of_export
          Xsketch.{ x_doc_max_depth; x_root_tag; x_tags; x_counts; x_edges }
      in
      t.wire_bytes <- String.length data;
      t

let size_bytes t =
  if t.wire_bytes > 0 then t.wire_bytes
  else begin
    ignore (encode t);
    t.wire_bytes
  end

(* Same crash-safety discipline as Summary.save / Manifest.save: temp
   file + atomic rename through the fault-injectable seam. *)
let save ?io t path = Fault.atomic_write ?io path (encode t)

let load_typed ?(io = Fault.Io.default) path =
  match decode (io.Fault.Io.read_file path) with
  | v -> Ok v
  | exception Sys_error reason -> Error (E.Io_failure { path; reason })
  | exception Invalid_argument reason ->
      Error (E.Corrupt { path; section = section_name; reason })
  | exception E.Error e -> Error e
