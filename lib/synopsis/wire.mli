(** Binary codec primitives and the versioned, checksummed container
    of the synopsis file format.

    The on-disk layout is

    {v
    bytes 0..7    magic "XPESTSYN"
    byte  8       format version (currently 3)
    bytes 9..16   FNV-1a 64 checksum of the body, big-endian
    body          section table (count; per section: name, length),
                  then the section payloads concatenated
    v}

    The checksum covers the whole body, so corruption and truncation
    are rejected with a clean [Invalid_argument] before any section is
    decoded.  Sections carry self-describing names so tooling
    ([xpest synopsis info]) can report per-component sizes without
    decoding payloads. *)

(** {1 Primitive writers (values append to a [Buffer.t])} *)

val put_int : Buffer.t -> int -> unit
(** Non-negative ints as LEB128 varints. *)

val put_float : Buffer.t -> float -> unit
(** 8 raw IEEE-754 bytes, big-endian. *)

val put_int64 : Buffer.t -> int64 -> unit
(** 8 raw bytes, big-endian (checksums in catalog manifests). *)

val put_string : Buffer.t -> string -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val put_array : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val put_bitvec : Buffer.t -> Xpest_util.Bitvec.t -> unit

(** {1 Primitive readers}

    All readers raise [Invalid_argument] with the reader's context and
    byte offset on malformed input. *)

type reader = { data : string; mutable pos : int; context : string }

val reader : ?context:string -> string -> reader
val fail : reader -> string -> 'a
val get_int : reader -> int
val get_float : reader -> float
val get_int64 : reader -> int64
val get_string : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list
val get_array : reader -> (reader -> 'a) -> 'a array
val get_bitvec : reader -> Xpest_util.Bitvec.t
val expect_end : reader -> unit

(** {1 Checksum} *)

val fnv1a64 : string -> int64

(** {1 Container} *)

val format_version : int
val header_bytes : int

val encode_container : (string * string) list -> string
(** Full file bytes for named section payloads, in the given order. *)

val decode_container : string -> (string * string) list
(** Parse file bytes back to named sections.
    @raise Invalid_argument on bad magic, unsupported or legacy
    version, checksum mismatch, or a malformed section table. *)

type header = {
  version : int;
  checksum : int64;
  checksum_ok : bool;
  total_bytes : int;
  sections : (string * int) list;
      (** per-section payload sizes in bytes; empty when the checksum
          does not verify (the table itself is untrustworthy) *)
}

val read_header : string -> header
(** Header-only parse for [synopsis info]: tolerates an unsupported
    version and a failing checksum (reported in the result), but still
    raises [Invalid_argument] on bad magic, the legacy "XPESTSYN2"
    format, or a truncated header. *)
