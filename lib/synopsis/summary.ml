module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Counters = Xpest_util.Counters
module Fault = Xpest_util.Fault
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler
module Pid_tree = Xpest_encoding.Pid_tree

(* Observability: synopsis construction vs. load-from-disk wall time.
   No-ops unless [Counters.set_enabled true]. *)
let t_build = Counters.create_timer "summary.build"
let t_load = Counters.create_timer "summary.load"
let t_save = Counters.create_timer "summary.save"

type base = {
  doc : Doc.t;
  table : Encoding_table.t;
  labeler : Labeler.t;
  pid_tree : Pid_tree.t;
  pf : Pf_table.t;
  po : Po_table.t option;
}

module Pid_tbl = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

(* Everything estimation needs, independent of the document: this is
   what [save]/[load] persist. *)
type core = {
  table : Encoding_table.t;
  pids : Bitvec.t array;
  pid_index : int Pid_tbl.t;
  root_pid : Bitvec.t;
  tag_names : string array;
  code_of : (string, int) Hashtbl.t;
  pid_tree : Pid_tree.t;
  p_variance : float;
  o_variance : float;
  p_histos : (string, P_histogram.t) Hashtbl.t;
  o_histos : (string, O_histogram.t) Hashtbl.t;
}

(* [wire_bytes] memoizes the exact encoded size (0 = not yet known):
   [decode] learns it for free from the input, [encode]/[size_bytes]
   fill it in on first use.  The write is idempotent (the codec is
   canonical, so every computation yields the same int), which makes
   the benign race of two domains memoizing at once harmless. *)
type t = { core : core; b : base option; mutable wire_bytes : int }

let collect_with ~order doc =
  let table = Encoding_table.build doc in
  let labeler = Labeler.label doc table in
  let pid_tree = Pid_tree.build (Array.to_list (Labeler.distinct_pids labeler)) in
  let pf = Pf_table.build labeler in
  let po = if order then Some (Po_table.build labeler) else None in
  { doc; table; labeler; pid_tree; pf; po }

let collect doc = collect_with ~order:true doc
let collect_paths_only doc = collect_with ~order:false doc
let without_order b = { b with po = None }

let alpha_ranks_of_names names =
  let sorted = Array.copy names in
  Array.sort String.compare sorted;
  let rank_of_name = Hashtbl.create (Array.length names) in
  Array.iteri (fun rank name -> Hashtbl.replace rank_of_name name rank) sorted;
  Array.map (fun name -> Hashtbl.find rank_of_name name) names

let build_histos ~p_variance ~o_variance ~pf ~po ~ntags ~alpha_ranks =
  let p_histos = Hashtbl.create 64 in
  List.iter
    (fun (tag, h) -> Hashtbl.replace p_histos tag h)
    (P_histogram.build_all ~variance:p_variance pf);
  let o_histos = Hashtbl.create 64 in
  (match po with
  | None -> ()
  | Some po ->
      let tag_alpha_rank code = alpha_ranks.(code) in
      List.iter
        (fun tag ->
          match Hashtbl.find_opt p_histos tag with
          | None -> ()
          | Some ph ->
              let cells = Po_table.cells po tag in
              let histo =
                O_histogram.build ~variance:o_variance ~ntags ~tag_alpha_rank
                  ~pid_order:(P_histogram.pid_order ph) cells
              in
              Hashtbl.replace o_histos tag histo)
        (Pf_table.tags pf));
  (p_histos, o_histos)

let assemble ?(p_variance = 0.0) ?(o_variance = 0.0) (b : base) =
  let doc = b.doc in
  let ntags = Doc.num_tags doc in
  let tag_names = Array.init ntags (Doc.tag_name doc) in
  let alpha_ranks = alpha_ranks_of_names tag_names in
  let p_histos, o_histos =
    build_histos ~p_variance ~o_variance ~pf:b.pf ~po:b.po ~ntags ~alpha_ranks
  in
  let pids = Labeler.distinct_pids b.labeler in
  let pid_index = Pid_tbl.create (Array.length pids) in
  Array.iteri (fun i pid -> Pid_tbl.replace pid_index pid i) pids;
  let code_of = Hashtbl.create ntags in
  Array.iteri (fun code name -> Hashtbl.replace code_of name code) tag_names;
  {
    core =
      {
        table = b.table;
        pids;
        pid_index;
        root_pid = Labeler.pid b.labeler (Doc.root doc);
        tag_names;
        code_of;
        pid_tree = b.pid_tree;
        p_variance;
        o_variance;
        p_histos;
        o_histos;
      };
    b = Some b;
    wire_bytes = 0;
  }

let build ?p_variance ?o_variance doc =
  Counters.time t_build (fun () ->
      assemble ?p_variance ?o_variance (collect doc))

let from_document_error what =
  invalid_arg
    (Printf.sprintf
       "Summary.%s: not available on a synopsis loaded from disk" what)

let doc t = match t.b with Some b -> b.doc | None -> from_document_error "doc"
let base t = match t.b with Some b -> b | None -> from_document_error "base"

let labeler t =
  match t.b with Some b -> b.labeler | None -> from_document_error "labeler"

let encoding_table t = t.core.table
let root_pid t = t.core.root_pid
let tags t = Array.copy t.core.tag_names
let pf_table (b : base) = b.pf
let po_table (b : base) = b.po
let p_variance t = t.core.p_variance
let o_variance t = t.core.o_variance

let tag_pids t tag =
  match Hashtbl.find_opt t.core.p_histos tag with
  | None -> []
  | Some h ->
      Array.to_list (P_histogram.pid_order h)
      |> List.filter_map (fun idx ->
             match P_histogram.frequency h idx with
             | Some f -> Some (t.core.pids.(idx), f)
             | None -> None)

let tag_total t tag =
  List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (tag_pids t tag)

let order_frequency t ~tag ~pid ~other ~region =
  match
    (Hashtbl.find_opt t.core.o_histos tag, Pid_tbl.find_opt t.core.pid_index pid)
  with
  | Some h, Some pid_index -> (
      match Hashtbl.find_opt t.core.code_of other with
      | Some other_tag -> O_histogram.lookup h ~pid_index ~other_tag ~region
      | None -> 0.0)
  | None, _ | Some _, None -> 0.0

let p_histogram_buckets t =
  Hashtbl.fold
    (fun tag h acc -> (tag, List.length (P_histogram.buckets h)) :: acc)
    t.core.p_histos []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let o_histogram_boxes t =
  Hashtbl.fold
    (fun tag h acc -> (tag, List.length (O_histogram.boxes h)) :: acc)
    t.core.o_histos []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let p_histogram_bytes t =
  Hashtbl.fold (fun _ h acc -> acc + P_histogram.byte_size h) t.core.p_histos 0

let o_histogram_bytes t =
  Hashtbl.fold (fun _ h acc -> acc + O_histogram.byte_size h) t.core.o_histos 0

let encoding_table_bytes t = Encoding_table.byte_size t.core.table
let pid_tree_bytes t = Pid_tree.byte_size t.core.pid_tree

let total_bytes t =
  encoding_table_bytes t + pid_tree_bytes t + p_histogram_bytes t

(* ------------------------------------------------------------------ *)
(* Persistence: named sections in Wire's versioned, checksummed
   container (no Marshal, so files are stable across compiler
   versions).  Section payloads are written in a canonical order
   (histograms sorted by tag), so saving, loading and saving again is
   byte-identical.                                                     *)

let section_meta = "meta"
let section_table = "encoding_table"
let section_pids = "path_ids"
let section_tags = "tags"
let section_phist = "p_histograms"
let section_ohist = "o_histograms"

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_sections t =
  let open Wire in
  let c = t.core in
  let section f =
    let buf = Buffer.create 1024 in
    f buf;
    Buffer.contents buf
  in
  [
    ( section_meta,
      section (fun buf ->
          put_float buf c.p_variance;
          put_float buf c.o_variance) );
    ( section_table,
      section (fun buf ->
          put_list buf
            (fun buf p -> put_list buf put_string p)
            (Encoding_table.paths c.table)) );
    ( section_pids,
      section (fun buf ->
          put_array buf put_bitvec c.pids;
          put_bitvec buf c.root_pid) );
    (section_tags, section (fun buf -> put_array buf put_string c.tag_names));
    ( section_phist,
      section (fun buf ->
          let entries = sorted_bindings c.p_histos in
          put_int buf (List.length entries);
          List.iter
            (fun (tag, h) ->
              put_string buf tag;
              put_list buf
                (fun buf (b : P_histogram.bucket) ->
                  put_array buf put_int b.pid_indices;
                  put_array buf put_int b.frequencies)
                (P_histogram.buckets h))
            entries) );
    ( section_ohist,
      section (fun buf ->
          (* boxes + the column order they were built with *)
          let entries = sorted_bindings c.o_histos in
          put_int buf (List.length entries);
          List.iter
            (fun (tag, h) ->
              put_string buf tag;
              (match Hashtbl.find_opt c.p_histos tag with
              | Some ph -> put_array buf put_int (P_histogram.pid_order ph)
              | None -> put_int buf 0);
              put_list buf
                (fun buf (b : O_histogram.box) ->
                  put_int buf b.x_start;
                  put_int buf b.y_start;
                  put_int buf b.x_end;
                  put_int buf b.y_end;
                  put_float buf b.frequency)
                (O_histogram.boxes h))
            entries) );
  ]

let of_sections sections =
  let open Wire in
  let section name =
    match List.assoc_opt name sections with
    | Some payload ->
        reader ~context:(Printf.sprintf "synopsis section %S" name) payload
    | None ->
        invalid_arg
          (Printf.sprintf "synopsis file: missing section %S" name)
  in
  let r = section section_meta in
  let p_variance = get_float r in
  let o_variance = get_float r in
  expect_end r;
  let r = section section_table in
  let paths = get_list r (fun r -> get_list r get_string) in
  expect_end r;
  let table = Encoding_table.of_paths paths in
  let r = section section_pids in
  let pids = get_array r get_bitvec in
  let root_pid = get_bitvec r in
  expect_end r;
  let r = section section_tags in
  let tag_names = get_array r get_string in
  expect_end r;
  let ntags = Array.length tag_names in
  let alpha_ranks = alpha_ranks_of_names tag_names in
  let p_histos = Hashtbl.create 64 in
  let r = section section_phist in
  let np = get_int r in
  for _ = 1 to np do
    let tag = get_string r in
    let buckets =
      get_list r (fun r ->
          let pid_indices = get_array r get_int in
          let frequencies = get_array r get_int in
          P_histogram.bucket_of_parts ~pid_indices ~frequencies)
    in
    Hashtbl.replace p_histos tag (P_histogram.of_buckets buckets)
  done;
  expect_end r;
  let o_histos = Hashtbl.create 64 in
  let r = section section_ohist in
  let no = get_int r in
  for _ = 1 to no do
    let tag = get_string r in
    let pid_order = get_array r get_int in
    let boxes =
      get_list r (fun r ->
          let x_start = get_int r in
          let y_start = get_int r in
          let x_end = get_int r in
          let y_end = get_int r in
          let frequency = get_float r in
          { O_histogram.x_start; y_start; x_end; y_end; frequency })
    in
    Hashtbl.replace o_histos tag
      (O_histogram.of_boxes ~ntags
         ~tag_alpha_rank:(fun code -> alpha_ranks.(code))
         ~pid_order boxes)
  done;
  expect_end r;
  let pid_index = Pid_tbl.create (Array.length pids) in
  Array.iteri (fun i pid -> Pid_tbl.replace pid_index pid i) pids;
  let code_of = Hashtbl.create ntags in
  Array.iteri (fun code name -> Hashtbl.replace code_of name code) tag_names;
  let pid_tree = Pid_tree.build (Array.to_list pids) in
  {
    core =
      {
        table;
        pids;
        pid_index;
        root_pid;
        tag_names;
        code_of;
        pid_tree;
        p_variance;
        o_variance;
        p_histos;
        o_histos;
      };
    b = None;
    wire_bytes = 0;
  }

let encode t =
  let data = Wire.encode_container (to_sections t) in
  t.wire_bytes <- String.length data;
  data

let decode data =
  (* Decode failures past the container layer would indicate a bug in
     the codec itself (the checksum has already vouched for the bytes),
     but still surface them as a clean error. *)
  let t = of_sections (Wire.decode_container data) in
  t.wire_bytes <- String.length data;
  t

(* Exact residency cost in bytes: the canonical wire size.  Loaded
   summaries know it for free; built summaries pay one [encode] on
   first call and memoize. *)
let size_bytes t =
  if t.wire_bytes = 0 then ignore (encode t);
  t.wire_bytes

(* Crash-safe: the encoded bytes land via temp-file + atomic rename,
   so a process killed mid-save never leaves a torn synopsis behind —
   the previous file (if any) survives byte-identical.  [io] is the
   write-abort injection seam for the chaos suites. *)
let save ?io t path =
  Counters.time t_save (fun () -> Fault.atomic_write ?io path (encode t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = Counters.time t_load (fun () -> decode (read_file path))
