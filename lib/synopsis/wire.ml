module Bitvec = Xpest_util.Bitvec

(* ------------------------------------------------------------------ *)
(* Primitives.                                                         *)

(* non-negative ints as LEB128 varints: counts and ids are small, so
   this keeps synopsis files a few percent of the document *)
let rec put_int buf n =
  assert (n >= 0);
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
    put_int buf (n lsr 7)
  end

(* floats as their 8 raw IEEE-754 bytes, big-endian *)
let put_float buf f =
  let bits = Int64.bits_of_float f in
  for byte = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * byte)) land 0xff))
  done

(* int64s (checksums in catalog manifests) as 8 raw bytes, big-endian *)
let put_int64 buf v =
  for byte = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * byte)) land 0xff))
  done

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_list buf put items =
  put_int buf (List.length items);
  List.iter (put buf) items

let put_array buf put items =
  put_int buf (Array.length items);
  Array.iter (put buf) items

let put_bitvec buf v =
  put_int buf (Bitvec.width v);
  put_string buf (Bitvec.to_packed_string v)

type reader = { data : string; mutable pos : int; context : string }

let reader ?(context = "synopsis") data = { data; pos = 0; context }

let fail r msg =
  invalid_arg (Printf.sprintf "%s: %s at offset %d" r.context msg r.pos)

let get_int r =
  let rec go shift acc =
    if shift > 62 then fail r "varint too long";
    if r.pos >= String.length r.data then fail r "truncated int";
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_float r =
  if r.pos + 8 > String.length r.data then fail r "truncated float";
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.data.[r.pos]));
    r.pos <- r.pos + 1
  done;
  Int64.float_of_bits !bits

let get_int64 r =
  if r.pos + 8 > String.length r.data then fail r "truncated int64";
  let v = ref 0L in
  for _ = 1 to 8 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.data.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let get_string r =
  let n = get_int r in
  if n < 0 || r.pos + n > String.length r.data then fail r "truncated string";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get =
  let n = get_int r in
  List.init n (fun _ -> get r)

let get_array r get =
  let n = get_int r in
  Array.init n (fun _ -> get r)

let get_bitvec r =
  let width = get_int r in
  Bitvec.of_packed_string ~width (get_string r)

let expect_end r =
  if r.pos <> String.length r.data then fail r "trailing bytes"

(* ------------------------------------------------------------------ *)
(* Checksum: FNV-1a 64, applied to the container body so corruption and
   truncation are rejected before any section is decoded.              *)

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Container: magic, version, checksum, section table, payloads.

     bytes 0..7    magic "XPESTSYN"
     byte  8       format version (currently 3)
     bytes 9..16   FNV-1a 64 of the body, big-endian
     body          varint section count,
                   then per section: name string, payload length varint,
                   then the payloads concatenated in table order

   Older repositories wrote an unversioned format whose magic was
   "XPESTSYN2"; its 9th byte reads back as version 0x32, which
   [read_header] reports as the legacy format rather than garbage.     *)

let magic = "XPESTSYN"
let format_version = 3
let header_bytes = String.length magic + 1 + 8

type header = {
  version : int;
  checksum : int64;
  checksum_ok : bool;
  total_bytes : int;
  sections : (string * int) list;
}

let put_int64_be buf v =
  for byte = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * byte)) land 0xff))
  done

let get_int64_be data pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code data.[pos + i]))
  done;
  !v

let encode_container sections =
  let body = Buffer.create 4096 in
  put_int body (List.length sections);
  List.iter
    (fun (name, payload) ->
      put_string body name;
      put_int body (String.length payload))
    sections;
  List.iter (fun (_, payload) -> Buffer.add_string body payload) sections;
  let body = Buffer.contents body in
  let out = Buffer.create (header_bytes + String.length body) in
  Buffer.add_string out magic;
  Buffer.add_char out (Char.chr format_version);
  put_int64_be out (fnv1a64 body);
  Buffer.add_string out body;
  Buffer.contents out

let check_magic data =
  if String.length data < header_bytes then
    invalid_arg "synopsis file: truncated header";
  if String.sub data 0 (String.length magic) <> magic then
    invalid_arg "synopsis file: bad magic (not a synopsis file)"

let read_version data =
  let v = Char.code data.[String.length magic] in
  if v = Char.code '2' then
    invalid_arg
      "synopsis file: legacy unversioned format (XPESTSYN2); rebuild it with \
       `xpest synopsis save`"
  else v

let read_header data =
  check_magic data;
  let version = read_version data in
  let checksum = get_int64_be data (String.length magic + 1) in
  let body = String.sub data header_bytes (String.length data - header_bytes) in
  let checksum_ok = Int64.equal (fnv1a64 body) checksum in
  let sections =
    if not checksum_ok then []
    else
      let r = reader ~context:"synopsis file" body in
      let n = get_int r in
      List.init n (fun _ ->
          let name = get_string r in
          let len = get_int r in
          (name, len))
  in
  { version; checksum; checksum_ok; total_bytes = String.length data; sections }

let decode_container data =
  check_magic data;
  let version = read_version data in
  if version <> format_version then
    invalid_arg
      (Printf.sprintf
         "synopsis file: unsupported format version %d (this build reads \
          version %d)"
         version format_version);
  let checksum = get_int64_be data (String.length magic + 1) in
  let body = String.sub data header_bytes (String.length data - header_bytes) in
  if not (Int64.equal (fnv1a64 body) checksum) then
    invalid_arg "synopsis file: checksum mismatch (corrupted or truncated)";
  let r = reader ~context:"synopsis file" body in
  let table =
    let n = get_int r in
    List.init n (fun _ ->
        let name = get_string r in
        let len = get_int r in
        (name, len))
  in
  let sections =
    List.map
      (fun (name, len) ->
        if r.pos + len > String.length body then fail r "truncated section";
        let payload = String.sub body r.pos len in
        r.pos <- r.pos + len;
        (name, payload))
      table
  in
  expect_end r;
  sections
