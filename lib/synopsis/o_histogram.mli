(** O-histograms (paper Section 6, Algorithm 2).

    One histogram per element tag [X] summarizes [X]'s path-order
    table as a set of rectangular buckets
    [(x.start, y.start, x.end, y.end, frequency)] over a 2-D grid:

    - columns (x) are [X]'s path ids in p-histogram order;
    - rows (y) are [region * ntags + alphabetic tag rank] — the
      "+element" (Before) region first, then "element+" (After);
    - a bucket's [frequency] is the average over *all* cells of its
      box, empty cells counting 0, and the intra-box deviation is kept
      within the threshold [v] (so [v = 0] buckets never mix distinct
      values and lookups are exact).

    Construction scans non-empty cells row-wise; each uncovered cell is
    extended rightward along its row, then the row-box is extended
    downward while rows stay non-empty, unclaimed, and within
    variance. *)

type box = {
  x_start : int;
  y_start : int;
  x_end : int; (* inclusive *)
  y_end : int; (* inclusive *)
  frequency : float; (* average over the whole box *)
}

type t

val build :
  variance:float ->
  ntags:int ->
  tag_alpha_rank:(int -> int) ->
  pid_order:int array ->
  Po_table.cell list ->
  t
(** Histogram for one tag.  [pid_order] is the tag's p-histogram pid
    order (defines columns); [tag_alpha_rank] maps tag codes to their
    alphabetic rank (defines rows); cells with pid indices outside
    [pid_order] are impossible by construction and rejected.
    @raise Invalid_argument if [variance < 0].  Both raises are
    build-time validation: they run when a synopsis is constructed
    from a document, never on the load/serve path (decoding goes
    through {!of_boxes} under the wire reader, whose escapes
    [Synopsis_io.load_typed] classifies as [Corrupt]). *)

val boxes : t -> box list

val of_boxes :
  ntags:int ->
  tag_alpha_rank:(int -> int) ->
  pid_order:int array ->
  box list ->
  t
(** Reassemble a histogram from its boxes (for the synopsis codec). *)

val lookup :
  t -> pid_index:int -> other_tag:int -> region:Po_table.region -> float
(** Estimated cell value: the containing box's average frequency, or 0
    if no box covers the cell. *)

val byte_size : t -> int
(** Modeled storage: 20 bytes per box (five 4-byte fields, the paper's
    bucket format). *)
