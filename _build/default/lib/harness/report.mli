(** Markdown rendering of experiment artefacts.

    The bench harness prints ASCII tables for terminals; this module
    renders the same artefacts as GitHub-flavored markdown so a full
    run can be committed as a report (bench `--markdown`). *)

val table_md : Experiments.table -> string
(** One pipe-table with a [### id title] heading. *)

val figure_md : Experiments.figure -> string
(** A figure as a pipe-table keyed on x, one column per series. *)

val artefact_md : Experiments.artefact -> string

val document :
  title:string -> preamble:string list -> Experiments.artefact list -> string
(** A complete markdown document: title, preamble paragraphs, one
    section per artefact. *)
