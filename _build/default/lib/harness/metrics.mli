(** Error metrics over workload items. *)

val mean_rel_error :
  Xpest_workload.Workload.item list ->
  (Xpest_xpath.Pattern.t -> float) ->
  float
(** Average relative error [|est - actual| / actual] of an estimator
    over a workload class (the y-axis of Figures 10-13); 0 for the
    empty list. *)

val percentile_errors :
  Xpest_workload.Workload.item list ->
  (Xpest_xpath.Pattern.t -> float) ->
  float * float * float
(** [(mean, median, p90)] of the relative errors; all 0 for the empty
    list. *)
