lib/harness/report.ml: Buffer Experiments Float List Printf String Xpest_util
