lib/harness/metrics.ml: Array Float List Xpest_util Xpest_workload
