lib/harness/env.ml: Float Hashtbl List Unix Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_workload Xpest_xml
