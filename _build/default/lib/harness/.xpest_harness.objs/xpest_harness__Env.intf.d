lib/harness/env.mli: Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_workload Xpest_xml
