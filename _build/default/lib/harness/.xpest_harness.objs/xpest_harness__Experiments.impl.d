lib/harness/experiments.ml: Array Env Float List Metrics Printf String Xpest_baseline Xpest_datasets Xpest_encoding Xpest_estimator Xpest_synopsis Xpest_util Xpest_workload Xpest_xml Xpest_xpath
