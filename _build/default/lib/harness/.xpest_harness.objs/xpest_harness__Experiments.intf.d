lib/harness/experiments.mli: Env
