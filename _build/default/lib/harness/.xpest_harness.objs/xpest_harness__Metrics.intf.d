lib/harness/metrics.mli: Xpest_workload Xpest_xpath
