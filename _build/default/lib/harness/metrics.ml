module Stats = Xpest_util.Stats
module Workload = Xpest_workload.Workload

let errors items estimate =
  Array.of_list
    (List.map
       (fun (it : Workload.item) ->
         Stats.relative_error
           ~actual:(Float.of_int it.actual)
           ~estimate:(estimate it.pattern))
       items)

let mean_rel_error items estimate =
  let errs = errors items estimate in
  if Array.length errs = 0 then 0.0 else Stats.mean errs

let percentile_errors items estimate =
  let errs = errors items estimate in
  if Array.length errs = 0 then (0.0, 0.0, 0.0)
  else (Stats.mean errs, Stats.percentile errs 50.0, Stats.percentile errs 90.0)
