module Registry = Xpest_datasets.Registry
module Summary = Xpest_synopsis.Summary
module Workload = Xpest_workload.Workload
module Estimator = Xpest_estimator.Estimator

type config = {
  scale : float;
  workload : Workload.config;
  max_queries_per_class : int option;
}

let default_config =
  { scale = 1.0; workload = Workload.default_config; max_queries_per_class = None }

let quick_config =
  {
    scale = 0.02;
    workload =
      { Workload.default_config with num_simple = 300; num_branch = 300 };
    max_queries_per_class = Some 100;
  }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type t = {
  name : Registry.name;
  config : config;
  doc : Xpest_xml.Doc.t;
  base : Summary.base;
  base_paths_only : Summary.base;
  collect_paths_seconds : float;
  collect_order_seconds : float;
  workload : Workload.t;
  summaries : (float * float * bool, Summary.t) Hashtbl.t;
  estimators : (float * float * bool, Estimator.t) Hashtbl.t;
}

let prepare ?(config = default_config) name =
  let doc = Registry.generate ~scale:config.scale name in
  (* time the path side and the order side separately, reusing the
     path side's work for the full base *)
  let base_paths_only, collect_paths_seconds =
    time (fun () -> Summary.collect_paths_only doc)
  in
  let base, collect_order_seconds =
    (* the order sweep is the only extra work in [collect]; measure it
       by differencing a full collection *)
    let full, full_time = time (fun () -> Summary.collect doc) in
    (full, Float.max 0.0 (full_time -. collect_paths_seconds))
  in
  let workload =
    Workload.generate ~config:{ config.workload with seed = config.workload.seed } doc
  in
  {
    name;
    config;
    doc;
    base;
    base_paths_only;
    collect_paths_seconds;
    collect_order_seconds;
    workload;
    summaries = Hashtbl.create 16;
    estimators = Hashtbl.create 16;
  }

let name t = t.name
let config t = t.config
let doc t = t.doc
let base t = t.base
let workload t = t.workload
let collect_paths_seconds t = t.collect_paths_seconds
let collect_order_seconds t = t.collect_order_seconds

let summary t ~p_variance ~o_variance ~with_order =
  let key = (p_variance, o_variance, with_order) in
  match Hashtbl.find_opt t.summaries key with
  | Some s -> s
  | None ->
      let base = if with_order then t.base else t.base_paths_only in
      let s = Summary.assemble ~p_variance ~o_variance base in
      Hashtbl.add t.summaries key s;
      s

let estimator t ~p_variance ~o_variance ~with_order =
  let key = (p_variance, o_variance, with_order) in
  match Hashtbl.find_opt t.estimators key with
  | Some e -> e
  | None ->
      let e = Estimator.create (summary t ~p_variance ~o_variance ~with_order) in
      Hashtbl.add t.estimators key e;
      e

let queries t cls =
  let items =
    match cls with
    | `Simple -> t.workload.Workload.simple
    | `Branch -> t.workload.Workload.branch
    | `Order_branch -> t.workload.Workload.order_branch_target
    | `Order_trunk -> t.workload.Workload.order_trunk_target
  in
  match t.config.max_queries_per_class with
  | None -> items
  | Some cap -> List.filteri (fun i _ -> i < cap) items
