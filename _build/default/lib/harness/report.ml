let fmt = Xpest_util.Tablefmt.fmt_float

(* Escape the characters that break GFM pipe tables. *)
let cell s =
  String.concat "\\|" (String.split_on_char '|' s)
  |> String.map (function '\n' -> ' ' | c -> c)

let pipe_table header rows =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.map cell cells));
    Buffer.add_string buf " |\n"
  in
  row header;
  row (List.map (fun _ -> "---") header);
  List.iter row rows;
  Buffer.contents buf

let table_md (t : Experiments.table) =
  Printf.sprintf "### %s %s\n\n%s" t.id t.title (pipe_table t.header t.rows)

let figure_md (f : Experiments.figure) =
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) f.series
    |> List.sort_uniq Float.compare
  in
  let header = f.x_label :: List.map fst f.series in
  let rows =
    List.map
      (fun x ->
        fmt x
        :: List.map
             (fun (_, pts) ->
               match List.assoc_opt x pts with Some y -> fmt y | None -> "-")
             f.series)
      xs
  in
  Printf.sprintf "### %s %s\n\n*y = %s*\n\n%s" f.fid f.ftitle f.y_label
    (pipe_table header rows)

let artefact_md = function
  | Experiments.Table t -> table_md t
  | Experiments.Figures figs -> String.concat "\n" (List.map figure_md figs)

let document ~title ~preamble artefacts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  List.iter (fun p -> Buffer.add_string buf (p ^ "\n\n")) preamble;
  List.iter
    (fun a ->
      Buffer.add_string buf (artefact_md a);
      Buffer.add_char buf '\n')
    artefacts;
  Buffer.contents buf
