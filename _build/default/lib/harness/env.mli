(** Prepared per-dataset experiment state.

    Generating a dataset, collecting its statistics and evaluating the
    ground truth of a workload is by far the expensive part of every
    experiment, so the harness prepares it once per dataset and shares
    it across all tables and figures.  Assembled summaries are memoized
    per (p-variance, o-variance, with-order) triple. *)

type config = {
  scale : float;  (** dataset scale factor (1.0 = paper-size) *)
  workload : Xpest_workload.Workload.config;
  max_queries_per_class : int option;
      (** deterministic cap on queries evaluated per class; [None] =
          the full workload *)
}

val default_config : config
(** [scale = 1.0], the paper's workload parameters, no cap. *)

val quick_config : config
(** Small scale and workload for smoke tests. *)

type t

val prepare : ?config:config -> Xpest_datasets.Registry.name -> t

val name : t -> Xpest_datasets.Registry.name
val config : t -> config
val doc : t -> Xpest_xml.Doc.t
val base : t -> Xpest_synopsis.Summary.base
val workload : t -> Xpest_workload.Workload.t

val collect_paths_seconds : t -> float
(** Wall-clock time of the path-statistics collection (encoding table
    + labeling + pathId-frequency table) — Table 4's "Collecting Path
    Time". *)

val collect_order_seconds : t -> float
(** Wall-clock time of the path-order sweep — Table 5's "Collecting
    Order Time". *)

val summary :
  t -> p_variance:float -> o_variance:float -> with_order:bool ->
  Xpest_synopsis.Summary.t
(** Memoized assembly. *)

val estimator :
  t -> p_variance:float -> o_variance:float -> with_order:bool ->
  Xpest_estimator.Estimator.t
(** Memoized estimator over {!summary}. *)

val queries :
  t -> [ `Simple | `Branch | `Order_branch | `Order_trunk ] ->
  Xpest_workload.Workload.item list
(** The workload class, capped per [max_queries_per_class]
    (deterministic prefix). *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock timing helper. *)
