(** Second-order Markov path model (McHugh & Widom, VLDB 1999 style).

    Stores tag frequencies and parent-child tag-pair frequencies and
    estimates by multiplying conditional traversal ratios — exactly
    the label-split special case of the XSketch synopsis, so this
    module is a thin wrapper over {!Xsketch} built with no refinement.
    It provides the "Markov-table" baseline of the related-work
    comparison at minimal memory. *)

type t

val build : Xpest_xml.Doc.t -> t
val byte_size : t -> int
val estimate : t -> Xpest_xpath.Pattern.t -> float
