(** Position histograms (Wu, Patel & Jagadish, EDBT 2002) — the
    related-work comparator the paper contrasts with in Section 8.

    Every element is a point [(start, end)] in the plane, where
    [start] is its pre-order rank and [end] the largest pre-order rank
    in its subtree; ancestorship is interval containment.  For each
    tag a [grid x grid] histogram counts elements per cell.  The
    answer size of a containment pattern [a // b] is estimated by a
    position-histogram join: for each cell pair, the expected number
    of containing pairs under uniformity within cells.

    Deviation from the original: within a cell, elements are modeled
    as intervals of the cell's *mean subtree width* starting uniformly
    in the cell's start-range, rather than as independent uniform
    (start, end) pairs.  Tree intervals hug the start = end diagonal,
    and the independence assumption overestimates containment there by
    an order of magnitude (the original paper refines diagonal cells
    for the same reason).

    As the paper notes, this summary captures only containment — it
    cannot distinguish parent-child from ancestor-descendant and
    carries no sibling-order information; the experiment driver uses
    it to quantify how much those distinctions matter. *)

type t

val build : ?grid:int -> Xpest_xml.Doc.t -> t
(** [grid] defaults to 8 (an 8x8 histogram per tag). *)

val byte_size : t -> int
(** Modeled storage: 4 bytes per non-empty cell + 8 bytes per tag
    header. *)

val estimate_pairs : t -> anc:string -> desc:string -> float
(** Expected number of (ancestor, descendant) element pairs with the
    given tags. *)

val estimate : t -> Xpest_xpath.Pattern.t -> float
(** Selectivity estimate for the pattern's target node: pair-count
    chaining along the pattern's spines with per-step distinct-count
    capping, treating [/] as [//] (the summary cannot tell them apart)
    and ignoring order axes. *)
