(** A simplified XSketch graph synopsis (Polyzotis & Garofalakis,
    SIGMOD 2002) — the comparator of the paper's Figure 11 and
    Table 4.

    No open-source XSketch exists, so this is a faithful-in-spirit
    reimplementation of its core recipe on tree data:

    - the synopsis is a graph of element classes: each class holds a
      tag, the number of document elements in it, and counted edges to
      the classes of their children;
    - construction starts from the label-split graph (one class per
      tag) and greedily refines: at each step the most heterogeneous
      class (largest variance of its per-element child fan-outs) is
      split by its elements' parent class — a backward-stability
      refinement — until a byte budget is reached;
    - estimation walks the synopsis with the usual independence and
      uniformity assumptions, multiplying per-edge traversal ratios
      and capping by class cardinalities; branch predicates multiply
      satisfaction fractions.

    The greedy loop re-scans all classes per refinement step, which
    reproduces XSketch's characteristic construction-time growth with
    synopsis size (paper Table 4). *)

type t

val build : ?budget_bytes:int -> Xpest_xml.Doc.t -> t
(** [budget_bytes] defaults to 16 KiB. *)

val byte_size : t -> int
(** Modeled size: 6 bytes per class (2-byte tag + 4-byte count) + 8
    bytes per edge (2 + 2 + 4). *)

val num_classes : t -> int

val refinement_steps : t -> int
(** Number of greedy splits performed (diagnostics). *)

val estimate : t -> Xpest_xpath.Pattern.t -> float
(** Estimated selectivity of the pattern's target node.  Order axes
    carry no information in an XSketch, so [Ordered] patterns are
    estimated through their order-free counterpart (an upper bound). *)
