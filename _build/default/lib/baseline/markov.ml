type t = Xsketch.t

(* budget 0: the greedy loop stops before the first refinement, which
   leaves the label-split graph = tag-level Markov tables. *)
let build doc = Xsketch.build ~budget_bytes:0 doc
let byte_size = Xsketch.byte_size
let estimate = Xsketch.estimate
