lib/baseline/markov.ml: Xsketch
