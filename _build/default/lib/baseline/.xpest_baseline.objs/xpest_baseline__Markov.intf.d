lib/baseline/markov.mli: Xpest_xml Xpest_xpath
