lib/baseline/xsketch.ml: Array Float Fun Hashtbl List Option Xpest_xml Xpest_xpath
