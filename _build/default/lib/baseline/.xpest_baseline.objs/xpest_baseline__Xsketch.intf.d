lib/baseline/xsketch.mli: Xpest_xml Xpest_xpath
