lib/baseline/position_histogram.ml: Float Hashtbl List Option Xpest_xml Xpest_xpath
