lib/baseline/position_histogram.mli: Xpest_xml Xpest_xpath
