module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern

type cell = {
  s_lo : float;
  s_hi : float;
  count : int;
  avg_width : float; (* mean subtree width (end - start) of members *)
}

type t = {
  grid : int;
  cells : (string, cell list) Hashtbl.t; (* per tag, non-empty cells *)
  totals : (string, int) Hashtbl.t;
}

let build ?(grid = 8) doc =
  let n = Doc.size doc in
  let width = Float.of_int n /. Float.of_int grid in
  let buckets = Hashtbl.create 64 in
  Doc.iter doc (fun node ->
      let tag = Doc.tag doc node in
      let s = node and e = Doc.subtree_last doc node in
      let si = min (grid - 1) (int_of_float (Float.of_int s /. width)) in
      let ei = min (grid - 1) (int_of_float (Float.of_int e /. width)) in
      let key = (tag, si, ei) in
      let count, wsum =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt buckets key)
      in
      Hashtbl.replace buckets key (count + 1, wsum +. Float.of_int (e - s)));
  let cells = Hashtbl.create 64 in
  let totals = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (tag, si, _ei) (count, wsum) ->
      let cell =
        {
          s_lo = Float.of_int si *. width;
          s_hi = Float.of_int (si + 1) *. width;
          count;
          avg_width = wsum /. Float.of_int count;
        }
      in
      Hashtbl.replace cells tag
        (cell :: Option.value ~default:[] (Hashtbl.find_opt cells tag));
      Hashtbl.replace totals tag
        (count + Option.value ~default:0 (Hashtbl.find_opt totals tag)))
    buckets;
  { grid; cells; totals }

let byte_size t =
  Hashtbl.fold (fun _ cs acc -> acc + 8 + (4 * List.length cs)) t.cells 0

(* P[x contains y]: model x as the interval [sx, sx + wA] with sx
   uniform over A's start range (wA = A's mean subtree width), y
   likewise.  Containment needs sx <= sy and sy + wB <= sx + wA, i.e.
   sy - d <= sx <= sy with d = wA - wB (impossible when wA < wB).
   Integrated numerically over sy.  Treating intervals through their
   cell's mean width is what keeps tree data — whose points hug the
   s = e diagonal — from being wildly overestimated by independent-
   coordinate cell uniformity. *)
let pair_probability (a : cell) (b : cell) =
  let d = a.avg_width -. b.avg_width in
  if d < 0.0 then 0.0
  else
    let wa = a.s_hi -. a.s_lo and wb = b.s_hi -. b.s_lo in
    if wa <= 0.0 || wb <= 0.0 then if d > 0.0 then 1.0 else 0.0
    else
      let samples = 32 in
      let acc = ref 0.0 in
      for i = 0 to samples - 1 do
        let sy = b.s_lo +. ((Float.of_int i +. 0.5) /. Float.of_int samples *. wb) in
        let lo = Float.max a.s_lo (sy -. d) and hi = Float.min a.s_hi sy in
        if hi > lo then acc := !acc +. ((hi -. lo) /. wa)
      done;
      !acc /. Float.of_int samples

let estimate_pairs t ~anc ~desc =
  match (Hashtbl.find_opt t.cells anc, Hashtbl.find_opt t.cells desc) with
  | Some acs, Some bcs ->
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              acc
              +. (Float.of_int a.count *. Float.of_int b.count
                 *. pair_probability a b))
            acc bcs)
        0.0 acs
  | None, _ | _, None -> 0.0

let total t tag = Option.value ~default:0 (Hashtbl.find_opt t.totals tag)

(* Chain the spine with distinct-count capping: est elements of step i
   ~ min(count_i, pairs(i-1, i) * est_{i-1} / count_{i-1}). *)
let chain_estimate t spine =
  match (spine : Pattern.spine) with
  | [] -> 0.0
  | head :: rest ->
      let est_head = Float.of_int (total t head.tag) in
      let rec go prev_tag prev_est = function
        | [] -> prev_est
        | (s : Pattern.step) :: rest ->
            let pairs = estimate_pairs t ~anc:prev_tag ~desc:s.tag in
            let prev_total = Float.of_int (total t prev_tag) in
            let scaled =
              if prev_total <= 0.0 then 0.0 else pairs *. prev_est /. prev_total
            in
            let est = Float.min (Float.of_int (total t s.tag)) scaled in
            if est <= 0.0 then 0.0 else go s.tag est rest
      in
      go head.tag est_head rest

(* Satisfaction fraction of a branch below the attach tag. *)
let branch_fraction t attach_tag spine =
  match (spine : Pattern.spine) with
  | [] -> 1.0
  | _ ->
      let est = chain_estimate t ({ Pattern.axis = Descendant; tag = attach_tag } :: spine) in
      let tot = Float.of_int (total t attach_tag) in
      if tot <= 0.0 then 0.0 else Float.min 1.0 (est /. tot)

let estimate t (q : Pattern.t) =
  let shape =
    match Pattern.shape q with
    | (Pattern.Simple _ | Pattern.Branch _) as s -> s
    | Pattern.Ordered _ as s -> Pattern.counterpart s
  in
  let position = Pattern.counterpart_position (Pattern.target q) in
  let prefix_upto spine i = List.filteri (fun j _ -> j <= i) spine in
  let suffix_from spine i = List.filteri (fun j _ -> j > i) spine in
  let cap_suffix tag_ est spine =
    (* remaining steps below the target act as a satisfaction filter *)
    est *. branch_fraction t tag_ spine
  in
  match (shape, position) with
  | Pattern.Simple spine, Pattern.In_trunk i ->
      let target_tag = (List.nth spine i).Pattern.tag in
      cap_suffix target_tag (chain_estimate t (prefix_upto spine i)) (suffix_from spine i)
  | Pattern.Branch { trunk; branch; tail }, pos ->
      let attach_tag = (List.nth trunk (List.length trunk - 1)).Pattern.tag in
      let attach_est = chain_estimate t trunk in
      let attach_total = Float.of_int (total t attach_tag) in
      let with_branch spine est =
        est *. branch_fraction t attach_tag spine
      in
      (match pos with
      | Pattern.In_trunk i ->
          let target_tag = (List.nth trunk i).Pattern.tag in
          let est = chain_estimate t (prefix_upto trunk i) in
          let est = cap_suffix target_tag est (suffix_from trunk i) in
          with_branch branch (with_branch tail est)
      | Pattern.In_branch i ->
          let attach = with_branch tail attach_est in
          let scale = if attach_total <= 0.0 then 0.0 else attach /. attach_total in
          let est =
            chain_estimate t
              (({ Pattern.axis = Descendant; tag = attach_tag } : Pattern.step)
              :: prefix_upto branch i)
          in
          let target_tag = (List.nth branch i).Pattern.tag in
          cap_suffix target_tag (est *. scale) (suffix_from branch i)
      | Pattern.In_tail i ->
          let attach = with_branch branch attach_est in
          let scale = if attach_total <= 0.0 then 0.0 else attach /. attach_total in
          let est =
            chain_estimate t
              (({ Pattern.axis = Descendant; tag = attach_tag } : Pattern.step)
              :: prefix_upto tail i)
          in
          let target_tag = (List.nth tail i).Pattern.tag in
          cap_suffix target_tag (est *. scale) (suffix_from tail i)
      | Pattern.In_first _ | Pattern.In_second _ ->
          invalid_arg "Position_histogram.estimate: unlowered order position")
  | Pattern.Simple _, _ ->
      invalid_arg "Position_histogram.estimate: position not in shape"
  | Pattern.Ordered _, _ -> assert false
