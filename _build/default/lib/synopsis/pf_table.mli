(** The pathId-frequency table (paper Section 3).

    One row per distinct element tag, aggregating the distinct path
    ids carried by elements with that tag together with their
    frequencies — e.g. for the paper's Figure 2(a), the row for [C] is
    [{(p2, 1), (p3, 1)}].  This is the exact table; the p-histogram
    compresses it. *)

type t

type entry = { pid_index : int; frequency : int }

val build : Xpest_encoding.Labeler.t -> t

val tags : t -> string list
(** Distinct tags in document tag-code order. *)

val entries : t -> string -> entry array
(** Rows for a tag, in interned-pid-index order; [|]| for unknown
    tags.  Shared array — do not mutate. *)

val total_frequency : t -> string -> int
(** Total number of elements with the tag. *)

val num_entries : t -> int
(** Total number of (tag, path id) pairs in the table. *)

val byte_size : t -> int
(** Modeled exact-table storage: 6 bytes per entry (2-byte pid id +
    4-byte frequency). *)
