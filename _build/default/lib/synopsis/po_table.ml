module Doc = Xpest_xml.Doc
module Labeler = Xpest_encoding.Labeler

type region = Before | After

type cell = {
  pid_index : int;
  other_tag : int;
  region : region;
  count : int;
}

(* Per-X sparse cells keyed by (pid_index, other_tag_code, region). *)
type key = int * int * region

type t = {
  tables : (key, int) Hashtbl.t array; (* indexed by X's tag code *)
  code_of : (string, int) Hashtbl.t;
}

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let build labeler =
  let doc = Labeler.doc labeler in
  let ntags = Doc.num_tags doc in
  let tables = Array.init ntags (fun _ -> Hashtbl.create 64) in
  (* Distinct sibling tags strictly before / after each child, via a
     forward and a backward sweep over each sibling group.  [seen]
     counts occurrences of each tag so far in the sweep. *)
  let seen = Array.make ntags 0 in
  let touched = ref [] in
  let reset () =
    List.iter (fun c -> seen.(c) <- 0) !touched;
    touched := []
  in
  let note code =
    if seen.(code) = 0 then touched := code :: !touched;
    seen.(code) <- seen.(code) + 1
  in
  let record region child =
    let x_code = Doc.tag_code doc child in
    let pid = Labeler.pid_index labeler child in
    (* [seen] holds only siblings strictly on one side of [child]
       because [note child] runs after [record]. *)
    List.iter
      (fun other ->
        if seen.(other) > 0 then bump tables.(x_code) (pid, other, region))
      !touched
  in
  Doc.iter doc (fun parent ->
      let children = Doc.children doc parent in
      match children with
      | [] | [ _ ] -> ()
      | _ ->
          (* forward: siblings before the child -> region After
             ("X occurs after tag") *)
          reset ();
          List.iter
            (fun child ->
              record After child;
              note (Doc.tag_code doc child))
            children;
          (* backward: siblings after the child -> region Before *)
          reset ();
          List.iter
            (fun child ->
              record Before child;
              note (Doc.tag_code doc child))
            (List.rev children);
          reset ());
  let code_of = Hashtbl.create ntags in
  for code = 0 to ntags - 1 do
    Hashtbl.replace code_of (Doc.tag_name doc code) code
  done;
  { tables; code_of }

let cells t tag =
  match Hashtbl.find_opt t.code_of tag with
  | None -> []
  | Some code ->
      Hashtbl.fold
        (fun (pid_index, other_tag, region) count acc ->
          { pid_index; other_tag; region; count } :: acc)
        t.tables.(code) []

let lookup t ~tag ~pid_index ~other ~region =
  match
    (Hashtbl.find_opt t.code_of tag, Hashtbl.find_opt t.code_of other)
  with
  | Some code, Some other_code ->
      Option.value ~default:0
        (Hashtbl.find_opt t.tables.(code) (pid_index, other_code, region))
  | None, _ | _, None -> 0

let num_cells t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.tables

let byte_size t = 9 * num_cells t
