type box = {
  x_start : int;
  y_start : int;
  x_end : int;
  y_end : int;
  frequency : float;
}

type t = {
  boxes : box list;
  (* lookup mappings *)
  col_of_pid : (int, int) Hashtbl.t;
  row_of : int -> Po_table.region -> int; (* tag code, region -> row *)
}

let region_offset ~ntags = function Po_table.Before -> 0 | Po_table.After -> ntags

let build ~variance ~ntags ~tag_alpha_rank ~pid_order cells =
  if variance < 0.0 then invalid_arg "O_histogram.build: negative variance";
  let col_of_pid = Hashtbl.create 32 in
  Array.iteri (fun col pid -> Hashtbl.replace col_of_pid pid col) pid_order;
  let row_of tag region = region_offset ~ntags region + tag_alpha_rank tag in
  (* Grid of non-empty cells. *)
  let grid = Hashtbl.create 256 in
  List.iter
    (fun (c : Po_table.cell) ->
      match Hashtbl.find_opt col_of_pid c.pid_index with
      | Some col -> Hashtbl.replace grid (col, row_of c.other_tag c.region) c.count
      | None ->
          invalid_arg "O_histogram.build: cell pid not in the tag's pid order")
    cells;
  let ncols = Array.length pid_order in
  let nrows = 2 * ntags in
  let value x y = Option.value ~default:0 (Hashtbl.find_opt grid (x, y)) in
  let covered = Hashtbl.create 256 in
  let is_covered x y = Hashtbl.mem covered (x, y) in
  let stddev ~sum ~sumsq ~k =
    let k = Float.of_int k in
    let mean = sum /. k in
    Float.sqrt (Float.max 0.0 ((sumsq /. k) -. (mean *. mean)))
  in
  let boxes = ref [] in
  (* Row-wise scan over non-empty cells. *)
  for y0 = 0 to nrows - 1 do
    for x0 = 0 to ncols - 1 do
      if value x0 y0 > 0 && not (is_covered x0 y0) then begin
        (* 1. extend rightward along row y0 *)
        let sum = ref 0.0 and sumsq = ref 0.0 and k = ref 0 in
        let x_end = ref (x0 - 1) in
        let continue = ref true in
        while !continue && !x_end + 1 < ncols do
          let x = !x_end + 1 in
          let v = value x y0 in
          if v = 0 || is_covered x y0 then continue := false
          else begin
            let f = Float.of_int v in
            let sum' = !sum +. f and sumsq' = !sumsq +. (f *. f) in
            if stddev ~sum:sum' ~sumsq:sumsq' ~k:(!k + 1) <= variance then begin
              sum := sum';
              sumsq := sumsq';
              incr k;
              incr x_end
            end
            else continue := false
          end
        done;
        let x_end = !x_end in
        (* 2. extend the row-box downward, row by row; a row can be
           added if none of its cells is claimed, it has at least one
           non-empty cell, and the box deviation (empty cells = 0)
           stays within the threshold. *)
        let y_end = ref y0 in
        let continue = ref true in
        while !continue && !y_end + 1 < nrows do
          let y = !y_end + 1 in
          let row_sum = ref 0.0 and row_sumsq = ref 0.0 in
          let nonempty = ref false in
          let claimed = ref false in
          for x = x0 to x_end do
            if is_covered x y then claimed := true;
            let v = value x y in
            if v > 0 then nonempty := true;
            let f = Float.of_int v in
            row_sum := !row_sum +. f;
            row_sumsq := !row_sumsq +. (f *. f)
          done;
          if (not !nonempty) || !claimed then continue := false
          else begin
            let sum' = !sum +. !row_sum and sumsq' = !sumsq +. !row_sumsq in
            let k' = !k + (x_end - x0 + 1) in
            if stddev ~sum:sum' ~sumsq:sumsq' ~k:k' <= variance then begin
              sum := sum';
              sumsq := sumsq';
              k := k';
              incr y_end
            end
            else continue := false
          end
        done;
        let y_end = !y_end in
        (* claim the box *)
        for x = x0 to x_end do
          for y = y0 to y_end do
            Hashtbl.replace covered (x, y) ()
          done
        done;
        boxes :=
          {
            x_start = x0;
            y_start = y0;
            x_end;
            y_end;
            frequency = !sum /. Float.of_int !k;
          }
          :: !boxes
      end
    done
  done;
  { boxes = List.rev !boxes; col_of_pid; row_of }

let of_boxes ~ntags ~tag_alpha_rank ~pid_order boxes =
  let col_of_pid = Hashtbl.create 32 in
  Array.iteri (fun col pid -> Hashtbl.replace col_of_pid pid col) pid_order;
  let row_of tag region = region_offset ~ntags region + tag_alpha_rank tag in
  { boxes; col_of_pid; row_of }

let boxes t = t.boxes

let lookup t ~pid_index ~other_tag ~region =
  match Hashtbl.find_opt t.col_of_pid pid_index with
  | None -> 0.0
  | Some x ->
      let y = t.row_of other_tag region in
      let rec scan = function
        | [] -> 0.0
        | b :: rest ->
            if x >= b.x_start && x <= b.x_end && y >= b.y_start && y <= b.y_end
            then b.frequency
            else scan rest
      in
      scan t.boxes

let byte_size t = 20 * List.length t.boxes
