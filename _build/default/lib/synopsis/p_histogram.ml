module Stats = Xpest_util.Stats

type bucket = {
  pid_indices : int array;
  frequencies : int array;
  avg_frequency : float;
}

type t = {
  buckets : bucket list;
  by_pid : (int, float) Hashtbl.t;
  order : int array;
}

(* Population standard deviation of [k] values with running sum and
   sum of squares: sqrt (sumsq/k - (sum/k)^2). *)
let stddev ~sum ~sumsq ~k =
  let k = Float.of_int k in
  let mean = sum /. k in
  Float.sqrt (Float.max 0.0 ((sumsq /. k) -. (mean *. mean)))

let build ~variance entries =
  if variance < 0.0 then invalid_arg "P_histogram.build: negative variance";
  let sorted = Array.copy entries in
  Array.sort
    (fun (a : Pf_table.entry) b ->
      let c = Int.compare a.frequency b.frequency in
      if c <> 0 then c else Int.compare a.pid_index b.pid_index)
    sorted;
  let n = Array.length sorted in
  let buckets = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let sum = ref 0.0 and sumsq = ref 0.0 in
    let continue = ref true in
    (* Greedy scan: absorb the next entry while the deviation of the
       extended bucket stays within the threshold. *)
    while !continue && !i < n do
      let f = Float.of_int sorted.(!i).frequency in
      let sum' = !sum +. f and sumsq' = !sumsq +. (f *. f) in
      if stddev ~sum:sum' ~sumsq:sumsq' ~k:(!i - start + 1) <= variance then begin
        sum := sum';
        sumsq := sumsq';
        incr i
      end
      else continue := false
    done;
    let members = Array.sub sorted start (!i - start) in
    buckets :=
      {
        pid_indices = Array.map (fun (e : Pf_table.entry) -> e.pid_index) members;
        frequencies = Array.map (fun (e : Pf_table.entry) -> e.frequency) members;
        avg_frequency = !sum /. Float.of_int (Array.length members);
      }
      :: !buckets
  done;
  let buckets = List.rev !buckets in
  let by_pid = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Array.iter
        (fun pid -> Hashtbl.replace by_pid pid b.avg_frequency)
        b.pid_indices)
    buckets;
  let order =
    Array.of_list (List.concat_map (fun b -> Array.to_list b.pid_indices) buckets)
  in
  { buckets; by_pid; order }

let bucket_of_parts ~pid_indices ~frequencies =
  if Array.length pid_indices <> Array.length frequencies then
    invalid_arg "P_histogram.bucket_of_parts: length mismatch";
  if Array.length pid_indices = 0 then
    invalid_arg "P_histogram.bucket_of_parts: empty bucket";
  {
    pid_indices;
    frequencies;
    avg_frequency =
      Array.fold_left (fun acc f -> acc +. Float.of_int f) 0.0 frequencies
      /. Float.of_int (Array.length frequencies);
  }

let of_buckets buckets =
  let by_pid = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Array.iter
        (fun pid -> Hashtbl.replace by_pid pid b.avg_frequency)
        b.pid_indices)
    buckets;
  let order =
    Array.of_list (List.concat_map (fun b -> Array.to_list b.pid_indices) buckets)
  in
  { buckets; by_pid; order }

let build_all ~variance pf =
  List.map
    (fun tag -> (tag, build ~variance (Pf_table.entries pf tag)))
    (Pf_table.tags pf)

let buckets t = t.buckets
let frequency t pid = Hashtbl.find_opt t.by_pid pid
let pid_order t = t.order

let max_intra_variance t =
  List.fold_left
    (fun acc b ->
      Float.max acc (Stats.variance (Array.map Float.of_int b.frequencies)))
    0.0 t.buckets

let byte_size t =
  List.fold_left
    (fun acc b -> acc + 6 + (2 * Array.length b.pid_indices))
    0 t.buckets
