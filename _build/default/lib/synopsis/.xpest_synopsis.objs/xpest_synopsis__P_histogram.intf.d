lib/synopsis/p_histogram.mli: Pf_table
