lib/synopsis/po_table.ml: Array Hashtbl List Option Xpest_encoding Xpest_xml
