lib/synopsis/pf_table.ml: Array Hashtbl Int List Option Xpest_encoding Xpest_xml
