lib/synopsis/summary.mli: Pf_table Po_table Xpest_encoding Xpest_util Xpest_xml
