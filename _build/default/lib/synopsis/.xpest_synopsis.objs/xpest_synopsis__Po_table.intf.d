lib/synopsis/po_table.mli: Xpest_encoding
