lib/synopsis/o_histogram.ml: Array Float Hashtbl List Option Po_table
