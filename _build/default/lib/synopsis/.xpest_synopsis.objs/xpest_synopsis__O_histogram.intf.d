lib/synopsis/o_histogram.mli: Po_table
