lib/synopsis/pf_table.mli: Xpest_encoding
