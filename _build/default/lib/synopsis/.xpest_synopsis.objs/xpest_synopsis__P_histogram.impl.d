lib/synopsis/p_histogram.ml: Array Float Hashtbl Int List Pf_table Xpest_util
