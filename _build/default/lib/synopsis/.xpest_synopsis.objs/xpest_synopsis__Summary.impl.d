lib/synopsis/summary.ml: Array Buffer Char Fun Hashtbl Int64 List O_histogram P_histogram Pf_table Po_table Printf String Xpest_encoding Xpest_util Xpest_xml
