module Doc = Xpest_xml.Doc
module Labeler = Xpest_encoding.Labeler

type entry = { pid_index : int; frequency : int }

type t = {
  tag_names : string array; (* by tag code *)
  rows : entry array array; (* tag code -> entries *)
  totals : int array;
  code_of : (string, int) Hashtbl.t;
}

let build labeler =
  let doc = Labeler.doc labeler in
  let ntags = Doc.num_tags doc in
  (* counts.(tag) : pid index -> frequency *)
  let counts = Array.init ntags (fun _ -> Hashtbl.create 16) in
  Doc.iter doc (fun node ->
      let tbl = counts.(Doc.tag_code doc node) in
      let pid = Labeler.pid_index labeler node in
      Hashtbl.replace tbl pid (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pid)));
  let rows =
    Array.map
      (fun tbl ->
        let entries =
          Hashtbl.fold
            (fun pid_index frequency acc -> { pid_index; frequency } :: acc)
            tbl []
        in
        Array.of_list
          (List.sort (fun a b -> Int.compare a.pid_index b.pid_index) entries))
      counts
  in
  let totals =
    Array.map (Array.fold_left (fun acc e -> acc + e.frequency) 0) rows
  in
  let code_of = Hashtbl.create ntags in
  let tag_names = Array.init ntags (Doc.tag_name doc) in
  Array.iteri (fun code name -> Hashtbl.replace code_of name code) tag_names;
  { tag_names; rows; totals; code_of }

let tags t = Array.to_list t.tag_names

let entries t tag =
  match Hashtbl.find_opt t.code_of tag with
  | Some code -> t.rows.(code)
  | None -> [||]

let total_frequency t tag =
  match Hashtbl.find_opt t.code_of tag with
  | Some code -> t.totals.(code)
  | None -> 0

let num_entries t =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 t.rows

let byte_size t = 6 * num_entries t
