module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler
module Pid_tree = Xpest_encoding.Pid_tree

type base = {
  doc : Doc.t;
  table : Encoding_table.t;
  labeler : Labeler.t;
  pid_tree : Pid_tree.t;
  pf : Pf_table.t;
  po : Po_table.t option;
}

module Pid_tbl = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

(* Everything estimation needs, independent of the document: this is
   what [save]/[load] persist. *)
type core = {
  table : Encoding_table.t;
  pids : Bitvec.t array;
  pid_index : int Pid_tbl.t;
  root_pid : Bitvec.t;
  tag_names : string array;
  code_of : (string, int) Hashtbl.t;
  pid_tree : Pid_tree.t;
  p_variance : float;
  o_variance : float;
  p_histos : (string, P_histogram.t) Hashtbl.t;
  o_histos : (string, O_histogram.t) Hashtbl.t;
}

type t = { core : core; b : base option }

let collect_with ~order doc =
  let table = Encoding_table.build doc in
  let labeler = Labeler.label doc table in
  let pid_tree = Pid_tree.build (Array.to_list (Labeler.distinct_pids labeler)) in
  let pf = Pf_table.build labeler in
  let po = if order then Some (Po_table.build labeler) else None in
  { doc; table; labeler; pid_tree; pf; po }

let collect doc = collect_with ~order:true doc
let collect_paths_only doc = collect_with ~order:false doc
let without_order b = { b with po = None }

let alpha_ranks_of_names names =
  let sorted = Array.copy names in
  Array.sort String.compare sorted;
  let rank_of_name = Hashtbl.create (Array.length names) in
  Array.iteri (fun rank name -> Hashtbl.replace rank_of_name name rank) sorted;
  Array.map (fun name -> Hashtbl.find rank_of_name name) names

let build_histos ~p_variance ~o_variance ~pf ~po ~ntags ~alpha_ranks =
  let p_histos = Hashtbl.create 64 in
  List.iter
    (fun (tag, h) -> Hashtbl.replace p_histos tag h)
    (P_histogram.build_all ~variance:p_variance pf);
  let o_histos = Hashtbl.create 64 in
  (match po with
  | None -> ()
  | Some po ->
      let tag_alpha_rank code = alpha_ranks.(code) in
      List.iter
        (fun tag ->
          match Hashtbl.find_opt p_histos tag with
          | None -> ()
          | Some ph ->
              let cells = Po_table.cells po tag in
              let histo =
                O_histogram.build ~variance:o_variance ~ntags ~tag_alpha_rank
                  ~pid_order:(P_histogram.pid_order ph) cells
              in
              Hashtbl.replace o_histos tag histo)
        (Pf_table.tags pf));
  (p_histos, o_histos)

let assemble ?(p_variance = 0.0) ?(o_variance = 0.0) (b : base) =
  let doc = b.doc in
  let ntags = Doc.num_tags doc in
  let tag_names = Array.init ntags (Doc.tag_name doc) in
  let alpha_ranks = alpha_ranks_of_names tag_names in
  let p_histos, o_histos =
    build_histos ~p_variance ~o_variance ~pf:b.pf ~po:b.po ~ntags ~alpha_ranks
  in
  let pids = Labeler.distinct_pids b.labeler in
  let pid_index = Pid_tbl.create (Array.length pids) in
  Array.iteri (fun i pid -> Pid_tbl.replace pid_index pid i) pids;
  let code_of = Hashtbl.create ntags in
  Array.iteri (fun code name -> Hashtbl.replace code_of name code) tag_names;
  {
    core =
      {
        table = b.table;
        pids;
        pid_index;
        root_pid = Labeler.pid b.labeler (Doc.root doc);
        tag_names;
        code_of;
        pid_tree = b.pid_tree;
        p_variance;
        o_variance;
        p_histos;
        o_histos;
      };
    b = Some b;
  }

let build ?p_variance ?o_variance doc =
  assemble ?p_variance ?o_variance (collect doc)

let from_document_error what =
  invalid_arg
    (Printf.sprintf
       "Summary.%s: not available on a synopsis loaded from disk" what)

let doc t = match t.b with Some b -> b.doc | None -> from_document_error "doc"
let base t = match t.b with Some b -> b | None -> from_document_error "base"

let labeler t =
  match t.b with Some b -> b.labeler | None -> from_document_error "labeler"

let encoding_table t = t.core.table
let root_pid t = t.core.root_pid
let tags t = Array.copy t.core.tag_names
let pf_table (b : base) = b.pf
let po_table (b : base) = b.po
let p_variance t = t.core.p_variance
let o_variance t = t.core.o_variance

let tag_pids t tag =
  match Hashtbl.find_opt t.core.p_histos tag with
  | None -> []
  | Some h ->
      Array.to_list (P_histogram.pid_order h)
      |> List.filter_map (fun idx ->
             match P_histogram.frequency h idx with
             | Some f -> Some (t.core.pids.(idx), f)
             | None -> None)

let tag_total t tag =
  List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (tag_pids t tag)

let order_frequency t ~tag ~pid ~other ~region =
  match
    (Hashtbl.find_opt t.core.o_histos tag, Pid_tbl.find_opt t.core.pid_index pid)
  with
  | Some h, Some pid_index -> (
      match Hashtbl.find_opt t.core.code_of other with
      | Some other_tag -> O_histogram.lookup h ~pid_index ~other_tag ~region
      | None -> 0.0)
  | None, _ | Some _, None -> 0.0

let p_histogram_bytes t =
  Hashtbl.fold (fun _ h acc -> acc + P_histogram.byte_size h) t.core.p_histos 0

let o_histogram_bytes t =
  Hashtbl.fold (fun _ h acc -> acc + O_histogram.byte_size h) t.core.o_histos 0

let encoding_table_bytes t = Encoding_table.byte_size t.core.table
let pid_tree_bytes t = Pid_tree.byte_size t.core.pid_tree

let total_bytes t =
  encoding_table_bytes t + pid_tree_bytes t + p_histogram_bytes t

(* ------------------------------------------------------------------ *)
(* Persistence: a small explicit binary format (no Marshal, so files
   are stable across compiler versions).                               *)

module Wire = struct
  let magic = "XPESTSYN2"

  (* non-negative ints as LEB128 varints: counts and ids are small, so
     this keeps synopsis files a few percent of the document *)
  let rec put_int buf n =
    assert (n >= 0);
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      put_int buf (n lsr 7)
    end

  (* floats as their 8 raw IEEE-754 bytes, big-endian *)
  let put_float buf f =
    let bits = Int64.bits_of_float f in
    for byte = 7 downto 0 do
      Buffer.add_char buf
        (Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * byte)) land 0xff))
    done

  let put_string buf s =
    put_int buf (String.length s);
    Buffer.add_string buf s

  let put_list buf put items =
    put_int buf (List.length items);
    List.iter (put buf) items

  let put_array buf put items =
    put_int buf (Array.length items);
    Array.iter (put buf) items

  let put_bitvec buf v =
    put_int buf (Bitvec.width v);
    put_string buf (Bitvec.to_packed_string v)

  type reader = { data : string; mutable pos : int }

  let fail r msg =
    invalid_arg (Printf.sprintf "Summary.load: %s at offset %d" msg r.pos)

  let get_int r =
    let rec go shift acc =
      if shift > 62 then fail r "varint too long";
      if r.pos >= String.length r.data then fail r "truncated int";
      let b = Char.code r.data.[r.pos] in
      r.pos <- r.pos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let get_float r =
    if r.pos + 8 > String.length r.data then fail r "truncated float";
    let bits = ref 0L in
    for _ = 1 to 8 do
      bits :=
        Int64.logor (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code r.data.[r.pos]));
      r.pos <- r.pos + 1
    done;
    Int64.float_of_bits !bits

  let get_string r =
    let n = get_int r in
    if n < 0 || r.pos + n > String.length r.data then fail r "truncated string";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let get_list r get =
    let n = get_int r in
    List.init n (fun _ -> get r)

  let get_array r get =
    let n = get_int r in
    Array.init n (fun _ -> get r)

  let get_bitvec r =
    let width = get_int r in
    Bitvec.of_packed_string ~width (get_string r)
end

let save t path =
  let open Wire in
  let c = t.core in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_float buf c.p_variance;
  put_float buf c.o_variance;
  (* encoding table *)
  put_list buf (fun buf p -> put_list buf put_string p) (Encoding_table.paths c.table);
  (* pids + root pid *)
  put_array buf put_bitvec c.pids;
  put_bitvec buf c.root_pid;
  (* tags *)
  put_array buf put_string c.tag_names;
  (* p-histograms *)
  put_int buf (Hashtbl.length c.p_histos);
  Hashtbl.iter
    (fun tag h ->
      put_string buf tag;
      put_list buf
        (fun buf (b : P_histogram.bucket) ->
          put_array buf put_int b.pid_indices;
          put_array buf put_int b.frequencies)
        (P_histogram.buckets h))
    c.p_histos;
  (* o-histograms: boxes + the column order they were built with *)
  put_int buf (Hashtbl.length c.o_histos);
  Hashtbl.iter
    (fun tag h ->
      put_string buf tag;
      (match Hashtbl.find_opt c.p_histos tag with
      | Some ph -> put_array buf put_int (P_histogram.pid_order ph)
      | None -> put_int buf 0);
      put_list buf
        (fun buf (b : O_histogram.box) ->
          put_int buf b.x_start;
          put_int buf b.y_start;
          put_int buf b.x_end;
          put_int buf b.y_end;
          put_float buf b.frequency)
        (O_histogram.boxes h))
    c.o_histos;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

let load path =
  let open Wire in
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = { data; pos = 0 } in
  if
    String.length data < String.length magic
    || String.sub data 0 (String.length magic) <> magic
  then invalid_arg "Summary.load: not a synopsis file";
  r.pos <- String.length magic;
  let p_variance = get_float r in
  let o_variance = get_float r in
  let paths = get_list r (fun r -> get_list r get_string) in
  let table = Encoding_table.of_paths paths in
  let pids = get_array r get_bitvec in
  let root_pid = get_bitvec r in
  let tag_names = get_array r get_string in
  let ntags = Array.length tag_names in
  let alpha_ranks = alpha_ranks_of_names tag_names in
  let p_histos = Hashtbl.create 64 in
  let np = get_int r in
  for _ = 1 to np do
    let tag = get_string r in
    let buckets =
      get_list r (fun r ->
          let pid_indices = get_array r get_int in
          let frequencies = get_array r get_int in
          P_histogram.bucket_of_parts ~pid_indices ~frequencies)
    in
    Hashtbl.replace p_histos tag (P_histogram.of_buckets buckets)
  done;
  let o_histos = Hashtbl.create 64 in
  let no = get_int r in
  for _ = 1 to no do
    let tag = get_string r in
    let pid_order = get_array r get_int in
    let boxes =
      get_list r (fun r ->
          let x_start = get_int r in
          let y_start = get_int r in
          let x_end = get_int r in
          let y_end = get_int r in
          let frequency = get_float r in
          { O_histogram.x_start; y_start; x_end; y_end; frequency })
    in
    Hashtbl.replace o_histos tag
      (O_histogram.of_boxes ~ntags
         ~tag_alpha_rank:(fun code -> alpha_ranks.(code))
         ~pid_order boxes)
  done;
  let pid_index = Pid_tbl.create (Array.length pids) in
  Array.iteri (fun i pid -> Pid_tbl.replace pid_index pid i) pids;
  let code_of = Hashtbl.create ntags in
  Array.iteri (fun code name -> Hashtbl.replace code_of name code) tag_names;
  let pid_tree = Pid_tree.build (Array.to_list pids) in
  {
    core =
      {
        table;
        pids;
        pid_index;
        root_pid;
        tag_names;
        code_of;
        pid_tree;
        p_variance;
        o_variance;
        p_histos;
        o_histos;
      };
    b = None;
  }
