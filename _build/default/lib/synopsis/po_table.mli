(** Path-order tables (paper Section 3).

    One table per distinct element tag [X].  A cell
    [g (pathid, tag, region)] counts the elements [X] carrying
    [pathid] that occur before ([`Before], the paper's "+element"
    region) or after ([`After], the "element+" region) at least one
    sibling element with tag [tag].  An [X] element with such siblings
    on both sides is counted in both regions (paper Section 3, note
    after Example 3.2). *)

type t

type region = Before | After

type cell = {
  pid_index : int;
  other_tag : int; (* tag code of the sibling tag *)
  region : region;
  count : int;
}

val build : Xpest_encoding.Labeler.t -> t
(** One forward and one backward sweep per sibling group. *)

val cells : t -> string -> cell list
(** All non-zero cells of the table for tag [X], unordered; [\[\]] for
    unknown tags. *)

val lookup :
  t -> tag:string -> pid_index:int -> other:string -> region:region -> int
(** Exact cell value; 0 when absent. *)

val num_cells : t -> int
(** Total non-zero cells across all tags — the raw volume of order
    information (cf. paper Table 5). *)

val byte_size : t -> int
(** Modeled exact-table storage: 9 bytes per non-zero cell (2-byte pid
    id, 2-byte tag id, 1-byte region, 4-byte count). *)
