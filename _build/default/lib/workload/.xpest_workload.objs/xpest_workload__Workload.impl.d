lib/workload/workload.ml: Array Fun Hashtbl Int List String Xpest_encoding Xpest_util Xpest_xml Xpest_xpath
