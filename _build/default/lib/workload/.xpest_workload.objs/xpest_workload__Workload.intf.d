lib/workload/workload.mli: Xpest_xml Xpest_xpath
