type axis = Child | Descendant
type step = { axis : axis; tag : string }
type spine = step list
type order_axis = Following_sibling | Preceding_sibling | Following | Preceding

type shape =
  | Simple of spine
  | Branch of { trunk : spine; branch : spine; tail : spine }
  | Ordered of { trunk : spine; first : spine; axis : order_axis; second : spine }

type position =
  | In_trunk of int
  | In_branch of int
  | In_tail of int
  | In_first of int
  | In_second of int

type t = { shape : shape; target : position }

let spine_nth spine i = if i < 0 then None else List.nth_opt spine i

let tag_at_shape shape position =
  match (shape, position) with
  | Simple q, In_trunk i -> spine_nth q i
  | Simple _, (In_branch _ | In_tail _ | In_first _ | In_second _) -> None
  | Branch { trunk; _ }, In_trunk i -> spine_nth trunk i
  | Branch { branch; _ }, In_branch i -> spine_nth branch i
  | Branch { tail; _ }, In_tail i -> spine_nth tail i
  | Branch _, (In_first _ | In_second _) -> None
  | Ordered { trunk; _ }, In_trunk i -> spine_nth trunk i
  | Ordered { first; _ }, In_first i -> spine_nth first i
  | Ordered { second; _ }, In_second i -> spine_nth second i
  | Ordered _, (In_branch _ | In_tail _) -> None

let validate shape target =
  let nonempty name spine =
    if spine = [] then invalid_arg (Printf.sprintf "Pattern.v: empty %s" name)
  in
  (match shape with
  | Simple q -> nonempty "simple path" q
  | Branch { trunk; branch; tail = _ } ->
      nonempty "trunk" trunk;
      nonempty "branch" branch
  | Ordered { trunk; first; axis; second } -> (
      nonempty "trunk" trunk;
      nonempty "first branch" first;
      nonempty "second branch" second;
      (match first with
      | { axis = Child; _ } :: _ -> ()
      | _ -> invalid_arg "Pattern.v: head of the first branch must be a child step");
      match (axis, second) with
      | (Following_sibling | Preceding_sibling), { axis = Child; _ } :: _ -> ()
      | (Following | Preceding), { axis = Descendant; _ } :: _ -> ()
      | _ ->
          invalid_arg
            "Pattern.v: head of the second branch must match the order axis \
             (child for sibling axes, descendant for following/preceding)"));
  if tag_at_shape shape target = None then
    invalid_arg "Pattern.v: target position outside the pattern"

let v shape target =
  validate shape target;
  { shape; target }

let simple ?target spine =
  let target = match target with Some i -> i | None -> List.length spine - 1 in
  v (Simple spine) (In_trunk target)

let shape t = t.shape
let target t = t.target
let tag_at t pos = Option.map (fun s -> s.tag) (tag_at_shape t.shape pos)

let target_tag t =
  match tag_at t t.target with
  | Some tag -> tag
  | None -> assert false (* excluded by [v] *)

let size t =
  match t.shape with
  | Simple q -> List.length q
  | Branch { trunk; branch; tail } ->
      List.length trunk + List.length branch + List.length tail
  | Ordered { trunk; first; second; _ } ->
      List.length trunk + List.length first + List.length second

let counterpart = function
  | (Simple _ | Branch _) as s -> s
  | Ordered { trunk; first; axis; second } ->
      (* Dropping the order axis: the second branch reattaches under
         the last trunk node with the axis implied by the order axis
         (sibling axes relate siblings => child step; following /
         preceding relate descendants => descendant step). *)
      let tail =
        match (axis, second) with
        | (Following_sibling | Preceding_sibling), { tag; _ } :: rest ->
            { axis = Child; tag } :: rest
        | (Following | Preceding), { tag; _ } :: rest ->
            { axis = Descendant; tag } :: rest
        | _, [] -> []
      in
      Branch { trunk; branch = first; tail }

let counterpart_position = function
  | In_first i -> In_branch i
  | In_second i -> In_tail i
  | (In_trunk _ | In_branch _ | In_tail _) as p -> p

let tags t =
  let spine_tags = List.map (fun s -> s.tag) in
  match t.shape with
  | Simple q -> spine_tags q
  | Branch { trunk; branch; tail } ->
      spine_tags trunk @ spine_tags branch @ spine_tags tail
  | Ordered { trunk; first; second; _ } ->
      spine_tags trunk @ spine_tags first @ spine_tags second

let ast_axis = function Child -> Ast.Child | Descendant -> Ast.Descendant

let ast_order_axis = function
  | Following_sibling -> Ast.Following_sibling
  | Preceding_sibling -> Ast.Preceding_sibling
  | Following -> Ast.Following
  | Preceding -> Ast.Preceding

let spine_steps spine =
  List.map (fun { axis; tag } -> Ast.step (ast_axis axis) (Ast.Name tag)) spine

(* Attach a predicate to the last step of a list of AST steps. *)
let with_predicate steps pred =
  match List.rev steps with
  | [] -> invalid_arg "Pattern.to_ast: empty trunk"
  | last :: before ->
      List.rev (Ast.{ last with predicates = last.predicates @ [ pred ] } :: before)

let to_ast t =
  match t.shape with
  | Simple q -> Ast.path (spine_steps q)
  | Branch { trunk; branch; tail } ->
      let pred = Ast.path ~absolute:false (spine_steps branch) in
      Ast.path (with_predicate (spine_steps trunk) pred @ spine_steps tail)
  | Ordered { trunk; first; axis; second } ->
      let second_steps =
        match spine_steps second with
        | head :: rest -> Ast.{ head with axis = ast_order_axis axis } :: rest
        | [] -> []
      in
      let pred = Ast.path ~absolute:false (spine_steps first @ second_steps) in
      Ast.path (with_predicate (spine_steps trunk) pred)

(* ------------------------------------------------------------------ *)
(* Textual form with a {target} marker.                                *)

let to_string t =
  let render_spine ~mark buf part spine =
    List.iteri
      (fun i { axis; tag } ->
        Buffer.add_string buf (match axis with Child -> "/" | Descendant -> "//");
        if mark part i then Buffer.add_string buf ("{" ^ tag ^ "}")
        else Buffer.add_string buf tag)
      spine
  in
  let render_order_spine ~mark buf part axis spine =
    (* First step carries the order axis in paper notation. *)
    List.iteri
      (fun i { axis = step_axis; tag } ->
        if i = 0 then begin
          Buffer.add_string buf "/";
          Buffer.add_string buf
            (match axis with
            | Following_sibling -> "folls::"
            | Preceding_sibling -> "pres::"
            | Following -> "foll::"
            | Preceding -> "prec::")
        end
        else
          Buffer.add_string buf
            (match step_axis with Child -> "/" | Descendant -> "//");
        if mark part i then Buffer.add_string buf ("{" ^ tag ^ "}")
        else Buffer.add_string buf tag)
      spine
  in
  let buf = Buffer.create 64 in
  let mark part i =
    match (t.target, part) with
    | In_trunk j, `Trunk -> i = j
    | In_branch j, `Branch -> i = j
    | In_tail j, `Tail -> i = j
    | In_first j, `First -> i = j
    | In_second j, `Second -> i = j
    | _, (`Trunk | `Branch | `Tail | `First | `Second) -> false
  in
  (match t.shape with
  | Simple q -> render_spine ~mark buf `Trunk q
  | Branch { trunk; branch; tail } ->
      render_spine ~mark buf `Trunk trunk;
      Buffer.add_char buf '[';
      render_spine ~mark buf `Branch branch;
      Buffer.add_char buf ']';
      render_spine ~mark buf `Tail tail
  | Ordered { trunk; first; axis; second } ->
      render_spine ~mark buf `Trunk trunk;
      Buffer.add_char buf '[';
      render_spine ~mark buf `First first;
      render_order_spine ~mark buf `Second axis second;
      Buffer.add_char buf ']');
  Buffer.contents buf

let of_string input =
  (* Locate and strip the {tag} marker, remembering the ordinal of the
     marked node test in textual order. *)
  let buf = Buffer.create (String.length input) in
  let marked = ref None in
  let node_index = ref 0 in
  let n = String.length input in
  let i = ref 0 in
  while !i < n do
    (match input.[!i] with
    | '{' ->
        if !marked <> None then invalid_arg "Pattern.of_string: two target markers";
        marked := Some !node_index
    | '}' -> ()
    | ('/' | '[' | ']' | ':' | '*') as c -> Buffer.add_char buf c
    | c ->
        (* Start of a name: count it as one node test and copy it. *)
        let start = !i in
        while
          !i < n
          && (match input.[!i] with
             | '/' | '[' | ']' | ':' | '{' | '}' -> false
             | _ -> true)
        do
          incr i
        done;
        let word = String.sub input start (!i - start) in
        (* Axis names are followed by "::"; they are not node tests. *)
        let is_axis = !i + 1 < n && input.[!i] = ':' && input.[!i + 1] = ':' in
        if not is_axis then incr node_index;
        Buffer.add_string buf word;
        i := !i - 1;
        ignore c);
    incr i
  done;
  let clean = Buffer.contents buf in
  let ast = Parser.parse_string clean in
  (* Convert AST -> shape.  Only the normalized fragment is accepted. *)
  let conv_axis pos = function
    | Ast.Child -> Child
    | Ast.Descendant -> Descendant
    | a ->
        invalid_arg
          (Printf.sprintf "Pattern.of_string: unsupported axis %s at step %d"
             (Ast.axis_name a) pos)
  in
  let conv_tag (test : Ast.node_test) =
    match test with
    | Ast.Name tag -> tag
    | Ast.Wildcard -> invalid_arg "Pattern.of_string: wildcard not in fragment"
  in
  let conv_plain_step pos (s : Ast.step) =
    if s.predicates <> [] then
      invalid_arg "Pattern.of_string: nested predicates not in fragment";
    { axis = conv_axis pos s.axis; tag = conv_tag s.test }
  in
  let order_of_ast = function
    | Ast.Following_sibling -> Some Following_sibling
    | Ast.Preceding_sibling -> Some Preceding_sibling
    | Ast.Following -> Some Following
    | Ast.Preceding -> Some Preceding
    | Ast.Self | Ast.Child | Ast.Descendant | Ast.Descendant_or_self
    | Ast.Parent | Ast.Ancestor ->
        None
  in
  let conv_predicate (pred : Ast.path) =
    (* Either a plain spine (branch) or spine + order step + spine. *)
    let rec split acc = function
      | [] -> (List.rev acc, None)
      | (s : Ast.step) :: rest -> (
          match order_of_ast s.axis with
          | Some order ->
              if s.predicates <> [] then
                invalid_arg "Pattern.of_string: predicate on order step";
              let head_axis =
                match order with
                | Following_sibling | Preceding_sibling -> Child
                | Following | Preceding -> Descendant
              in
              let second =
                { axis = head_axis; tag = conv_tag s.test }
                :: List.mapi (fun i st -> conv_plain_step i st) rest
              in
              (List.rev acc, Some (order, second))
          | None -> split (conv_plain_step 0 s :: acc) rest)
    in
    split [] pred.steps
  in
  let steps = ast.steps in
  (* Find the (single) step holding a predicate. *)
  let holders =
    List.filteri (fun _ (s : Ast.step) -> s.predicates <> []) steps
  in
  let shape =
    match holders with
    | [] -> Simple (List.mapi conv_plain_step steps)
    | [ _ ] ->
        let rec split_at acc = function
          | [] -> assert false
          | (s : Ast.step) :: rest ->
              if s.predicates <> [] then (List.rev (s :: acc), rest)
              else split_at (s :: acc) rest
        in
        let trunk_steps, tail_steps = split_at [] steps in
        let holder = List.nth trunk_steps (List.length trunk_steps - 1) in
        (match holder.predicates with
        | [ pred ] -> (
            let trunk =
              List.mapi
                (fun i (s : Ast.step) ->
                  { axis = conv_axis i s.axis; tag = conv_tag s.test })
                trunk_steps
            in
            let tail = List.mapi conv_plain_step tail_steps in
            match conv_predicate pred with
            | branch, None -> Branch { trunk; branch; tail }
            | first, Some (axis, second) ->
                if tail <> [] then
                  invalid_arg
                    "Pattern.of_string: order query cannot have a tail path";
                Ordered { trunk; first; axis; second })
        | _ -> invalid_arg "Pattern.of_string: multiple predicates on one step")
    | _ :: _ :: _ -> invalid_arg "Pattern.of_string: several predicate steps"
  in
  (* Map the textual node ordinal to a position. *)
  let part_sizes =
    match shape with
    | Simple q -> [ (`Trunk, List.length q) ]
    | Branch { trunk; branch; tail } ->
        [
          (`Trunk, List.length trunk);
          (`Branch, List.length branch);
          (`Tail, List.length tail);
        ]
    | Ordered { trunk; first; second; _ } ->
        [
          (`Trunk, List.length trunk);
          (`First, List.length first);
          (`Second, List.length second);
        ]
  in
  let position_of_ordinal ord =
    let rec find parts ord =
      match parts with
      | [] -> invalid_arg "Pattern.of_string: target marker out of range"
      | (part, len) :: rest ->
          if ord < len then
            match part with
            | `Trunk -> In_trunk ord
            | `Branch -> In_branch ord
            | `Tail -> In_tail ord
            | `First -> In_first ord
            | `Second -> In_second ord
          else find rest (ord - len)
    in
    find part_sizes ord
  in
  let total = List.fold_left (fun acc (_, l) -> acc + l) 0 part_sizes in
  let target =
    match !marked with
    | Some ord -> position_of_ordinal ord
    | None -> position_of_ordinal (total - 1)
  in
  v shape target

let equal a b = a = b
let compare a b = Stdlib.compare a b
let pp ppf t = Format.pp_print_string ppf (to_string t)
