lib/xpath/eval.ml: Ast Fun Int List Set String Xpest_xml
