lib/xpath/truth.ml: Array Bytes Char Hashtbl Lazy List Pattern Xpest_xml
