lib/xpath/pattern.ml: Ast Buffer Format List Option Parser Printf Stdlib String
