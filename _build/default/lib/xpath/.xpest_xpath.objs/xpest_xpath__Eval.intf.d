lib/xpath/eval.mli: Ast Xpest_xml
