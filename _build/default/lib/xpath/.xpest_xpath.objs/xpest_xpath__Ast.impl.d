lib/xpath/ast.ml: Bool Buffer Format List String
