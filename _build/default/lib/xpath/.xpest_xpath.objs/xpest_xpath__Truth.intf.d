lib/xpath/truth.mli: Pattern Xpest_xml
