(** Abstract syntax of the XPath fragment used by the paper.

    [PathExpr ::= /Step1/Step2/.../Stepn]
    [Step ::= Axis :: NodeTest Predicate*]

    Predicates are path-existence tests (the paper has no value
    predicates).  The estimation system proper consumes the normalized
    {!Pattern} forms; this AST is what the parser produces and what the
    set-based {!Eval} evaluator runs. *)

type axis =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

type node_test = Name of string | Wildcard

type step = { axis : axis; test : node_test; predicates : path list }

and path = { absolute : bool; steps : step list }
(** [absolute] paths start at the (virtual) document node: [/A] selects
    the root element when it is named [A]; [//A] every [A].  Relative
    paths (inside predicates) start at the context node. *)

val axis_name : axis -> string
(** Full XPath axis name, e.g. ["following-sibling"]. *)

val step : ?predicates:path list -> axis -> node_test -> step

val path : ?absolute:bool -> step list -> path
(** [absolute] defaults to [true]. *)

val equal_path : path -> path -> bool

val to_string : path -> string
(** Canonical rendering with [/], [//] abbreviations where possible and
    explicit [axis::] otherwise; predicates as [\[...\]].  Re-parseable
    by {!Parser.parse_string}. *)

val pp : Format.formatter -> path -> unit
