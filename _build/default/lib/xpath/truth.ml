module Doc = Xpest_xml.Doc

(* ------------------------------------------------------------------ *)
(* Dense bitsets over document nodes.                                  *)

module Bits = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) / 8) '\000'

  let get t i = Char.code (Bytes.get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set t i =
    let b = i lsr 3 in
    Bytes.set t b (Char.chr (Char.code (Bytes.get t b) lor (1 lsl (i land 7))))
end

(* ------------------------------------------------------------------ *)
(* Pattern graph.                                                      *)

type pnode = {
  tag : string;
  axis : Pattern.axis; (* relation to the parent pattern node / anchor *)
  parent : int; (* -1 = anchored at the virtual document node *)
  position : Pattern.position;
  mutable children : int list;
}

type order_constraint = {
  kind : Pattern.order_axis;
  attach : int; (* pnode that both heads hang off *)
  first_head : int;
  second_head : int;
}

type graph = { pnodes : pnode array; order : order_constraint option }

let build_graph (q : Pattern.t) : graph =
  let nodes = ref [] in
  let count = ref 0 in
  let add tag axis parent position =
    let id = !count in
    incr count;
    nodes := { tag; axis; parent; position; children = [] } :: !nodes;
    (match parent with
    | -1 -> ()
    | p ->
        let pn = List.nth !nodes (!count - 1 - p) in
        pn.children <- id :: pn.children);
    id
  in
  let add_spine spine ~anchor ~pos_of ~head_axis =
    let _, last =
      List.fold_left
        (fun (i, parent) (s : Pattern.step) ->
          let axis =
            match (i, head_axis) with 0, Some a -> a | _ -> s.axis
          in
          (i + 1, add s.tag axis parent (pos_of i)))
        (0, anchor) spine
    in
    last
  in
  let order = ref None in
  (match q.shape with
  | Pattern.Simple spine ->
      let (_ : int) =
        add_spine spine ~anchor:(-1)
          ~pos_of:(fun i -> Pattern.In_trunk i)
          ~head_axis:None
      in
      ()
  | Pattern.Branch { trunk; branch; tail } ->
      let attach =
        add_spine trunk ~anchor:(-1)
          ~pos_of:(fun i -> Pattern.In_trunk i)
          ~head_axis:None
      in
      let (_ : int) =
        add_spine branch ~anchor:attach
          ~pos_of:(fun i -> Pattern.In_branch i)
          ~head_axis:None
      in
      if tail <> [] then
        ignore
          (add_spine tail ~anchor:attach
             ~pos_of:(fun i -> Pattern.In_tail i)
             ~head_axis:None)
  | Pattern.Ordered { trunk; first; axis; second } ->
      let attach =
        add_spine trunk ~anchor:(-1)
          ~pos_of:(fun i -> Pattern.In_trunk i)
          ~head_axis:None
      in
      let first_last =
        add_spine first ~anchor:attach
          ~pos_of:(fun i -> Pattern.In_first i)
          ~head_axis:None
      in
      let first_head = first_last - List.length first + 1 in
      let second_last =
        add_spine second ~anchor:attach
          ~pos_of:(fun i -> Pattern.In_second i)
          ~head_axis:None
      in
      let second_head = second_last - List.length second + 1 in
      order := Some { kind = axis; attach; first_head; second_head });
  let arr = Array.of_list (List.rev !nodes) in
  { pnodes = arr; order = !order }

(* ------------------------------------------------------------------ *)
(* Two-pass matcher.                                                   *)

type run = {
  doc : Doc.t;
  graph : graph;
  d_sets : int list array; (* downward-qualified candidates, doc order *)
  d_bits : Bits.t array;
  a_sets : int list array; (* fully-allowed bindings, doc order *)
  a_bits : Bits.t array;
}

(* For a sorted int array, index of the first element > key. *)
let upper_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

(* First child of x (document order) that is in [bits]; None if none.
   The order-constraint checks call these for every candidate under
   the same parent (e.g. every element under a wide root), so both are
   memoized per run — without the memo a 40k-child root makes the
   top-down pass quadratic. *)
let memoize tbl f x =
  match Hashtbl.find_opt tbl x with
  | Some v -> v
  | None ->
      let v = f x in
      Hashtbl.add tbl x v;
      v

let first_marked_child doc bits =
  let tbl = Hashtbl.create 64 in
  memoize tbl (fun x ->
      let rec loop = function
        | None -> None
        | Some c ->
            if Bits.get bits c then Some c else loop (Doc.next_sibling doc c)
      in
      loop (Doc.first_child doc x))

let last_marked_child doc bits =
  let tbl = Hashtbl.create 64 in
  memoize tbl (fun x ->
      let rec loop best = function
        | None -> best
        | Some c ->
            loop
              (if Bits.get bits c then Some c else best)
              (Doc.next_sibling doc c)
      in
      loop None (Doc.first_child doc x))

(* Per-run order machinery: memoized child scans over the first and
   second head candidate sets, and the sorted second-head candidate
   array for the document-order axes. *)
type order_ctx = {
  oc : order_constraint;
  fh_first : Doc.node -> Doc.node option;
  fh_last : Doc.node -> Doc.node option;
  sh_first : Doc.node -> Doc.node option;
  sh_last : Doc.node -> Doc.node option;
  sh_arr : int array Lazy.t;
}

(* Does x, with first-head candidates among its children and
   second-head candidates in [sh_arr] (restricted to x's subtree via
   the range), admit an order-satisfying pair? *)
let order_pair_exists run octx x =
  let doc = run.doc in
  match octx.oc.kind with
  | Pattern.Following_sibling | Pattern.Preceding_sibling ->
      (* Both heads are children of x.  Following_sibling: exists
         first-head child strictly before a second-head child. *)
      let fwd = octx.oc.kind = Pattern.Following_sibling in
      let earliest, latest =
        if fwd then (octx.fh_first, octx.sh_last) else (octx.sh_first, octx.fh_last)
      in
      (match (earliest x, latest x) with
      | Some e, Some l -> e < l
      | None, _ | Some _, None -> false)
  | Pattern.Following -> (
      (* exists y1 child of x in fh, y2 in sh inside x's subtree with
         pre(y2) > subtree_last(y1).  The first fh child minimizes
         subtree_last among fh children. *)
      match octx.fh_first x with
      | None -> false
      | Some y1 ->
          let sh_arr = Lazy.force octx.sh_arr in
          let lo = Doc.subtree_last doc y1 in
          let hi = Doc.subtree_last doc x in
          let i = upper_bound sh_arr lo in
          i < Array.length sh_arr && sh_arr.(i) <= hi)
  | Pattern.Preceding -> (
      (* exists y1 child of x in fh, y2 in x's subtree with
         subtree_last(y2) < pre(y1).  The last fh child maximizes
         pre(y1).  Candidates with pre < pre(y1) that are not ancestors
         of y1 qualify; at most depth-many ancestors can be skipped. *)
      match octx.fh_last x with
      | None -> false
      | Some y1 ->
          let sh_arr = Lazy.force octx.sh_arr in
          let i0 = upper_bound sh_arr x in
          let rec scan i =
            if i >= Array.length sh_arr then false
            else
              let y2 = sh_arr.(i) in
              if y2 >= y1 then false
              else if Doc.subtree_last doc y2 < y1 then true
              else scan (i + 1) (* y2 is an ancestor of y1: skip *)
          in
          scan i0)

(* Allowed-pair checks for the top-down pass: is THIS y1 (first head,
   child of allowed x) part of some order-satisfying pair?  And
   symmetrically for y2. *)
let first_head_ok run octx x y1 =
  let doc = run.doc in
  match octx.oc.kind with
  | Pattern.Following_sibling -> (
      match octx.sh_last x with Some l -> y1 < l | None -> false)
  | Pattern.Preceding_sibling -> (
      match octx.sh_first x with Some e -> e < y1 | None -> false)
  | Pattern.Following ->
      let sh_arr = Lazy.force octx.sh_arr in
      let lo = Doc.subtree_last doc y1 in
      let hi = Doc.subtree_last doc x in
      let i = upper_bound sh_arr lo in
      i < Array.length sh_arr && sh_arr.(i) <= hi
  | Pattern.Preceding ->
      let sh_arr = Lazy.force octx.sh_arr in
      let i0 = upper_bound sh_arr x in
      let rec scan i =
        if i >= Array.length sh_arr then false
        else
          let y2 = sh_arr.(i) in
          if y2 >= y1 then false
          else if Doc.subtree_last doc y2 < y1 then true
          else scan (i + 1)
      in
      scan i0

let second_head_ok run octx x y2 =
  let doc = run.doc in
  match octx.oc.kind with
  | Pattern.Following_sibling -> (
      match octx.fh_first x with Some e -> e < y2 | None -> false)
  | Pattern.Preceding_sibling -> (
      match octx.fh_last x with Some l -> y2 < l | None -> false)
  | Pattern.Following -> (
      (* need y1 child of x with subtree_last(y1) < pre(y2) *)
      match octx.fh_first x with
      | Some y1 -> Doc.subtree_last doc y1 < y2
      | None -> false)
  | Pattern.Preceding -> (
      (* need y1 child of x with pre(y1) > subtree_last(y2) *)
      match octx.fh_last x with
      | Some y1 -> y1 > Doc.subtree_last doc y2
      | None -> false)

(* ------------------------------------------------------------------ *)

let run_pattern doc (q : Pattern.t) : run =
  let graph = build_graph q in
  let m = Array.length graph.pnodes in
  let n = Doc.size doc in
  let run =
    {
      doc;
      graph;
      d_sets = Array.make m [];
      d_bits = Array.init m (fun _ -> Bits.create n);
      a_sets = Array.make m [];
      a_bits = Array.init m (fun _ -> Bits.create n);
    }
  in
  (* Memoized order context; safe to build eagerly because the head
     d_bits arrays are mutated in place and fully populated before the
     attach node (a smaller pnode id) is processed, and the sorted
     second-head array is forced lazily at that point. *)
  let octx =
    match graph.order with
    | None -> None
    | Some oc ->
        Some
          {
            oc;
            fh_first = first_marked_child doc run.d_bits.(oc.first_head);
            fh_last = last_marked_child doc run.d_bits.(oc.first_head);
            sh_first = first_marked_child doc run.d_bits.(oc.second_head);
            sh_last = last_marked_child doc run.d_bits.(oc.second_head);
            sh_arr = lazy (Array.of_list run.d_sets.(oc.second_head));
          }
  in
  (* ---- bottom-up: D sets (children have larger pnode ids? no:
     children always added after parents, so iterate ids downward). *)
  for p = m - 1 downto 0 do
    let pn = graph.pnodes.(p) in
    (* Marks from each pattern child: node x is marked iff it has a
       suitable child/descendant in D(c). *)
    let child_marks =
      List.map
        (fun c ->
          let marks = Bits.create n in
          let cn = graph.pnodes.(c) in
          List.iter
            (fun y ->
              match cn.axis with
              | Pattern.Child -> (
                  match Doc.parent doc y with
                  | Some x -> Bits.set marks x
                  | None -> ())
              | Pattern.Descendant ->
                  let rec up node =
                    match Doc.parent doc node with
                    | Some x ->
                        if not (Bits.get marks x) then begin
                          Bits.set marks x;
                          up x
                        end
                    | None -> ()
                  in
                  up y)
            run.d_sets.(c);
          marks)
        pn.children
    in
    (* Order constraint pre-computation if p is the attach node. *)
    let order_here =
      match octx with
      | Some octx when octx.oc.attach = p -> Some octx
      | Some _ | None -> None
    in
    let candidates = Doc.nodes_with_tag doc pn.tag in
    let accepted = ref [] in
    Array.iter
      (fun x ->
        let down_ok = List.for_all (fun marks -> Bits.get marks x) child_marks in
        let order_ok =
          match order_here with
          | None -> true
          | Some octx -> order_pair_exists run octx x
        in
        if down_ok && order_ok then begin
          Bits.set run.d_bits.(p) x;
          accepted := x :: !accepted
        end)
      candidates;
    run.d_sets.(p) <- List.rev !accepted
  done;
  (* ---- top-down: A sets. *)
  for p = 0 to m - 1 do
    let pn = graph.pnodes.(p) in
    let order_role =
      match octx with
      | Some octx when octx.oc.first_head = p -> `First octx
      | Some octx when octx.oc.second_head = p -> `Second octx
      | Some _ | None -> `Plain
    in
    let allowed_parent x = x >= 0 && Bits.get run.a_bits.(pn.parent) x in
    let keep y =
      if pn.parent = -1 then
        (* Anchored at the virtual document node. *)
        match pn.axis with
        | Pattern.Child -> y = Doc.root doc
        | Pattern.Descendant -> true
      else
        match pn.axis with
        | Pattern.Child -> (
            match Doc.parent doc y with
            | Some x -> (
                allowed_parent x
                &&
                match order_role with
                | `Plain -> true
                | `First octx -> first_head_ok run octx x y
                | `Second octx -> second_head_ok run octx x y)
            | None -> false)
        | Pattern.Descendant -> (
            match order_role with
            | `Plain ->
                let rec up node =
                  match Doc.parent doc node with
                  | Some x -> allowed_parent x || up x
                  | None -> false
                in
                up y
            | `First _ -> false (* first head is always a Child step *)
            | `Second octx ->
                (* y2 must have an allowed attach ancestor with a
                   suitable y1. *)
                let rec up node =
                  match Doc.parent doc node with
                  | Some x -> (allowed_parent x && second_head_ok run octx x y) || up x
                  | None -> false
                in
                up y)
    in
    let accepted = List.filter keep run.d_sets.(p) in
    List.iter (fun y -> Bits.set run.a_bits.(p) y) accepted;
    run.a_sets.(p) <- accepted
  done;
  run

let find_pnode graph position =
  let found = ref (-1) in
  Array.iteri
    (fun i (pn : pnode) -> if pn.position = position then found := i)
    graph.pnodes;
  !found

let matches doc q =
  let run = run_pattern doc q in
  let p = find_pnode run.graph (Pattern.target q) in
  assert (p >= 0);
  run.a_sets.(p)

let selectivity doc q = List.length (matches doc q)

let all_selectivities doc q =
  let run = run_pattern doc q in
  Array.to_list
    (Array.mapi
       (fun i (pn : pnode) -> (pn.position, List.length run.a_sets.(i)))
       run.graph.pnodes)

let is_positive doc q = selectivity doc q > 0
