exception Syntax_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let error st message = raise (Syntax_error { position = st.pos; message })
let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* Longest-match over the axis table; names containing '-' (e.g.
   "following-sibling") must come before their prefixes. *)
let axes : (string * Ast.axis) list =
  [
    ("descendant-or-self", Ast.Descendant_or_self);
    ("descendant", Ast.Descendant);
    ("following-sibling", Ast.Following_sibling);
    ("preceding-sibling", Ast.Preceding_sibling);
    ("following", Ast.Following);
    ("preceding", Ast.Preceding);
    ("ancestor", Ast.Ancestor);
    ("parent", Ast.Parent);
    ("child", Ast.Child);
    ("self", Ast.Self);
    (* The paper's abbreviations. *)
    ("folls", Ast.Following_sibling);
    ("pres", Ast.Preceding_sibling);
    ("foll", Ast.Following);
    ("prec", Ast.Preceding);
  ]

let try_axis st =
  let rest = String.length st.input - st.pos in
  let found =
    List.find_opt
      (fun (name, _) ->
        let n = String.length name in
        n + 2 <= rest
        && String.sub st.input st.pos n = name
        && String.sub st.input (st.pos + n) 2 = "::")
      axes
  in
  match found with
  | Some (name, axis) ->
      st.pos <- st.pos + String.length name + 2;
      Some axis
  | None -> None

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_test st =
  match peek st with
  | Some '*' ->
      advance st;
      Ast.Wildcard
  | _ -> Ast.Name (parse_name st)

(* leading_axis: the axis implied by the separator seen before this
   step ('/' -> Child, '//' -> Descendant, None for a bare first step
   of a relative path, which defaults to Child). *)
let rec parse_step st default_axis =
  let axis = match try_axis st with Some a -> a | None -> default_axis in
  let test = parse_test st in
  let predicates = parse_predicates st [] in
  Ast.{ axis; test; predicates }

and parse_predicates st acc =
  match peek st with
  | Some '[' ->
      advance st;
      let pred = parse_relative_path st in
      (match peek st with
      | Some ']' -> advance st
      | _ -> error st "expected ']'");
      parse_predicates st (pred :: acc)
  | _ -> List.rev acc

and parse_steps st first_axis =
  let first = parse_step st first_axis in
  let rec more acc =
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      more (parse_step st Ast.Descendant :: acc)
    end
    else if looking_at st "/" then begin
      advance st;
      more (parse_step st Ast.Child :: acc)
    end
    else List.rev acc
  in
  more [ first ]

(* Relative path: used inside predicates.  A leading '/' or '//' is
   interpreted relative to the context node (paper notation). *)
and parse_relative_path st =
  let first_axis =
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      Ast.Descendant
    end
    else if looking_at st "/" then begin
      advance st;
      Ast.Child
    end
    else Ast.Child
  in
  Ast.{ absolute = false; steps = parse_steps st first_axis }

let parse_string input =
  let st = { input; pos = 0 } in
  let path =
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      Ast.{ absolute = true; steps = parse_steps st Ast.Descendant }
    end
    else if looking_at st "/" then begin
      advance st;
      Ast.{ absolute = true; steps = parse_steps st Ast.Child }
    end
    else Ast.{ absolute = false; steps = parse_steps st Ast.Child }
  in
  if st.pos < String.length input then error st "trailing characters after path";
  path
