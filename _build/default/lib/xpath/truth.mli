(** Exact selectivity of normalized patterns — the ground-truth oracle.

    The paper defines the selectivity [S_Q(n)] of a node [n] in a query
    [Q] as the number of distinct document elements that [n] binds to
    across all embeddings of the whole pattern.  This module computes
    it exactly with a two-pass algorithm: a bottom-up pass computes for
    every pattern node the documents nodes satisfying all constraints
    *below* it, a top-down pass restricts to nodes reachable from an
    allowed binding of the pattern node *above* it.  Order constraints
    between the two branch heads are enforced jointly per candidate
    parent.

    Complexity is near-linear in document size per query, which is what
    makes evaluating workloads of thousands of queries over
    hundred-thousand-node documents practical. *)

val matches : Xpest_xml.Doc.t -> Pattern.t -> Xpest_xml.Doc.node list
(** Distinct bindings of the pattern's target node, in document
    order. *)

val selectivity : Xpest_xml.Doc.t -> Pattern.t -> int
(** [List.length (matches doc q)]. *)

val all_selectivities :
  Xpest_xml.Doc.t -> Pattern.t -> (Pattern.position * int) list
(** Exact selectivity of *every* node position of the pattern, one
    entry per pattern node, in trunk-branch-tail order.  Computed in
    one two-pass run. *)

val is_positive : Xpest_xml.Doc.t -> Pattern.t -> bool
(** Whether the query has at least one result ([selectivity > 0]);
    used by the workload generator to discard negative queries. *)
