(** Normalized query patterns — the query classes of the paper.

    Section 4 standardizes branch queries as [q1\[/q2\]/q3] (trunk,
    branch, tail) and Section 5 writes order queries as
    [q1\[/q2/folls::q3\]] where the heads of [q2] and [q3] are sibling
    children of the last trunk node (or, for [following]/[preceding],
    the head of [q3] is a descendant of the last trunk node positioned
    after/before the whole [q2]).  Every query designates a *target
    node* whose selectivity is estimated. *)

type axis = Child | Descendant

type step = { axis : axis; tag : string }

type spine = step list
(** A simple path: non-empty everywhere it is used as a trunk/branch. *)

type order_axis = Following_sibling | Preceding_sibling | Following | Preceding

type shape =
  | Simple of spine  (** [/q1] *)
  | Branch of { trunk : spine; branch : spine; tail : spine }
      (** [q1\[/q2\]/q3]; [tail] may be empty ([q1\[/q2\]]). *)
  | Ordered of { trunk : spine; first : spine; axis : order_axis; second : spine }
      (** [q1\[/first/axis::second\]].  The head of [first] is a child
          of the last trunk node.  For sibling axes the head of
          [second] is too; for [Following]/[Preceding] it is a
          descendant. *)

(** Position of the target node inside a shape; indices are 0-based
    within each part. *)
type position =
  | In_trunk of int
  | In_branch of int
  | In_tail of int
  | In_first of int
  | In_second of int

type t = { shape : shape; target : position }

val v : shape -> position -> t
(** Smart constructor.
    @raise Invalid_argument if the position does not exist in the
    shape, a required part is empty, or an [Ordered] head violates the
    axis discipline above (the head of [first] must be a [Child] step;
    the head of [second] must be [Child] for sibling order axes and
    [Descendant] for [Following]/[Preceding]). *)

val simple : ?target:int -> spine -> t
(** Target defaults to the last step. *)

val shape : t -> shape
val target : t -> position

val target_tag : t -> string
val tag_at : t -> position -> string option

val size : t -> int
(** Number of node tests in the pattern. *)

val counterpart : shape -> shape
(** The order-free counterpart [Q] of an order query [Q⃗] (Section 5):
    dropping the order axis turns [Ordered] into [Branch] with
    [branch = first] and [tail = second]; other shapes are unchanged. *)

val counterpart_position : position -> position
(** Maps [In_first]/[In_second] to [In_branch]/[In_tail]. *)

val tags : t -> string list
(** All tags mentioned, in trunk-branch-tail order, duplicates kept. *)

val to_ast : t -> Ast.path
(** Lower to the AST (losing the target designation); useful for
    printing and for evaluating with {!Eval}. *)

val to_string : t -> string
(** Rendering with the target node wrapped in braces, e.g.
    [//A\[/C/F\]/B/{D}].  Parsed back by {!of_string}. *)

val of_string : string -> t
(** Parse the {!to_string} notation.  Exactly one target marker
    [{tag}] is required unless the path is a plain simple/branch/order
    form, in which case the target defaults to the last node of the
    main path.  @raise Invalid_argument on paths outside the
    normalized fragment. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
