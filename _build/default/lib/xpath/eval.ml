module Doc = Xpest_xml.Doc
module Iset = Set.Make (Int)

let rec descendants d n acc =
  List.fold_left (fun acc c -> descendants d c (c :: acc)) acc (Doc.children d n)

let ancestors d n =
  let rec up n acc =
    match Doc.parent d n with Some p -> up p (p :: acc) | None -> acc
  in
  up n []

let axis_nodes d axis n =
  match axis with
  | Ast.Self -> [ n ]
  | Ast.Child -> Doc.children d n
  | Ast.Descendant -> List.sort Int.compare (descendants d n [])
  | Ast.Descendant_or_self -> List.sort Int.compare (descendants d n [ n ])
  | Ast.Parent -> ( match Doc.parent d n with Some p -> [ p ] | None -> [])
  | Ast.Ancestor -> ancestors d n
  | Ast.Following_sibling ->
      let rec collect m acc =
        match Doc.next_sibling d m with
        | Some s -> collect s (s :: acc)
        | None -> List.rev acc
      in
      collect n []
  | Ast.Preceding_sibling ->
      let rec collect m acc =
        match Doc.prev_sibling d m with
        | Some s -> collect s (s :: acc)
        | None -> acc
      in
      collect n []
  | Ast.Following ->
      (* Everything after n's subtree in document order. *)
      let first = Doc.subtree_last d n + 1 in
      List.init (Doc.size d - first) (fun i -> first + i)
  | Ast.Preceding ->
      (* Nodes strictly before n in document order, minus ancestors. *)
      let rec collect m acc =
        if m >= n then List.rev acc
        else if Doc.is_ancestor d ~anc:m ~desc:n then collect (m + 1) acc
        else collect (m + 1) (m :: acc)
      in
      collect 0 []

let test_ok d test n =
  match test with
  | Ast.Wildcard -> true
  | Ast.Name name -> String.equal (Doc.tag d n) name

(* Evaluate one step from a context set; deduplicate with a set. *)
let rec eval_step d context (step : Ast.step) =
  let hits = ref Iset.empty in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          if test_ok d step.test m && satisfies_predicates d m step.predicates
          then hits := Iset.add m !hits)
        (axis_nodes d step.axis n))
    context;
  Iset.elements !hits

and satisfies_predicates d n predicates =
  List.for_all (fun p -> eval_path d [ n ] p <> []) predicates

and eval_path d context (path : Ast.path) =
  (* Absolute paths restart at the virtual document node, whose only
     child is the root element; we model the first Child step against
     it by seeding the context appropriately. *)
  match path.steps with
  | [] -> context
  | first :: rest ->
      let seed =
        if path.absolute then
          match first.axis with
          | Ast.Child ->
              (* children of the document node = the root element *)
              if
                test_ok d first.test 0
                && satisfies_predicates d 0 first.predicates
              then [ 0 ]
              else []
          | Ast.Descendant | Ast.Descendant_or_self ->
              List.filter
                (fun n ->
                  test_ok d first.test n
                  && satisfies_predicates d n first.predicates)
                (List.init (Doc.size d) Fun.id)
          | Ast.Self | Ast.Parent | Ast.Ancestor | Ast.Following_sibling
          | Ast.Preceding_sibling | Ast.Following | Ast.Preceding ->
              (* No sensible meaning from the document node. *)
              []
        else eval_step d context first
      in
      List.fold_left (eval_step d) seed rest

let eval_from d context path = eval_path d context path
let eval d path = eval_path d [ Doc.root d ] path
let count d path = List.length (eval d path)
