(** Set-based XPath evaluation over a frozen document.

    This is the reference evaluator: simple, obviously-correct
    semantics, used by the examples, by tests as an oracle for the
    faster {!Truth} matcher, and to cross-check estimates.  Node sets
    are returned in document order without duplicates. *)

val eval : Xpest_xml.Doc.t -> Ast.path -> Xpest_xml.Doc.node list
(** Evaluate an absolute path from the virtual document node (so
    [/A] yields the root element when named [A]).  A relative path is
    evaluated from the root element. *)

val eval_from :
  Xpest_xml.Doc.t -> Xpest_xml.Doc.node list -> Ast.path -> Xpest_xml.Doc.node list
(** Evaluate a relative path from an explicit context node set.
    Absolute paths ignore the context and restart at the document
    node. *)

val count : Xpest_xml.Doc.t -> Ast.path -> int
(** [List.length (eval doc path)]. *)

val axis_nodes :
  Xpest_xml.Doc.t -> Ast.axis -> Xpest_xml.Doc.node -> Xpest_xml.Doc.node list
(** All nodes reachable from a context node via an axis, in document
    order.  Exposed for tests. *)
