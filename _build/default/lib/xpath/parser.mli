(** Parser for the XPath fragment.

    Grammar accepted (paper notation and standard abbreviations):

    - [/] and [//] abbreviate child and descendant axes;
    - explicit axes: [child::], [descendant::], [descendant-or-self::],
      [self::], [parent::], [ancestor::], [following-sibling::],
      [preceding-sibling::], [following::], [preceding::];
    - the paper's short axis names [folls::], [pres::], [foll::],
      [prec::] for the four order axes;
    - node tests: names and [*];
    - predicates: [\[relative-path\]]; a predicate path may start with
      [/] or [//] which — following the paper's notation
      [//A\[/C/F\]/B/D] — denote child/descendant steps relative to the
      context node, not document-rooted paths. *)

exception Syntax_error of { position : int; message : string }

val parse_string : string -> Ast.path
(** @raise Syntax_error on malformed input. *)
