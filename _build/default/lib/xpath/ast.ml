type axis =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

type node_test = Name of string | Wildcard

type step = { axis : axis; test : node_test; predicates : path list }
and path = { absolute : bool; steps : step list }

let axis_name = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"

let step ?(predicates = []) axis test = { axis; test; predicates }
let path ?(absolute = true) steps = { absolute; steps }

let equal_test a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Wildcard, Wildcard -> true
  | Name _, Wildcard | Wildcard, Name _ -> false

let rec equal_step a b =
  a.axis = b.axis
  && equal_test a.test b.test
  && List.length a.predicates = List.length b.predicates
  && List.for_all2 equal_path a.predicates b.predicates

and equal_path a b =
  Bool.equal a.absolute b.absolute
  && List.length a.steps = List.length b.steps
  && List.for_all2 equal_step a.steps b.steps

let test_string = function Name n -> n | Wildcard -> "*"

let to_string p =
  let buf = Buffer.create 64 in
  let rec render_path ~leading p =
    List.iteri
      (fun i s ->
        let sep_needed = i > 0 || leading in
        (match s.axis with
        | Child -> if sep_needed then Buffer.add_char buf '/'
        | Descendant ->
            if sep_needed then Buffer.add_string buf "//"
            else Buffer.add_string buf "descendant::"
        | axis ->
            if sep_needed then Buffer.add_char buf '/';
            Buffer.add_string buf (axis_name axis);
            Buffer.add_string buf "::");
        (* A descendant step rendered as "//" already carries its axis;
           otherwise child steps are bare names. *)
        (match s.axis with
        | Descendant when sep_needed -> Buffer.add_string buf (test_string s.test)
        | Child | Descendant -> Buffer.add_string buf (test_string s.test)
        | Self | Descendant_or_self | Parent | Ancestor | Following_sibling
        | Preceding_sibling | Following | Preceding ->
            Buffer.add_string buf (test_string s.test));
        List.iter
          (fun pred ->
            Buffer.add_char buf '[';
            render_path ~leading:pred.absolute pred;
            Buffer.add_char buf ']')
          s.predicates)
      p.steps
  in
  render_path ~leading:p.absolute p;
  Buffer.contents buf

let pp ppf p = Format.pp_print_string ppf (to_string p)
