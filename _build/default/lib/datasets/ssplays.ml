module Tree = Xpest_xml.Tree
module Prng = Xpest_util.Prng

let tag_universe =
  [
    "PLAYS"; "PLAY"; "TITLE"; "FM"; "P"; "PERSONAE"; "PERSONA"; "PGROUP";
    "GRPDESCR"; "SCNDESCR"; "PLAYSUBT"; "INDUCT"; "PROLOGUE"; "EPILOGUE";
    "ACT"; "SCENE"; "SPEECH"; "SPEAKER"; "LINE"; "STAGEDIR"; "SUBHEAD";
  ]

let repeat rng ~lo ~hi make =
  List.init (Prng.int_in_range rng lo hi) (fun _ -> make ())

let speech rng =
  (* SPEAKER(s) first, then LINEs, occasionally a STAGEDIR in between:
     this is the sibling-order texture order queries probe. *)
  let subhead = if Prng.int rng 40 = 0 then [ Tree.leaf "SUBHEAD" ] else [] in
  let speakers =
    subhead @ repeat rng ~lo:1 ~hi:2 (fun () -> Tree.leaf "SPEAKER")
  in
  let lines =
    List.concat
      (repeat rng ~lo:3 ~hi:14 (fun () ->
           if Prng.int rng 12 = 0 then [ Tree.leaf "STAGEDIR"; Tree.leaf "LINE" ]
           else [ Tree.leaf "LINE" ]))
  in
  Tree.elem "SPEECH" (speakers @ lines)

let scene rng =
  let body =
    List.concat
      (repeat rng ~lo:14 ~hi:26 (fun () ->
           if Prng.int rng 8 = 0 then [ Tree.leaf "STAGEDIR"; speech rng ]
           else [ speech rng ]))
  in
  let subhead = if Prng.int rng 6 = 0 then [ Tree.leaf "SUBHEAD" ] else [] in
  Tree.elem "SCENE" ((Tree.leaf "TITLE" :: Tree.leaf "STAGEDIR" :: subhead) @ body)

let prologue_or_epilogue rng tag =
  Tree.elem tag (Tree.leaf "TITLE" :: repeat rng ~lo:1 ~hi:2 (fun () -> speech rng))

let act rng ~with_prologue =
  let prologue =
    if with_prologue && Prng.int rng 4 = 0 then
      [ prologue_or_epilogue rng "PROLOGUE" ]
    else []
  in
  let scenes = repeat rng ~lo:3 ~hi:5 (fun () -> scene rng) in
  let epilogue =
    if Prng.int rng 10 = 0 then [ prologue_or_epilogue rng "EPILOGUE" ] else []
  in
  Tree.elem "ACT" ((Tree.leaf "TITLE" :: prologue) @ scenes @ epilogue)

let personae rng =
  let persona () = Tree.leaf "PERSONA" in
  let pgroup () =
    Tree.elem "PGROUP"
      (repeat rng ~lo:2 ~hi:4 persona @ [ Tree.leaf "GRPDESCR" ])
  in
  let members =
    List.concat
      (repeat rng ~lo:8 ~hi:18 (fun () ->
           if Prng.int rng 5 = 0 then [ pgroup () ] else [ persona () ]))
  in
  Tree.elem "PERSONAE" (Tree.leaf "TITLE" :: members)

let front_matter rng =
  Tree.elem "FM" (repeat rng ~lo:3 ~hi:4 (fun () -> Tree.leaf "P"))

(* [coverage] forces every optional construct so the full 21-tag
   vocabulary and its root-to-leaf paths exist at any scale (the first
   play of each corpus is generated with it). *)
let play ?(coverage = false) rng =
  let induct =
    if coverage || Prng.int rng 12 = 0 then
      [ Tree.elem "INDUCT"
          (Tree.leaf "TITLE"
          :: (if coverage then scene rng :: repeat rng ~lo:2 ~hi:4 (fun () -> speech rng)
              else if Prng.bool rng then [ scene rng ]
              else repeat rng ~lo:2 ~hi:4 (fun () -> speech rng))) ]
    else []
  in
  let play_prologue =
    if coverage || Prng.int rng 10 = 0 then
      [ prologue_or_epilogue rng "PROLOGUE" ]
    else []
  in
  let play_epilogue =
    if coverage || Prng.int rng 10 = 0 then
      [ prologue_or_epilogue rng "EPILOGUE" ]
    else []
  in
  Tree.elem "PLAY"
    ([
       Tree.leaf "TITLE";
       front_matter rng;
       personae rng;
       Tree.leaf "SCNDESCR";
       Tree.leaf "PLAYSUBT";
     ]
    @ induct @ play_prologue
    @ List.init 5 (fun i -> act rng ~with_prologue:(i = 0))
    @ play_epilogue)

let generate ?(plays = 37) ~seed () =
  let rng = Prng.create seed in
  Tree.elem "PLAYS" (List.init plays (fun i -> play ~coverage:(i = 0) rng))
