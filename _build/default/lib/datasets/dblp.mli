(** Synthetic DBLP bibliography.

    Mirrors the structural profile of the DBLP dump in the paper
    (Table 1: 65.2 MB, 31 distinct tags, 1,711,542 elements, 87
    distinct root-to-leaf paths): extremely shallow and wide — one
    [dblp] root with hundreds of thousands of flat publication records.
    The enormous number of sibling pairs directly under each record is
    what makes DBLP's order information disproportionately expensive to
    summarize (paper Figure 9b, Table 5). *)

val tag_universe : string list
(** The 31 element tags (root + 8 record types + 22 field tags). *)

val generate : ?records:int -> seed:int -> unit -> Xpest_xml.Tree.t
(** [generate ~seed ()] builds the bibliography.  [records] defaults
    to 180_000, which yields on the order of 1.7M elements (the paper's
    scale); tests and the default bench profile pass a smaller value.
    Deterministic in [seed] and [records]. *)
