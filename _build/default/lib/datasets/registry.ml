type name = Ssplays | Dblp | Xmark

let all = [ Ssplays; Dblp; Xmark ]

let to_string = function
  | Ssplays -> "SSPlays"
  | Dblp -> "DBLP"
  | Xmark -> "XMark"

let of_string s =
  match String.lowercase_ascii s with
  | "ssplays" | "plays" | "shakespeare" -> Some Ssplays
  | "dblp" -> Some Dblp
  | "xmark" -> Some Xmark
  | _ -> None

let default_seed = function Ssplays -> 1601 | Dblp -> 1901 | Xmark -> 2001

let generate_tree ?(scale = 1.0) ?seed name =
  let seed = match seed with Some s -> s | None -> default_seed name in
  let scaled base = max 1 (int_of_float (Float.of_int base *. scale)) in
  match name with
  | Ssplays -> Ssplays.generate ~plays:(scaled 37) ~seed ()
  | Dblp -> Dblp.generate ~records:(scaled 155_000) ~seed ()
  | Xmark -> Xmark.generate ~scale ~seed ()

let generate ?scale ?seed name =
  Xpest_xml.Doc.of_tree (generate_tree ?scale ?seed name)
