(** Uniform access to the three evaluation datasets.

    The paper's experiments run over SSPlays, DBLP and XMark; the
    harness iterates this registry so every experiment automatically
    covers all three.  [scale] multiplies dataset cardinality: 1.0
    approximates the paper's element counts (Table 1), smaller values
    give proportionally smaller documents for fast test/bench runs. *)

type name = Ssplays | Dblp | Xmark

val all : name list
(** [Ssplays; Dblp; Xmark] — the harness iteration order. *)

val to_string : name -> string
val of_string : string -> name option
(** Case-insensitive. *)

val generate_tree : ?scale:float -> ?seed:int -> name -> Xpest_xml.Tree.t
(** [scale] defaults to [1.0], [seed] to a per-dataset constant, so two
    calls with equal arguments build identical documents. *)

val generate : ?scale:float -> ?seed:int -> name -> Xpest_xml.Doc.t
(** [Doc.of_tree (generate_tree ...)]. *)
