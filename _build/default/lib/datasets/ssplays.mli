(** Synthetic Shakespeare's Plays.

    Mirrors the structural profile of the ibiblio Shakespeare corpus
    used in the paper (Table 1: 7.5 MB, 21 distinct tags, 179,690
    elements, 40 distinct root-to-leaf paths): a regular, moderately
    deep document of plays, acts, scenes and speeches, with the
    characteristic sibling-order texture (SPEAKER before LINEs,
    STAGEDIRs interleaved) that order queries exercise. *)

val tag_universe : string list
(** The 21 element tags the generator can emit. *)

val generate : ?plays:int -> seed:int -> unit -> Xpest_xml.Tree.t
(** [generate ~seed ()] builds the corpus under a single [PLAYS] root.
    [plays] defaults to 37 (the historical corpus), which yields on
    the order of 170k elements.  Deterministic in [seed] and
    [plays]. *)
