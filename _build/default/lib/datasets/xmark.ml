module Tree = Xpest_xml.Tree
module Prng = Xpest_util.Prng

let continents =
  [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ]

let tag_universe =
  [
    "site"; "regions"; "africa"; "asia"; "australia"; "europe"; "namerica";
    "samerica"; "item"; "location"; "quantity"; "name"; "payment";
    "description"; "text"; "parlist"; "listitem"; "shipping"; "incategory";
    "mailbox"; "mail"; "from"; "to"; "date"; "itemref"; "categories";
    "category"; "catgraph"; "edge"; "people"; "person"; "emailaddress";
    "phone"; "homepage"; "creditcard"; "profile"; "interest"; "education";
    "gender"; "business"; "age"; "watches"; "watch"; "address"; "street";
    "city"; "country"; "province"; "zipcode"; "open_auctions";
    "open_auction"; "initial"; "reserve"; "bidder"; "increase"; "current";
    "privacy"; "seller"; "annotation"; "author"; "happiness";
    "closed_auctions"; "closed_auction"; "price"; "buyer"; "type";
    "interval"; "start"; "end"; "time"; "status"; "amount";
    "keyword"; "bold";
  ]

let maybe rng p tree = if Prng.float rng 1.0 < p then [ tree ] else []

let repeat rng ~lo ~hi make =
  List.init (Prng.int_in_range rng lo hi) (fun _ -> make ())

(* text with optional inline markup; sometimes a bare leaf *)
let text rng =
  let inline =
    List.concat
      [
        maybe rng 0.25 (Tree.leaf "keyword"); maybe rng 0.2 (Tree.leaf "bold");
      ]
  in
  Tree.elem "text" inline

(* The recursive core: parlist -> listitem -> (text | parlist). *)
let rec parlist rng depth =
  let listitem () =
    if depth > 0 && Prng.float rng 1.0 < 0.3 then
      Tree.elem "listitem" [ parlist rng (depth - 1) ]
    else Tree.elem "listitem" [ text rng ]
  in
  Tree.elem "parlist" (repeat rng ~lo:1 ~hi:3 (fun () -> listitem ()))

let description rng =
  if Prng.float rng 1.0 < 0.6 then Tree.elem "description" [ text rng ]
  else Tree.elem "description" [ parlist rng 2 ]

(* Deterministic fully-nested description: guarantees the deepest
   recursion paths exist at every anchor regardless of seed/scale. *)
let full_description () =
  let text_full = Tree.elem "text" [ Tree.leaf "keyword"; Tree.leaf "bold" ] in
  let rec deep d =
    if d = 0 then Tree.elem "listitem" [ text_full ]
    else
      Tree.elem "listitem"
        [ Tree.elem "parlist" [ deep (d - 1); Tree.elem "listitem" [ text_full ] ] ]
  in
  Tree.elem "description" [ Tree.elem "parlist" [ deep 2 ] ]

let mail rng =
  Tree.elem "mail"
    [ Tree.leaf "from"; Tree.leaf "to"; Tree.leaf "date"; text rng ]

let item rng =
  let mailbox =
    if Prng.float rng 1.0 < 0.35 then
      [ Tree.elem "mailbox" (repeat rng ~lo:1 ~hi:3 (fun () -> mail rng)) ]
    else []
  in
  Tree.elem "item"
    ([ Tree.leaf "location"; Tree.leaf "quantity"; Tree.leaf "name";
       Tree.leaf "payment"; description rng; Tree.leaf "shipping" ]
    @ repeat rng ~lo:1 ~hi:3 (fun () -> Tree.leaf "incategory")
    @ mailbox)

let full_item () =
  Tree.elem "item"
    [
      Tree.leaf "location"; Tree.leaf "quantity"; Tree.leaf "name";
      Tree.leaf "payment"; full_description (); Tree.leaf "shipping";
      Tree.leaf "incategory";
      Tree.elem "mailbox"
        [ Tree.elem "mail"
            [ Tree.leaf "from"; Tree.leaf "to"; Tree.leaf "date";
              Tree.elem "text" [ Tree.leaf "keyword"; Tree.leaf "bold" ] ] ];
    ]

let address rng =
  Tree.elem "address"
    ([ Tree.leaf "street"; Tree.leaf "city"; Tree.leaf "country" ]
    @ maybe rng 0.4 (Tree.leaf "province")
    @ [ Tree.leaf "zipcode" ])

let profile rng =
  Tree.elem "profile"
    (repeat rng ~lo:0 ~hi:3 (fun () -> Tree.leaf "interest")
    @ maybe rng 0.5 (Tree.leaf "education")
    @ maybe rng 0.7 (Tree.leaf "gender")
    @ [ Tree.leaf "business" ]
    @ maybe rng 0.6 (Tree.leaf "age"))

let person rng =
  Tree.elem "person"
    ([ Tree.leaf "name"; Tree.leaf "emailaddress" ]
    @ maybe rng 0.5 (Tree.leaf "phone")
    @ maybe rng 0.3 (Tree.leaf "homepage")
    @ maybe rng 0.4 (Tree.leaf "creditcard")
    @ maybe rng 0.6 (address rng)
    @ maybe rng 0.7 (profile rng)
    @
    if Prng.float rng 1.0 < 0.4 then
      [ Tree.elem "watches"
          (repeat rng ~lo:1 ~hi:4 (fun () -> Tree.leaf "watch")) ]
    else [])

let full_person () =
  Tree.elem "person"
    [
      Tree.leaf "name"; Tree.leaf "emailaddress"; Tree.leaf "phone";
      Tree.leaf "homepage"; Tree.leaf "creditcard";
      Tree.elem "address"
        [ Tree.leaf "street"; Tree.leaf "city"; Tree.leaf "country";
          Tree.leaf "province"; Tree.leaf "zipcode" ];
      Tree.elem "profile"
        [ Tree.leaf "interest"; Tree.leaf "education"; Tree.leaf "gender";
          Tree.leaf "business"; Tree.leaf "age" ];
      Tree.elem "watches" [ Tree.leaf "watch" ];
    ]

let annotation rng =
  Tree.elem "annotation"
    (maybe rng 0.7 (Tree.leaf "author")
    @ [ description rng ]
    @ maybe rng 0.5 (Tree.leaf "happiness"))

let full_annotation () =
  Tree.elem "annotation"
    [ Tree.leaf "author"; full_description (); Tree.leaf "happiness" ]

let bidder () =
  Tree.elem "bidder"
    [ Tree.leaf "date"; Tree.leaf "time"; Tree.leaf "increase" ]

let open_auction rng =
  Tree.elem "open_auction"
    ([ Tree.leaf "initial" ]
    @ maybe rng 0.5 (Tree.leaf "reserve")
    @ repeat rng ~lo:0 ~hi:5 (fun () -> bidder ())
    @ [ Tree.leaf "current" ]
    @ maybe rng 0.4 (Tree.leaf "privacy")
    @ [ Tree.leaf "itemref"; Tree.leaf "seller"; annotation rng;
        Tree.leaf "quantity"; Tree.leaf "type";
        Tree.elem "interval" [ Tree.leaf "start"; Tree.leaf "end" ] ]
    @ maybe rng 0.3 (Tree.leaf "status"))

let full_open_auction () =
  Tree.elem "open_auction"
    [
      Tree.leaf "initial"; Tree.leaf "reserve";
      Tree.elem "bidder"
        [ Tree.leaf "date"; Tree.leaf "time"; Tree.leaf "increase" ];
      Tree.leaf "current"; Tree.leaf "privacy"; Tree.leaf "itemref";
      Tree.leaf "seller"; full_annotation (); Tree.leaf "quantity";
      Tree.leaf "type";
      Tree.elem "interval" [ Tree.leaf "start"; Tree.leaf "end" ];
      Tree.leaf "status";
    ]

let closed_auction rng =
  Tree.elem "closed_auction"
    ([ Tree.leaf "seller"; Tree.leaf "buyer"; Tree.leaf "itemref";
       Tree.leaf "price"; Tree.leaf "date"; Tree.leaf "quantity";
       Tree.leaf "type" ]
    @ maybe rng 0.4 (Tree.leaf "amount")
    @ maybe rng 0.6 (annotation rng))

let full_closed_auction () =
  Tree.elem "closed_auction"
    [
      Tree.leaf "seller"; Tree.leaf "buyer"; Tree.leaf "itemref";
      Tree.leaf "price"; Tree.leaf "date"; Tree.leaf "quantity";
      Tree.leaf "type"; Tree.leaf "amount"; full_annotation ();
    ]

let category rng =
  Tree.elem "category" [ Tree.leaf "name"; description rng ]

let scaled scale base = max 1 (int_of_float (Float.of_int base *. scale))

let generate ?(scale = 1.0) ~seed () =
  let rng = Prng.create seed in
  let regions =
    Tree.elem "regions"
      (List.map
         (fun continent ->
           Tree.elem continent
             (full_item ()
             :: repeat rng ~lo:(scaled scale 1000) ~hi:(scaled scale 1300)
                  (fun () -> item rng)))
         continents)
  in
  let categories =
    Tree.elem "categories"
      (Tree.elem "category" [ Tree.leaf "name"; full_description () ]
      :: repeat rng
           ~lo:(scaled scale 270)
           ~hi:(scaled scale 340)
           (fun () -> category rng))
  in
  let catgraph =
    Tree.elem "catgraph"
      (repeat rng ~lo:(scaled scale 340) ~hi:(scaled scale 410) (fun () ->
           Tree.leaf "edge"))
  in
  let people =
    Tree.elem "people"
      (full_person ()
      :: repeat rng
           ~lo:(scaled scale 5400)
           ~hi:(scaled scale 6100)
           (fun () -> person rng))
  in
  let open_auctions =
    Tree.elem "open_auctions"
      (full_open_auction ()
      :: repeat rng
           ~lo:(scaled scale 2700)
           ~hi:(scaled scale 3100)
           (fun () -> open_auction rng))
  in
  let closed_auctions =
    Tree.elem "closed_auctions"
      (full_closed_auction ()
      :: repeat rng
           ~lo:(scaled scale 2000)
           ~hi:(scaled scale 2400)
           (fun () -> closed_auction rng))
  in
  Tree.elem "site"
    [ regions; categories; catgraph; people; open_auctions; closed_auctions ]
