lib/datasets/dblp.mli: Xpest_xml
