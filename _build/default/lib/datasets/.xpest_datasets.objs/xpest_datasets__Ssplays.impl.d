lib/datasets/ssplays.ml: List Xpest_util Xpest_xml
