lib/datasets/xmark.mli: Xpest_xml
