lib/datasets/registry.mli: Xpest_xml
