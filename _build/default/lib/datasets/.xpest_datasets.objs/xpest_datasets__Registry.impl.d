lib/datasets/registry.ml: Dblp Float Ssplays String Xmark Xpest_xml
