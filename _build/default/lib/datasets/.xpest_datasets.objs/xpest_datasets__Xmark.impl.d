lib/datasets/xmark.ml: Float List Xpest_util Xpest_xml
