lib/datasets/ssplays.mli: Xpest_xml
