lib/datasets/dblp.ml: Array List String Xpest_util Xpest_xml
