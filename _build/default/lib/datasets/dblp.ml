module Tree = Xpest_xml.Tree
module Prng = Xpest_util.Prng

(* Field layout per record type.  The sums are chosen so that the
   number of distinct root-to-leaf paths (dblp/<type>/<field>) is 87,
   matching the profile the paper reports for DBLP (Table 3). *)

type record_type = {
  rtype : string;
  weight : float; (* relative frequency in the mix *)
  lead : string; (* repeated leading field: author or editor *)
  core : string list; (* always present, after the lead fields *)
  optional : string list; (* independently present with probability ~0.45 *)
}

let record_types =
  [
    {
      rtype = "article";
      weight = 40.0;
      lead = "author";
      core = [ "title"; "journal"; "volume"; "year" ];
      optional = [ "pages"; "number"; "month"; "url"; "ee"; "cdrom"; "cite"; "note"; "crossref" ];
    };
    {
      rtype = "inproceedings";
      weight = 45.0;
      lead = "author";
      core = [ "title"; "booktitle"; "year" ];
      optional = [ "pages"; "url"; "ee"; "cdrom"; "cite"; "note"; "crossref"; "month"; "number" ];
    };
    {
      rtype = "proceedings";
      weight = 3.0;
      lead = "editor";
      core = [ "title"; "booktitle"; "publisher"; "year" ];
      optional = [ "isbn"; "series"; "volume"; "url"; "ee"; "address"; "note" ];
    };
    {
      rtype = "book";
      weight = 3.0;
      lead = "author";
      core = [ "editor"; "title"; "publisher"; "year" ];
      optional = [ "isbn"; "series"; "volume"; "url"; "ee"; "cite"; "note"; "month" ];
    };
    {
      rtype = "incollection";
      weight = 4.0;
      lead = "author";
      core = [ "title"; "booktitle"; "year" ];
      optional = [ "pages"; "publisher"; "url"; "ee"; "cite"; "note"; "crossref"; "chapter" ];
    };
    {
      rtype = "phdthesis";
      weight = 1.5;
      lead = "author";
      core = [ "title"; "year"; "school" ];
      optional = [ "publisher"; "isbn"; "url"; "month" ];
    };
    {
      rtype = "mastersthesis";
      weight = 0.5;
      lead = "author";
      core = [ "title"; "year"; "school" ];
      optional = [ "url"; "note" ];
    };
    {
      rtype = "www";
      weight = 3.0;
      lead = "author";
      core = [ "title"; "url" ];
      optional = [ "ee"; "note"; "year"; "crossref"; "cite"; "editor" ];
    };
  ]

let tag_universe =
  let fields =
    List.concat_map (fun rt -> (rt.lead :: rt.core) @ rt.optional) record_types
  in
  List.sort_uniq String.compare (("dblp" :: List.map (fun rt -> rt.rtype) record_types) @ fields)

(* Real DBLP records cluster into a handful of field layouts per type
   (bibliographies are produced by a few tools), which keeps the number
   of distinct path ids low (paper Table 3: 327 for DBLP).  We draw a
   small per-type set of optional-field profiles once, then records
   pick a profile with Zipf-skewed popularity. *)
let make_profiles rng rt =
  let subset () = List.filter (fun _ -> Prng.float rng 1.0 < 0.45) rt.optional in
  Array.init 8 (fun i -> if i = 0 then rt.optional else subset ())

let record rng rt profiles =
  let leads =
    List.init
      (1 + Prng.geometric rng 0.45)
      (fun _ -> Tree.leaf rt.lead)
  in
  let profile = profiles.(Prng.zipf rng (Array.length profiles) 1.2 - 1) in
  let opts =
    List.concat_map
      (fun f ->
        if String.equal f "cite" then
          (* citations repeat, adding same-tag sibling runs *)
          List.init (1 + Prng.int rng 3) (fun _ -> Tree.leaf f)
        else [ Tree.leaf f ])
      profile
  in
  Tree.elem rt.rtype (leads @ List.map Tree.leaf rt.core @ opts)

(* One record per type with every field present, so that all 87 root-
   to-leaf paths occur regardless of seed or scale. *)
let coverage_records =
  List.map
    (fun rt ->
      Tree.elem rt.rtype
        (List.map Tree.leaf ((rt.lead :: rt.core) @ rt.optional)))
    record_types

let generate ?(records = 180_000) ~seed () =
  let rng = Prng.create seed in
  let weighted =
    Array.of_list (List.map (fun rt -> (rt, rt.weight)) record_types)
  in
  let profiles =
    List.map (fun rt -> (rt.rtype, make_profiles rng rt)) record_types
  in
  let body =
    List.init records (fun _ ->
        let rt = Prng.choose_weighted rng weighted in
        record rng rt (List.assoc rt.rtype profiles))
  in
  (* scatter the coverage records across the body: clustering them at
     the front would skew every sibling-order statistic involving a
     rare record type *)
  let all = Array.of_list (coverage_records @ body) in
  Prng.shuffle rng all;
  Tree.elem "dblp" (Array.to_list all)
