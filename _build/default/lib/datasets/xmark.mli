(** Synthetic XMark auction site.

    Mirrors the structural profile of the XMark benchmark document in
    the paper (Table 1: 20.4 MB, 74 distinct tags, 319,815 elements,
    344 distinct root-to-leaf paths): six regional item collections,
    people, categories and open/closed auctions, with the recursive
    [description / parlist / listitem] subtree that multiplies distinct
    paths and makes XMark's path ids long (Table 3). *)

val tag_universe : string list
(** The 74 element tags the generator can emit. *)

val generate : ?scale:float -> seed:int -> unit -> Xpest_xml.Tree.t
(** [generate ~seed ()] builds the auction site.  [scale] (default
    [1.0]) multiplies all collection cardinalities; the default yields
    on the order of 300k elements.  Deterministic in [seed] and
    [scale]. *)
