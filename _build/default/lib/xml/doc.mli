(** Frozen ordered XML documents.

    A document freezes a {!Tree.t} into struct-of-arrays form keyed by
    pre-order (= document-order) node identifiers, supporting the
    traversals the labeler, the ground-truth evaluator and the
    statistics collectors need: parent/child navigation, per-tag node
    lists, ancestor tests in O(1), and sibling positions. *)

type node = int
(** Node identifier = pre-order rank; the root is node [0].
    Comparing identifiers compares document order. *)

type t

val of_tree : Tree.t -> t

val size : t -> int
(** Number of element nodes. *)

val root : t -> node

val tag : t -> node -> string
val tag_code : t -> node -> int
(** Dense integer code for the node's tag ([0 .. num_tags - 1]). *)

val num_tags : t -> int
val tag_name : t -> int -> string
(** @raise Invalid_argument if the code is out of range. *)

val code_of_tag : t -> string -> int option
val tags : t -> string array
(** All tag names indexed by code. *)

val parent : t -> node -> node option
val children : t -> node -> node list
val first_child : t -> node -> node option
val next_sibling : t -> node -> node option
val prev_sibling : t -> node -> node option

val sibling_pos : t -> node -> int
(** 0-based position among the parent's children (0 for the root). *)

val post : t -> node -> int
(** Post-order rank. *)

val is_leaf : t -> node -> bool

val is_ancestor : t -> anc:node -> desc:node -> bool
(** Strict ancestorship via pre/post intervals. *)

val subtree_last : t -> node -> node
(** Largest (pre-order) node id inside [n]'s subtree, [n] included;
    the subtree of [n] is exactly the id interval
    [\[n, subtree_last n\]]. *)

val depth : t -> node -> int
(** Number of nodes on the root-to-node chain ([1] for the root). *)

val max_depth : t -> int

val nodes_with_tag : t -> string -> node array
(** Document-ordered ids of all nodes with the given tag; [|]| if the
    tag does not occur.  The returned array is shared: do not mutate. *)

val nodes_with_tag_code : t -> int -> node array

val iter : t -> (node -> unit) -> unit
(** Pre-order (document order) iteration. *)

val path_to : t -> node -> string list
(** Tags on the root-to-node chain, root first. *)

val to_tree : t -> Tree.t
(** Reconstruct the constructor form (inverse of {!of_tree}). *)

val serialized_byte_size : t -> int
(** Length of the indented XML serialization, computed analytically;
    equals [Printer.byte_size (to_tree doc)] without materializing
    anything (tests assert the equality).  This is the "document size"
    of the paper's Table 1. *)
