(** A from-scratch parser for the XML subset the estimation system
    consumes.

    Handles: element nesting, attributes (parsed and discarded),
    self-closing tags, character data (discarded), comments, CDATA
    sections, processing instructions, DOCTYPE declarations and
    standard entity references inside discarded text.  Namespaces are
    treated as part of the tag name.  The estimator is purely
    structural, so everything except the element skeleton is dropped.

    This is not a conforming XML processor; it accepts the documents
    produced by {!Printer} and by common dataset dumps (Shakespeare,
    DBLP, XMark style). *)

exception Syntax_error of { position : int; message : string }
(** [position] is a 0-based byte offset into the input. *)

val parse_string : string -> Tree.t
(** @raise Syntax_error on malformed input (including mismatched or
    missing tags and trailing non-whitespace content). *)

val parse_file : string -> Tree.t
(** Reads the whole file then delegates to {!parse_string}.
    @raise Sys_error on I/O failure. *)
