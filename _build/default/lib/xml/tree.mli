(** Constructor-style ordered XML element trees.

    This is the lightweight representation used while *building*
    documents (generators, parser).  Analysis and estimation work on
    the frozen {!Doc.t} form.  Only element structure is modeled:
    the estimation system of the paper is purely structural, so
    attributes and character data are dropped at parse time. *)

type t = E of string * t list
(** [E (tag, children)]; children are in document (sibling) order. *)

val elem : string -> t list -> t
(** [elem tag children] is [E (tag, children)]. *)

val leaf : string -> t
(** [leaf tag] is [E (tag, [])]. *)

val tag : t -> string
val children : t -> t list

val size : t -> int
(** Number of element nodes. *)

val depth : t -> int
(** Length of the longest root-to-leaf node chain ([1] for a leaf). *)

val distinct_tags : t -> string list
(** Sorted list of distinct element tags. *)

val root_to_leaf_paths : t -> string list list
(** Distinct root-to-leaf tag sequences in first-occurrence order —
    the raw material of the paper's encoding table (Section 2). *)

val fold : ('a -> string -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over tags. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** One-line s-expression-ish rendering for debugging. *)
