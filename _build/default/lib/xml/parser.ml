exception Syntax_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let error st message = raise (Syntax_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input
  && String.sub st.input st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else error st (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Skip until [stop] (inclusive); for comments, CDATA, PIs, DOCTYPE. *)
let skip_until st stop =
  match
    if String.length stop = 0 then None
    else
      let rec search from =
        if from + String.length stop > String.length st.input then None
        else if String.sub st.input from (String.length stop) = stop then Some from
        else search (from + 1)
      in
      search st.pos
  with
  | Some at -> st.pos <- at + String.length stop
  | None -> error st (Printf.sprintf "unterminated construct, expected %S" stop)

(* DOCTYPE may contain a bracketed internal subset. *)
let skip_doctype st =
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> error st "unterminated DOCTYPE"
    | Some '[' ->
        incr depth;
        advance st
    | Some ']' ->
        decr depth;
        advance st
    | Some '>' when !depth = 0 ->
        advance st;
        continue := false
    | Some _ -> advance st
  done

let parse_attribute st =
  let (_ : string) = parse_name st in
  skip_spaces st;
  (match peek st with
  | Some '=' -> (
      advance st;
      skip_spaces st;
      match peek st with
      | Some (('"' | '\'') as quote) ->
          advance st;
          let rec skip () =
            match peek st with
            | Some c when c = quote -> advance st
            | Some _ ->
                advance st;
                skip ()
            | None -> error st "unterminated attribute value"
          in
          skip ()
      | _ -> error st "expected quoted attribute value")
  | _ -> error st "expected '=' after attribute name")

(* Parse the inside of a start tag after the name; returns true if the
   element is self-closing. *)
let parse_tag_tail st =
  let rec loop () =
    skip_spaces st;
    match peek st with
    | Some '>' ->
        advance st;
        false
    | Some '/' ->
        advance st;
        expect st ">";
        true
    | Some c when is_name_start c ->
        parse_attribute st;
        loop ()
    | Some c -> error st (Printf.sprintf "unexpected %C in tag" c)
    | None -> error st "unterminated tag"
  in
  loop ()

(* Skip misc content between/inside elements: text, comments, CDATA,
   PIs.  Stops at '<' that begins a start or end tag, or at EOF. *)
let rec skip_misc st =
  match peek st with
  | None -> ()
  | Some '<' ->
      if looking_at st "<!--" then begin
        st.pos <- st.pos + 4;
        skip_until st "-->";
        skip_misc st
      end
      else if looking_at st "<![CDATA[" then begin
        st.pos <- st.pos + 9;
        skip_until st "]]>";
        skip_misc st
      end
      else if looking_at st "<?" then begin
        st.pos <- st.pos + 2;
        skip_until st "?>";
        skip_misc st
      end
      else if looking_at st "<!DOCTYPE" then begin
        st.pos <- st.pos + 9;
        skip_doctype st;
        skip_misc st
      end
      else () (* start or end tag: caller handles *)
  | Some _ ->
      advance st;
      skip_misc st

let rec parse_element st =
  expect st "<";
  let name = parse_name st in
  let self_closing = parse_tag_tail st in
  if self_closing then Tree.E (name, [])
  else begin
    let children = ref [] in
    let rec content () =
      skip_misc st;
      if looking_at st "</" then begin
        st.pos <- st.pos + 2;
        let close = parse_name st in
        if not (String.equal close name) then
          error st
            (Printf.sprintf "mismatched end tag: expected </%s>, got </%s>" name
               close);
        skip_spaces st;
        expect st ">"
      end
      else if looking_at st "<" then begin
        children := parse_element st :: !children;
        content ()
      end
      else error st (Printf.sprintf "unterminated element <%s>" name)
    in
    content ();
    Tree.E (name, List.rev !children)
  end

(* Between the prolog/epilog only whitespace, comments, PIs and DOCTYPE
   are allowed; bare text there is an error. *)
let rec skip_prolog st =
  skip_spaces st;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    skip_until st "-->";
    skip_prolog st
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    skip_until st "?>";
    skip_prolog st
  end
  else if looking_at st "<!DOCTYPE" then begin
    st.pos <- st.pos + 9;
    skip_doctype st;
    skip_prolog st
  end

let parse_string input =
  let st = { input; pos = 0 } in
  skip_prolog st;
  if not (looking_at st "<") then error st "expected a root element";
  let tree = parse_element st in
  skip_prolog st;
  if st.pos < String.length input then error st "trailing content after root element";
  tree

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))
