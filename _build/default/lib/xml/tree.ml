type t = E of string * t list

let elem tag children = E (tag, children)
let leaf tag = E (tag, [])
let tag (E (t, _)) = t
let children (E (_, cs)) = cs

let rec size (E (_, cs)) = List.fold_left (fun acc c -> acc + size c) 1 cs

let rec depth (E (_, cs)) =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let rec fold f acc (E (tag, cs)) =
  List.fold_left (fold f) (f acc tag) cs

let distinct_tags t =
  let module S = Set.Make (String) in
  S.elements (fold (fun s tag -> S.add tag s) S.empty t)

let root_to_leaf_paths t =
  (* Collect distinct paths in first-occurrence order so that path
     encodings are stable across runs. *)
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec go prefix (E (tag, cs)) =
    let prefix = tag :: prefix in
    match cs with
    | [] ->
        let path = List.rev prefix in
        if not (Hashtbl.mem seen path) then begin
          Hashtbl.add seen path ();
          out := path :: !out
        end
    | _ -> List.iter (go prefix) cs
  in
  go [] t;
  List.rev !out

let rec equal (E (t1, cs1)) (E (t2, cs2)) =
  String.equal t1 t2
  && List.length cs1 = List.length cs2
  && List.for_all2 equal cs1 cs2

let rec pp ppf (E (tag, cs)) =
  match cs with
  | [] -> Format.fprintf ppf "%s" tag
  | _ ->
      Format.fprintf ppf "%s(%a)" tag
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp)
        cs
