type node = int

type t = {
  tag_codes : int array;
  tag_names : string array;
  code_of_tag : (string, int) Hashtbl.t;
  parents : int array; (* -1 for the root *)
  first_children : int array; (* -1 if leaf *)
  next_siblings : int array; (* -1 if last child *)
  prev_siblings : int array; (* -1 if first child *)
  sibling_positions : int array;
  posts : int array;
  depths : int array;
  by_tag : int array array; (* tag code -> document-ordered node ids *)
  subtree_lasts : int array;
}

let of_tree tree =
  let n = Tree.size tree in
  let tag_codes = Array.make n 0 in
  let parents = Array.make n (-1) in
  let first_children = Array.make n (-1) in
  let next_siblings = Array.make n (-1) in
  let prev_siblings = Array.make n (-1) in
  let sibling_positions = Array.make n 0 in
  let posts = Array.make n 0 in
  let depths = Array.make n 0 in
  let subtree_lasts = Array.make n 0 in
  let code_of_tag = Hashtbl.create 64 in
  let tag_names = ref [] in
  let num_tags = ref 0 in
  let intern tag =
    match Hashtbl.find_opt code_of_tag tag with
    | Some c -> c
    | None ->
        let c = !num_tags in
        Hashtbl.add code_of_tag tag c;
        tag_names := tag :: !tag_names;
        incr num_tags;
        c
  in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  (* Recursion depth is bounded by tree depth, which stays small (<100)
     for every dataset this system targets. *)
  let rec assign parent depth sib_pos prev_sib (Tree.E (tag, cs)) =
    let me = !next_pre in
    incr next_pre;
    tag_codes.(me) <- intern tag;
    parents.(me) <- parent;
    depths.(me) <- depth;
    sibling_positions.(me) <- sib_pos;
    prev_siblings.(me) <- prev_sib;
    (if prev_sib >= 0 then next_siblings.(prev_sib) <- me);
    (if sib_pos = 0 && parent >= 0 then first_children.(parent) <- me);
    let _last_child =
      List.fold_left
        (fun (pos, prev) c ->
          let child = assign me (depth + 1) pos prev c in
          (pos + 1, child))
        (0, -1) cs
    in
    posts.(me) <- !next_post;
    incr next_post;
    subtree_lasts.(me) <- !next_pre - 1;
    me
  in
  let (_ : int) = assign (-1) 1 0 (-1) tree in
  let tag_names = Array.of_list (List.rev !tag_names) in
  let counts = Array.make (Array.length tag_names) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) tag_codes;
  let by_tag = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (Array.length tag_names) 0 in
  Array.iteri
    (fun node c ->
      by_tag.(c).(fill.(c)) <- node;
      fill.(c) <- fill.(c) + 1)
    tag_codes;
  {
    tag_codes;
    tag_names;
    code_of_tag;
    parents;
    first_children;
    next_siblings;
    prev_siblings;
    sibling_positions;
    posts;
    depths;
    by_tag;
    subtree_lasts;
  }

let size d = Array.length d.tag_codes
let root (_ : t) = 0
let tag_code d n = d.tag_codes.(n)
let tag d n = d.tag_names.(d.tag_codes.(n))
let num_tags d = Array.length d.tag_names

let tag_name d c =
  if c < 0 || c >= Array.length d.tag_names then
    invalid_arg "Doc.tag_name: code out of range";
  d.tag_names.(c)

let code_of_tag d tag = Hashtbl.find_opt d.code_of_tag tag
let tags d = Array.copy d.tag_names
let parent d n = if d.parents.(n) < 0 then None else Some d.parents.(n)

let children d n =
  let rec collect c acc =
    if c < 0 then List.rev acc else collect d.next_siblings.(c) (c :: acc)
  in
  collect d.first_children.(n) []

let first_child d n = if d.first_children.(n) < 0 then None else Some d.first_children.(n)
let next_sibling d n = if d.next_siblings.(n) < 0 then None else Some d.next_siblings.(n)
let prev_sibling d n = if d.prev_siblings.(n) < 0 then None else Some d.prev_siblings.(n)
let sibling_pos d n = d.sibling_positions.(n)
let post d n = d.posts.(n)
let is_leaf d n = d.first_children.(n) < 0

let is_ancestor d ~anc ~desc = anc < desc && d.posts.(anc) > d.posts.(desc)

let subtree_last d n = d.subtree_lasts.(n)
let depth d n = d.depths.(n)
let max_depth d = Array.fold_left max 0 d.depths

let nodes_with_tag d tag =
  match Hashtbl.find_opt d.code_of_tag tag with
  | None -> [||]
  | Some c -> d.by_tag.(c)

let nodes_with_tag_code d c = d.by_tag.(c)

let iter d f =
  for n = 0 to size d - 1 do
    f n
  done

let path_to d n =
  let rec up n acc = if n < 0 then acc else up d.parents.(n) (tag d n :: acc) in
  up n []

let to_tree d =
  let rec build n = Tree.E (tag d n, List.map build (children d n)) in
  build 0

let serialized_byte_size d =
  (* Mirrors Printer's indented format: a leaf renders as "<tag/>\n"
     with a 2-space-per-level indent; an internal node adds "<tag>\n"
     and "</tag>\n" lines, both indented. *)
  let total = ref 0 in
  iter d (fun n ->
      let pad = 2 * (d.depths.(n) - 1) in
      let len = String.length (tag d n) in
      total :=
        !total + (if is_leaf d n then pad + len + 4 else (2 * pad) + (2 * len) + 7));
  !total
