lib/xml/doc.ml: Array Hashtbl List String Tree
