lib/xml/tree.ml: Format Hashtbl List Set String
