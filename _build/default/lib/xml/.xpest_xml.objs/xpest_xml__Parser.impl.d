lib/xml/parser.ml: Fun List Printf String Tree
