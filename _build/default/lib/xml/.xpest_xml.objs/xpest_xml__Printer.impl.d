lib/xml/printer.ml: Buffer Fun List Printf String Tree
