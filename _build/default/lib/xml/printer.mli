(** XML serialization of element trees. *)

val to_string : ?indent:bool -> Tree.t -> string
(** Serialize a tree.  With [indent] (default [true]) each element
    starts on its own line, indented two spaces per depth; without it
    the output is a single line.  Output is always re-parseable by
    {!Parser.parse_string}. *)

val to_file : ?indent:bool -> string -> Tree.t -> unit
(** [to_file path tree] writes {!to_string} with an XML declaration.
    @raise Sys_error on I/O failure. *)

val byte_size : Tree.t -> int
(** Length in bytes of the indented serialization — the "document
    size" reported in Table 1 without materializing intermediate
    strings repeatedly. *)
