let render ~indent emit tree =
  let rec go depth (Tree.E (tag, cs)) =
    let pad = if indent then String.make (2 * depth) ' ' else "" in
    let nl = if indent then "\n" else "" in
    match cs with
    | [] -> emit (Printf.sprintf "%s<%s/>%s" pad tag nl)
    | _ ->
        emit (Printf.sprintf "%s<%s>%s" pad tag nl);
        List.iter (go (depth + 1)) cs;
        emit (Printf.sprintf "%s</%s>%s" pad tag nl)
  in
  go 0 tree

let to_string ?(indent = true) tree =
  let buf = Buffer.create 4096 in
  render ~indent (Buffer.add_string buf) tree;
  Buffer.contents buf

let to_file ?(indent = true) path tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\"?>\n";
      render ~indent (output_string oc) tree)

let byte_size tree =
  let n = ref 0 in
  render ~indent:true (fun s -> n := !n + String.length s) tree;
  !n
