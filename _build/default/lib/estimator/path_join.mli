(** The path (id) join (paper Section 4).

    Given a query shape, every query node starts with the full pid row
    of its tag from the p-histogram.  Pids are then pruned to a
    fixpoint: a pid survives an adjacent query edge (X, axis, Y) only
    if it has a partner on the other side such that (a) the partner
    relation [Pid_X ⊒ Pid_Y] holds (path-id containment, Section 2)
    and (b) the two tags stand in the axis's relation (parent-child
    adjacency for [/], ancestor order for [//]) on at least one shared
    root-to-leaf path.  Because [Pid_Y ⊆ Pid_X], the shared paths are
    exactly [Pid_Y]'s bits, so (b) only depends on the descendant-side
    pid; the implementation precomputes it per pid.

    An anchored head step ([/n1] from the document node) keeps only
    the document root's pid on a matching tag. *)

type t
(** Join machinery for one summary; holds the tag-relationship cache
    shared across queries. *)

val create : ?chain_pruning:bool -> Xpest_synopsis.Summary.t -> t
(** [chain_pruning] (default true) additionally prunes each node's
    pids by full-chain embeddability into the pid's path types before
    the pairwise fixpoint — see DESIGN.md "known deviations"; pass
    [false] to reproduce the paper's literal pairwise join (the A2
    ablation). *)

type result

val run : t -> Xpest_xpath.Pattern.shape -> result
(** Runs the join to fixpoint.  [Ordered] shapes are joined through
    their order-free counterpart (order axes do not constrain pids). *)

val pids :
  result -> Xpest_xpath.Pattern.position -> (Xpest_util.Bitvec.t * float) list
(** Surviving pids of a query node with their frequency estimates.
    For [Ordered] shapes, use the original positions ([In_first] /
    [In_second]); they are translated internally.
    @raise Invalid_argument if the position is not in the shape. *)

val frequency : result -> Xpest_xpath.Pattern.position -> float
(** [f_Q(n)]: the summed frequency of the surviving pids. *)
