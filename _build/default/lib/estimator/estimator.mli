(** Selectivity estimation for the full query fragment (paper
    Sections 4 and 5).

    - Simple queries: Theorem 4.1 — the joined frequency is the
      selectivity.
    - Branch queries, target on the trunk: joined frequency.
    - Branch queries, target on a branch/tail: Equation (2) under the
      Node Independence Assumption.
    - Order queries (sibling axes): Equations (3) and (4) under the
      Node Order Uniformity and Node Containment Uniformity
      Assumptions, reading the o-histogram for the sibling heads;
      Equation (5) (a min over upper bounds) for trunk targets.
    - [following] / [preceding] axes: converted into sets of
      sibling-axis queries along the encoding-table gap between the
      trunk tag and the target head (paper Example 5.3), summing the
      per-conversion estimates. *)

type t

val create : ?chain_pruning:bool -> Xpest_synopsis.Summary.t -> t
(** Estimation caches (tag relationships) persist across queries.
    [chain_pruning] is forwarded to {!Path_join.create}. *)

val summary : t -> Xpest_synopsis.Summary.t

val estimate : t -> Xpest_xpath.Pattern.t -> float
(** Estimated selectivity of the pattern's target node.  Always
    non-negative and finite; 0 when the join empties a required node
    or a ratio denominator vanishes. *)

val estimate_position : t -> Xpest_xpath.Pattern.t -> Xpest_xpath.Pattern.position -> float
(** Estimate for an arbitrary node of the pattern (ignoring the
    pattern's own target designation).
    @raise Invalid_argument if the position is not in the pattern. *)

type explanation = {
  value : float;  (** same value [estimate] returns *)
  derivation : string list;
      (** one human-readable line per estimation step: which theorem /
          equation fired and with which intermediate quantities *)
}

val explain : t -> Xpest_xpath.Pattern.t -> explanation
(** Like {!estimate} but records the derivation.  Not reentrant: one
    [explain] at a time per estimator. *)
