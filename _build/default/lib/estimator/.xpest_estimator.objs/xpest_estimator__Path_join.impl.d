lib/estimator/path_join.ml: Array Fun Hashtbl List String Xpest_encoding Xpest_synopsis Xpest_util Xpest_xpath
