lib/estimator/estimator.mli: Xpest_synopsis Xpest_xpath
