lib/estimator/estimator.ml: Float Fun List Path_join Printf String Xpest_encoding Xpest_synopsis Xpest_util Xpest_xpath
