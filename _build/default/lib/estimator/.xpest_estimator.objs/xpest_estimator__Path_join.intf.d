lib/estimator/path_join.mli: Xpest_synopsis Xpest_util Xpest_xpath
