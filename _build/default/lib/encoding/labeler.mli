(** Path-id assignment (paper Section 2).

    Every element node gets a path id: a bitvector with one bit per
    distinct root-to-leaf path.  A leaf's path id has exactly the bit
    of the path it sits on; an internal node's path id is the bit-or of
    its children's path ids.  Path ids repeat massively across nodes
    (a few hundred distinct values for millions of nodes), so the
    labeler interns them: each node stores a small integer index into
    the table of distinct path ids. *)

type t

val label : Xpest_xml.Doc.t -> Encoding_table.t -> t
(** Single bottom-up pass over the document.

    @raise Invalid_argument if the table does not cover some leaf path
    of the document (i.e. it was built from a different document). *)

val doc : t -> Xpest_xml.Doc.t
val table : t -> Encoding_table.t

val pid : t -> Xpest_xml.Doc.node -> Xpest_util.Bitvec.t
(** The node's path id. *)

val pid_index : t -> Xpest_xml.Doc.node -> int
(** Interned index of the node's path id, [0 .. num_distinct - 1]. *)

val distinct_pids : t -> Xpest_util.Bitvec.t array
(** All distinct path ids, indexed by interned index.  Shared array —
    do not mutate. *)

val num_distinct : t -> int

val index_of_pid : t -> Xpest_util.Bitvec.t -> int option
(** Interned index of a path id value; [None] if no node carries it. *)

val pid_bit_width : t -> int
(** Width of every path id = number of distinct root-to-leaf paths. *)

val pid_byte_size : t -> int
(** Bytes to store one path id: [ceil (width / 8)] (Table 3). *)

val pid_table_byte_size : t -> int
(** Modeled size of the path-id table: [num_distinct * pid_byte_size]
    (Table 3 accounting). *)
