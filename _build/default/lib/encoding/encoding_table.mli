(** The encoding table of the path encoding scheme (paper Section 2).

    Each distinct root-to-leaf path of the document (a sequence of
    element tags, root first) is assigned an integer encoding.
    Encodings are 1-based and dense: [1 .. num_paths], assigned in
    first document-occurrence order so they are deterministic for a
    given document.  Path id bit positions are [encoding - 1]. *)

type t

type path = string list
(** A root-to-leaf tag sequence, root first.  Never empty. *)

val build : Xpest_xml.Doc.t -> t

val of_paths : path list -> t
(** Build directly from a path list (duplicates ignored); for tests. *)

val num_paths : t -> int

val path_of_encoding : t -> int -> path
(** @raise Invalid_argument if the encoding is not in [1 .. num_paths]. *)

val encoding_of_path : t -> path -> int option

val paths : t -> path list
(** All paths in encoding order (encoding 1 first). *)

val tags_on_path : t -> encoding:int -> anc:string -> desc:string ->
  [ `Parent_child | `Ancestor_descendant | `Neither ]
(** Relationship of two tags on one root-to-leaf path: [`Parent_child]
    if some occurrence of [anc] is immediately followed by [desc],
    [`Ancestor_descendant] if some occurrence of [anc] strictly
    precedes [desc] only non-adjacently, [`Neither] otherwise.
    [`Parent_child] implies the ancestor-descendant relation holds
    too. *)

val axis_holds :
  t -> encoding:int -> axis:[ `Child | `Descendant ] -> anc:string ->
  desc:string -> bool
(** [`Child] requires adjacency; [`Descendant] any strict precedence
    (adjacent included). *)

val gap_tags :
  t -> encoding:int -> anc:string -> desc:string -> string list list
(** All tag sequences strictly between an occurrence of [anc] and a
    later occurrence of [desc] on the path (shortest first).  Used to
    convert [following]/[preceding] queries into sibling-axis queries
    (paper Example 5.3: the gap between [A] and [D] on path
    [Root/A/B/D] is [\[B\]]). *)

val byte_size : t -> int
(** Modeled storage: tag bytes per path plus 4 bytes per encoding
    integer (Table 3 accounting). *)
