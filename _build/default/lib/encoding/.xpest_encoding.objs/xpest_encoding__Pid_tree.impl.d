lib/encoding/pid_tree.ml: Array Hashtbl List Printf String Xpest_util
