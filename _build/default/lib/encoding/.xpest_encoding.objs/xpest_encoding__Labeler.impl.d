lib/encoding/labeler.ml: Array Encoding_table Hashtbl List Xpest_util Xpest_xml
