lib/encoding/encoding_table.ml: Array Hashtbl Int List Printf String Xpest_xml
