lib/encoding/pid_tree.mli: Xpest_util
