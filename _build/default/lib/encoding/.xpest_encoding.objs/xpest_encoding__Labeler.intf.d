lib/encoding/labeler.mli: Encoding_table Xpest_util Xpest_xml
