lib/encoding/encoding_table.mli: Xpest_xml
