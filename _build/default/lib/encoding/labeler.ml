module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec

module Pid_table = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

type t = {
  doc : Doc.t;
  table : Encoding_table.t;
  node_pid : int array; (* node -> interned pid index *)
  pids : Bitvec.t array; (* interned index -> path id *)
  index_of : int Pid_table.t; (* path id -> interned index *)
}

let label doc table =
  let n = Doc.size doc in
  let width = Encoding_table.num_paths table in
  let node_pid = Array.make n (-1) in
  let intern_tbl = Pid_table.create 256 in
  (* Growable store of interned pids so intermediate lookups can be
     made during the bottom-up pass. *)
  let store = ref (Array.make 256 (Bitvec.zero 0)) in
  let count = ref 0 in
  let intern pid =
    match Pid_table.find_opt intern_tbl pid with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        if i >= Array.length !store then begin
          let bigger = Array.make (2 * Array.length !store) (Bitvec.zero 0) in
          Array.blit !store 0 bigger 0 (Array.length !store);
          store := bigger
        end;
        !store.(i) <- pid;
        Pid_table.add intern_tbl pid i;
        i
  in
  (* Children have larger pre-order ids than their parent, so a
     descending scan is a bottom-up pass. *)
  for node = n - 1 downto 0 do
    let pid =
      if Doc.is_leaf doc node then
        match Encoding_table.encoding_of_path table (Doc.path_to doc node) with
        | Some e -> Bitvec.singleton width (e - 1)
        | None ->
            invalid_arg
              "Labeler.label: encoding table does not cover this document"
      else
        List.fold_left
          (fun acc child -> Bitvec.logor acc !store.(node_pid.(child)))
          (Bitvec.zero width) (Doc.children doc node)
    in
    node_pid.(node) <- intern pid
  done;
  { doc; table; node_pid; pids = Array.sub !store 0 !count; index_of = intern_tbl }

let doc t = t.doc
let table t = t.table
let pid_index t node = t.node_pid.(node)
let pid t node = t.pids.(t.node_pid.(node))
let distinct_pids t = t.pids
let num_distinct t = Array.length t.pids
let index_of_pid t pid = Pid_table.find_opt t.index_of pid
let pid_bit_width t = Encoding_table.num_paths t.table
let pid_byte_size t = max 1 ((pid_bit_width t + 7) / 8)
let pid_table_byte_size t = num_distinct t * pid_byte_size t
