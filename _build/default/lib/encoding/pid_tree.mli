(** The path-id binary tree index (paper Section 6).

    Distinct path ids are bit sequences; the tree is a binary trie over
    them (left edge = bit 0, right edge = 1).  Each leaf holds the
    integer id of one path id; leaves are numbered [1 .. n] left to
    right, i.e. in lexicographic bit-string order, and each internal
    node carries the largest leaf id of its left subtree (or one less
    than the smallest id of its right subtree when the left is empty),
    so that navigating "left if [id <= node id], else right" finds any
    leaf.

    The trie is then losslessly compressed: a subtree consisting only
    of left (resp. right) edges encodes an all-zero (resp. all-one) bit
    suffix, so it is replaced by a marker; lookups reconstruct the
    suffix by padding. *)

type t

val build : Xpest_util.Bitvec.t list -> t
(** Build from the distinct path ids (duplicates ignored).
    @raise Invalid_argument on empty input, zero-width vectors, or
    mixed widths. *)

val num_pids : t -> int
val bit_width : t -> int

val id_of_pid : t -> Xpest_util.Bitvec.t -> int option
(** The integer id of a path id ([1 .. num_pids]); [None] if the
    vector is not in the tree. *)

val pid_of_id : t -> int -> Xpest_util.Bitvec.t
(** Reconstruct the bit sequence by navigating the compressed tree.
    @raise Invalid_argument if the id is out of range. *)

val uncompressed_node_count : t -> int
val node_count : t -> int
(** Nodes remaining after compression. *)

val byte_size : t -> int
(** Modeled storage of the compressed tree: 5 bytes per remaining node
    (4-byte id + tag/pointer byte).  Table 3 accounting. *)

val uncompressed_byte_size : t -> int
