module Doc = Xpest_xml.Doc

type path = string list

type t = {
  by_encoding : path array; (* index i holds the path with encoding i+1 *)
  by_path : (path, int) Hashtbl.t;
}

let of_paths paths =
  let by_path = Hashtbl.create 64 in
  let distinct = ref [] in
  let count = ref 0 in
  List.iter
    (fun p ->
      if p = [] then invalid_arg "Encoding_table.of_paths: empty path";
      if not (Hashtbl.mem by_path p) then begin
        incr count;
        Hashtbl.add by_path p !count;
        distinct := p :: !distinct
      end)
    paths;
  { by_encoding = Array.of_list (List.rev !distinct); by_path }

let build doc =
  (* Collect distinct root-to-leaf paths in document order. *)
  let acc = ref [] in
  Doc.iter doc (fun n ->
      if Doc.is_leaf doc n then acc := Doc.path_to doc n :: !acc);
  of_paths (List.rev !acc)

let num_paths t = Array.length t.by_encoding

let path_of_encoding t e =
  if e < 1 || e > num_paths t then
    invalid_arg (Printf.sprintf "Encoding_table.path_of_encoding: %d" e);
  t.by_encoding.(e - 1)

let encoding_of_path t p = Hashtbl.find_opt t.by_path p

let paths t = Array.to_list t.by_encoding

let tags_on_path t ~encoding ~anc ~desc =
  let path = Array.of_list (path_of_encoding t encoding) in
  let n = Array.length path in
  let adjacent = ref false and strict = ref false in
  for i = 0 to n - 1 do
    if String.equal path.(i) anc then
      for j = i + 1 to n - 1 do
        if String.equal path.(j) desc then begin
          if j = i + 1 then adjacent := true else strict := true
        end
      done
  done;
  if !adjacent then `Parent_child
  else if !strict then `Ancestor_descendant
  else `Neither

let axis_holds t ~encoding ~axis ~anc ~desc =
  match (axis, tags_on_path t ~encoding ~anc ~desc) with
  | `Child, `Parent_child -> true
  | `Child, (`Ancestor_descendant | `Neither) -> false
  | `Descendant, (`Parent_child | `Ancestor_descendant) -> true
  | `Descendant, `Neither -> false

let gap_tags t ~encoding ~anc ~desc =
  let path = Array.of_list (path_of_encoding t encoding) in
  let n = Array.length path in
  let gaps = ref [] in
  for i = 0 to n - 1 do
    if String.equal path.(i) anc then
      for j = i + 1 to n - 1 do
        if String.equal path.(j) desc then
          let gap = Array.to_list (Array.sub path (i + 1) (j - i - 1)) in
          if not (List.mem gap !gaps) then gaps := gap :: !gaps
      done
  done;
  List.sort
    (fun a b -> Int.compare (List.length a) (List.length b))
    (List.rev !gaps)

let byte_size t =
  Array.fold_left
    (fun acc path ->
      acc + 4 + List.fold_left (fun a tag -> a + String.length tag + 1) 0 path)
    0 t.by_encoding
