module Bitvec = Xpest_util.Bitvec

type node =
  | Leaf of int
  | Node of { id : int; left : node; right : node }
  | Absent
  | Zeros of int (* compressed: all-0 suffix leading to this leaf id *)
  | Ones of int (* compressed: all-1 suffix *)

type t = {
  root : node;
  width : int;
  pids : Bitvec.t array; (* index i = path id with integer id i+1 *)
  ids : (Bitvec.t, int) Hashtbl.t;
  uncompressed_nodes : int;
  compressed_nodes : int;
}

(* Lexicographic bit-string order: 0 before 1, position 0 first. *)
let lex_compare a b = String.compare (Bitvec.to_string a) (Bitvec.to_string b)

let rec build_trie ~width ~depth items =
  match items with
  | [] -> Absent
  | [ (pid, id) ] when depth = width ->
      ignore pid;
      Leaf id
  | _ when depth >= width ->
      invalid_arg "Pid_tree.build: duplicate bit sequences"
  | _ ->
      let zeros, ones =
        List.partition (fun (pid, _) -> not (Bitvec.get pid depth)) items
      in
      let left = build_trie ~width ~depth:(depth + 1) zeros in
      let right = build_trie ~width ~depth:(depth + 1) ones in
      let id =
        match List.rev zeros with
        | (_, last_zero_id) :: _ -> last_zero_id
        | [] -> (
            match ones with
            | (_, first_one_id) :: _ -> first_one_id - 1
            | [] -> assert false (* items is non-empty *))
      in
      Node { id; left; right }

let rec count_nodes = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + count_nodes left + count_nodes right
  | Absent | Zeros _ | Ones _ -> 0

(* Replace pure-left (pure-right) chains by markers, bottom-up. *)
let rec compress = function
  | (Leaf _ | Absent | Zeros _ | Ones _) as n -> n
  | Node { id; left; right } -> (
      let left = compress left and right = compress right in
      match (left, right) with
      | Leaf lid, Absent | Zeros lid, Absent -> Zeros lid
      | Absent, Leaf lid | Absent, Ones lid -> Ones lid
      | _, _ -> Node { id; left; right })

let build pid_list =
  let distinct =
    List.sort_uniq Bitvec.compare pid_list |> List.sort lex_compare
  in
  (match distinct with
  | [] -> invalid_arg "Pid_tree.build: no path ids"
  | first :: rest ->
      if Bitvec.width first = 0 then
        invalid_arg "Pid_tree.build: zero-width path id";
      if List.exists (fun v -> Bitvec.width v <> Bitvec.width first) rest then
        invalid_arg "Pid_tree.build: mixed widths");
  let width = Bitvec.width (List.hd distinct) in
  let items = List.mapi (fun i pid -> (pid, i + 1)) distinct in
  let trie = build_trie ~width ~depth:0 items in
  let root = compress trie in
  let pids = Array.of_list distinct in
  let ids = Hashtbl.create (Array.length pids) in
  Array.iteri (fun i pid -> Hashtbl.replace ids pid (i + 1)) pids;
  {
    root;
    width;
    pids;
    ids;
    uncompressed_nodes = count_nodes trie;
    compressed_nodes = count_nodes root;
  }

let num_pids t = Array.length t.pids
let bit_width t = t.width

let id_of_pid t pid = Hashtbl.find_opt t.ids pid

let pid_of_id t id =
  if id < 1 || id > num_pids t then
    invalid_arg (Printf.sprintf "Pid_tree.pid_of_id: %d out of range" id);
  (* Reconstruct by navigation, exercising the tree structure (the
     [pids] array is only the reverse index). *)
  let bits = Array.make t.width false in
  let rec go depth = function
    | Leaf _ -> ()
    | Absent -> assert false
    | Zeros _ -> () (* bits already false *)
    | Ones _ ->
        for i = depth to t.width - 1 do
          bits.(i) <- true
        done
    | Node { id = nid; left; right } ->
        if id <= nid then go (depth + 1) left
        else begin
          bits.(depth) <- true;
          go (depth + 1) right
        end
  in
  go 0 t.root;
  Bitvec.of_bits bits

let uncompressed_node_count t = t.uncompressed_nodes
let node_count t = t.compressed_nodes
let byte_size t = 5 * t.compressed_nodes
let uncompressed_byte_size t = 5 * t.uncompressed_nodes
