(* splitmix64: tiny, fast, high-quality for non-cryptographic use, and
   trivially portable, which is what reproducible experiments need. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = Int64.logxor (bits64 t) 0xA5A5A5A5DEADBEEFL }

(* Non-negative 62-bit int from the raw stream. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

(* 2^62 as a float; [bits] values lie in [0, 2^62). *)
let two_pow_62 = Float.ldexp 1.0 62

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias.  max_int = 2^62 - 1. *)
  let limit = max_int - (max_int mod bound) in
  let rec loop () =
    let v = bits t in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let int_in_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound = Float.of_int (bits t) /. two_pow_62 *. bound

let bool t = bits t land 1 = 1

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let choose_weighted t a =
  if Array.length a = 0 then invalid_arg "Prng.choose_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 a in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: zero total weight";
  let target = float t total in
  let rec loop i acc =
    if i = Array.length a - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if target < acc then fst a.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = Float.max 1e-18 (float t 1.0) in
    Int.of_float (Float.log u /. Float.log (1.0 -. p))

let zipf t n s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let weights = Array.init n (fun i -> (i + 1, 1.0 /. Float.pow (Float.of_int (i + 1)) s)) in
  choose_weighted t weights
