(* Immutable fixed-width bitvectors backed by an int array.  Each array
   cell holds [bits_per_word] payload bits; unused high bits of the last
   word are kept at zero so that [equal]/[compare]/[hash] can work on
   the raw words. *)

let bits_per_word = 62

type t = { width : int; words : int array }

let nwords width = (width + bits_per_word - 1) / bits_per_word

let width v = v.width

let zero w =
  if w < 0 then invalid_arg "Bitvec.zero: negative width";
  { width = w; words = Array.make (max 1 (nwords w)) 0 }

let check_index v i =
  if i < 0 || i >= v.width then
    invalid_arg
      (Printf.sprintf "Bitvec: index %d out of bounds (width %d)" i v.width)

let singleton w i =
  let v = zero w in
  check_index v i;
  v.words.(i / bits_per_word) <- 1 lsl (i mod bits_per_word);
  v

let is_zero v = Array.for_all (fun w -> w = 0) v.words

let get v i =
  check_index v i;
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i =
  check_index v i;
  let words = Array.copy v.words in
  words.(i / bits_per_word) <-
    words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
  { v with words }

let check_same_width a b op =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op a.width b.width)

let logor a b =
  check_same_width a b "logor";
  { width = a.width; words = Array.map2 ( lor ) a.words b.words }

let logand a b =
  check_same_width a b "logand";
  { width = a.width; words = Array.map2 ( land ) a.words b.words }

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash v = Hashtbl.hash (v.width, v.words)

let contains a b =
  check_same_width a b "contains";
  (not (equal a b)) && equal (logand a b) b

let contains_or_equal a b = equal a b || contains a b

let intersects a b =
  check_same_width a b "intersects";
  let n = Array.length a.words in
  let rec loop i = i < n && (a.words.(i) land b.words.(i) <> 0 || loop (i + 1)) in
  loop 0

let popcount_word w =
  let rec loop w acc = if w = 0 then acc else loop (w lsr 1) (acc + (w land 1)) in
  loop w 0

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words

let iter_set_bits v f =
  for wi = 0 to Array.length v.words - 1 do
    let w = v.words.(wi) in
    if w <> 0 then
      for bi = 0 to bits_per_word - 1 do
        if w land (1 lsl bi) <> 0 then f ((wi * bits_per_word) + bi)
      done
  done

let set_bits v =
  let acc = ref [] in
  iter_set_bits v (fun i -> acc := i :: !acc);
  List.rev !acc

let first_set_bit v =
  let exception Found of int in
  try
    iter_set_bits v (fun i -> raise (Found i));
    None
  with Found i -> Some i

let of_bits a =
  let v = zero (Array.length a) in
  Array.iteri
    (fun i b ->
      if b then
        v.words.(i / bits_per_word) <-
          v.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
    a;
  v

let of_string s =
  of_bits
    (Array.init (String.length s) (fun i ->
         match s.[i] with
         | '0' -> false
         | '1' -> true
         | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c)))

let to_string v = String.init v.width (fun i -> if get v i then '1' else '0')

let to_packed_string v =
  let nbytes = (v.width + 7) / 8 in
  String.init nbytes (fun byte ->
      let acc = ref 0 in
      for bit = 0 to 7 do
        let i = (byte * 8) + bit in
        if i < v.width && get v i then acc := !acc lor (1 lsl bit)
      done;
      Char.chr !acc)

let of_packed_string ~width s =
  let nbytes = (width + 7) / 8 in
  if String.length s <> nbytes then
    invalid_arg "Bitvec.of_packed_string: length mismatch";
  let v =
    of_bits
      (Array.init width (fun i ->
           Char.code s.[i / 8] land (1 lsl (i mod 8)) <> 0))
  in
  (* padding bits beyond [width] must be clear *)
  if width mod 8 <> 0 then begin
    let last = Char.code s.[nbytes - 1] in
    if last lsr (width mod 8) <> 0 then
      invalid_arg "Bitvec.of_packed_string: nonzero padding bits"
  end;
  v

let byte_size v = max 1 ((v.width + 7) / 8)

let pp ppf v = Format.pp_print_string ppf (to_string v)
