type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render_table ?title ~header ~align rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    let n = List.length align in
    if n >= ncols then List.filteri (fun i _ -> i < ncols) align
    else align @ List.init (ncols - n) (fun _ -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let render_row cells =
    let padded =
      List.map2
        (fun (w, a) c -> " " ^ pad a w c ^ " ")
        (List.combine widths aligns)
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.4f" f in
    (* strip trailing zeros but keep at least one decimal *)
    let rec strip i = if i > 0 && s.[i] = '0' then strip (i - 1) else i in
    let last = strip (String.length s - 1) in
    let last = if s.[last] = '.' then last + 1 else last in
    String.sub s 0 (last + 1)

let render_series ?title ~x_label ~y_label ~series () =
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) series
    |> List.sort_uniq Float.compare
  in
  let header = x_label :: List.map fst series in
  let align = List.init (List.length header) (fun _ -> Right) in
  let rows =
    List.map
      (fun x ->
        fmt_float x
        :: List.map
             (fun (_, pts) ->
               match List.assoc_opt x pts with
               | Some y -> fmt_float y
               | None -> "-")
             series)
      xs
  in
  let title =
    match title with
    | Some t -> Some (Printf.sprintf "%s  [y = %s]" t y_label)
    | None -> Some (Printf.sprintf "[y = %s]" y_label)
  in
  render_table ?title ~header ~align rows

let fmt_bytes n =
  let f = Float.of_int n in
  if f >= 1048576.0 then Printf.sprintf "%.2f MB" (f /. 1048576.0)
  else if f >= 1024.0 then Printf.sprintf "%.2f KB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let fmt_seconds s =
  if s < 0.001 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s
