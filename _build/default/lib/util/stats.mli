(** Descriptive statistics used across the synopsis and the harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** The paper's "frequency variance" from Section 6:
    [sqrt (sum (fi - avg)^2 / k)] — a population standard deviation,
    but we keep the paper's name.  0 for the empty array. *)

val sum : float array -> float
val min_max : float array -> (float * float) option

val relative_error : actual:float -> estimate:float -> float
(** [|estimate - actual| / actual].  The workload generator guarantees
    [actual > 0] (negative queries are removed), but for robustness a
    zero actual yields [abs estimate]. *)

val mean_relative_error : (float * float) list -> float
(** Mean of {!relative_error} over [(actual, estimate)] pairs; 0 for
    the empty list. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; nearest-rank on a sorted
    copy.  @raise Invalid_argument on empty input or [p] out of range. *)

(** Online mean/deviation accumulator (Welford). *)
module Accumulator : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val variance : t -> float
  (** Population standard deviation, matching {!Stats.variance}. *)
end
