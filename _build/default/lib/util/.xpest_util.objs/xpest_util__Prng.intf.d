lib/util/prng.mli:
