lib/util/bitvec.ml: Array Char Format Hashtbl Int List Printf Stdlib String
