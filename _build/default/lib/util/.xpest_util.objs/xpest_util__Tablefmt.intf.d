lib/util/tablefmt.mli:
