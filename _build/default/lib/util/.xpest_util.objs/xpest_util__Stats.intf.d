lib/util/stats.mli:
