(** Fixed-width bitvectors.

    Path ids in the encoding scheme of Li et al. are bit sequences with
    one bit per distinct root-to-leaf path of the document.  Real
    documents (e.g. XMark) have hundreds of distinct paths, so the ids
    do not fit in a native integer; this module provides immutable
    fixed-width bitvectors with the operations the estimator needs:
    bitwise or/and, containment, iteration over set bits.

    Bit positions are 0-based.  Position 0 corresponds to the paper's
    "leftmost bit", i.e. the root-to-leaf path with encoding value 1. *)

type t

val width : t -> int
(** Number of bits (set or not) in the vector. *)

val zero : int -> t
(** [zero w] is the all-zero vector of width [w].

    @raise Invalid_argument if [w < 0]. *)

val singleton : int -> int -> t
(** [singleton w i] has width [w] and only bit [i] set.

    @raise Invalid_argument if [i] is out of bounds. *)

val is_zero : t -> bool

val get : t -> int -> bool
(** [get v i] is the value of bit [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val set : t -> int -> t
(** [set v i] is [v] with bit [i] set (functional update). *)

val logor : t -> t -> t
(** Bitwise or.  @raise Invalid_argument on width mismatch. *)

val logand : t -> t -> t
(** Bitwise and.  @raise Invalid_argument on width mismatch. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order, suitable for [Map]/[Set] functors.  Vectors of
    different widths are ordered by width first. *)

val hash : t -> int

val contains : t -> t -> bool
(** [contains a b] is the paper's path-id containment: [a] strictly
    contains [b], i.e. [a <> b && (a land b) = b].  See Section 2,
    Case 2 of the paper. *)

val contains_or_equal : t -> t -> bool
(** [contains_or_equal a b] is [equal a b || contains a b]. *)

val intersects : t -> t -> bool
(** [intersects a b] iff [a land b] is non-zero. *)

val popcount : t -> int
(** Number of set bits. *)

val iter_set_bits : t -> (int -> unit) -> unit
(** [iter_set_bits v f] applies [f] to each set bit position in
    increasing order. *)

val set_bits : t -> int list
(** Set bit positions in increasing order. *)

val first_set_bit : t -> int option

val of_bits : bool array -> t
(** [of_bits a] has width [Array.length a] and bit [i] set iff [a.(i)]. *)

val of_string : string -> t
(** [of_string "1010"] parses the paper's bit-sequence notation: the
    first character is bit 0.  @raise Invalid_argument on characters
    other than ['0']/['1']. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val to_packed_string : t -> string
(** Bits packed 8-per-byte, LSB-first within each byte;
    [ceil (width / 8)] bytes (width itself is not encoded).  Used by
    the synopsis codec. *)

val of_packed_string : width:int -> string -> t
(** Inverse of {!to_packed_string}.
    @raise Invalid_argument if the string length is not
    [ceil (width / 8)] or padding bits are set. *)

val byte_size : t -> int
(** Number of bytes needed to store the vector on disk:
    [ceil (width / 8)], with a 1-byte minimum.  Used for the memory
    accounting of Table 3. *)

val pp : Format.formatter -> t -> unit
