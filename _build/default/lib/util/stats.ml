let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. Float.of_int n

let variance a =
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let avg = mean a in
    let sq = Array.fold_left (fun acc f -> acc +. ((f -. avg) ** 2.0)) 0.0 a in
    Float.sqrt (sq /. Float.of_int n)

let min_max a =
  if Array.length a = 0 then None
  else
    Some
      (Array.fold_left
         (fun (lo, hi) f -> (Float.min lo f, Float.max hi f))
         (a.(0), a.(0)) a)

let relative_error ~actual ~estimate =
  if actual = 0.0 then Float.abs estimate
  else Float.abs (estimate -. actual) /. actual

let mean_relative_error pairs =
  match pairs with
  | [] -> 0.0
  | _ ->
      let errs =
        List.map (fun (actual, estimate) -> relative_error ~actual ~estimate) pairs
      in
      mean (Array.of_list errs)

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. Float.of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

module Accumulator = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean

  let variance t =
    if t.n = 0 then 0.0 else Float.sqrt (t.m2 /. Float.of_int t.n)
end
