(** ASCII rendering of tables and line series for the benchmark
    harness.  The bench executable reproduces the paper's tables and
    figures as text; this module owns all the layout. *)

type align = Left | Right

val render_table :
  ?title:string -> header:string list -> align:align list -> string list list -> string
(** [render_table ~header ~align rows] lays out rows under a header
    with per-column alignment (the alignment list is padded with [Left]
    if short, truncated if long) and column-width auto-sizing.  Rows
    shorter than the header are padded with empty cells. *)

val render_series :
  ?title:string ->
  x_label:string ->
  y_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** Render one "figure": for each named series, its (x, y) points as a
    compact aligned listing, series side by side keyed on x.  Points
    are keyed by x value; missing y values print as "-". *)

val fmt_float : float -> string
(** Compact float formatting used in all reports: up to 4 significant
    decimals, no trailing zeros. *)

val fmt_bytes : int -> string
(** Human-readable byte count ("1.2 KB", "3.4 MB"). *)

val fmt_seconds : float -> string
(** Human-readable duration ("12.3 ms", "4.5 s"). *)
