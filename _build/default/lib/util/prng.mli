(** Deterministic pseudo-random number generator (splitmix64).

    All synthetic data generation and workload sampling in this
    repository flows through this module so that datasets, workloads
    and therefore experiment results are exactly reproducible from a
    seed, independent of the OCaml stdlib [Random] implementation. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> int -> int -> int
(** [int_in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform pick.  @raise Invalid_argument on empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** Pick proportionally to the (non-negative) weights.
    @raise Invalid_argument if the array is empty or all weights are 0. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli(p) trial; mean [(1-p)/p].  Used for skewed fan-outs.
    @raise Invalid_argument unless [0 < p <= 1]. *)

val zipf : t -> int -> float -> int
(** [zipf t n s] samples from a Zipf distribution over [\[1, n\]] with
    exponent [s] via inverse-CDF on precomputed weights (small [n]). *)
