(* Persisting the synopsis and explaining estimates.

   A cardinality estimator lives inside a query optimizer: the synopsis
   is built once (offline, from a document scan) and then shipped —
   without the document — to wherever plans are costed.  This example
   builds a synopsis for the XMark auction site, saves it, reloads it,
   shows that the loaded synopsis answers identically, and prints the
   derivation of one estimate.

   Run with:  dune exec examples/persistent_synopsis.exe *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Tablefmt = Xpest_util.Tablefmt

let () =
  let doc = Registry.generate ~scale:0.1 Registry.Xmark in
  Printf.printf "XMark: %d elements (%s serialized)\n%!" (Doc.size doc)
    (Tablefmt.fmt_bytes (Doc.serialized_byte_size doc));

  (* offline: scan the document once, persist the synopsis *)
  let summary = Summary.build ~p_variance:1.0 ~o_variance:2.0 doc in
  let path = Filename.temp_file "xmark_synopsis" ".bin" in
  Summary.save summary path;
  let file_bytes = (Unix.stat path).Unix.st_size in
  Printf.printf "synopsis file: %s — %.4f%% of the document\n\n"
    (Tablefmt.fmt_bytes file_bytes)
    (100.0 *. Float.of_int file_bytes
    /. Float.of_int (Doc.serialized_byte_size doc));

  (* online: the optimizer loads the synopsis; no document needed *)
  let loaded = Summary.load path in
  Sys.remove path;
  let offline = Estimator.create summary in
  let online = Estimator.create loaded in
  let queries =
    [
      "//item/{incategory}";
      "//open_auction[/bidder]/{annotation}";
      "//person[/address/folls::{profile}]";
      "//closed_auction[/seller/foll::{annotation}]";
    ]
  in
  print_endline
    (Tablefmt.render_table
       ~header:[ "query"; "offline estimate"; "loaded estimate" ]
       ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
       (List.map
          (fun qs ->
            let q = Pattern.of_string qs in
            [
              qs;
              Tablefmt.fmt_float (Estimator.estimate offline q);
              Tablefmt.fmt_float (Estimator.estimate online q);
            ])
          queries));

  (* and the estimator can show its work *)
  let q = Pattern.of_string "//person[/address/folls::{profile}]" in
  let e = Estimator.explain online q in
  Printf.printf "\nderivation of %s -> %s\n" (Pattern.to_string q)
    (Tablefmt.fmt_float e.Estimator.value);
  List.iter (fun line -> Printf.printf "  - %s\n" line) e.Estimator.derivation
