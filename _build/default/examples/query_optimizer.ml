(* Cardinality-driven query planning — the classic consumer of a
   selectivity estimator.

   A structural-join engine evaluating the twig
       //open_auction[/bidder]/annotation/description
   can start from any of its node tests and join outward.  The best
   starting point is the most selective one: starting from a huge tag
   list wastes work that later joins throw away.  This example ranks
   the starting points of several XMark twigs with estimated
   cardinalities and checks the ranking against the exact ones.

   Run with:  dune exec examples/query_optimizer.exe *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Tablefmt = Xpest_util.Tablefmt

(* All node positions of a pattern, with a printable label. *)
let positions (q : Pattern.t) =
  let spine_positions make spine =
    List.mapi (fun i (s : Pattern.step) -> (make i, s.tag)) spine
  in
  match Pattern.shape q with
  | Pattern.Simple spine -> spine_positions (fun i -> Pattern.In_trunk i) spine
  | Pattern.Branch { trunk; branch; tail } ->
      spine_positions (fun i -> Pattern.In_trunk i) trunk
      @ spine_positions (fun i -> Pattern.In_branch i) branch
      @ spine_positions (fun i -> Pattern.In_tail i) tail
  | Pattern.Ordered { trunk; first; second; _ } ->
      spine_positions (fun i -> Pattern.In_trunk i) trunk
      @ spine_positions (fun i -> Pattern.In_first i) first
      @ spine_positions (fun i -> Pattern.In_second i) second

let () =
  let doc = Registry.generate ~scale:0.15 Registry.Xmark in
  Printf.printf "XMark: %d elements\n%!" (Doc.size doc);
  let estimator = Estimator.create (Summary.build doc) in

  let plan query =
    let q = Pattern.of_string query in
    Printf.printf "\n== %s\n" query;
    let ranked =
      positions q
      |> List.map (fun (pos, tag) ->
             let est = Estimator.estimate_position estimator q pos in
             let actual =
               Truth.selectivity doc (Pattern.v (Pattern.shape q) pos)
             in
             (tag, est, actual))
      |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b)
    in
    let rows =
      List.mapi
        (fun rank (tag, est, actual) ->
          [
            string_of_int (rank + 1);
            tag;
            Tablefmt.fmt_float est;
            string_of_int actual;
          ])
        ranked
    in
    print_endline
      (Tablefmt.render_table
         ~header:[ "rank"; "start from"; "estimated card."; "actual card." ]
         ~align:[ Tablefmt.Right; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
         rows);
    match ranked with
    | (tag, _, _) :: _ ->
        Printf.printf "-> drive the structural join from %S\n" tag
    | [] -> ()
  in
  List.iter plan
    [
      "//open_auction[/bidder]/annotation/description";
      "//item[/mailbox/mail]/incategory";
      "//person[/profile/interest]/address/city";
      "//closed_auction[/annotation]/price";
    ]
