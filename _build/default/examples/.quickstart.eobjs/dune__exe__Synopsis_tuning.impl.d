examples/synopsis_tuning.ml: Array Float Int List Printf Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_util Xpest_workload Xpest_xml
