examples/persistent_synopsis.ml: Filename Float List Printf Sys Unix Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_util Xpest_xml Xpest_xpath
