examples/persistent_synopsis.mli:
