examples/ordered_documents.mli:
