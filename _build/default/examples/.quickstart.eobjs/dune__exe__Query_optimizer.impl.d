examples/query_optimizer.ml: Float List Printf Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_util Xpest_xml Xpest_xpath
