examples/quickstart.ml: List Printf Xpest_estimator Xpest_synopsis Xpest_xml Xpest_xpath
