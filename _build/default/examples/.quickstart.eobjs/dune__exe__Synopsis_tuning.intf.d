examples/synopsis_tuning.mli:
