examples/quickstart.mli:
