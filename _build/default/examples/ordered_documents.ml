(* Order-axis estimation on intrinsically ordered documents — the
   paper's motivating scenario (Section 1): when document order carries
   meaning (chapters of a book, scenes of a play, events in time),
   queries constrain it with preceding/following axes, and a useful
   estimator must summarize order statistics.

   This example builds the synthetic Shakespeare corpus and compares
   the order-aware estimates against exact answers and against the
   order-blind upper bound (the order-free counterpart query).

   Run with:  dune exec examples/ordered_documents.exe *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Tablefmt = Xpest_util.Tablefmt

let () =
  let doc = Registry.generate ~scale:0.3 Registry.Ssplays in
  Printf.printf "SSPlays: %d elements\n%!" (Doc.size doc);
  let summary = Summary.build doc in
  let estimator = Estimator.create summary in

  let queries =
    [
      (* speeches whose SPEAKER is followed by a STAGEDIR among its
         siblings: stage business right after the attribution *)
      "//SPEECH[/SPEAKER/folls::{STAGEDIR}]";
      (* scene titles preceded by a stage direction *)
      "//SCENE[/TITLE/pres::{STAGEDIR}]";
      (* plays where the front matter is followed (anywhere later in
         the play) by an epilogue speech *)
      "//PLAY[/FM/foll::{EPILOGUE}]";
      (* acts whose title precedes a prologue *)
      "//ACT[/TITLE/folls::{PROLOGUE}]";
      (* lines spoken after a stage direction within the same speech *)
      "//SPEECH[/STAGEDIR/folls::{LINE}]";
    ]
  in
  let rows =
    List.map
      (fun qs ->
        let q = Pattern.of_string qs in
        let actual = Truth.selectivity doc q in
        let with_order = Estimator.estimate estimator q in
        (* the order-blind view of the same query *)
        let counterpart =
          Pattern.v
            (Pattern.counterpart (Pattern.shape q))
            (Pattern.counterpart_position (Pattern.target q))
        in
        let without_order = Estimator.estimate estimator counterpart in
        [
          qs;
          string_of_int actual;
          Tablefmt.fmt_float with_order;
          Tablefmt.fmt_float without_order;
        ])
      queries
  in
  print_endline
    (Tablefmt.render_table
       ~title:"Order-aware vs order-blind estimates (SSPlays)"
       ~header:[ "query"; "actual"; "order-aware"; "order-blind" ]
       ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
       rows);
  print_endline
    "\nThe order-blind column estimates the counterpart query without the\n\
     order axis: it systematically over-estimates whenever the document\n\
     order actually filters results, which is exactly the gap the\n\
     o-histogram closes."
