(* Quickstart: parse a document, build the synopsis, estimate queries.

   Run with:  dune exec examples/quickstart.exe *)

module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator

let document =
  {|<library>
      <shelf>
        <book><title/><author/><author/><chapter/><chapter/><chapter/></book>
        <book><title/><author/><chapter/><chapter/></book>
        <magazine><title/><issue/></magazine>
      </shelf>
      <shelf>
        <book><title/><chapter/><appendix/><chapter/></book>
        <magazine><title/><issue/><issue/></magazine>
      </shelf>
    </library>|}

let () =
  (* 1. Parse (or build) an ordered XML document. *)
  let doc = Doc.of_tree (Xpest_xml.Parser.parse_string document) in
  Printf.printf "document: %d elements, %d distinct tags\n\n" (Doc.size doc)
    (Doc.num_tags doc);

  (* 2. Build the estimation synopsis.  Variance 0 keeps the summaries
     exact; higher values trade accuracy for memory. *)
  let summary = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  Printf.printf "synopsis: %d B p-histograms + %d B o-histograms\n\n"
    (Summary.p_histogram_bytes summary)
    (Summary.o_histogram_bytes summary);

  (* 3. Estimate.  Queries are written in the paper's fragment; the
     braces mark the target node whose cardinality is estimated. *)
  let estimator = Estimator.create summary in
  let show q =
    let pattern = Pattern.of_string q in
    Printf.printf "%-40s estimate %6.2f   actual %d\n" q
      (Estimator.estimate estimator pattern)
      (Truth.selectivity doc pattern)
  in
  List.iter show
    [
      "//book/{chapter}";
      "//shelf/{book}";
      "//book[/author]/{chapter}";
      "//book[/title/folls::{chapter}]";
      "//book[/chapter/folls::{appendix}]";
      "//shelf[/book/foll::{magazine}]";
    ]
