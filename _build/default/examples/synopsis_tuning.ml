(* Tuning the synopsis: the variance knobs trade memory for accuracy.

   The intra-bucket variance thresholds of the p- and o-histograms are
   the system's only tuning parameters (paper Section 6).  This example
   sweeps them on the DBLP-like dataset, reports memory and accuracy
   at each setting, and picks the smallest synopsis that stays within
   an error budget — the workflow a DBA would follow.

   Run with:  dune exec examples/synopsis_tuning.exe *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Stats = Xpest_util.Stats
module Tablefmt = Xpest_util.Tablefmt

let () =
  let doc = Registry.generate ~scale:0.05 Registry.Dblp in
  Printf.printf "DBLP: %d elements\n%!" (Doc.size doc);

  (* A validation workload with known exact selectivities. *)
  let config =
    { Workload.default_config with num_simple = 400; num_branch = 400 }
  in
  let workload = Workload.generate ~config doc in
  let queries = workload.Workload.simple @ workload.Workload.branch in
  Printf.printf "validation workload: %d positive queries\n\n%!"
    (List.length queries);

  let base = Summary.collect doc in
  let evaluate p_variance =
    let summary = Summary.assemble ~p_variance ~o_variance:p_variance base in
    let estimator = Estimator.create summary in
    let errors =
      Array.of_list
        (List.map
           (fun (it : Workload.item) ->
             Stats.relative_error
               ~actual:(Float.of_int it.actual)
               ~estimate:(Estimator.estimate estimator it.pattern))
           queries)
    in
    let bytes =
      Summary.total_bytes summary + Summary.o_histogram_bytes summary
    in
    (bytes, Stats.mean errors, Stats.percentile errors 90.0)
  in

  let sweep = [ 0.0; 1.0; 2.0; 4.0; 8.0; 14.0; 20.0 ] in
  let results = List.map (fun v -> (v, evaluate v)) sweep in
  print_endline
    (Tablefmt.render_table
       ~title:"Variance sweep on DBLP"
       ~header:[ "variance"; "total synopsis"; "mean error"; "p90 error" ]
       ~align:[ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
       (List.map
          (fun (v, (bytes, mean, p90)) ->
            [
              Tablefmt.fmt_float v;
              Tablefmt.fmt_bytes bytes;
              Printf.sprintf "%.2f%%" (100.0 *. mean);
              Printf.sprintf "%.2f%%" (100.0 *. p90);
            ])
          results));

  (* Pick the smallest synopsis within a 5% mean-error budget. *)
  let budget = 0.05 in
  let within = List.filter (fun (_, (_, mean, _)) -> mean <= budget) results in
  match
    List.sort (fun (_, (b1, _, _)) (_, (b2, _, _)) -> Int.compare b1 b2) within
  with
  | (v, (bytes, mean, _)) :: _ ->
      Printf.printf
        "\nsmallest synopsis within a %.0f%% budget: variance %g (%s, mean \
         error %.2f%%)\n"
        (100.0 *. budget) v (Tablefmt.fmt_bytes bytes) (100.0 *. mean)
  | [] -> Printf.printf "\nno setting met the %.0f%% budget\n" (100.0 *. budget)
