module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Labeler = Xpest_encoding.Labeler
module Path_join = Xpest_estimator.Path_join

let doc = Paper_fixture.doc
let summary = Summary.build doc
let join = Path_join.create summary

let shape_of s = Pattern.shape (Pattern.of_string s)

let pids result position =
  Path_join.pids result position
  |> List.map (fun (pid, _) -> Bitvec.to_string pid)
  |> List.sort compare

let test_simple_join_keeps_matching_pids () =
  (* //A//C: A keeps {p6,p7}, C keeps {p2,p3} (paper Example 4.2) *)
  let r = Path_join.run join (shape_of "//A//C") in
  Alcotest.(check (list string)) "A pids"
    (List.sort compare [ Paper_fixture.p6; Paper_fixture.p7 ])
    (pids r (Pattern.In_trunk 0));
  Alcotest.(check (list string)) "C pids"
    (List.sort compare [ Paper_fixture.p2; Paper_fixture.p3 ])
    (pids r (Pattern.In_trunk 1))

let test_child_vs_descendant () =
  (* Root/A is a parent-child edge; //Root//D descendant *)
  let r = Path_join.run join (shape_of "/Root/A") in
  Alcotest.(check (list string)) "Root" [ Paper_fixture.p9 ]
    (pids r (Pattern.In_trunk 0));
  Alcotest.(check int) "A keeps all 3" 3
    (List.length (pids r (Pattern.In_trunk 1)));
  (* B/C are never in a parent-child relation *)
  let r = Path_join.run join (shape_of "//B/C") in
  Alcotest.(check (list string)) "no B pids" [] (pids r (Pattern.In_trunk 0));
  Alcotest.(check (list string)) "no C pids" [] (pids r (Pattern.In_trunk 1))

let test_anchor_constraint () =
  (* /A must be the document root, whose tag is Root: empty *)
  let r = Path_join.run join (shape_of "/A") in
  Alcotest.(check (list string)) "empty" [] (pids r (Pattern.In_trunk 0));
  let r = Path_join.run join (shape_of "/Root") in
  Alcotest.(check (list string)) "root pid" [ Paper_fixture.p9 ]
    (pids r (Pattern.In_trunk 0))

let test_frequency_sums () =
  let r = Path_join.run join (shape_of "//B/D") in
  Alcotest.(check (float 1e-9)) "f(B) = 4" 4.0
    (Path_join.frequency r (Pattern.In_trunk 0));
  Alcotest.(check (float 1e-9)) "f(D) = 4" 4.0
    (Path_join.frequency r (Pattern.In_trunk 1))

let test_ordered_positions () =
  let r =
    Path_join.run join (shape_of "//A[/C/folls::B/D]")
  in
  Alcotest.(check (list string)) "second-head B pids" [ Paper_fixture.p5 ]
    (pids r (Pattern.In_second 0))

let test_position_not_in_shape () =
  let r = Path_join.run join (shape_of "//A//C") in
  Alcotest.(check bool) "raises" true
    (match Path_join.pids r (Pattern.In_branch 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- soundness property: the join never prunes a pid that labels an
   actual witness of the query node. *)

let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  sized_size (int_range 1 30) @@ fix (fun self n ->
      if n <= 1 then tag >|= Tree.leaf
      else
        tag >>= fun t ->
        list_size (int_range 0 3) (self (n / 3)) >|= fun cs -> Tree.elem t cs)

let spine_gen len =
  let open QCheck.Gen in
  list_size (return len)
    (pair (oneofl [ Pattern.Child; Pattern.Descendant ]) (oneofl [ "a"; "b"; "c" ]))
  >|= List.map (fun (axis, tag) -> Pattern.{ axis; tag })

let shape_gen =
  let open QCheck.Gen in
  oneof
    [
      (int_range 1 3 >>= spine_gen >|= fun s -> Pattern.Simple s);
      ( triple (spine_gen 1) (spine_gen 1) (spine_gen 1)
      >|= fun (trunk, branch, tail) -> Pattern.Branch { trunk; branch; tail } );
    ]

let arb =
  QCheck.make
    QCheck.Gen.(pair tree_gen shape_gen)
    ~print:(fun (t, s) ->
      Format.asprintf "%a |- %s" Tree.pp t
        (Pattern.to_string (Pattern.v s (Pattern.In_trunk 0))))

let positions_of shape =
  match (shape : Pattern.shape) with
  | Simple q -> List.init (List.length q) (fun i -> Pattern.In_trunk i)
  | Branch { trunk; branch; tail } ->
      List.init (List.length trunk) (fun i -> Pattern.In_trunk i)
      @ List.init (List.length branch) (fun i -> Pattern.In_branch i)
      @ List.init (List.length tail) (fun i -> Pattern.In_tail i)
  | Ordered _ -> []

let prop_join_sound =
  QCheck.Test.make ~name:"join keeps the pid of every true witness"
    ~count:400 arb (fun (tree, shape) ->
      let doc = Doc.of_tree tree in
      let summary = Summary.build doc in
      let labeler = Summary.labeler summary in
      let join = Path_join.create summary in
      let result = Path_join.run join shape in
      List.for_all
        (fun pos ->
          let witnesses = Truth.matches doc (Pattern.v shape pos) in
          let kept = List.map fst (Path_join.pids result pos) in
          List.for_all
            (fun w ->
              List.exists (Bitvec.equal (Labeler.pid labeler w)) kept)
            witnesses)
        (positions_of shape))

let prop_simple_frequency_upper_bound =
  (* Theorem 4.1 gives equality on documents whose paths do not repeat
     tags; on arbitrary (possibly recursive) documents the joined
     frequency is still a sound upper bound of the exact selectivity,
     because the join never prunes a witness pid. *)
  QCheck.Test.make ~name:"joined frequency >= exact selectivity" ~count:400
    (QCheck.make
       QCheck.Gen.(pair tree_gen (int_range 1 3 >>= spine_gen))
       ~print:(fun (t, s) ->
         Format.asprintf "%a |- %s" Tree.pp t
           (Pattern.to_string (Pattern.simple s))))
    (fun (tree, spine) ->
      let doc = Doc.of_tree tree in
      let summary = Summary.build doc in
      let join = Path_join.create summary in
      let result = Path_join.run join (Pattern.Simple spine) in
      List.for_all
        (fun i ->
          let pos = Pattern.In_trunk i in
          let actual =
            Truth.selectivity doc (Pattern.v (Pattern.Simple spine) pos)
          in
          Path_join.frequency result pos >= Float.of_int actual -. 1e-9)
        (List.init (List.length spine) Fun.id))

let test_theorem_4_1_exact_on_regular_data () =
  (* DBLP-like data has strictly layered tags (no tag repeats on any
     root-to-leaf path), where Theorem 4.1 equality holds. *)
  let doc =
    Doc.of_tree (Xpest_datasets.Dblp.generate ~records:120 ~seed:42 ())
  in
  let summary = Summary.build doc in
  let join = Path_join.create summary in
  List.iter
    (fun qs ->
      let q = Pattern.of_string qs in
      match Pattern.shape q with
      | Pattern.Simple spine ->
          let result = Path_join.run join (Pattern.Simple spine) in
          List.iteri
            (fun i _ ->
              let pos = Pattern.In_trunk i in
              let actual =
                Truth.selectivity doc (Pattern.v (Pattern.Simple spine) pos)
              in
              Alcotest.(check (float 1e-9))
                (Printf.sprintf "%s @%d" qs i)
                (Float.of_int actual)
                (Path_join.frequency result pos))
            spine
      | Pattern.Branch _ | Pattern.Ordered _ -> Alcotest.fail "expected simple")
    [
      "/dblp/article/author";
      "//inproceedings/booktitle";
      "//dblp//cite";
      "/dblp/phdthesis/school";
      "//article/month";
    ]

let () =
  Alcotest.run "path_join"
    [
      ( "unit",
        [
          Alcotest.test_case "simple join" `Quick test_simple_join_keeps_matching_pids;
          Alcotest.test_case "child vs descendant" `Quick test_child_vs_descendant;
          Alcotest.test_case "anchor" `Quick test_anchor_constraint;
          Alcotest.test_case "frequencies" `Quick test_frequency_sums;
          Alcotest.test_case "ordered positions" `Quick test_ordered_positions;
          Alcotest.test_case "bad position" `Quick test_position_not_in_shape;
          Alcotest.test_case "theorem 4.1 exact on layered data" `Quick
            test_theorem_4_1_exact_on_regular_data;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_join_sound; prop_simple_frequency_upper_bound ] );
    ]
