module Stats = Xpest_util.Stats

let checkf = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "mean empty" 0.0 (Stats.mean [||]);
  (* paper definition: sqrt (sum (fi-avg)^2 / k) *)
  checkf "variance of constants" 0.0 (Stats.variance [| 5.0; 5.0; 5.0 |]);
  checkf "variance" 0.5 (Stats.variance [| 2.0; 3.0 |]);
  checkf "variance empty" 0.0 (Stats.variance [||])

let test_paper_figure7 () =
  (* Figure 7: list (p2,2) (p3,2) (p1,5) (p5,7); buckets {2,2} v=0 and
     {5,7}: sqrt(((5-6)^2 + (7-6)^2)/2) = 1. *)
  checkf "bucket {5,7}" 1.0 (Stats.variance [| 5.0; 7.0 |]);
  checkf "bucket {2,2}" 0.0 (Stats.variance [| 2.0; 2.0 |])

let test_relative_error () =
  checkf "exact" 0.0 (Stats.relative_error ~actual:4.0 ~estimate:4.0);
  checkf "50% over" 0.5 (Stats.relative_error ~actual:4.0 ~estimate:6.0);
  checkf "50% under" 0.5 (Stats.relative_error ~actual:4.0 ~estimate:2.0);
  checkf "zero actual" 3.0 (Stats.relative_error ~actual:0.0 ~estimate:3.0)

let test_mean_relative_error () =
  checkf "empty" 0.0 (Stats.mean_relative_error []);
  checkf "avg of 0 and 1" 0.5
    (Stats.mean_relative_error [ (4.0, 4.0); (2.0, 4.0) ])

let test_percentile () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median" 3.0 (Stats.percentile a 50.0);
  checkf "min" 1.0 (Stats.percentile a 1.0);
  checkf "max" 5.0 (Stats.percentile a 100.0)

let test_min_max () =
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "min_max" (Some (1.0, 9.0))
    (Stats.min_max [| 3.0; 9.0; 1.0 |]);
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "empty" None (Stats.min_max [||])

let test_accumulator_matches_batch () =
  let values = [| 1.0; 4.0; 4.0; 9.0; 16.0; 2.5 |] in
  let acc = Stats.Accumulator.create () in
  Array.iter (Stats.Accumulator.add acc) values;
  Alcotest.(check int) "count" 6 (Stats.Accumulator.count acc);
  checkf "mean agrees" (Stats.mean values) (Stats.Accumulator.mean acc);
  Alcotest.(check (float 1e-9)) "variance agrees" (Stats.variance values)
    (Stats.Accumulator.variance acc)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance nonnegative" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 30) (float_range (-100.) 100.))
    (fun a -> Stats.variance a >= 0.0)

let prop_welford_agrees =
  QCheck.Test.make ~name:"welford matches batch" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-50.) 50.))
    (fun a ->
      let acc = Stats.Accumulator.create () in
      Array.iter (Stats.Accumulator.add acc) a;
      Float.abs (Stats.Accumulator.variance acc -. Stats.variance a) < 1e-6
      && Float.abs (Stats.Accumulator.mean acc -. Stats.mean a) < 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "paper figure 7 variances" `Quick test_paper_figure7;
          Alcotest.test_case "relative error" `Quick test_relative_error;
          Alcotest.test_case "mean relative error" `Quick test_mean_relative_error;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "accumulator" `Quick test_accumulator_matches_batch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_variance_nonneg; prop_welford_agrees ] );
    ]
