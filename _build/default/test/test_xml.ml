module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Parser = Xpest_xml.Parser
module Printer = Xpest_xml.Printer

let e = Tree.elem
let l = Tree.leaf
let sample = e "a" [ e "b" [ l "d"; l "e" ]; l "c"; e "b" [ l "d" ] ]

let tree_testable = Alcotest.testable Tree.pp Tree.equal

(* random trees for property tests *)
let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  sized_size (int_range 1 80) @@ fix (fun self n ->
      if n <= 1 then tag >|= l
      else
        tag >>= fun t ->
        list_size (int_range 0 4) (self (n / 4)) >|= fun cs -> e t cs)

let arb_tree = QCheck.make tree_gen ~print:(Format.asprintf "%a" Tree.pp)

(* --- Tree --- *)

let test_tree_stats () =
  Alcotest.(check int) "size" 7 (Tree.size sample);
  Alcotest.(check int) "depth" 3 (Tree.depth sample);
  Alcotest.(check (list string)) "tags" [ "a"; "b"; "c"; "d"; "e" ]
    (Tree.distinct_tags sample)

let test_root_to_leaf_paths () =
  Alcotest.(check (list (list string)))
    "distinct paths, first-occurrence order"
    [ [ "a"; "b"; "d" ]; [ "a"; "b"; "e" ]; [ "a"; "c" ] ]
    (Tree.root_to_leaf_paths sample)

(* --- Parser / Printer --- *)

let test_parse_basic () =
  let t = Parser.parse_string "<a><b><d/><e/></b><c/><b><d/></b></a>" in
  Alcotest.check tree_testable "parsed" sample t

let test_parse_with_noise () =
  let input =
    {|<?xml version="1.0"?>
<!DOCTYPE a [ <!ELEMENT a ANY> ]>
<!-- comment -->
<a attr="v" other='w'>
  text &amp; more
  <b><![CDATA[ <not-a-tag/> ]]><d/><e/></b>
  <c/>
  <?pi data?>
  <b><d/></b>
</a>
<!-- trailing comment -->|}
  in
  Alcotest.check tree_testable "parsed modulo noise" sample
    (Parser.parse_string input)

let test_parse_errors () =
  let fails s =
    match Parser.parse_string s with
    | exception Parser.Syntax_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatched tag" true (fails "<a><b></a></b>");
  Alcotest.(check bool) "unterminated" true (fails "<a><b>");
  Alcotest.(check bool) "trailing element" true (fails "<a/><b/>");
  Alcotest.(check bool) "empty input" true (fails "");
  Alcotest.(check bool) "garbage" true (fails "hello")

let test_print_parse_roundtrip () =
  Alcotest.check tree_testable "indented" sample
    (Parser.parse_string (Printer.to_string sample));
  Alcotest.check tree_testable "compact" sample
    (Parser.parse_string (Printer.to_string ~indent:false sample))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:200 arb_tree (fun t ->
      Tree.equal t (Parser.parse_string (Printer.to_string t)))

let test_byte_size () =
  Alcotest.(check int) "byte_size = serialized length"
    (String.length (Printer.to_string sample))
    (Printer.byte_size sample)

(* --- Doc --- *)

let doc = Doc.of_tree sample

let test_doc_basics () =
  Alcotest.(check int) "size" 7 (Doc.size doc);
  Alcotest.(check string) "root tag" "a" (Doc.tag doc (Doc.root doc));
  Alcotest.(check int) "num_tags" 5 (Doc.num_tags doc);
  Alcotest.check tree_testable "to_tree inverse" sample (Doc.to_tree doc)

let test_doc_navigation () =
  let root = Doc.root doc in
  let children = Doc.children doc root in
  Alcotest.(check int) "3 children" 3 (List.length children);
  Alcotest.(check (list string)) "child tags" [ "b"; "c"; "b" ]
    (List.map (Doc.tag doc) children);
  let b1 = List.nth children 0 and c = List.nth children 1 in
  Alcotest.(check (option int)) "parent" (Some root) (Doc.parent doc b1);
  Alcotest.(check (option int)) "next sibling of b1" (Some c)
    (Doc.next_sibling doc b1);
  Alcotest.(check (option int)) "prev of c" (Some b1) (Doc.prev_sibling doc c);
  Alcotest.(check int) "sibling pos of c" 1 (Doc.sibling_pos doc c);
  Alcotest.(check bool) "c is leaf" true (Doc.is_leaf doc c)

let test_doc_order_invariants () =
  (* pre-order ids, post-order, ancestorship *)
  let root = Doc.root doc in
  Doc.iter doc (fun n ->
      if n <> root then begin
        Alcotest.(check bool) "parent before child in doc order" true
          (match Doc.parent doc n with Some p -> p < n | None -> false);
        Alcotest.(check bool) "root is ancestor" true
          (Doc.is_ancestor doc ~anc:root ~desc:n)
      end)

let test_subtree_last () =
  let root = Doc.root doc in
  Alcotest.(check int) "root spans all" (Doc.size doc - 1)
    (Doc.subtree_last doc root);
  let b1 = List.hd (Doc.children doc root) in
  (* b1 subtree = b1, d, e -> ids 1,2,3 *)
  Alcotest.(check int) "b1 subtree" 3 (Doc.subtree_last doc b1)

let test_by_tag () =
  Alcotest.(check int) "two b nodes" 2 (Array.length (Doc.nodes_with_tag doc "b"));
  Alcotest.(check int) "two d nodes" 2 (Array.length (Doc.nodes_with_tag doc "d"));
  Alcotest.(check int) "unknown tag" 0 (Array.length (Doc.nodes_with_tag doc "zz"))

let test_path_to () =
  let d_nodes = Doc.nodes_with_tag doc "d" in
  Alcotest.(check (list string)) "path to first d" [ "a"; "b"; "d" ]
    (Doc.path_to doc d_nodes.(0))

let prop_serialized_size_matches_printer =
  QCheck.Test.make ~name:"Doc.serialized_byte_size = Printer.byte_size"
    ~count:200 arb_tree (fun t ->
      Doc.serialized_byte_size (Doc.of_tree t) = Printer.byte_size t)

let prop_doc_roundtrip =
  QCheck.Test.make ~name:"of_tree/to_tree roundtrip" ~count:200 arb_tree
    (fun t -> Tree.equal t (Doc.to_tree (Doc.of_tree t)))

let prop_doc_invariants =
  QCheck.Test.make ~name:"pre/post interval nesting" ~count:100 arb_tree
    (fun t ->
      let d = Doc.of_tree t in
      let ok = ref true in
      Doc.iter d (fun n ->
          List.iter
            (fun c ->
              (* child interval inside parent interval *)
              if not (n < c && Doc.subtree_last d c <= Doc.subtree_last d n)
              then ok := false;
              if Doc.post d c >= Doc.post d n then ok := false)
            (Doc.children d n));
      !ok)

let () =
  Alcotest.run "xml"
    [
      ( "tree",
        [
          Alcotest.test_case "stats" `Quick test_tree_stats;
          Alcotest.test_case "root_to_leaf_paths" `Quick test_root_to_leaf_paths;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "noise" `Quick test_parse_with_noise;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "byte_size" `Quick test_byte_size;
        ] );
      ( "doc",
        [
          Alcotest.test_case "basics" `Quick test_doc_basics;
          Alcotest.test_case "navigation" `Quick test_doc_navigation;
          Alcotest.test_case "order invariants" `Quick test_doc_order_invariants;
          Alcotest.test_case "subtree_last" `Quick test_subtree_last;
          Alcotest.test_case "by_tag" `Quick test_by_tag;
          Alcotest.test_case "path_to" `Quick test_path_to;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_doc_roundtrip;
            prop_doc_invariants;
            prop_serialized_size_matches_printer;
          ] );
    ]
