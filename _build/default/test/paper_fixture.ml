(* The running example of the paper (Figure 1), reconstructed from its
   pathId-frequency table (Figure 2a) and path-order table (Figure 2b):

     Root
     +- A(p8): B(p8): [D(p5); E(p4)]
     +- A(p7): [B(p5): D(p5);  C(p3): [E(p2); F(p1)];  B(p5): D(p5)]
     +- A(p6): [C(p2): E(p2);  B(p5): D(p5)]

   Root-to-leaf paths in document order give the paper's encodings:
     1 = Root/A/B/D, 2 = Root/A/B/E, 3 = Root/A/C/E, 4 = Root/A/C/F.

   This yields exactly the paper's tables: A {(p6,1)(p7,1)(p8,1)},
   B {(p8,1)(p5,3)}, C {(p2,1)(p3,1)}, D {(p5,4)}, E {(p4,1)(p2,2)},
   F {(p1,1)}, and for B's path-order table: one B(p5) before C, two
   B(p5) after C. *)

module Tree = Xpest_xml.Tree

let tree =
  let e = Tree.elem and l = Tree.leaf in
  e "Root"
    [
      e "A" [ e "B" [ e "D" []; e "E" [] ] ];
      e "A"
        [
          e "B" [ l "D" ];
          e "C" [ l "E"; l "F" ];
          e "B" [ l "D" ];
        ];
      e "A" [ e "C" [ l "E" ]; e "B" [ l "D" ] ];
    ]

let doc = Xpest_xml.Doc.of_tree tree

(* Path ids as written in the paper (Figure 1c).  Bit 0 is the paper's
   leftmost bit, i.e. encoding 1. *)
let p1 = "0001"
let p2 = "0010"
let p3 = "0011"
let p4 = "0100"
let p5 = "1000"
let p6 = "1010"
let p7 = "1011"
let p8 = "1100"
let p9 = "1111"

let bv = Xpest_util.Bitvec.of_string
