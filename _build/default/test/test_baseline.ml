module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Xsketch = Xpest_baseline.Xsketch
module Markov = Xpest_baseline.Markov
module Workload = Xpest_workload.Workload
module Stats = Xpest_util.Stats

let doc = Doc.of_tree (Xpest_datasets.Ssplays.generate ~plays:2 ~seed:4 ())

let test_label_split_exact_tag_counts () =
  (* with no refinement, a one-step //tag query is exact: counts per
     class are exact *)
  let sk = Xsketch.build ~budget_bytes:0 doc in
  List.iter
    (fun tag ->
      let q = Pattern.of_string (Printf.sprintf "//{%s}" tag) in
      Alcotest.(check (float 1e-6))
        tag
        (Float.of_int (Truth.selectivity doc q))
        (Xsketch.estimate sk q))
    [ "PLAY"; "ACT"; "SCENE"; "SPEECH"; "LINE" ]

let test_budget_grows_classes () =
  let small = Xsketch.build ~budget_bytes:0 doc in
  let big = Xsketch.build ~budget_bytes:8192 doc in
  Alcotest.(check bool) "more classes" true
    (Xsketch.num_classes big > Xsketch.num_classes small);
  Alcotest.(check bool) "within ~budget+1 split" true
    (Xsketch.byte_size small < 8192);
  Alcotest.(check bool) "steps counted" true (Xsketch.refinement_steps big > 0)

let test_estimates_well_formed () =
  let sk = Xsketch.build ~budget_bytes:4096 doc in
  List.iter
    (fun q ->
      let v = Xsketch.estimate sk (Pattern.of_string q) in
      Alcotest.(check bool) (q ^ " finite >= 0") true
        (Float.is_finite v && v >= 0.0))
    [
      "//{SPEECH}";
      "//ACT/SCENE/{SPEECH}";
      "//SPEECH[/SPEAKER]/{LINE}";
      "//{PLAY}[/TITLE]/ACT";
      "//PLAY//{LINE}";
      "//SPEECH[/STAGEDIR/folls::{LINE}]";
      "//{zzz}";
    ]

let test_refinement_improves_accuracy () =
  (* refinement should not make a simple child-path workload worse *)
  let config =
    { Workload.default_config with num_simple = 120; num_branch = 0 }
  in
  let w = Workload.generate ~config doc in
  let mre sk =
    Stats.mean
      (Array.of_list
         (List.map
            (fun (it : Workload.item) ->
              Stats.relative_error
                ~actual:(Float.of_int it.actual)
                ~estimate:(Xsketch.estimate sk it.pattern))
            w.Workload.simple))
  in
  let coarse = mre (Xsketch.build ~budget_bytes:0 doc) in
  let fine = mre (Xsketch.build ~budget_bytes:32768 doc) in
  Alcotest.(check bool)
    (Printf.sprintf "refined %.4f <= coarse %.4f + slack" fine coarse)
    true
    (fine <= coarse +. 0.02)

let test_markov_is_label_split () =
  let mk = Markov.build doc in
  let sk = Xsketch.build ~budget_bytes:0 doc in
  Alcotest.(check int) "same size" (Xsketch.byte_size sk) (Markov.byte_size mk);
  List.iter
    (fun q ->
      let q = Pattern.of_string q in
      Alcotest.(check (float 1e-9)) "same estimate" (Xsketch.estimate sk q)
        (Markov.estimate mk q))
    [ "//ACT/SCENE/{SPEECH}"; "//SPEECH/{LINE}"; "//PLAY//{SPEAKER}" ]

let test_ordered_estimated_via_counterpart () =
  let sk = Xsketch.build ~budget_bytes:0 doc in
  let ordered = Pattern.of_string "//SPEECH[/SPEAKER/folls::{LINE}]" in
  let counterpart =
    Pattern.v
      (Pattern.counterpart (Pattern.shape ordered))
      (Pattern.counterpart_position (Pattern.target ordered))
  in
  Alcotest.(check (float 1e-9)) "order-blind"
    (Xsketch.estimate sk counterpart)
    (Xsketch.estimate sk ordered)

(* ---------------- position histograms ---------------- *)

module Ph = Xpest_baseline.Position_histogram

let test_ph_single_tag_counts () =
  let ph = Ph.build doc in
  List.iter
    (fun tag ->
      let q = Pattern.of_string (Printf.sprintf "//{%s}" tag) in
      Alcotest.(check (float 1e-6))
        tag
        (Float.of_int (Truth.selectivity doc q))
        (Ph.estimate ph q))
    [ "PLAY"; "SPEECH"; "LINE" ]

let test_ph_pairs_reasonable () =
  (* every LINE has exactly one SPEECH ancestor, so the pair count is
     the LINE count; the histogram should land within a factor ~2 *)
  let ph = Ph.build ~grid:16 doc in
  let actual =
    Float.of_int
      (Truth.selectivity doc (Pattern.of_string "//SPEECH//{LINE}"))
  in
  let est = Ph.estimate_pairs ph ~anc:"SPEECH" ~desc:"LINE" in
  Alcotest.(check bool)
    (Printf.sprintf "pairs %.0f vs actual %.0f" est actual)
    true
    (est > actual /. 2.0 && est < actual *. 2.0)

let test_ph_well_formed () =
  let ph = Ph.build doc in
  List.iter
    (fun q ->
      let v = Ph.estimate ph (Pattern.of_string q) in
      Alcotest.(check bool) (q ^ " finite >= 0") true
        (Float.is_finite v && v >= 0.0))
    [
      "//ACT/SCENE/{SPEECH}";
      "//SPEECH[/SPEAKER]/{LINE}";
      "//{PLAY}[/TITLE]/ACT";
      "//SPEECH[/STAGEDIR/folls::{LINE}]";
      "//{zzz}";
    ]

let test_ph_byte_size () =
  let small = Ph.build ~grid:2 doc in
  let big = Ph.build ~grid:16 doc in
  Alcotest.(check bool) "finer grid costs more" true
    (Ph.byte_size big >= Ph.byte_size small);
  Alcotest.(check bool) "non-trivial" true (Ph.byte_size small > 0)

let () =
  Alcotest.run "baseline"
    [
      ( "xsketch",
        [
          Alcotest.test_case "label-split tag counts" `Quick
            test_label_split_exact_tag_counts;
          Alcotest.test_case "budget grows classes" `Quick
            test_budget_grows_classes;
          Alcotest.test_case "estimates well-formed" `Quick
            test_estimates_well_formed;
          Alcotest.test_case "refinement improves accuracy" `Quick
            test_refinement_improves_accuracy;
          Alcotest.test_case "ordered via counterpart" `Quick
            test_ordered_estimated_via_counterpart;
        ] );
      ( "markov",
        [
          Alcotest.test_case "markov = label split" `Quick
            test_markov_is_label_split;
        ] );
      ( "position_histogram",
        [
          Alcotest.test_case "single tag counts" `Quick test_ph_single_tag_counts;
          Alcotest.test_case "pair estimates" `Quick test_ph_pairs_reasonable;
          Alcotest.test_case "well-formed" `Quick test_ph_well_formed;
          Alcotest.test_case "byte size" `Quick test_ph_byte_size;
        ] );
    ]
