module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Workload = Xpest_workload.Workload

let doc = Doc.of_tree (Xpest_datasets.Ssplays.generate ~plays:2 ~seed:9 ())

let config =
  { Workload.default_config with num_simple = 300; num_branch = 300 }

let w = Workload.generate ~config doc

let all_items =
  w.Workload.simple @ w.Workload.branch @ w.Workload.order_branch_target
  @ w.Workload.order_trunk_target

let test_nonempty_classes () =
  Alcotest.(check bool) "simple" true (w.Workload.simple <> []);
  Alcotest.(check bool) "branch" true (w.Workload.branch <> []);
  Alcotest.(check bool) "order branch" true (w.Workload.order_branch_target <> []);
  Alcotest.(check bool) "order trunk" true (w.Workload.order_trunk_target <> [])

let test_all_positive () =
  List.iter
    (fun (it : Workload.item) ->
      Alcotest.(check bool)
        (Pattern.to_string it.pattern ^ " positive")
        true (it.actual > 0))
    all_items

let test_actuals_are_exact () =
  List.iter
    (fun (it : Workload.item) ->
      Alcotest.(check int)
        (Pattern.to_string it.pattern)
        (Truth.selectivity doc it.pattern)
        it.actual)
    all_items

let test_no_duplicates () =
  let check items =
    let keys = List.map (fun (it : Workload.item) -> Pattern.to_string it.pattern) items in
    Alcotest.(check int) "no duplicates" (List.length keys)
      (List.length (List.sort_uniq String.compare keys))
  in
  check w.Workload.simple;
  check w.Workload.branch;
  check w.Workload.order_branch_target;
  check w.Workload.order_trunk_target

let test_query_sizes () =
  List.iter
    (fun (it : Workload.item) ->
      let size = Pattern.size it.pattern in
      Alcotest.(check bool)
        (Printf.sprintf "%s size %d within [2,12]" (Pattern.to_string it.pattern) size)
        true
        (size >= 2 && size <= config.max_size))
    all_items

let test_class_shapes () =
  List.iter
    (fun (it : Workload.item) ->
      match Pattern.shape it.pattern with
      | Pattern.Simple _ -> ()
      | Pattern.Branch _ | Pattern.Ordered _ -> Alcotest.fail "not simple")
    w.Workload.simple;
  List.iter
    (fun (it : Workload.item) ->
      match Pattern.shape it.pattern with
      | Pattern.Branch _ -> ()
      | Pattern.Simple _ | Pattern.Ordered _ -> Alcotest.fail "not branch")
    w.Workload.branch;
  List.iter
    (fun (it : Workload.item) ->
      match (Pattern.shape it.pattern, Pattern.target it.pattern) with
      | Pattern.Ordered _, (Pattern.In_first _ | Pattern.In_second _) -> ()
      | _ -> Alcotest.fail "order query target must be in a branch part")
    w.Workload.order_branch_target;
  List.iter
    (fun (it : Workload.item) ->
      match (Pattern.shape it.pattern, Pattern.target it.pattern) with
      | Pattern.Ordered _, Pattern.In_trunk _ -> ()
      | _ -> Alcotest.fail "order query target must be in the trunk")
    w.Workload.order_trunk_target

let test_determinism () =
  let w2 = Workload.generate ~config doc in
  Alcotest.(check int) "same simple count" (List.length w.Workload.simple)
    (List.length w2.Workload.simple);
  List.iter2
    (fun (a : Workload.item) (b : Workload.item) ->
      Alcotest.(check string) "same query"
        (Pattern.to_string a.pattern)
        (Pattern.to_string b.pattern))
    w.Workload.simple w2.Workload.simple

let test_totals () =
  Alcotest.(check int) "without order"
    (List.length w.Workload.simple + List.length w.Workload.branch)
    (Workload.total_without_order w);
  Alcotest.(check int) "with order"
    (List.length w.Workload.order_branch_target
    + List.length w.Workload.order_trunk_target)
    (Workload.total_with_order w)

let test_nonsibling_fraction () =
  let config =
    { config with nonsibling_fraction = 1.0; num_branch = 200 }
  in
  let w = Workload.generate ~config doc in
  List.iter
    (fun (it : Workload.item) ->
      match Pattern.shape it.pattern with
      | Pattern.Ordered { axis = Pattern.Following | Pattern.Preceding; _ } -> ()
      | _ -> Alcotest.fail "expected following/preceding")
    w.Workload.order_branch_target;
  Alcotest.(check bool) "some survive" true
    (w.Workload.order_branch_target <> [])

let () =
  Alcotest.run "workload"
    [
      ( "unit",
        [
          Alcotest.test_case "nonempty classes" `Quick test_nonempty_classes;
          Alcotest.test_case "all positive" `Quick test_all_positive;
          Alcotest.test_case "actuals exact" `Quick test_actuals_are_exact;
          Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
          Alcotest.test_case "query sizes" `Quick test_query_sizes;
          Alcotest.test_case "class shapes" `Quick test_class_shapes;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "nonsibling fraction" `Quick test_nonsibling_fraction;
        ] );
    ]
