module Pf_table = Xpest_synopsis.Pf_table
module P_histogram = Xpest_synopsis.P_histogram
module Stats = Xpest_util.Stats

let entry pid_index frequency : Pf_table.entry = { pid_index; frequency }

(* the paper's Figure 7 input: (p2,2) (p3,2) (p1,5) (p5,7) using pid
   indices 2,3,1,5 *)
let figure7 = [| entry 2 2; entry 3 2; entry 1 5; entry 5 7 |]

let bucket_sets h =
  List.map
    (fun (b : P_histogram.bucket) ->
      (List.sort Int.compare (Array.to_list b.pid_indices), b.avg_frequency))
    (P_histogram.buckets h)

let test_figure7_variance0 () =
  (* P-Histogram1: {p2,p3} freq 2; {p1} freq 5; {p5} freq 7 *)
  let h = P_histogram.build ~variance:0.0 figure7 in
  Alcotest.(check (list (pair (list int) (float 1e-9))))
    "three buckets"
    [ ([ 2; 3 ], 2.0); ([ 1 ], 5.0); ([ 5 ], 7.0) ]
    (bucket_sets h)

let test_figure7_variance1 () =
  (* P-Histogram2: {p2,p3} freq 2 (v=0); {p1,p5} freq 6 (v=1) *)
  let h = P_histogram.build ~variance:1.0 figure7 in
  Alcotest.(check (list (pair (list int) (float 1e-9))))
    "two buckets"
    [ ([ 2; 3 ], 2.0); ([ 1; 5 ], 6.0) ]
    (bucket_sets h)

let test_lookup () =
  let h = P_histogram.build ~variance:1.0 figure7 in
  Alcotest.(check (option (float 1e-9))) "p1 -> 6" (Some 6.0)
    (P_histogram.frequency h 1);
  Alcotest.(check (option (float 1e-9))) "p2 -> 2" (Some 2.0)
    (P_histogram.frequency h 2);
  Alcotest.(check (option (float 1e-9))) "unknown pid" None
    (P_histogram.frequency h 42)

let test_pid_order_is_frequency_sorted () =
  let h = P_histogram.build ~variance:0.0 figure7 in
  Alcotest.(check (list int)) "order" [ 2; 3; 1; 5 ]
    (Array.to_list (P_histogram.pid_order h))

let test_empty () =
  let h = P_histogram.build ~variance:0.0 [||] in
  Alcotest.(check int) "no buckets" 0 (List.length (P_histogram.buckets h));
  Alcotest.(check int) "no bytes" 0 (P_histogram.byte_size h)

let test_negative_variance () =
  Alcotest.(check bool) "rejected" true
    (match P_histogram.build ~variance:(-1.0) figure7 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* properties *)

let entries_gen =
  QCheck.Gen.(
    list_size (int_range 0 60)
      (pair (int_range 0 200) (int_range 1 500))
    >|= fun l ->
    (* pid indices must be distinct within a row *)
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (p, f) ->
        if Hashtbl.mem seen p then None
        else begin
          Hashtbl.add seen p ();
          Some (entry p f)
        end)
      l
    |> Array.of_list)

let arb =
  QCheck.make
    QCheck.Gen.(pair entries_gen (float_range 0.0 10.0))
    ~print:(fun (entries, v) ->
      Printf.sprintf "v=%g [%s]" v
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (fun (e : Pf_table.entry) ->
                   Printf.sprintf "(%d,%d)" e.pid_index e.frequency)
                 entries))))

let prop_variance_bound =
  QCheck.Test.make ~name:"every bucket within the variance threshold"
    ~count:300 arb (fun (entries, v) ->
      let h = P_histogram.build ~variance:v entries in
      List.for_all
        (fun (b : P_histogram.bucket) ->
          Stats.variance (Array.map Float.of_int b.frequencies) <= v +. 1e-9)
        (P_histogram.buckets h))

let prop_partition =
  QCheck.Test.make ~name:"buckets partition the input pids" ~count:300 arb
    (fun (entries, v) ->
      let h = P_histogram.build ~variance:v entries in
      let covered =
        List.concat_map
          (fun (b : P_histogram.bucket) -> Array.to_list b.pid_indices)
          (P_histogram.buckets h)
      in
      List.sort Int.compare covered
      = List.sort Int.compare
          (Array.to_list (Array.map (fun (e : Pf_table.entry) -> e.pid_index) entries)))

let prop_variance0_exact =
  QCheck.Test.make ~name:"variance 0 reproduces exact frequencies" ~count:300
    (QCheck.make entries_gen ~print:(fun a -> string_of_int (Array.length a)))
    (fun entries ->
      let h = P_histogram.build ~variance:0.0 entries in
      Array.for_all
        (fun (e : Pf_table.entry) ->
          P_histogram.frequency h e.pid_index = Some (Float.of_int e.frequency))
        entries)

let prop_total_mass_preserved =
  QCheck.Test.make ~name:"total estimated mass = total frequency" ~count:300
    arb (fun (entries, v) ->
      let h = P_histogram.build ~variance:v entries in
      let est =
        List.fold_left
          (fun acc (b : P_histogram.bucket) ->
            acc +. (b.avg_frequency *. Float.of_int (Array.length b.pid_indices)))
          0.0 (P_histogram.buckets h)
      in
      let exact =
        Array.fold_left
          (fun acc (e : Pf_table.entry) -> acc +. Float.of_int e.frequency)
          0.0 entries
      in
      Float.abs (est -. exact) < 1e-6 *. (1.0 +. exact))

let prop_memory_monotone =
  QCheck.Test.make ~name:"memory non-increasing in the variance" ~count:200
    (QCheck.make entries_gen ~print:(fun a -> string_of_int (Array.length a)))
    (fun entries ->
      let sizes =
        List.map
          (fun v -> P_histogram.byte_size (P_histogram.build ~variance:v entries))
          [ 0.0; 1.0; 2.0; 5.0; 10.0; 100.0 ]
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      non_increasing sizes)

let () =
  Alcotest.run "p_histogram"
    [
      ( "unit",
        [
          Alcotest.test_case "figure 7, variance 0" `Quick test_figure7_variance0;
          Alcotest.test_case "figure 7, variance 1" `Quick test_figure7_variance1;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "pid order" `Quick test_pid_order_is_frequency_sorted;
          Alcotest.test_case "empty row" `Quick test_empty;
          Alcotest.test_case "negative variance" `Quick test_negative_variance;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_variance_bound;
            prop_partition;
            prop_variance0_exact;
            prop_total_mass_preserved;
            prop_memory_monotone;
          ] );
    ]
