module Pattern = Xpest_xpath.Pattern
module Ast = Xpest_xpath.Ast

let pattern_testable = Alcotest.testable Pattern.pp Pattern.equal
let step axis tag : Pattern.step = { axis; tag }

let q1 =
  (* //A[/C/F]/B/{D} *)
  Pattern.v
    (Pattern.Branch
       {
         trunk = [ step Descendant "A" ];
         branch = [ step Child "C"; step Child "F" ];
         tail = [ step Child "B"; step Child "D" ];
       })
    (Pattern.In_tail 1)

let test_of_string_simple () =
  Alcotest.check pattern_testable "simple"
    (Pattern.v (Pattern.Simple [ step Descendant "A"; step Child "B" ])
       (Pattern.In_trunk 1))
    (Pattern.of_string "//A/B");
  Alcotest.check pattern_testable "marked target"
    (Pattern.v (Pattern.Simple [ step Descendant "A"; step Child "B" ])
       (Pattern.In_trunk 0))
    (Pattern.of_string "//{A}/B")

let test_of_string_branch () =
  Alcotest.check pattern_testable "branch with marked tail target" q1
    (Pattern.of_string "//A[/C/F]/B/{D}");
  Alcotest.check pattern_testable "branch target in branch"
    (Pattern.v (Pattern.shape q1) (Pattern.In_branch 1))
    (Pattern.of_string "//A[/C/{F}]/B/D");
  Alcotest.check pattern_testable "default target = last node" q1
    (Pattern.of_string "//A[/C/F]/B/D")

let test_of_string_ordered () =
  let expected =
    Pattern.v
      (Pattern.Ordered
         {
           trunk = [ step Descendant "A" ];
           first = [ step Child "C"; step Child "F" ];
           axis = Pattern.Following_sibling;
           second = [ step Child "B"; step Child "D" ];
         })
      (Pattern.In_second 0)
  in
  Alcotest.check pattern_testable "ordered"
    expected
    (Pattern.of_string "//A[/C/F/folls::{B}/D]");
  let prec =
    Pattern.v
      (Pattern.Ordered
         {
           trunk = [ step Descendant "A" ];
           first = [ step Child "C" ];
           axis = Pattern.Preceding;
           second = [ step Descendant "D" ];
         })
      (Pattern.In_second 0)
  in
  Alcotest.check pattern_testable "preceding"
    prec
    (Pattern.of_string "//A[/C/prec::{D}]")

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = Pattern.of_string s in
      Alcotest.check pattern_testable s q (Pattern.of_string (Pattern.to_string q)))
    [
      "//A/B/C";
      "//A[/C/F]/B/{D}";
      "//A[/{C}/F]/B/D";
      "//A[/C/folls::B/{D}]";
      "//A[/C/pres::{B}]";
      "//A[/C/foll::{D}]";
      "/Root/A//B";
    ]

let test_validation () =
  let fails f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "empty trunk" true
    (fails (fun () ->
         Pattern.v
           (Pattern.Branch { trunk = []; branch = [ step Child "B" ]; tail = [] })
           (Pattern.In_branch 0)));
  Alcotest.(check bool) "target outside" true
    (fails (fun () ->
         Pattern.v (Pattern.Simple [ step Child "A" ]) (Pattern.In_trunk 5)));
  Alcotest.(check bool) "ordered head must be child" true
    (fails (fun () ->
         Pattern.v
           (Pattern.Ordered
              {
                trunk = [ step Child "A" ];
                first = [ step Descendant "C" ];
                axis = Pattern.Following_sibling;
                second = [ step Child "B" ];
              })
           (Pattern.In_second 0)));
  Alcotest.(check bool) "sibling-axis second head must be child" true
    (fails (fun () ->
         Pattern.v
           (Pattern.Ordered
              {
                trunk = [ step Child "A" ];
                first = [ step Child "C" ];
                axis = Pattern.Following_sibling;
                second = [ step Descendant "B" ];
              })
           (Pattern.In_second 0)))

let test_of_string_errors () =
  let fails s =
    match Pattern.of_string s with
    | exception Invalid_argument _ -> true
    | exception Xpest_xpath.Parser.Syntax_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "two markers" true (fails "//{A}/{B}");
  Alcotest.(check bool) "wildcard outside fragment" true (fails "//*/B");
  Alcotest.(check bool) "order query with tail" true
    (fails "//A[/C/folls::B]/D");
  Alcotest.(check bool) "two predicate steps" true (fails "//A[B]/C[D]/E");
  Alcotest.(check bool) "unsupported axis" true (fails "//A/parent::B");
  Alcotest.(check bool) "nested predicate" true (fails "//A[B[C]]/D")

let test_counterpart () =
  let ordered =
    Pattern.Ordered
      {
        trunk = [ step Descendant "A" ];
        first = [ step Child "C" ];
        axis = Pattern.Following_sibling;
        second = [ step Child "B"; step Child "D" ];
      }
  in
  (match Pattern.counterpart ordered with
  | Pattern.Branch { trunk; branch; tail } ->
      Alcotest.(check int) "trunk" 1 (List.length trunk);
      Alcotest.(check int) "branch" 1 (List.length branch);
      Alcotest.(check (list string)) "tail tags" [ "B"; "D" ]
        (List.map (fun (s : Pattern.step) -> s.tag) tail)
  | _ -> Alcotest.fail "expected branch");
  (* following => descendant reattachment *)
  match
    Pattern.counterpart
      (Pattern.Ordered
         {
           trunk = [ step Descendant "A" ];
           first = [ step Child "C" ];
           axis = Pattern.Following;
           second = [ step Descendant "D" ];
         })
  with
  | Pattern.Branch { tail = [ { axis = Pattern.Descendant; tag = "D" } ]; _ } -> ()
  | _ -> Alcotest.fail "expected descendant tail"

let test_accessors () =
  Alcotest.(check string) "target tag" "D" (Pattern.target_tag q1);
  Alcotest.(check int) "size" 5 (Pattern.size q1);
  Alcotest.(check (list string)) "tags" [ "A"; "C"; "F"; "B"; "D" ]
    (Pattern.tags q1);
  Alcotest.(check (option string)) "tag_at" (Some "C")
    (Pattern.tag_at q1 (Pattern.In_branch 0));
  Alcotest.(check (option string)) "tag_at missing" None
    (Pattern.tag_at q1 (Pattern.In_first 0))

let test_to_ast () =
  Alcotest.(check string) "lowering" "//A[C/F]/B/D"
    (Ast.to_string (Pattern.to_ast q1))

let () =
  Alcotest.run "pattern"
    [
      ( "unit",
        [
          Alcotest.test_case "of_string simple" `Quick test_of_string_simple;
          Alcotest.test_case "of_string branch" `Quick test_of_string_branch;
          Alcotest.test_case "of_string ordered" `Quick test_of_string_ordered;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "counterpart" `Quick test_counterpart;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "to_ast" `Quick test_to_ast;
        ] );
    ]
