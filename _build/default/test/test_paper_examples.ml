(* End-to-end reproduction of every worked example in the paper
   (Sections 2-5) on the Figure 1 instance. *)

module Bitvec = Xpest_util.Bitvec
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler
module Summary = Xpest_synopsis.Summary
module Pf_table = Xpest_synopsis.Pf_table
module Po_table = Xpest_synopsis.Po_table
module Path_join = Xpest_estimator.Path_join
module Estimator = Xpest_estimator.Estimator

open Paper_fixture

let doc = Paper_fixture.doc
let table = Encoding_table.build doc
let labeler = Labeler.label doc table
let summary = Summary.build doc
let estimator = Estimator.create summary

let check_float = Alcotest.(check (float 1e-6))

let pid_of node = Labeler.pid labeler node

(* Find the i-th node (document order) with a tag. *)
let nth_tagged tag i = (Doc.nodes_with_tag doc tag).(i)

(* --- Section 2: the labeling scheme --- *)

let test_encoding_table () =
  Alcotest.(check int) "4 distinct paths" 4 (Encoding_table.num_paths table);
  Alcotest.(check (list (list string)))
    "paths in paper encoding order"
    [
      [ "Root"; "A"; "B"; "D" ];
      [ "Root"; "A"; "B"; "E" ];
      [ "Root"; "A"; "C"; "E" ];
      [ "Root"; "A"; "C"; "F" ];
    ]
    (Encoding_table.paths table)

let test_example_2_1 () =
  (* First leaf D has p5; first C node has p3 = or of E(p2), F(p1). *)
  let d0 = nth_tagged "D" 0 in
  Alcotest.(check string) "first D = p5" p5 (Bitvec.to_string (pid_of d0));
  (* first C in document order is the one under A(p7) with E and F *)
  let c0 = nth_tagged "C" 0 in
  Alcotest.(check string) "first C = p3" p3 (Bitvec.to_string (pid_of c0));
  Alcotest.(check string) "root = p9" p9
    (Bitvec.to_string (pid_of (Doc.root doc)))

let test_pathid_frequency_table () =
  (* Figure 2(a). *)
  let pf = Summary.pf_table (Summary.base summary) in
  let row tag =
    Array.to_list (Pf_table.entries pf tag)
    |> List.map (fun (e : Pf_table.entry) ->
           (Bitvec.to_string (Labeler.distinct_pids labeler).(e.pid_index), e.frequency))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int)))
    "A row" (List.sort compare [ (p6, 1); (p7, 1); (p8, 1) ])
    (row "A");
  Alcotest.(check (list (pair string int)))
    "B row" (List.sort compare [ (p8, 1); (p5, 3) ])
    (row "B");
  Alcotest.(check (list (pair string int)))
    "C row" (List.sort compare [ (p2, 1); (p3, 1) ])
    (row "C");
  Alcotest.(check (list (pair string int))) "D row" [ (p5, 4) ] (row "D");
  Alcotest.(check (list (pair string int)))
    "E row" (List.sort compare [ (p4, 1); (p2, 2) ])
    (row "E");
  Alcotest.(check (list (pair string int))) "F row" [ (p1, 1) ] (row "F")

let test_example_3_2 () =
  (* Figure 2(b): path-order table for B w.r.t. C: one B(p5) before C,
     two B(p5) after C. *)
  let po =
    match Summary.po_table (Summary.base summary) with
    | Some po -> po
    | None -> Alcotest.fail "order statistics missing"
  in
  let p5_index =
    match Labeler.index_of_pid labeler (bv p5) with
    | Some i -> i
    | None -> Alcotest.fail "p5 not interned"
  in
  Alcotest.(check int) "B(p5) before C" 1
    (Po_table.lookup po ~tag:"B" ~pid_index:p5_index ~other:"C" ~region:Before);
  Alcotest.(check int) "B(p5) after C" 2
    (Po_table.lookup po ~tag:"B" ~pid_index:p5_index ~other:"C" ~region:After)

(* --- Section 4: path join and order-free estimation --- *)

let join = Path_join.create summary

let pids_of result position =
  Path_join.pids result position
  |> List.map (fun (pid, f) -> (Bitvec.to_string pid, f))
  |> List.sort compare

let test_example_4_1 () =
  (* Q1 = //A[/C/F]/B/D, Figure 3(b): A {p7}, C {p3}, F {p1},
     B {p5 (freq 3)}, D {p5}. *)
  let shape =
    Pattern.Branch
      {
        trunk = [ { axis = Descendant; tag = "A" } ];
        branch = [ { axis = Child; tag = "C" }; { axis = Child; tag = "F" } ];
        tail = [ { axis = Child; tag = "B" }; { axis = Child; tag = "D" } ];
      }
  in
  let r = Path_join.run join shape in
  Alcotest.(check (list (pair string (float 1e-6))))
    "A pids" [ (p7, 1.0) ]
    (pids_of r (Pattern.In_trunk 0));
  Alcotest.(check (list (pair string (float 1e-6))))
    "C pids" [ (p3, 1.0) ]
    (pids_of r (Pattern.In_branch 0));
  Alcotest.(check (list (pair string (float 1e-6))))
    "F pids" [ (p1, 1.0) ]
    (pids_of r (Pattern.In_branch 1));
  Alcotest.(check (list (pair string (float 1e-6))))
    "B pids" [ (p5, 3.0) ]
    (pids_of r (Pattern.In_tail 0));
  Alcotest.(check (list (pair string (float 1e-6))))
    "D pids" [ (p5, 4.0) ]
    (pids_of r (Pattern.In_tail 1))

let test_example_4_2 () =
  (* //A//C: selectivity 2 for both A and C (Theorem 4.1). *)
  let q =
    Pattern.v
      (Pattern.Simple
         [ { axis = Descendant; tag = "A" }; { axis = Descendant; tag = "C" } ])
      (Pattern.In_trunk 1)
  in
  check_float "S(C)" 2.0 (Estimator.estimate estimator q);
  check_float "S(A)" 2.0 (Estimator.estimate_position estimator q (Pattern.In_trunk 0));
  (* and the estimates agree with the ground truth *)
  Alcotest.(check int) "truth C" 2 (Truth.selectivity doc q)

let test_example_4_5 () =
  (* Q2 = //C[/E]/F with target E: estimated (and true) selectivity 1. *)
  let q =
    Pattern.v
      (Pattern.Branch
         {
           trunk = [ { axis = Descendant; tag = "C" } ];
           branch = [ { axis = Child; tag = "E" } ];
           tail = [ { axis = Child; tag = "F" } ];
         })
      (Pattern.In_branch 0)
  in
  check_float "S(E)" 1.0 (Estimator.estimate estimator q);
  Alcotest.(check int) "truth E" 1 (Truth.selectivity doc q);
  (* the estimate for C is the correct answer (Example 4.3) *)
  check_float "S(C)" 1.0 (Estimator.estimate_position estimator q (Pattern.In_trunk 0))

(* --- Section 5: order axes --- *)

let q_arrow_1 =
  (* Q⃗1 = //A[/C[/F]/folls::B/D] (paper Figure 5a). *)
  Pattern.v
    (Pattern.Ordered
       {
         trunk = [ { axis = Descendant; tag = "A" } ];
         first = [ { axis = Child; tag = "C" }; { axis = Child; tag = "F" } ];
         axis = Pattern.Following_sibling;
         second = [ { axis = Child; tag = "B" }; { axis = Child; tag = "D" } ];
       })
    (Pattern.In_second 0)

let test_example_5_1 () =
  (* Target B: S = 2 * 1.3333 / 2.6667 = 1. *)
  check_float "S(B)" 1.0 (Estimator.estimate estimator q_arrow_1);
  Alcotest.(check int) "truth B" 1 (Truth.selectivity doc q_arrow_1)

let test_example_5_2 () =
  (* Target D: S = 1.3333 * 2 / 2.6667 = 1. *)
  let q = Pattern.v (Pattern.shape q_arrow_1) (Pattern.In_second 1) in
  check_float "S(D)" 1.0 (Estimator.estimate estimator q);
  Alcotest.(check int) "truth D" 1 (Truth.selectivity doc q)

let test_example_5_3 () =
  (* //A[/C/foll::D] with target D: converted via the encoding table
     to //A[/C/folls::B/D]; true and estimated selectivity 2. *)
  let q =
    Pattern.v
      (Pattern.Ordered
         {
           trunk = [ { axis = Descendant; tag = "A" } ];
           first = [ { axis = Child; tag = "C" } ];
           axis = Pattern.Following;
           second = [ { axis = Descendant; tag = "D" } ];
         })
      (Pattern.In_second 0)
  in
  Alcotest.(check int) "truth D" 2 (Truth.selectivity doc q);
  check_float "S(D)" 2.0 (Estimator.estimate estimator q)

let test_preceding_sibling_mirror () =
  (* //A[/B/pres::C] with target C: the mirror of Equation 3 reads the
     +element region.  By hand: A(p7) and A(p6) each contribute one C
     preceding a B sibling, so the answer is 2; the o-histogram values
     g(p3, B, Before) = g(p2, B, Before) = 1 make the estimate exact. *)
  let q =
    Pattern.v
      (Pattern.Ordered
         {
           trunk = [ { axis = Descendant; tag = "A" } ];
           first = [ { axis = Child; tag = "B" } ];
           axis = Pattern.Preceding_sibling;
           second = [ { axis = Child; tag = "C" } ];
         })
      (Pattern.In_second 0)
  in
  Alcotest.(check int) "truth C" 2 (Truth.selectivity doc q);
  check_float "S(C)" 2.0 (Estimator.estimate estimator q);
  (* first-branch target: Bs with a C sibling before them — the second
     B of A(p7) and the B of A(p6) *)
  let q_first = Pattern.v (Pattern.shape q) (Pattern.In_first 0) in
  Alcotest.(check int) "truth B" 2 (Truth.selectivity doc q_first);
  check_float "S(B)" 2.0 (Estimator.estimate estimator q_first)

let test_trunk_target_eq5 () =
  (* Target A in Q⃗1: Equation (5) caps by the sibling-head estimates;
     the true value is 1. *)
  let q = Pattern.v (Pattern.shape q_arrow_1) (Pattern.In_trunk 0) in
  Alcotest.(check int) "truth A" 1 (Truth.selectivity doc q);
  check_float "S(A)" 1.0 (Estimator.estimate estimator q)

let () =
  Alcotest.run "paper_examples"
    [
      ( "section2",
        [
          Alcotest.test_case "encoding table (Fig 1b)" `Quick test_encoding_table;
          Alcotest.test_case "example 2.1" `Quick test_example_2_1;
        ] );
      ( "section3",
        [
          Alcotest.test_case "pathId-frequency (Fig 2a)" `Quick
            test_pathid_frequency_table;
          Alcotest.test_case "path-order for B (Fig 2b, Ex 3.2)" `Quick
            test_example_3_2;
        ] );
      ( "section4",
        [
          Alcotest.test_case "example 4.1 (path join, Fig 3)" `Quick
            test_example_4_1;
          Alcotest.test_case "example 4.2 (simple query)" `Quick test_example_4_2;
          Alcotest.test_case "example 4.5 (branch query)" `Quick test_example_4_5;
        ] );
      ( "section5",
        [
          Alcotest.test_case "example 5.1 (folls, target sibling)" `Quick
            test_example_5_1;
          Alcotest.test_case "example 5.2 (folls, deep target)" `Quick
            test_example_5_2;
          Alcotest.test_case "example 5.3 (following conversion)" `Quick
            test_example_5_3;
          Alcotest.test_case "preceding-sibling mirror" `Quick
            test_preceding_sibling_mirror;
          Alcotest.test_case "equation 5 (trunk target)" `Quick
            test_trunk_target_eq5;
        ] );
    ]
