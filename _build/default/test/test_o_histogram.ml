module O_histogram = Xpest_synopsis.O_histogram
module Po_table = Xpest_synopsis.Po_table

let cell pid_index other_tag region count : Po_table.cell =
  { pid_index; other_tag; region; count }

(* A tiny grid: 3 tags (codes 0,1,2 = alphabetic ranks 0,1,2), pid
   order [| 10; 11; 12 |] (columns 0,1,2). *)
let pid_order = [| 10; 11; 12 |]
let rank i = i

let build ?(variance = 0.0) cells =
  O_histogram.build ~variance ~ntags:3 ~tag_alpha_rank:rank ~pid_order cells

let lookup h pid other region = O_histogram.lookup h ~pid_index:pid ~other_tag:other ~region

let test_exact_at_variance0 () =
  let cells =
    [
      cell 10 0 Po_table.Before 5;
      cell 11 0 Po_table.Before 5;
      cell 10 1 Po_table.After 2;
      cell 12 2 Po_table.After 9;
    ]
  in
  let h = build cells in
  Alcotest.(check (float 1e-9)) "cell 1" 5.0 (lookup h 10 0 Po_table.Before);
  Alcotest.(check (float 1e-9)) "cell 2" 5.0 (lookup h 11 0 Po_table.Before);
  Alcotest.(check (float 1e-9)) "cell 3" 2.0 (lookup h 10 1 Po_table.After);
  Alcotest.(check (float 1e-9)) "cell 4" 9.0 (lookup h 12 2 Po_table.After);
  Alcotest.(check (float 1e-9)) "empty cell" 0.0 (lookup h 12 0 Po_table.Before);
  Alcotest.(check (float 1e-9)) "unknown pid" 0.0 (lookup h 99 0 Po_table.Before)

let test_row_merging () =
  (* two adjacent equal cells on one row collapse into one box at v=0 *)
  let cells =
    [ cell 10 0 Po_table.Before 4; cell 11 0 Po_table.Before 4 ]
  in
  let h = build cells in
  Alcotest.(check int) "one box" 1 (List.length (O_histogram.boxes h));
  Alcotest.(check int) "20 bytes" 20 (O_histogram.byte_size h)

let test_variance_merges_more () =
  let cells =
    [ cell 10 0 Po_table.Before 4; cell 11 0 Po_table.Before 6 ]
  in
  let exact = build ~variance:0.0 cells in
  let loose = build ~variance:1.0 cells in
  Alcotest.(check int) "v=0: two boxes" 2 (List.length (O_histogram.boxes exact));
  Alcotest.(check int) "v=1: one box" 1 (List.length (O_histogram.boxes loose));
  Alcotest.(check (float 1e-9)) "average" 5.0
    (lookup loose 10 0 Po_table.Before)

let test_box_extension_downward () =
  (* a 2x2 block of equal values becomes a single box *)
  let cells =
    [
      cell 10 0 Po_table.Before 3;
      cell 11 0 Po_table.Before 3;
      cell 10 1 Po_table.Before 3;
      cell 11 1 Po_table.Before 3;
    ]
  in
  let h = build cells in
  Alcotest.(check int) "one box" 1 (List.length (O_histogram.boxes h));
  List.iter
    (fun (b : O_histogram.box) ->
      Alcotest.(check int) "x span" 1 (b.x_end - b.x_start);
      Alcotest.(check int) "y span" 1 (b.y_end - b.y_start))
    (O_histogram.boxes h)

let test_regions_disjoint () =
  (* same (pid, tag) in the two regions must not collide *)
  let cells =
    [ cell 10 0 Po_table.Before 1; cell 10 0 Po_table.After 7 ]
  in
  let h = build cells in
  Alcotest.(check (float 1e-9)) "before" 1.0 (lookup h 10 0 Po_table.Before);
  Alcotest.(check (float 1e-9)) "after" 7.0 (lookup h 10 0 Po_table.After)

let test_rejects_foreign_pid () =
  Alcotest.(check bool) "foreign pid" true
    (match build [ cell 99 0 Po_table.Before 1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* properties *)

let cells_gen =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (pair (pair (int_range 0 4) (int_range 0 2))
         (pair (oneofl [ Po_table.Before; Po_table.After ]) (int_range 1 30)))
    >|= fun raw ->
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun ((pid, tag), (region, count)) ->
        if Hashtbl.mem seen (pid, tag, region) then None
        else begin
          Hashtbl.add seen (pid, tag, region) ();
          Some (cell pid tag region count)
        end)
      raw)

let arb_cells =
  QCheck.make
    QCheck.Gen.(pair cells_gen (float_range 0.0 8.0))
    ~print:(fun (cells, v) ->
      Printf.sprintf "v=%g n=%d" v (List.length cells))

let wide_pid_order = [| 0; 1; 2; 3; 4 |]

let build_wide ~variance cells =
  O_histogram.build ~variance ~ntags:3 ~tag_alpha_rank:rank
    ~pid_order:wide_pid_order cells

let prop_exact_at_v0 =
  QCheck.Test.make ~name:"variance 0 lookups are exact" ~count:400 arb_cells
    (fun (cells, _) ->
      let h = build_wide ~variance:0.0 cells in
      List.for_all
        (fun (c : Po_table.cell) ->
          O_histogram.lookup h ~pid_index:c.pid_index ~other_tag:c.other_tag
            ~region:c.region
          = Float.of_int c.count)
        cells)

let prop_all_cells_covered =
  QCheck.Test.make ~name:"every non-empty cell is inside some box" ~count:400
    arb_cells (fun (cells, v) ->
      let h = build_wide ~variance:v cells in
      List.for_all
        (fun (c : Po_table.cell) ->
          O_histogram.lookup h ~pid_index:c.pid_index ~other_tag:c.other_tag
            ~region:c.region
          > 0.0)
        cells)

let prop_boxes_disjoint =
  QCheck.Test.make ~name:"boxes never overlap" ~count:400 arb_cells
    (fun (cells, v) ->
      let h = build_wide ~variance:v cells in
      let boxes = Array.of_list (O_histogram.boxes h) in
      let overlap (a : O_histogram.box) (b : O_histogram.box) =
        a.x_start <= b.x_end && b.x_start <= a.x_end && a.y_start <= b.y_end
        && b.y_start <= a.y_end
      in
      let n = Array.length boxes in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if overlap boxes.(i) boxes.(j) then ok := false
        done
      done;
      !ok)

let prop_memory_bounds =
  (* Greedy 2-D boxing is not nested across variances, so memory is
     not strictly monotone; but an unbounded variance can never need
     more boxes than the exact histogram, and no histogram needs more
     boxes than non-empty cells. *)
  QCheck.Test.make ~name:"memory bounds across variances" ~count:200
    (QCheck.make cells_gen ~print:(fun c -> string_of_int (List.length c)))
    (fun cells ->
      let boxes v = List.length (O_histogram.boxes (build_wide ~variance:v cells)) in
      boxes 1000.0 <= boxes 0.0
      && List.for_all (fun v -> boxes v <= List.length cells) [ 0.0; 2.0; 8.0 ])

let () =
  Alcotest.run "o_histogram"
    [
      ( "unit",
        [
          Alcotest.test_case "exact at variance 0" `Quick test_exact_at_variance0;
          Alcotest.test_case "row merging" `Quick test_row_merging;
          Alcotest.test_case "variance merges more" `Quick
            test_variance_merges_more;
          Alcotest.test_case "downward box extension" `Quick
            test_box_extension_downward;
          Alcotest.test_case "regions disjoint" `Quick test_regions_disjoint;
          Alcotest.test_case "foreign pid rejected" `Quick
            test_rejects_foreign_pid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_exact_at_v0;
            prop_all_cells_covered;
            prop_boxes_disjoint;
            prop_memory_bounds;
          ] );
    ]
