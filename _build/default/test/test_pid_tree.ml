module Bitvec = Xpest_util.Bitvec
module Pid_tree = Xpest_encoding.Pid_tree
module Labeler = Xpest_encoding.Labeler
module Encoding_table = Xpest_encoding.Encoding_table

let bv = Bitvec.of_string

(* the paper's Figure 6 input: the 9 pids of Figure 1(c) *)
let paper_pids =
  List.map bv
    [ "0001"; "0010"; "0011"; "0100"; "1000"; "1010"; "1011"; "1100"; "1111" ]

let tree = Pid_tree.build paper_pids

let test_basics () =
  Alcotest.(check int) "9 pids" 9 (Pid_tree.num_pids tree);
  Alcotest.(check int) "width 4" 4 (Pid_tree.bit_width tree)

let test_figure6_ids () =
  (* ids are assigned in lexicographic bit-string order; Figure 6's
     leaves are numbered 1..9 left to right *)
  let expected =
    [
      ("0001", 2); ("0010", 3); ("0011", 4); ("0100", 5); ("1000", 6);
      ("1010", 7); ("1011", 8); ("1100", 9);
    ]
  in
  (* "0000" doesn't exist; the smallest is "0001".  Check the order is
     strictly increasing lexicographically. *)
  ignore expected;
  let ids = List.filter_map (Pid_tree.id_of_pid tree) paper_pids in
  Alcotest.(check int) "all present" 9 (List.length ids);
  Alcotest.(check (list int)) "ids are a permutation of 1..9"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort Int.compare ids);
  (* lexicographic: 0001 < 0010 < 0011 < 0100 < 1000 < ... *)
  Alcotest.(check (option int)) "0001 first" (Some 1)
    (Pid_tree.id_of_pid tree (bv "0001"));
  Alcotest.(check (option int)) "1111 last" (Some 9)
    (Pid_tree.id_of_pid tree (bv "1111"))

let test_lookup_roundtrip () =
  List.iter
    (fun pid ->
      match Pid_tree.id_of_pid tree pid with
      | Some id ->
          Alcotest.(check string)
            (Printf.sprintf "pid_of_id %d" id)
            (Bitvec.to_string pid)
            (Bitvec.to_string (Pid_tree.pid_of_id tree id))
      | None -> Alcotest.fail "missing pid")
    paper_pids

let test_unknown_pid () =
  Alcotest.(check (option int)) "absent pid" None
    (Pid_tree.id_of_pid tree (bv "0110"))

let test_compression_saves_space () =
  Alcotest.(check bool) "compression monotone" true
    (Pid_tree.node_count tree <= Pid_tree.uncompressed_node_count tree);
  Alcotest.(check bool) "figure 6 actually compresses" true
    (Pid_tree.node_count tree < Pid_tree.uncompressed_node_count tree)

let test_errors () =
  Alcotest.(check bool) "empty input" true
    (match Pid_tree.build [] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "mixed widths" true
    (match Pid_tree.build [ bv "01"; bv "011" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "id out of range" true
    (match Pid_tree.pid_of_id tree 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* properties *)

let pids_gen =
  QCheck.Gen.(
    int_range 2 120 >>= fun width ->
    list_size (int_range 1 40)
      (array_size (return width) bool >|= Bitvec.of_bits)
    >|= fun pids ->
    (* avoid the all-zero vector: a real pid always has a bit set *)
    List.filter (fun v -> not (Bitvec.is_zero v)) pids)

let arb_pids =
  QCheck.make pids_gen
    ~print:(fun l -> String.concat "," (List.map Bitvec.to_string l))

let prop_roundtrip =
  QCheck.Test.make ~name:"id_of_pid / pid_of_id roundtrip" ~count:300 arb_pids
    (fun pids ->
      match pids with
      | [] -> QCheck.assume_fail ()
      | _ ->
          let t = Pid_tree.build pids in
          List.for_all
            (fun pid ->
              match Pid_tree.id_of_pid t pid with
              | Some id -> Bitvec.equal pid (Pid_tree.pid_of_id t id)
              | None -> false)
            pids)

let prop_ids_dense_and_lexicographic =
  QCheck.Test.make ~name:"ids dense, ordered lexicographically" ~count:300
    arb_pids (fun pids ->
      match pids with
      | [] -> QCheck.assume_fail ()
      | _ ->
          let t = Pid_tree.build pids in
          let distinct = List.sort_uniq Bitvec.compare pids in
          let by_lex =
            List.sort
              (fun a b -> String.compare (Bitvec.to_string a) (Bitvec.to_string b))
              distinct
          in
          List.for_all2
            (fun pid expected_id -> Pid_tree.id_of_pid t pid = Some expected_id)
            by_lex
            (List.init (List.length by_lex) (fun i -> i + 1)))

let prop_compression_lossless =
  QCheck.Test.make ~name:"compression preserves every lookup" ~count:300
    arb_pids (fun pids ->
      match pids with
      | [] -> QCheck.assume_fail ()
      | _ ->
          let t = Pid_tree.build pids in
          List.init (Pid_tree.num_pids t) (fun i -> i + 1)
          |> List.for_all (fun id ->
                 Pid_tree.id_of_pid t (Pid_tree.pid_of_id t id) = Some id))

let prop_real_dataset =
  QCheck.Test.make ~name:"roundtrip on a real labeling" ~count:5
    (QCheck.make (QCheck.Gen.int_range 1 1000) ~print:string_of_int)
    (fun seed ->
      let doc =
        Xpest_xml.Doc.of_tree (Xpest_datasets.Ssplays.generate ~plays:1 ~seed ())
      in
      let table = Encoding_table.build doc in
      let lab = Labeler.label doc table in
      let pids = Array.to_list (Labeler.distinct_pids lab) in
      let t = Pid_tree.build pids in
      List.for_all
        (fun pid ->
          match Pid_tree.id_of_pid t pid with
          | Some id -> Bitvec.equal pid (Pid_tree.pid_of_id t id)
          | None -> false)
        pids)

let () =
  Alcotest.run "pid_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "figure 6 ids" `Quick test_figure6_ids;
          Alcotest.test_case "lookup roundtrip" `Quick test_lookup_roundtrip;
          Alcotest.test_case "unknown pid" `Quick test_unknown_pid;
          Alcotest.test_case "compression" `Quick test_compression_saves_space;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_ids_dense_and_lexicographic;
            prop_compression_lossless;
            prop_real_dataset;
          ] );
    ]
