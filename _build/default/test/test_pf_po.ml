module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler
module Pf_table = Xpest_synopsis.Pf_table
module Po_table = Xpest_synopsis.Po_table

let doc = Paper_fixture.doc
let labeler = Labeler.label doc (Encoding_table.build doc)
let pf = Pf_table.build labeler
let po = Po_table.build labeler

let test_pf_totals () =
  Alcotest.(check int) "A total" 3 (Pf_table.total_frequency pf "A");
  Alcotest.(check int) "B total" 4 (Pf_table.total_frequency pf "B");
  Alcotest.(check int) "D total" 4 (Pf_table.total_frequency pf "D");
  Alcotest.(check int) "Root total" 1 (Pf_table.total_frequency pf "Root");
  Alcotest.(check int) "unknown" 0 (Pf_table.total_frequency pf "Z")

let test_pf_totals_equal_doc_counts () =
  List.iter
    (fun tag ->
      Alcotest.(check int) tag
        (Array.length (Doc.nodes_with_tag doc tag))
        (Pf_table.total_frequency pf tag))
    (Pf_table.tags pf)

let test_pf_entry_count () =
  (* 7 tags; A has 3 pids, B 2, C 2, D 1, E 2, F 1, Root 1 = 12 pairs *)
  Alcotest.(check int) "12 entries" 12 (Pf_table.num_entries pf);
  Alcotest.(check int) "byte size" (12 * 6) (Pf_table.byte_size pf)

let test_po_both_sides () =
  (* an element between two same-tag siblings is counted in both
     regions (paper note after Example 3.2): C under A(p7) is between
     two Bs *)
  let p3 =
    match Labeler.index_of_pid labeler (Paper_fixture.bv Paper_fixture.p3) with
    | Some i -> i
    | None -> Alcotest.fail "p3 missing"
  in
  Alcotest.(check int) "C(p3) before B" 1
    (Po_table.lookup po ~tag:"C" ~pid_index:p3 ~other:"B" ~region:Before);
  Alcotest.(check int) "C(p3) after B" 1
    (Po_table.lookup po ~tag:"C" ~pid_index:p3 ~other:"B" ~region:After)

let test_po_no_self_counting () =
  (* D's are only children in B(p5) groups except B(p8)=DE: D before E
     once (B(p8): children D then E) *)
  let p5 =
    match Labeler.index_of_pid labeler (Paper_fixture.bv Paper_fixture.p5) with
    | Some i -> i
    | None -> Alcotest.fail "p5 missing"
  in
  Alcotest.(check int) "D(p5) before E" 1
    (Po_table.lookup po ~tag:"D" ~pid_index:p5 ~other:"E" ~region:Before);
  Alcotest.(check int) "D(p5) after E" 0
    (Po_table.lookup po ~tag:"D" ~pid_index:p5 ~other:"E" ~region:After)

let test_po_cells_consistent_with_lookup () =
  List.iter
    (fun tag ->
      List.iter
        (fun (c : Po_table.cell) ->
          Alcotest.(check int) "cell = lookup" c.count
            (Po_table.lookup po ~tag ~pid_index:c.pid_index
               ~other:(Doc.tag_name doc c.other_tag)
               ~region:c.region))
        (Po_table.cells po tag))
    (Pf_table.tags pf)

(* brute-force reference for the po-table on random docs *)
let naive_po doc lab ~tag ~pid_index ~other ~region =
  let count = ref 0 in
  Doc.iter doc (fun x ->
      if Doc.tag doc x = tag && Labeler.pid_index lab x = pid_index then begin
        let rec siblings next acc n =
          match next n with Some s -> siblings next (s :: acc) s | None -> acc
        in
        let side =
          match (region : Po_table.region) with
          | Before -> siblings (Doc.next_sibling doc) [] x
          | After -> siblings (Doc.prev_sibling doc) [] x
        in
        if List.exists (fun s -> Doc.tag doc s = other) side then incr count
      end);
  !count

let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  sized_size (int_range 1 40) @@ fix (fun self n ->
      if n <= 1 then tag >|= Tree.leaf
      else
        tag >>= fun t ->
        list_size (int_range 0 5) (self (n / 4)) >|= fun cs -> Tree.elem t cs)

let prop_po_matches_naive =
  QCheck.Test.make ~name:"po-table = brute force" ~count:150
    (QCheck.make tree_gen ~print:(Format.asprintf "%a" Tree.pp))
    (fun t ->
      let doc = Doc.of_tree t in
      let lab = Labeler.label doc (Encoding_table.build doc) in
      let po = Po_table.build lab in
      let tags = Array.to_list (Doc.tags doc) in
      List.for_all
        (fun tag ->
          List.for_all
            (fun other ->
              List.for_all
                (fun region ->
                  List.init (Labeler.num_distinct lab) Fun.id
                  |> List.for_all (fun pid_index ->
                         Po_table.lookup po ~tag ~pid_index ~other ~region
                         = naive_po doc lab ~tag ~pid_index ~other ~region))
                [ Po_table.Before; Po_table.After ])
            tags)
        tags)

let prop_pf_totals =
  QCheck.Test.make ~name:"pf totals = tag counts" ~count:150
    (QCheck.make tree_gen ~print:(Format.asprintf "%a" Tree.pp))
    (fun t ->
      let doc = Doc.of_tree t in
      let lab = Labeler.label doc (Encoding_table.build doc) in
      let pf = Pf_table.build lab in
      List.for_all
        (fun tag ->
          Pf_table.total_frequency pf tag
          = Array.length (Doc.nodes_with_tag doc tag))
        (Pf_table.tags pf))

let () =
  Alcotest.run "pf_po"
    [
      ( "unit",
        [
          Alcotest.test_case "pf totals" `Quick test_pf_totals;
          Alcotest.test_case "pf totals = doc counts" `Quick
            test_pf_totals_equal_doc_counts;
          Alcotest.test_case "pf entry count" `Quick test_pf_entry_count;
          Alcotest.test_case "po counts both sides" `Quick test_po_both_sides;
          Alcotest.test_case "po directionality" `Quick test_po_no_self_counting;
          Alcotest.test_case "po cells = lookup" `Quick
            test_po_cells_consistent_with_lookup;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_po_matches_naive; prop_pf_totals ] );
    ]
