module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Stats = Xpest_util.Stats
module Workload = Xpest_workload.Workload

let estimator_for doc = Estimator.create (Summary.build doc)

(* ------------------------------------------------------------------ *)
(* Unit behaviour beyond the paper's worked examples (covered in
   test_paper_examples). *)

let doc = Paper_fixture.doc
let est = estimator_for doc

let check_est name expected q =
  Alcotest.(check (float 1e-6))
    name expected
    (Estimator.estimate est (Pattern.of_string q))

let test_simple_queries_exact () =
  check_est "//D" 4.0 "//{D}";
  check_est "//B/D" 4.0 "//B/{D}";
  check_est "/Root/A" 3.0 "/Root/{A}";
  check_est "//A/C/E" 2.0 "//A/C/{E}"

let test_negative_queries () =
  check_est "//F/D impossible" 0.0 "//F/{D}";
  check_est "unknown tag" 0.0 "//Zebra/{D}";
  check_est "impossible branch" 0.0 "//D[/E]/{F}"

let test_trunk_upper_bound () =
  (* Equation 5 never exceeds the order-free estimate *)
  let ordered = Pattern.of_string "//{A}[/C/folls::B/D]" in
  let plain = Pattern.of_string "//{A}[/C]/B/D" in
  Alcotest.(check bool) "min-capped" true
    (Estimator.estimate est ordered <= Estimator.estimate est plain +. 1e-9)

let test_estimate_position_matches_target_variants () =
  let q = Pattern.of_string "//A[/C/F]/B/{D}" in
  List.iter
    (fun pos ->
      let retargeted = Pattern.v (Pattern.shape q) pos in
      Alcotest.(check (float 1e-9))
        "estimate_position = estimate of retargeted pattern"
        (Estimator.estimate est retargeted)
        (Estimator.estimate_position est q pos))
    [ Pattern.In_trunk 0; Pattern.In_branch 0; Pattern.In_branch 1;
      Pattern.In_tail 0; Pattern.In_tail 1 ]

let test_histogram_degrades_gracefully () =
  (* higher variance: different numbers, but still finite and
     non-negative *)
  let summary = Summary.build ~p_variance:10.0 ~o_variance:10.0 doc in
  let est = Estimator.create summary in
  List.iter
    (fun q ->
      let v = Estimator.estimate est (Pattern.of_string q) in
      Alcotest.(check bool) (q ^ " finite & >= 0") true
        (Float.is_finite v && v >= 0.0))
    [ "//{D}"; "//A[/C/F]/B/{D}"; "//A[/C/folls::{B}/D]"; "//A[/C/foll::{D}]" ]

let test_explain () =
  let q = Pattern.of_string "//A[/C/F/folls::{B}/D]" in
  let e = Estimator.explain est q in
  Alcotest.(check (float 1e-9)) "same value as estimate"
    (Estimator.estimate est q) e.Estimator.value;
  Alcotest.(check bool) "non-empty derivation" true (e.Estimator.derivation <> []);
  let mentions needle =
    List.exists
      (fun line ->
        let n = String.length needle in
        let rec go i =
          i + n <= String.length line
          && (String.sub line i n = needle || go (i + 1))
        in
        go 0)
      e.Estimator.derivation
  in
  Alcotest.(check bool) "mentions equation 2" true (mentions "equation 2");
  Alcotest.(check bool) "mentions the o-histogram" true (mentions "o-histogram");
  (* estimator still works after tracing *)
  Alcotest.(check (float 1e-9)) "post-explain estimate intact"
    e.Estimator.value (Estimator.estimate est q);
  (* trunk-target explanation goes through equation 5 *)
  let e5 =
    Estimator.explain est (Pattern.v (Pattern.shape q) (Pattern.In_trunk 0))
  in
  Alcotest.(check bool) "mentions equation 5" true
    (List.exists
       (fun line -> String.length line >= 10 && String.sub line 0 10 = "equation 5")
       e5.Estimator.derivation)

(* ------------------------------------------------------------------ *)
(* Accuracy statistics on generated datasets at tiny scale: exact
   summaries must reproduce the paper's "very low error" claims. *)

let accuracy_harness name ~simple_bound gen_doc =
  let doc = gen_doc () in
  let config =
    { Workload.default_config with num_simple = 150; num_branch = 150 }
  in
  let w = Workload.generate ~config doc in
  let est = estimator_for doc in
  let mre items =
    match items with
    | [] -> 0.0
    | _ ->
        Stats.mean
          (Array.of_list
             (List.map
                (fun (it : Workload.item) ->
                  Stats.relative_error
                    ~actual:(Float.of_int it.actual)
                    ~estimate:(Estimator.estimate est it.pattern))
                items))
  in
  (* Theorem 4.1 gives exact simple queries on non-recursive data; on
     recursive data (XMark) distinct-depth occurrences of one tag can
     share a path id, leaving a small residual. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: simple error <= %.0f%%" name (100. *. simple_bound))
    true
    (mre w.simple <= simple_bound);
  Alcotest.(check bool) (name ^ ": branch error < 10%") true
    (mre w.branch < 0.10);
  Alcotest.(check bool) (name ^ ": order (branch target) error < 15%") true
    (mre w.order_branch_target < 0.15);
  Alcotest.(check bool) (name ^ ": order (trunk target) error < 10%") true
    (mre w.order_trunk_target < 0.10)

let test_accuracy_ssplays () =
  accuracy_harness "ssplays" ~simple_bound:0.0 (fun () ->
      Doc.of_tree (Xpest_datasets.Ssplays.generate ~plays:2 ~seed:5 ()))

let test_accuracy_dblp () =
  accuracy_harness "dblp" ~simple_bound:0.0 (fun () ->
      Doc.of_tree (Xpest_datasets.Dblp.generate ~records:600 ~seed:5 ()))

let test_accuracy_xmark () =
  accuracy_harness "xmark" ~simple_bound:0.08 (fun () ->
      Doc.of_tree (Xpest_datasets.Xmark.generate ~scale:0.01 ~seed:5 ()))

(* ------------------------------------------------------------------ *)
(* Properties. *)

let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d" ] in
  sized_size (int_range 1 35) @@ fix (fun self n ->
      if n <= 1 then tag >|= Tree.leaf
      else
        tag >>= fun t ->
        list_size (int_range 0 4) (self (n / 4)) >|= fun cs -> Tree.elem t cs)

let spine_gen len =
  let open QCheck.Gen in
  list_size (return len)
    (pair (oneofl [ Pattern.Child; Pattern.Descendant ]) (oneofl [ "a"; "b"; "c"; "d" ]))
  >|= List.map (fun (axis, tag) -> Pattern.{ axis; tag })

let pattern_gen =
  let open QCheck.Gen in
  let child_head spine =
    match spine with
    | (s : Pattern.step) :: rest -> { s with Pattern.axis = Pattern.Child } :: rest
    | [] -> []
  in
  oneof
    [
      ( int_range 1 3 >>= spine_gen >|= fun s ->
        Pattern.v (Pattern.Simple s) (Pattern.In_trunk (List.length s - 1)) );
      ( triple (spine_gen 1) (spine_gen 1) (spine_gen 2)
      >|= fun (trunk, branch, tail) ->
        Pattern.v (Pattern.Branch { trunk; branch; tail }) (Pattern.In_tail 1) );
      ( triple (spine_gen 1) (spine_gen 1) (spine_gen 2)
      >>= fun (trunk, first, second) ->
        oneofl [ Pattern.Following_sibling; Pattern.Preceding_sibling ]
        >>= fun axis ->
        oneofl
          [ Pattern.In_trunk 0; Pattern.In_first 0; Pattern.In_second 0;
            Pattern.In_second 1 ]
        >|= fun pos ->
        Pattern.v
          (Pattern.Ordered
             { trunk; first = child_head first; axis; second = child_head second })
          pos );
    ]

let arb =
  QCheck.make
    QCheck.Gen.(pair tree_gen pattern_gen)
    ~print:(fun (t, p) ->
      Format.asprintf "%a |- %s" Tree.pp t (Pattern.to_string p))

let prop_estimates_well_formed =
  QCheck.Test.make ~name:"estimates are finite and non-negative" ~count:500
    arb (fun (tree, pattern) ->
      let est = estimator_for (Doc.of_tree tree) in
      let v = Estimator.estimate est pattern in
      Float.is_finite v && v >= 0.0)

let prop_zero_actual_not_wildly_positive =
  (* if the pattern genuinely has no match, the path join should kill
     at least the fully impossible tag combinations; we only require
     well-formedness plus: estimate of an unsatisfiable TAG (absent
     from the doc) is 0 *)
  QCheck.Test.make ~name:"absent tag estimates to 0" ~count:200
    (QCheck.make tree_gen ~print:(Format.asprintf "%a" Tree.pp))
    (fun tree ->
      let est = estimator_for (Doc.of_tree tree) in
      Estimator.estimate est (Pattern.of_string "//zzz/{a}") = 0.0
      && Estimator.estimate est (Pattern.of_string "//a/{zzz}") = 0.0)

let () =
  Alcotest.run "estimator"
    [
      ( "unit",
        [
          Alcotest.test_case "simple exact" `Quick test_simple_queries_exact;
          Alcotest.test_case "negative queries" `Quick test_negative_queries;
          Alcotest.test_case "equation 5 caps" `Quick test_trunk_upper_bound;
          Alcotest.test_case "estimate_position" `Quick
            test_estimate_position_matches_target_variants;
          Alcotest.test_case "histogram degradation" `Quick
            test_histogram_degrades_gracefully;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "ssplays" `Quick test_accuracy_ssplays;
          Alcotest.test_case "dblp" `Quick test_accuracy_dblp;
          Alcotest.test_case "xmark" `Quick test_accuracy_xmark;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_estimates_well_formed; prop_zero_actual_not_wildly_positive ] );
    ]
