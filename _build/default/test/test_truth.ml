module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth

(* ------------------------------------------------------------------ *)
(* Brute-force reference: enumerate all embeddings explicitly.         *)

let axis_candidates doc from (axis : Pattern.axis) tag =
  match axis with
  | Child -> List.filter (fun c -> Doc.tag doc c = tag) (Doc.children doc from)
  | Descendant ->
      let last = Doc.subtree_last doc from in
      List.filter
        (fun n -> Doc.tag doc n = tag)
        (List.init (last - from) (fun i -> from + 1 + i))

(* All embeddings of a spine starting from [from]; each embedding is
   the list of bound nodes in step order. *)
let rec spine_embeddings doc from (spine : Pattern.spine) =
  match spine with
  | [] -> [ [] ]
  | s :: rest ->
      List.concat_map
        (fun n ->
          List.map (fun tail -> n :: tail) (spine_embeddings doc n rest))
        (axis_candidates doc from s.axis s.tag)

let anchored_embeddings doc (spine : Pattern.spine) =
  match spine with
  | [] -> [ [] ]
  | s :: rest ->
      let heads =
        match s.axis with
        | Pattern.Child ->
            if Doc.tag doc (Doc.root doc) = s.tag then [ Doc.root doc ] else []
        | Pattern.Descendant ->
            List.filter
              (fun n -> Doc.tag doc n = s.tag)
              (List.init (Doc.size doc) Fun.id)
      in
      List.concat_map
        (fun n -> List.map (fun tail -> n :: tail) (spine_embeddings doc n rest))
        heads

let order_ok doc (axis : Pattern.order_axis) y1 y2 =
  match axis with
  | Following_sibling -> Doc.parent doc y1 = Doc.parent doc y2 && y1 < y2
  | Preceding_sibling -> Doc.parent doc y1 = Doc.parent doc y2 && y2 < y1
  | Following -> y2 > Doc.subtree_last doc y1
  | Preceding -> Doc.subtree_last doc y2 < y1

module Iset = Set.Make (Int)

let naive_matches doc (q : Pattern.t) =
  let collect = ref Iset.empty in
  let add_embedding pick = collect := Iset.add pick !collect in
  let target = Pattern.target q in
  (match Pattern.shape q with
  | Pattern.Simple spine ->
      List.iter
        (fun emb ->
          match target with
          | Pattern.In_trunk i -> add_embedding (List.nth emb i)
          | _ -> failwith "bad position")
        (anchored_embeddings doc spine)
  | Pattern.Branch { trunk; branch; tail } ->
      List.iter
        (fun temb ->
          let last = List.nth temb (List.length temb - 1) in
          let bembs = spine_embeddings doc last branch in
          let tembs = spine_embeddings doc last tail in
          List.iter
            (fun bemb ->
              List.iter
                (fun taemb ->
                  match target with
                  | Pattern.In_trunk i -> add_embedding (List.nth temb i)
                  | Pattern.In_branch i -> add_embedding (List.nth bemb i)
                  | Pattern.In_tail i -> add_embedding (List.nth taemb i)
                  | Pattern.In_first _ | Pattern.In_second _ ->
                      failwith "bad position")
                tembs)
            bembs)
        (anchored_embeddings doc trunk)
  | Pattern.Ordered { trunk; first; axis; second } ->
      List.iter
        (fun temb ->
          let last = List.nth temb (List.length temb - 1) in
          let fembs = spine_embeddings doc last first in
          let sembs = spine_embeddings doc last second in
          List.iter
            (fun femb ->
              List.iter
                (fun semb ->
                  if order_ok doc axis (List.hd femb) (List.hd semb) then
                    match target with
                    | Pattern.In_trunk i -> add_embedding (List.nth temb i)
                    | Pattern.In_first i -> add_embedding (List.nth femb i)
                    | Pattern.In_second i -> add_embedding (List.nth semb i)
                    | Pattern.In_branch _ | Pattern.In_tail _ ->
                        failwith "bad position")
                sembs)
            fembs)
        (anchored_embeddings doc trunk));
  Iset.elements !collect

(* ------------------------------------------------------------------ *)
(* Hand-checked cases on a small fixture.                              *)

let doc =
  Doc.of_tree
    Tree.(
      elem "a"
        [
          elem "b" [ leaf "d"; leaf "e" ];
          elem "c" [ leaf "e"; elem "b" [ leaf "d" ] ];
          elem "b" [ leaf "e"; leaf "d" ];
        ])
(* ids: a=0, b=1, d=2, e=3, c=4, e=5, b=6, d=7, b=8, e=9, d=10 *)

let q s = Pattern.of_string s
let check_sel name expected pattern =
  Alcotest.(check int) name expected (Truth.selectivity doc (q pattern))

let test_simple () =
  check_sel "//b" 3 "//{b}";
  check_sel "//b/d" 3 "//b/{d}";
  check_sel "//b/d target b" 3 "//{b}/d";
  check_sel "/a/b" 2 "/a/{b}";
  check_sel "//c//d" 1 "//c//{d}";
  check_sel "negative" 0 "//d/{e}"

let test_branch () =
  check_sel "//b[/e]/d target d" 2 "//b[/e]/{d}";
  check_sel "//b[/e]/d target b" 2 "//{b}[/e]/d";
  check_sel "//b[/e]/d target e" 2 "//b[/{e}]/d";
  check_sel "//a[/c]/b" 2 "//a[/c]/{b}"

let test_ordered_sibling () =
  (* b(1) children: d,e ; b(8) children: e,d ; b(6): d only *)
  check_sel "d folls e" 1 "//b[/d/folls::{e}]";
  check_sel "e folls d" 1 "//b[/e/folls::{d}]";
  check_sel "d pres e target e" 1 "//b[/d/pres::{e}]";
  (* pres: d preceded by e: in b(8): e(9) d(10): target e must precede d *)
  check_sel "target trunk folls" 1 "//{b}[/d/folls::e]";
  check_sel "c then b siblings of a" 1 "//a[/c/folls::{b}]"

let test_ordered_nonsibling () =
  (* following: //a[/b/foll::d] : d after entire first b subtree *)
  check_sel "foll d" 2 "//a[/b/foll::{d}]";
  (* preceding b(8): d(2) and d(7) lie fully before it *)
  check_sel "prec d" 2 "//a[/b/prec::{d}]"

let test_matches_are_sorted_nodes () =
  let m = Truth.matches doc (q "//b/{d}") in
  Alcotest.(check (list int)) "document order" [ 2; 7; 10 ] m

let test_all_selectivities () =
  let all = Truth.all_selectivities doc (q "//b[/e]/{d}") in
  Alcotest.(check int) "3 positions" 3 (List.length all);
  List.iter
    (fun (pos, count) ->
      match pos with
      | Pattern.In_trunk 0 -> Alcotest.(check int) "b" 2 count
      | Pattern.In_branch 0 -> Alcotest.(check int) "e" 2 count
      | Pattern.In_tail 0 -> Alcotest.(check int) "d" 2 count
      | _ -> Alcotest.fail "unexpected position")
    all

(* ------------------------------------------------------------------ *)
(* Property: Truth = naive on random docs and patterns.                *)

let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  sized_size (int_range 1 25) @@ fix (fun self n ->
      if n <= 1 then tag >|= Tree.leaf
      else
        tag >>= fun t ->
        list_size (int_range 0 3) (self (n / 3)) >|= fun cs -> Tree.elem t cs)

let spine_gen len =
  let open QCheck.Gen in
  list_size (return len)
    (pair (oneofl [ Pattern.Child; Pattern.Descendant ]) (oneofl [ "a"; "b"; "c" ]))
  >|= List.map (fun (axis, tag) -> Pattern.{ axis; tag })

let pattern_gen =
  let open QCheck.Gen in
  let mk_child_head spine =
    match spine with
    | (s : Pattern.step) :: rest -> { s with Pattern.axis = Pattern.Child } :: rest
    | [] -> []
  in
  oneof
    [
      (* simple *)
      ( int_range 1 3 >>= fun n ->
        spine_gen n >>= fun spine ->
        int_range 0 (n - 1) >|= fun i ->
        Pattern.v (Pattern.Simple spine) (Pattern.In_trunk i) );
      (* branch *)
      ( triple (int_range 1 2) (int_range 1 2) (int_range 0 2)
      >>= fun (tn, bn, an) ->
        triple (spine_gen tn) (spine_gen bn) (spine_gen an)
        >>= fun (trunk, branch, tail) ->
        let positions =
          List.init tn (fun i -> Pattern.In_trunk i)
          @ List.init bn (fun i -> Pattern.In_branch i)
          @ List.init an (fun i -> Pattern.In_tail i)
        in
        oneofl positions >|= fun pos ->
        Pattern.v (Pattern.Branch { trunk; branch; tail }) pos );
      (* ordered *)
      ( triple (int_range 1 2) (int_range 1 2) (int_range 1 2)
      >>= fun (tn, fn, sn) ->
        triple (spine_gen tn) (spine_gen fn) (spine_gen sn)
        >>= fun (trunk, first, second) ->
        oneofl
          [
            Pattern.Following_sibling;
            Pattern.Preceding_sibling;
            Pattern.Following;
            Pattern.Preceding;
          ]
        >>= fun axis ->
        let first = mk_child_head first in
        let second =
          match (axis, second) with
          | (Pattern.Following_sibling | Pattern.Preceding_sibling), s :: rest ->
              { s with Pattern.axis = Pattern.Child } :: rest
          | (Pattern.Following | Pattern.Preceding), s :: rest ->
              { s with Pattern.axis = Pattern.Descendant } :: rest
          | _, [] -> []
        in
        let positions =
          List.init tn (fun i -> Pattern.In_trunk i)
          @ List.init fn (fun i -> Pattern.In_first i)
          @ List.init sn (fun i -> Pattern.In_second i)
        in
        oneofl positions >|= fun pos ->
        Pattern.v (Pattern.Ordered { trunk; first; axis; second }) pos );
    ]

let arb_doc_and_pattern =
  QCheck.make
    QCheck.Gen.(pair tree_gen pattern_gen)
    ~print:(fun (t, p) ->
      Format.asprintf "%a |- %s" Tree.pp t (Pattern.to_string p))

let prop_truth_matches_naive =
  QCheck.Test.make ~name:"truth = naive enumeration" ~count:600
    arb_doc_and_pattern (fun (tree, pattern) ->
      let doc = Doc.of_tree tree in
      Truth.matches doc pattern = naive_matches doc pattern)

(* Cross-validation against the independent set-based evaluator: for a
   pattern whose target is the last node of the main path, the lowered
   AST's result set equals Truth's match set. *)
let last_main_target (pattern : Pattern.t) =
  match Pattern.shape pattern with
  | Pattern.Simple spine -> Some (Pattern.In_trunk (List.length spine - 1))
  | Pattern.Branch { tail = _ :: _ as tail; _ } ->
      Some (Pattern.In_tail (List.length tail - 1))
  | Pattern.Branch _ | Pattern.Ordered _ -> None

let prop_truth_matches_eval =
  QCheck.Test.make ~name:"truth = set evaluator on lowered AST" ~count:400
    arb_doc_and_pattern (fun (tree, pattern) ->
      match last_main_target pattern with
      | None -> QCheck.assume_fail ()
      | Some target ->
          let pattern = Pattern.v (Pattern.shape pattern) target in
          let doc = Doc.of_tree tree in
          Truth.matches doc pattern
          = Xpest_xpath.Eval.eval doc (Pattern.to_ast pattern))

let () =
  Alcotest.run "truth"
    [
      ( "unit",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "branch" `Quick test_branch;
          Alcotest.test_case "ordered sibling" `Quick test_ordered_sibling;
          Alcotest.test_case "ordered nonsibling" `Quick test_ordered_nonsibling;
          Alcotest.test_case "matches sorted" `Quick test_matches_are_sorted_nodes;
          Alcotest.test_case "all_selectivities" `Quick test_all_selectivities;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_truth_matches_naive; prop_truth_matches_eval ] );
    ]
