(* End-to-end pipeline checks on a mid-size document: generation ->
   collection -> assembly across variances -> estimation vs ground
   truth, including the memory/accuracy trade-off directions the whole
   system is built around. *)

module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Stats = Xpest_util.Stats
module Xsketch = Xpest_baseline.Xsketch

let doc = Doc.of_tree (Xpest_datasets.Ssplays.generate ~plays:3 ~seed:17 ())
let base = Summary.collect doc

let workload =
  Workload.generate
    ~config:{ Workload.default_config with num_simple = 250; num_branch = 250 }
    doc

let order_free = workload.Workload.simple @ workload.Workload.branch

let mre estimator items =
  match items with
  | [] -> 0.0
  | _ ->
      Stats.mean
        (Array.of_list
           (List.map
              (fun (it : Workload.item) ->
                Stats.relative_error
                  ~actual:(Float.of_int it.actual)
                  ~estimate:(Estimator.estimate estimator it.pattern))
              items))

let summaries =
  List.map
    (fun v -> (v, Summary.assemble ~p_variance:v ~o_variance:v base))
    [ 0.0; 2.0; 8.0; 20.0 ]

let test_memory_decreases_with_variance () =
  let sizes =
    List.map (fun (_, s) -> Summary.p_histogram_bytes s) summaries
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "p memory non-increasing" true (non_increasing sizes);
  let exact = List.assoc 0.0 summaries and coarse = List.assoc 20.0 summaries in
  Alcotest.(check bool) "coarse strictly smaller" true
    (Summary.p_histogram_bytes coarse < Summary.p_histogram_bytes exact)

let test_exact_beats_coarse () =
  let err v = mre (Estimator.create (List.assoc v summaries)) order_free in
  let e0 = err 0.0 and e20 = err 20.0 in
  (* branch queries go through Equation 2's independence assumption,
     so even exact summaries leave a small residual *)
  Alcotest.(check bool)
    (Printf.sprintf "exact-summary error %.4f small" e0)
    true (e0 < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "exact %.4f <= coarse %.4f" e0 e20)
    true (e0 <= e20)

let test_order_workloads_accurate_at_v0 () =
  let est = Estimator.create (List.assoc 0.0 summaries) in
  Alcotest.(check bool) "branch-target order error < 15%" true
    (mre est workload.Workload.order_branch_target < 0.15);
  Alcotest.(check bool) "trunk-target order error < 10%" true
    (mre est workload.Workload.order_trunk_target < 0.10)

let test_beats_xsketch_at_matching_memory () =
  let s = List.assoc 0.0 summaries in
  let est = Estimator.create s in
  let sk = Xsketch.build ~budget_bytes:(Summary.total_bytes s) doc in
  let ours = mre est order_free in
  let theirs =
    match order_free with
    | [] -> 0.0
    | items ->
        Stats.mean
          (Array.of_list
             (List.map
                (fun (it : Workload.item) ->
                  Stats.relative_error
                    ~actual:(Float.of_int it.actual)
                    ~estimate:(Xsketch.estimate sk it.pattern))
                items))
  in
  Alcotest.(check bool)
    (Printf.sprintf "ours %.4f <= xsketch %.4f at equal memory" ours theirs)
    true (ours <= theirs)

let test_synopsis_roundtrip_in_pipeline () =
  let s = List.assoc 2.0 summaries in
  let path = Filename.temp_file "xpest_integration" ".syn" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Summary.save s path;
      let est0 = Estimator.create s in
      let est1 = Estimator.create (Summary.load path) in
      List.iteri
        (fun i (it : Workload.item) ->
          if i < 50 then
            Alcotest.(check (float 1e-9))
              (Pattern.to_string it.pattern)
              (Estimator.estimate est0 it.pattern)
              (Estimator.estimate est1 it.pattern))
        (order_free @ workload.Workload.order_branch_target))

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "memory vs variance" `Quick
            test_memory_decreases_with_variance;
          Alcotest.test_case "exact beats coarse" `Quick test_exact_beats_coarse;
          Alcotest.test_case "order accuracy at v=0" `Quick
            test_order_workloads_accurate_at_v0;
          Alcotest.test_case "beats xsketch at equal memory" `Quick
            test_beats_xsketch_at_matching_memory;
          Alcotest.test_case "synopsis roundtrip" `Quick
            test_synopsis_roundtrip_in_pipeline;
        ] );
    ]
