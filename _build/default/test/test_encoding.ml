module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Encoding_table = Xpest_encoding.Encoding_table
module Labeler = Xpest_encoding.Labeler

let doc = Paper_fixture.doc
let table = Encoding_table.build doc
let labeler = Labeler.label doc table

let test_encoding_lookup () =
  Alcotest.(check (option int)) "Root/A/B/D = 1" (Some 1)
    (Encoding_table.encoding_of_path table [ "Root"; "A"; "B"; "D" ]);
  Alcotest.(check (option int)) "Root/A/C/F = 4" (Some 4)
    (Encoding_table.encoding_of_path table [ "Root"; "A"; "C"; "F" ]);
  Alcotest.(check (option int)) "unknown" None
    (Encoding_table.encoding_of_path table [ "Root"; "X" ]);
  Alcotest.(check (list string)) "path_of_encoding" [ "Root"; "A"; "C"; "E" ]
    (Encoding_table.path_of_encoding table 3);
  Alcotest.check_raises "encoding out of range"
    (Invalid_argument "Encoding_table.path_of_encoding: 9") (fun () ->
      ignore (Encoding_table.path_of_encoding table 9))

let test_tags_on_path () =
  Alcotest.(check bool) "A parent of B on path 1" true
    (Encoding_table.tags_on_path table ~encoding:1 ~anc:"A" ~desc:"B"
    = `Parent_child);
  Alcotest.(check bool) "Root anc of D on path 1" true
    (Encoding_table.tags_on_path table ~encoding:1 ~anc:"Root" ~desc:"D"
    = `Ancestor_descendant);
  Alcotest.(check bool) "no relation D..A" true
    (Encoding_table.tags_on_path table ~encoding:1 ~anc:"D" ~desc:"A" = `Neither);
  Alcotest.(check bool) "child axis requires adjacency" false
    (Encoding_table.axis_holds table ~encoding:1 ~axis:`Child ~anc:"Root"
       ~desc:"B");
  Alcotest.(check bool) "descendant axis includes parent" true
    (Encoding_table.axis_holds table ~encoding:1 ~axis:`Descendant ~anc:"A"
       ~desc:"B")

let test_gap_tags () =
  (* paper Example 5.3: between A and D on Root/A/B/D the gap is [B] *)
  Alcotest.(check (list (list string))) "A..D gap" [ [ "B" ] ]
    (Encoding_table.gap_tags table ~encoding:1 ~anc:"A" ~desc:"D");
  Alcotest.(check (list (list string))) "A..B empty gap" [ [] ]
    (Encoding_table.gap_tags table ~encoding:1 ~anc:"A" ~desc:"B");
  Alcotest.(check (list (list string))) "no occurrence" []
    (Encoding_table.gap_tags table ~encoding:1 ~anc:"A" ~desc:"F")

let test_recursive_path_relations () =
  (* recursion: tags repeating on one path *)
  let t = Encoding_table.of_paths [ [ "a"; "b"; "a"; "c" ] ] in
  Alcotest.(check bool) "a//a holds" true
    (Encoding_table.axis_holds t ~encoding:1 ~axis:`Descendant ~anc:"a" ~desc:"a");
  Alcotest.(check bool) "a/c via second a" true
    (Encoding_table.axis_holds t ~encoding:1 ~axis:`Child ~anc:"a" ~desc:"c");
  Alcotest.(check (list (list string))) "a..c gaps (shortest first)"
    [ []; [ "b"; "a" ] ]
    (Encoding_table.gap_tags t ~encoding:1 ~anc:"a" ~desc:"c")

let test_labeler_paper_values () =
  (* already covered in test_paper_examples; here: structural laws *)
  Alcotest.(check int) "9 distinct pids" 9 (Labeler.num_distinct labeler);
  Alcotest.(check int) "width 4" 4 (Labeler.pid_bit_width labeler);
  Alcotest.(check int) "pid byte size" 1 (Labeler.pid_byte_size labeler);
  Alcotest.(check int) "pid table bytes" 9 (Labeler.pid_table_byte_size labeler)

let test_labeler_index_roundtrip () =
  Doc.iter doc (fun n ->
      let pid = Labeler.pid labeler n in
      Alcotest.(check (option int)) "index_of_pid"
        (Some (Labeler.pid_index labeler n))
        (Labeler.index_of_pid labeler pid))

let test_labeler_wrong_table () =
  let other = Encoding_table.of_paths [ [ "X" ] ] in
  Alcotest.(check bool) "raises on foreign table" true
    (match Labeler.label doc other with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* properties on random documents *)

let tree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d" ] in
  sized_size (int_range 1 60) @@ fix (fun self n ->
      if n <= 1 then tag >|= Tree.leaf
      else
        tag >>= fun t ->
        list_size (int_range 0 4) (self (n / 4)) >|= fun cs -> Tree.elem t cs)

let arb_tree = QCheck.make tree_gen ~print:(Format.asprintf "%a" Tree.pp)

let prop_pid_is_or_of_children =
  QCheck.Test.make ~name:"internal pid = or of child pids" ~count:200 arb_tree
    (fun t ->
      let doc = Doc.of_tree t in
      let table = Encoding_table.build doc in
      let lab = Labeler.label doc table in
      let ok = ref true in
      Doc.iter doc (fun n ->
          match Doc.children doc n with
          | [] -> ()
          | cs ->
              let expected =
                List.fold_left
                  (fun acc c -> Bitvec.logor acc (Labeler.pid lab c))
                  (Bitvec.zero (Labeler.pid_bit_width lab))
                  cs
              in
              if not (Bitvec.equal expected (Labeler.pid lab n)) then ok := false);
      !ok)

let prop_ancestor_pid_contains_descendant =
  QCheck.Test.make ~name:"ancestor pid contains-or-equals descendant pid"
    ~count:200 arb_tree (fun t ->
      let doc = Doc.of_tree t in
      let table = Encoding_table.build doc in
      let lab = Labeler.label doc table in
      let ok = ref true in
      Doc.iter doc (fun n ->
          match Doc.parent doc n with
          | Some p ->
              if
                not
                  (Bitvec.contains_or_equal (Labeler.pid lab p)
                     (Labeler.pid lab n))
              then ok := false
          | None -> ());
      !ok)

let prop_containment_implies_path_coverage =
  (* The sound core of Section 2, Case 2: a node's pid lists exactly
     the path types of the leaves in its subtree, so if Pid_X contains
     Pid_Y then every node with Pid_X has, for every path type of
     Pid_Y, a descendant leaf of that type.  (The paper's stronger
     phrasing — a descendant carrying pid Pid_Y itself — does not hold
     in general; the estimator relies only on this coverage form plus
     the tag-relationship test.) *)
  QCheck.Test.make ~name:"pid containment implies path-type coverage"
    ~count:100 arb_tree (fun t ->
      let doc = Doc.of_tree t in
      let table = Encoding_table.build doc in
      let lab = Labeler.label doc table in
      let ok = ref true in
      Doc.iter doc (fun x ->
          let px = Labeler.pid lab x in
          (* every bit of px is witnessed by a leaf below (or at) x *)
          Bitvec.iter_set_bits px (fun bit ->
              let witnessed = ref false in
              for n = x to Doc.subtree_last doc x do
                if
                  Doc.is_leaf doc n
                  && Encoding_table.encoding_of_path table (Doc.path_to doc n)
                     = Some (bit + 1)
                then witnessed := true
              done;
              if not !witnessed then ok := false));
      !ok)

let prop_leaf_pid_singleton =
  QCheck.Test.make ~name:"leaf pid = its path's bit" ~count:200 arb_tree
    (fun t ->
      let doc = Doc.of_tree t in
      let table = Encoding_table.build doc in
      let lab = Labeler.label doc table in
      let ok = ref true in
      Doc.iter doc (fun n ->
          if Doc.is_leaf doc n then
            match Encoding_table.encoding_of_path table (Doc.path_to doc n) with
            | Some e ->
                if
                  not
                    (Bitvec.equal (Labeler.pid lab n)
                       (Bitvec.singleton (Labeler.pid_bit_width lab) (e - 1)))
                then ok := false
            | None -> ok := false);
      !ok)

let () =
  Alcotest.run "encoding"
    [
      ( "unit",
        [
          Alcotest.test_case "encoding lookup" `Quick test_encoding_lookup;
          Alcotest.test_case "tags_on_path / axis_holds" `Quick test_tags_on_path;
          Alcotest.test_case "gap_tags" `Quick test_gap_tags;
          Alcotest.test_case "recursive paths" `Quick
            test_recursive_path_relations;
          Alcotest.test_case "labeler on paper fixture" `Quick
            test_labeler_paper_values;
          Alcotest.test_case "pid index roundtrip" `Quick
            test_labeler_index_roundtrip;
          Alcotest.test_case "foreign table rejected" `Quick
            test_labeler_wrong_table;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pid_is_or_of_children;
            prop_ancestor_pid_contains_descendant;
            prop_containment_implies_path_coverage;
            prop_leaf_pid_singleton;
          ] );
    ]
