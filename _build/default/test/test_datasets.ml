module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Registry = Xpest_datasets.Registry
module Ssplays = Xpest_datasets.Ssplays
module Dblp = Xpest_datasets.Dblp
module Xmark = Xpest_datasets.Xmark

let tags_subset tree universe =
  List.for_all (fun t -> List.mem t universe) (Tree.distinct_tags tree)

let test_determinism () =
  List.iter
    (fun name ->
      let a = Registry.generate_tree ~scale:0.01 name in
      let b = Registry.generate_tree ~scale:0.01 name in
      Alcotest.(check bool)
        (Registry.to_string name ^ " deterministic")
        true (Tree.equal a b))
    Registry.all

let test_seed_changes_content () =
  let a = Registry.generate_tree ~scale:0.01 ~seed:1 Registry.Ssplays in
  let b = Registry.generate_tree ~scale:0.01 ~seed:2 Registry.Ssplays in
  Alcotest.(check bool) "different seeds differ" false (Tree.equal a b)

let test_ssplays_profile () =
  let t = Ssplays.generate ~plays:4 ~seed:11 () in
  Alcotest.(check bool) "tags within universe" true
    (tags_subset t Ssplays.tag_universe);
  Alcotest.(check int) "21-tag universe" 21 (List.length Ssplays.tag_universe);
  let doc = Doc.of_tree t in
  Alcotest.(check string) "root" "PLAYS" (Doc.tag doc (Doc.root doc));
  Alcotest.(check int) "4 plays" 4 (Array.length (Doc.nodes_with_tag doc "PLAY"));
  Alcotest.(check bool) "roughly 4-5k elements per play" true
    (Doc.size doc > 10_000 && Doc.size doc < 30_000);
  Alcotest.(check int) "depth 6 (PLAYS..LINE)" 6 (Doc.max_depth doc)

let test_ssplays_speaker_before_line () =
  (* the generator's key order property: within a SPEECH the first
     SPEAKER precedes every LINE *)
  let doc = Doc.of_tree (Ssplays.generate ~plays:2 ~seed:3 ()) in
  Array.iter
    (fun speech ->
      let children = Doc.children doc speech in
      let first_speaker =
        List.find_opt (fun c -> Doc.tag doc c = "SPEAKER") children
      in
      let first_line = List.find_opt (fun c -> Doc.tag doc c = "LINE") children in
      match (first_speaker, first_line) with
      | Some s, Some l ->
          Alcotest.(check bool) "speaker before line" true (s < l)
      | _ -> Alcotest.fail "speech without speaker or line")
    (Doc.nodes_with_tag doc "SPEECH")

let test_dblp_profile () =
  let t = Dblp.generate ~records:500 ~seed:5 () in
  Alcotest.(check bool) "tags within universe" true
    (tags_subset t Dblp.tag_universe);
  Alcotest.(check int) "31-tag universe" 31 (List.length Dblp.tag_universe);
  let doc = Doc.of_tree t in
  Alcotest.(check int) "shallow: depth 3" 3 (Doc.max_depth doc);
  (* all 87 paths occur at any scale thanks to the coverage records *)
  Alcotest.(check int) "87 distinct paths" 87
    (List.length (Tree.root_to_leaf_paths t))

let test_dblp_record_shape () =
  let doc = Doc.of_tree (Dblp.generate ~records:200 ~seed:5 ()) in
  (* every record starts with its lead field (author/editor) *)
  List.iter
    (fun record ->
      match Doc.children doc record with
      | first :: _ ->
          Alcotest.(check bool) "lead field first" true
            (List.mem (Doc.tag doc first) [ "author"; "editor" ])
      | [] -> Alcotest.fail "empty record")
    (Doc.children doc (Doc.root doc))

let test_xmark_profile () =
  let t = Xmark.generate ~scale:0.02 ~seed:7 () in
  Alcotest.(check bool) "tags within universe" true
    (tags_subset t Xmark.tag_universe);
  Alcotest.(check int) "74-tag universe" 74 (List.length Xmark.tag_universe);
  let doc = Doc.of_tree t in
  Alcotest.(check bool) "recursive: depth > 8" true (Doc.max_depth doc > 8);
  (* recursion: some parlist has a parlist strict descendant *)
  let parlists = Doc.nodes_with_tag doc "parlist" in
  Alcotest.(check bool) "nested parlists" true
    (Array.exists
       (fun p ->
         Array.exists
           (fun q -> Doc.is_ancestor doc ~anc:p ~desc:q)
           parlists)
       parlists);
  Alcotest.(check bool) "hundreds of distinct paths" true
    (List.length (Tree.root_to_leaf_paths t) > 100)

let test_registry_roundtrip () =
  List.iter
    (fun name ->
      Alcotest.(check bool) "of_string . to_string" true
        (Registry.of_string (Registry.to_string name) = Some name))
    Registry.all;
  Alcotest.(check bool) "unknown" true (Registry.of_string "nope" = None)

let test_scaling () =
  let small = Doc.of_tree (Registry.generate_tree ~scale:0.01 Registry.Xmark) in
  let bigger = Doc.of_tree (Registry.generate_tree ~scale:0.05 Registry.Xmark) in
  Alcotest.(check bool) "scale grows the document" true
    (Doc.size bigger > 2 * Doc.size small)

let () =
  Alcotest.run "datasets"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_content;
          Alcotest.test_case "ssplays profile" `Quick test_ssplays_profile;
          Alcotest.test_case "ssplays order texture" `Quick
            test_ssplays_speaker_before_line;
          Alcotest.test_case "dblp profile" `Quick test_dblp_profile;
          Alcotest.test_case "dblp record shape" `Quick test_dblp_record_shape;
          Alcotest.test_case "xmark profile" `Quick test_xmark_profile;
          Alcotest.test_case "registry roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "scaling" `Quick test_scaling;
        ] );
    ]
