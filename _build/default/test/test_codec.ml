(* Round-trip tests for the synopsis persistence format. *)

module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Po_table = Xpest_synopsis.Po_table
module Estimator = Xpest_estimator.Estimator
module Bitvec = Xpest_util.Bitvec

let temp_file () = Filename.temp_file "xpest_synopsis" ".bin"

let with_roundtrip summary f =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Summary.save summary path;
      f (Summary.load path))

let queries =
  [
    "//{D}";
    "//B/{D}";
    "/Root/{A}";
    "//A[/C/F]/B/{D}";
    "//A[/C/{F}]/B/D";
    "//A[/C/folls::{B}/D]";
    "//A[/C/pres::{B}]";
    "//A[/C/foll::{D}]";
    "//{A}[/C/folls::B/D]";
  ]

let test_estimates_survive () =
  let summary = Summary.build Paper_fixture.doc in
  with_roundtrip summary (fun loaded ->
      let est0 = Estimator.create summary in
      let est1 = Estimator.create loaded in
      List.iter
        (fun q ->
          let q = Pattern.of_string q in
          Alcotest.(check (float 1e-9))
            (Pattern.to_string q)
            (Estimator.estimate est0 q)
            (Estimator.estimate est1 q))
        queries)

let test_estimates_survive_with_variance () =
  let summary = Summary.build ~p_variance:2.0 ~o_variance:3.0 Paper_fixture.doc in
  with_roundtrip summary (fun loaded ->
      Alcotest.(check (float 1e-9)) "p variance" 2.0 (Summary.p_variance loaded);
      Alcotest.(check (float 1e-9)) "o variance" 3.0 (Summary.o_variance loaded);
      let est0 = Estimator.create summary in
      let est1 = Estimator.create loaded in
      List.iter
        (fun q ->
          let q = Pattern.of_string q in
          Alcotest.(check (float 1e-9))
            (Pattern.to_string q)
            (Estimator.estimate est0 q)
            (Estimator.estimate est1 q))
        queries)

let test_accounting_survives () =
  let summary = Summary.build Paper_fixture.doc in
  with_roundtrip summary (fun loaded ->
      Alcotest.(check int) "p bytes" (Summary.p_histogram_bytes summary)
        (Summary.p_histogram_bytes loaded);
      Alcotest.(check int) "o bytes" (Summary.o_histogram_bytes summary)
        (Summary.o_histogram_bytes loaded);
      Alcotest.(check int) "total bytes" (Summary.total_bytes summary)
        (Summary.total_bytes loaded))

let test_core_accessors_survive () =
  let summary = Summary.build Paper_fixture.doc in
  with_roundtrip summary (fun loaded ->
      Alcotest.(check string) "root pid"
        (Bitvec.to_string (Summary.root_pid summary))
        (Bitvec.to_string (Summary.root_pid loaded));
      Alcotest.(check (array string)) "tags" (Summary.tags summary)
        (Summary.tags loaded);
      Alcotest.(check (float 1e-9)) "tag_total" (Summary.tag_total summary "B")
        (Summary.tag_total loaded "B");
      Alcotest.(check (float 1e-9)) "order_frequency"
        (Summary.order_frequency summary ~tag:"B"
           ~pid:(Paper_fixture.bv Paper_fixture.p5)
           ~other:"C" ~region:Po_table.After)
        (Summary.order_frequency loaded ~tag:"B"
           ~pid:(Paper_fixture.bv Paper_fixture.p5)
           ~other:"C" ~region:Po_table.After))

let test_document_accessors_raise () =
  let summary = Summary.build Paper_fixture.doc in
  with_roundtrip summary (fun loaded ->
      let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
      Alcotest.(check bool) "doc raises" true (raises (fun () -> Summary.doc loaded));
      Alcotest.(check bool) "base raises" true (raises (fun () -> Summary.base loaded));
      Alcotest.(check bool) "labeler raises" true
        (raises (fun () -> Summary.labeler loaded)))

let test_reject_garbage () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a synopsis";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (match Summary.load path with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_reject_truncated () =
  let summary = Summary.build Paper_fixture.doc in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Summary.save summary path;
      (* truncate to half *)
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let half = really_input_string ic (n / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc half;
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (match Summary.load path with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_roundtrip_on_generated_dataset () =
  let doc = Doc.of_tree (Xpest_datasets.Xmark.generate ~scale:0.005 ~seed:3 ()) in
  let summary = Summary.build ~p_variance:1.0 ~o_variance:2.0 doc in
  with_roundtrip summary (fun loaded ->
      let est0 = Estimator.create summary in
      let est1 = Estimator.create loaded in
      List.iter
        (fun q ->
          let q = Pattern.of_string q in
          Alcotest.(check (float 1e-9))
            (Pattern.to_string q)
            (Estimator.estimate est0 q)
            (Estimator.estimate est1 q))
        [
          "//item/{description}";
          "//item[/mailbox]//{text}";
          "//open_auction[/bidder/folls::{annotation}]";
          "//site//{parlist}";
        ])

let () =
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "estimates survive" `Quick test_estimates_survive;
          Alcotest.test_case "estimates survive (variance)" `Quick
            test_estimates_survive_with_variance;
          Alcotest.test_case "memory accounting survives" `Quick
            test_accounting_survives;
          Alcotest.test_case "core accessors survive" `Quick
            test_core_accessors_survive;
          Alcotest.test_case "generated dataset" `Quick
            test_roundtrip_on_generated_dataset;
        ] );
      ( "errors",
        [
          Alcotest.test_case "document accessors raise" `Quick
            test_document_accessors_raise;
          Alcotest.test_case "garbage rejected" `Quick test_reject_garbage;
          Alcotest.test_case "truncation rejected" `Quick test_reject_truncated;
        ] );
    ]
