module Env = Xpest_harness.Env
module Experiments = Xpest_harness.Experiments
module Metrics = Xpest_harness.Metrics
module Workload = Xpest_workload.Workload
module Pattern = Xpest_xpath.Pattern

(* One tiny shared environment: preparing it covers Env end to end. *)
let config =
  {
    Env.scale = 0.01;
    workload = { Workload.default_config with num_simple = 120; num_branch = 120 };
    max_queries_per_class = Some 40;
  }

let envs = List.map (fun n -> Env.prepare ~config n) Xpest_datasets.Registry.all

let test_env_basics () =
  List.iter
    (fun env ->
      Alcotest.(check bool) "doc non-empty" true (Xpest_xml.Doc.size (Env.doc env) > 0);
      Alcotest.(check bool) "collect times non-negative" true
        (Env.collect_paths_seconds env >= 0.0 && Env.collect_order_seconds env >= 0.0);
      Alcotest.(check bool) "cap respected" true
        (List.length (Env.queries env `Simple) <= 40))
    envs

let test_summary_memoization () =
  let env = List.hd envs in
  let a = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
  let b = Env.summary env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
  Alcotest.(check bool) "physically equal" true (a == b);
  let e1 = Env.estimator env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
  let e2 = Env.estimator env ~p_variance:0.0 ~o_variance:0.0 ~with_order:true in
  Alcotest.(check bool) "estimator memoized" true (e1 == e2)

let test_metrics () =
  let items =
    [
      { Workload.pattern = Pattern.of_string "//{a}"; actual = 4 };
      { Workload.pattern = Pattern.of_string "//{b}"; actual = 2 };
    ]
  in
  let estimate _ = 4.0 in
  (* errors: 0 and 1 -> mean 0.5 *)
  Alcotest.(check (float 1e-9)) "mean rel error" 0.5
    (Metrics.mean_rel_error items estimate);
  let mean, p50, p90 = Metrics.percentile_errors items estimate in
  Alcotest.(check (float 1e-9)) "mean" 0.5 mean;
  Alcotest.(check bool) "percentiles ordered" true (p50 <= p90);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Metrics.mean_rel_error [] estimate)

let test_all_experiments_run () =
  List.iter
    (fun id ->
      let artefact = Experiments.run envs id in
      let rendered = Experiments.render artefact in
      Alcotest.(check bool) (id ^ " renders") true (String.length rendered > 0);
      match artefact with
      | Experiments.Table t ->
          Alcotest.(check bool) (id ^ " has rows") true (t.rows <> [])
      | Experiments.Figures figs ->
          Alcotest.(check int) (id ^ " one figure per dataset") 3
            (List.length figs);
          List.iter
            (fun (f : Experiments.figure) ->
              Alcotest.(check bool) (id ^ " has series") true (f.series <> []);
              List.iter
                (fun (_, points) ->
                  List.iter
                    (fun (x, y) ->
                      Alcotest.(check bool) "finite points" true
                        (Float.is_finite x && Float.is_finite y && y >= 0.0))
                    points)
                f.series)
            figs)
    Experiments.all_ids

let test_figure10_exact_at_variance0 () =
  (* the rightmost (largest-memory) point of every simple-query series
     must be exact on non-recursive datasets *)
  match Experiments.figure10 [ List.hd envs (* SSPlays *) ] with
  | Experiments.Figures [ f ] ->
      let simple = List.assoc "simple queries" f.series in
      let _, err_at_v0 = List.hd simple in
      Alcotest.(check (float 1e-9)) "simple exact at v=0" 0.0 err_at_v0
  | _ -> Alcotest.fail "expected one figure"

let test_report_markdown () =
  let t1 = Experiments.table1 envs in
  let md = Xpest_harness.Report.artefact_md t1 in
  Alcotest.(check bool) "heading" true
    (String.length md > 4 && String.sub md 0 4 = "### ");
  Alcotest.(check bool) "pipe table" true
    (List.exists
       (fun l -> String.length l > 0 && l.[0] = '|')
       (String.split_on_char '\n' md));
  let fig = Experiments.figure9 envs in
  let md = Xpest_harness.Report.artefact_md fig in
  Alcotest.(check bool) "figures render" true (String.length md > 0);
  let docmd =
    Xpest_harness.Report.document ~title:"t" ~preamble:[ "p" ] [ t1; fig ]
  in
  Alcotest.(check bool) "document starts with title" true
    (String.length docmd > 4 && String.sub docmd 0 4 = "# t\n");
  (* cells containing pipes are escaped *)
  let table_with_pipe =
    Xpest_harness.Report.table_md
      { Experiments.id = "X"; title = "t"; header = [ "a" ]; rows = [ [ "x|y" ] ] }
  in
  Alcotest.(check bool) "pipes escaped" true
    (let needle = "x\\|y" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length table_with_pipe
       && (String.sub table_with_pipe i n = needle || go (i + 1))
     in
     go 0)

let test_unknown_id () =
  Alcotest.(check bool) "raises" true
    (match Experiments.run envs "f99" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "harness"
    [
      ( "unit",
        [
          Alcotest.test_case "env basics" `Quick test_env_basics;
          Alcotest.test_case "memoization" `Quick test_summary_memoization;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "figure 10 exact at v=0" `Quick
            test_figure10_exact_at_variance0;
          Alcotest.test_case "markdown report" `Quick test_report_markdown;
          Alcotest.test_case "unknown id" `Quick test_unknown_id;
        ] );
      ( "integration",
        [ Alcotest.test_case "all experiments run" `Slow test_all_experiments_run ] );
    ]
