module Tablefmt = Xpest_util.Tablefmt

let test_render_table () =
  let out =
    Tablefmt.render_table ~title:"T"
      ~header:[ "name"; "count" ]
      ~align:[ Tablefmt.Left; Tablefmt.Right ]
      [ [ "alpha"; "1" ]; [ "b"; "20" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "title first" "T" (List.hd lines);
  Alcotest.(check bool) "contains row" true
    (List.exists (fun l -> l = "| alpha |     1 |") lines);
  Alcotest.(check bool) "right aligned" true
    (List.exists (fun l -> l = "| b     |    20 |") lines)

let test_long_align_truncated () =
  let out =
    Tablefmt.render_table ~header:[ "a"; "b" ]
      ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
      [ [ "x"; "y" ] ]
  in
  Alcotest.(check bool) "no exception" true (String.length out > 0)

let test_short_rows_padded () =
  let out =
    Tablefmt.render_table ~header:[ "a"; "b"; "c" ] ~align:[] [ [ "x" ] ]
  in
  Alcotest.(check bool) "no exception, row padded" true
    (String.length out > 0)

let test_render_series () =
  let out =
    Tablefmt.render_series ~title:"fig" ~x_label:"x" ~y_label:"err"
      ~series:[ ("s1", [ (1.0, 0.5); (2.0, 0.25) ]); ("s2", [ (1.0, 0.7) ]) ]
      ()
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "mentions y label" true (contains out "err");
  Alcotest.(check bool) "series columns present" true
    (contains out "s1" && contains out "s2");
  Alcotest.(check bool) "missing point renders dash" true (contains out "-")

let test_fmt_float () =
  Alcotest.(check string) "integer" "3" (Tablefmt.fmt_float 3.0);
  Alcotest.(check string) "decimal trimmed" "0.25" (Tablefmt.fmt_float 0.25);
  Alcotest.(check string) "rounded" "0.3333" (Tablefmt.fmt_float (1.0 /. 3.0))

let test_fmt_bytes () =
  Alcotest.(check string) "bytes" "512 B" (Tablefmt.fmt_bytes 512);
  Alcotest.(check string) "kb" "1.50 KB" (Tablefmt.fmt_bytes 1536);
  Alcotest.(check string) "mb" "2.00 MB" (Tablefmt.fmt_bytes (2 * 1024 * 1024))

let test_fmt_seconds () =
  Alcotest.(check string) "us" "50.0 us" (Tablefmt.fmt_seconds 5e-5);
  Alcotest.(check string) "ms" "12.00 ms" (Tablefmt.fmt_seconds 0.012);
  Alcotest.(check string) "s" "2.50 s" (Tablefmt.fmt_seconds 2.5)

let () =
  Alcotest.run "tablefmt"
    [
      ( "unit",
        [
          Alcotest.test_case "render_table" `Quick test_render_table;
          Alcotest.test_case "short rows" `Quick test_short_rows_padded;
          Alcotest.test_case "long align truncated" `Quick
            test_long_align_truncated;
          Alcotest.test_case "render_series" `Quick test_render_series;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
          Alcotest.test_case "fmt_bytes" `Quick test_fmt_bytes;
          Alcotest.test_case "fmt_seconds" `Quick test_fmt_seconds;
        ] );
    ]
