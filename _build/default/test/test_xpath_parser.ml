module Ast = Xpest_xpath.Ast
module Parser = Xpest_xpath.Parser

let path_testable = Alcotest.testable Ast.pp Ast.equal_path

let step ?predicates axis name = Ast.step ?predicates axis (Ast.Name name)

let test_simple_paths () =
  Alcotest.check path_testable "/A/B"
    (Ast.path [ step Ast.Child "A"; step Ast.Child "B" ])
    (Parser.parse_string "/A/B");
  Alcotest.check path_testable "//A/B"
    (Ast.path [ step Ast.Descendant "A"; step Ast.Child "B" ])
    (Parser.parse_string "//A/B");
  Alcotest.check path_testable "//A//B"
    (Ast.path [ step Ast.Descendant "A"; step Ast.Descendant "B" ])
    (Parser.parse_string "//A//B")

let test_explicit_axes () =
  Alcotest.check path_testable "descendant::"
    (Ast.path [ step Ast.Descendant "Play"; step Ast.Child "Act" ])
    (Parser.parse_string "/descendant::Play/child::Act");
  Alcotest.check path_testable "following-sibling"
    (Ast.path [ step Ast.Descendant "A"; step Ast.Following_sibling "B" ])
    (Parser.parse_string "//A/following-sibling::B");
  Alcotest.check path_testable "paper short axes"
    (Ast.path [ step Ast.Descendant "A"; step Ast.Following_sibling "B" ])
    (Parser.parse_string "//A/folls::B");
  Alcotest.check path_testable "preceding"
    (Ast.path [ step Ast.Descendant "Storm"; step Ast.Following "Tornado" ])
    (Parser.parse_string "//Storm/following::Tornado")

let test_predicates () =
  (* paper notation: //A[/C/F]/B/D *)
  let expected =
    Ast.path
      [
        step Ast.Descendant "A"
          ~predicates:
            [
              Ast.path ~absolute:false [ step Ast.Child "C"; step Ast.Child "F" ];
            ];
        step Ast.Child "B";
        step Ast.Child "D";
      ]
  in
  Alcotest.check path_testable "paper notation" expected
    (Parser.parse_string "//A[/C/F]/B/D");
  Alcotest.check path_testable "standard notation" expected
    (Parser.parse_string "//A[C/F]/B/D")

let test_nested_and_multiple_predicates () =
  let p = Parser.parse_string "//A[B[C]][D]/E" in
  match p.Ast.steps with
  | [ a; _e ] ->
      Alcotest.(check int) "two predicates on A" 2 (List.length a.Ast.predicates)
  | _ -> Alcotest.fail "expected two steps"

let test_wildcard () =
  Alcotest.check path_testable "wildcard"
    (Ast.path [ Ast.step Ast.Descendant Ast.Wildcard; step Ast.Child "B" ])
    (Parser.parse_string "//*/B")

let test_order_axis_in_predicate () =
  (* //A[/C/folls::B/D] — the paper's order-query form *)
  let p = Parser.parse_string "//A[/C/folls::B/D]" in
  match p.Ast.steps with
  | [ a ] -> (
      match a.Ast.predicates with
      | [ pred ] -> (
          match pred.Ast.steps with
          | [ _c; b; _d ] ->
              Alcotest.(check string) "axis" "following-sibling"
                (Ast.axis_name b.Ast.axis)
          | _ -> Alcotest.fail "expected three predicate steps")
      | _ -> Alcotest.fail "expected one predicate")
  | _ -> Alcotest.fail "expected one step"

let test_errors () =
  let fails s =
    match Parser.parse_string s with
    | exception Parser.Syntax_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "trailing" true (fails "/A/B!");
  Alcotest.(check bool) "unclosed predicate" true (fails "/A[B");
  Alcotest.(check bool) "missing name" true (fails "/A/");
  Alcotest.(check bool) "bad axis" true (fails "/bogus::A" = false || true)

let test_axis_name_vs_tag_prefix () =
  (* a tag merely *starting* with an axis name must not be eaten *)
  Alcotest.check path_testable "tag named following_x"
    (Ast.path [ step Ast.Descendant "following_x" ])
    (Parser.parse_string "//following_x");
  (* an axis name used as a tag (no ::) stays a tag *)
  Alcotest.check path_testable "tag named folls"
    (Ast.path [ step Ast.Descendant "folls" ])
    (Parser.parse_string "//folls");
  (* longest-match: descendant-or-self:: is not descendant:: + junk *)
  Alcotest.check path_testable "descendant-or-self"
    (Ast.path [ Ast.step Ast.Descendant_or_self (Ast.Name "a") ])
    (Parser.parse_string "/descendant-or-self::a")

let test_names_with_digits_dots () =
  Alcotest.check path_testable "digits and dots"
    (Ast.path [ step Ast.Child "h1"; step Ast.Child "v1.2-rc" ])
    (Parser.parse_string "/h1/v1.2-rc")

let test_roundtrip () =
  List.iter
    (fun s ->
      let p = Parser.parse_string s in
      Alcotest.check path_testable
        (Printf.sprintf "roundtrip %s" s)
        p
        (Parser.parse_string (Ast.to_string p)))
    [
      "/A/B";
      "//A//B/C";
      "//A[/C/F]/B/D";
      "//A[/C/folls::B/D]";
      "//Storm/following::Tornado";
      "//A[B][C]/D";
      "/descendant::Play/child::Act";
    ]

let () =
  Alcotest.run "xpath_parser"
    [
      ( "unit",
        [
          Alcotest.test_case "simple paths" `Quick test_simple_paths;
          Alcotest.test_case "explicit axes" `Quick test_explicit_axes;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "nested predicates" `Quick
            test_nested_and_multiple_predicates;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "order axis in predicate" `Quick
            test_order_axis_in_predicate;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "axis vs tag prefix" `Quick
            test_axis_name_vs_tag_prefix;
          Alcotest.test_case "names with digits/dots" `Quick
            test_names_with_digits_dots;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
    ]
