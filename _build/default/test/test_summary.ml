module Doc = Xpest_xml.Doc
module Bitvec = Xpest_util.Bitvec
module Summary = Xpest_synopsis.Summary
module Pf_table = Xpest_synopsis.Pf_table
module Po_table = Xpest_synopsis.Po_table

let doc = Paper_fixture.doc
let base = Summary.collect doc
let summary = Summary.assemble base

let test_tag_pids_exact () =
  let row tag =
    Summary.tag_pids summary tag
    |> List.map (fun (pid, f) -> (Bitvec.to_string pid, f))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "B row"
    (List.sort compare [ (Paper_fixture.p8, 1.0); (Paper_fixture.p5, 3.0) ])
    (row "B");
  Alcotest.(check (list (pair string (float 1e-9)))) "unknown tag" [] (row "Z")

let test_tag_total () =
  Alcotest.(check (float 1e-9)) "B total" 4.0 (Summary.tag_total summary "B");
  Alcotest.(check (float 1e-9)) "D total" 4.0 (Summary.tag_total summary "D")

let test_order_frequency () =
  let p5 = Paper_fixture.bv Paper_fixture.p5 in
  Alcotest.(check (float 1e-9)) "B(p5) after C = 2" 2.0
    (Summary.order_frequency summary ~tag:"B" ~pid:p5 ~other:"C"
       ~region:Po_table.After);
  Alcotest.(check (float 1e-9)) "B(p5) before C = 1" 1.0
    (Summary.order_frequency summary ~tag:"B" ~pid:p5 ~other:"C"
       ~region:Po_table.Before);
  Alcotest.(check (float 1e-9)) "unknown tag" 0.0
    (Summary.order_frequency summary ~tag:"Z" ~pid:p5 ~other:"C"
       ~region:Po_table.After)

let test_without_order () =
  let s = Summary.assemble (Summary.without_order base) in
  let p5 = Paper_fixture.bv Paper_fixture.p5 in
  Alcotest.(check (float 1e-9)) "order lookups are 0" 0.0
    (Summary.order_frequency s ~tag:"B" ~pid:p5 ~other:"C" ~region:Po_table.After);
  Alcotest.(check int) "no o-histogram bytes" 0 (Summary.o_histogram_bytes s);
  (* path side unaffected *)
  Alcotest.(check (float 1e-9)) "tag totals intact" 4.0 (Summary.tag_total s "B")

let test_memory_accounting () =
  Alcotest.(check bool) "p-histogram bytes > 0" true
    (Summary.p_histogram_bytes summary > 0);
  Alcotest.(check bool) "o-histogram bytes > 0" true
    (Summary.o_histogram_bytes summary > 0);
  Alcotest.(check int) "total = enc + tree + p"
    (Summary.encoding_table_bytes summary
    + Summary.pid_tree_bytes summary
    + Summary.p_histogram_bytes summary)
    (Summary.total_bytes summary)

let test_variance_shrinks_memory () =
  let doc = Xpest_datasets.Registry.generate ~scale:0.02 Xpest_datasets.Registry.Xmark in
  let base = Summary.collect doc in
  let exact = Summary.assemble ~p_variance:0.0 ~o_variance:0.0 base in
  let loose = Summary.assemble ~p_variance:10.0 ~o_variance:10.0 base in
  Alcotest.(check bool) "p shrinks" true
    (Summary.p_histogram_bytes loose <= Summary.p_histogram_bytes exact);
  Alcotest.(check bool) "o shrinks" true
    (Summary.o_histogram_bytes loose <= Summary.o_histogram_bytes exact);
  Alcotest.(check bool) "p strictly shrinks on real data" true
    (Summary.p_histogram_bytes loose < Summary.p_histogram_bytes exact)

let test_estimates_at_variance0_are_exact_frequencies () =
  (* variance-0 summaries reproduce the pf-table *)
  let pf = Summary.pf_table base in
  List.iter
    (fun tag ->
      Alcotest.(check (float 1e-9))
        (tag ^ " total")
        (Float.of_int (Pf_table.total_frequency pf tag))
        (Summary.tag_total summary tag))
    (Pf_table.tags pf)

let () =
  Alcotest.run "summary"
    [
      ( "unit",
        [
          Alcotest.test_case "tag_pids" `Quick test_tag_pids_exact;
          Alcotest.test_case "tag_total" `Quick test_tag_total;
          Alcotest.test_case "order_frequency" `Quick test_order_frequency;
          Alcotest.test_case "without_order" `Quick test_without_order;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "variance shrinks memory" `Quick
            test_variance_shrinks_memory;
          Alcotest.test_case "variance 0 is exact" `Quick
            test_estimates_at_variance0_are_exact_frequencies;
        ] );
    ]
