test/test_encoding.ml: Alcotest Format List Paper_fixture QCheck QCheck_alcotest Xpest_encoding Xpest_util Xpest_xml
