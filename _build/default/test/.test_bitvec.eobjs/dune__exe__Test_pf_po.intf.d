test/test_pf_po.mli:
