test/test_xpath_eval.mli:
