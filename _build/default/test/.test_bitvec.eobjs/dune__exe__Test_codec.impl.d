test/test_codec.ml: Alcotest Filename Fun List Paper_fixture Sys Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_util Xpest_xml Xpest_xpath
