test/test_xml.ml: Alcotest Array Format List QCheck QCheck_alcotest String Xpest_xml
