test/test_path_join.ml: Alcotest Float Format Fun List Paper_fixture Printf QCheck QCheck_alcotest Xpest_datasets Xpest_encoding Xpest_estimator Xpest_synopsis Xpest_util Xpest_xml Xpest_xpath
