test/test_xpath_parser.ml: Alcotest List Printf Xpest_xpath
