test/test_pattern.ml: Alcotest List Xpest_xpath
