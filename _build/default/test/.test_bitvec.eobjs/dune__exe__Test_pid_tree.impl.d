test/test_pid_tree.ml: Alcotest Array Int List Printf QCheck QCheck_alcotest String Xpest_datasets Xpest_encoding Xpest_util Xpest_xml
