test/paper_fixture.ml: Xpest_util Xpest_xml
