test/test_tablefmt.mli:
