test/test_encoding.mli:
