test/test_o_histogram.mli:
