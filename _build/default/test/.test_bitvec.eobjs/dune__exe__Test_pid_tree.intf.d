test/test_pid_tree.mli:
