test/test_prng.ml: Alcotest Array Float Fun Hashtbl Int Int64 Option Printf Xpest_util
