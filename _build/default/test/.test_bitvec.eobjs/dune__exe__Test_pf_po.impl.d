test/test_pf_po.ml: Alcotest Array Format Fun List Paper_fixture QCheck QCheck_alcotest Xpest_encoding Xpest_synopsis Xpest_util Xpest_xml
