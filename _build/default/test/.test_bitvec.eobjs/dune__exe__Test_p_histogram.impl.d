test/test_p_histogram.ml: Alcotest Array Float Hashtbl Int List Printf QCheck QCheck_alcotest String Xpest_synopsis Xpest_util
