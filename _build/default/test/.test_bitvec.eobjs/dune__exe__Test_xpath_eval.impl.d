test/test_xpath_eval.ml: Alcotest Int List Xpest_xml Xpest_xpath
