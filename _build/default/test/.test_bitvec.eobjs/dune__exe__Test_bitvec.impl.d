test/test_bitvec.ml: Alcotest Int List QCheck QCheck_alcotest String Xpest_util
