test/test_truth.ml: Alcotest Format Fun Int List QCheck QCheck_alcotest Set Xpest_xml Xpest_xpath
