test/test_baseline.ml: Alcotest Array Float List Printf Xpest_baseline Xpest_datasets Xpest_util Xpest_workload Xpest_xml Xpest_xpath
