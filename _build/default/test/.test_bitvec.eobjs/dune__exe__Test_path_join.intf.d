test/test_path_join.mli:
