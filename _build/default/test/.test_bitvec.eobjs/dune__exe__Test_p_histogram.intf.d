test/test_p_histogram.mli:
