test/test_datasets.ml: Alcotest Array List Xpest_datasets Xpest_xml
