test/test_integration.ml: Alcotest Array Filename Float Fun List Printf Sys Xpest_baseline Xpest_datasets Xpest_estimator Xpest_synopsis Xpest_util Xpest_workload Xpest_xml Xpest_xpath
