test/test_o_histogram.ml: Alcotest Array Float Hashtbl List Printf QCheck QCheck_alcotest Xpest_synopsis
