test/test_tablefmt.ml: Alcotest List String Xpest_util
