test/test_xpath_parser.mli:
