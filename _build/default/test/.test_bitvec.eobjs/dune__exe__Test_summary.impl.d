test/test_summary.ml: Alcotest Float List Paper_fixture Xpest_datasets Xpest_synopsis Xpest_util Xpest_xml
