test/test_harness.ml: Alcotest Float List String Xpest_datasets Xpest_harness Xpest_workload Xpest_xml Xpest_xpath
