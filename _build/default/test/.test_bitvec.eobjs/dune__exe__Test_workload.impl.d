test/test_workload.ml: Alcotest List Printf String Xpest_datasets Xpest_workload Xpest_xml Xpest_xpath
