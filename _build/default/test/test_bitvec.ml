module Bitvec = Xpest_util.Bitvec

let bv = Bitvec.of_string

(* qcheck generator for bitvectors of a given width *)
let bitvec_gen width =
  QCheck.Gen.(
    array_size (return width) bool >|= fun bits -> Bitvec.of_bits bits)

let arb_pair_same_width =
  QCheck.make
    QCheck.Gen.(
      int_range 1 200 >>= fun w ->
      pair (bitvec_gen w) (bitvec_gen w))
    ~print:(fun (a, b) -> Bitvec.to_string a ^ " / " ^ Bitvec.to_string b)

let test_basics () =
  let v = Bitvec.zero 10 in
  Alcotest.(check int) "width" 10 (Bitvec.width v);
  Alcotest.(check bool) "zero is zero" true (Bitvec.is_zero v);
  let v = Bitvec.set v 3 in
  Alcotest.(check bool) "bit 3 set" true (Bitvec.get v 3);
  Alcotest.(check bool) "bit 4 unset" false (Bitvec.get v 4);
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v);
  Alcotest.(check (list int)) "set_bits" [ 3 ] (Bitvec.set_bits v)

let test_string_roundtrip () =
  let s = "10110010011" in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string (bv s))

let test_wide_vectors () =
  (* widths beyond one word (62 bits) *)
  let v = Bitvec.singleton 200 199 in
  Alcotest.(check bool) "high bit" true (Bitvec.get v 199);
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v);
  let w = Bitvec.logor v (Bitvec.singleton 200 0) in
  Alcotest.(check (list int)) "bits" [ 0; 199 ] (Bitvec.set_bits w);
  Alcotest.(check int) "byte_size" 25 (Bitvec.byte_size v)

let test_paper_containment () =
  (* Section 2, Example 2.3: p3 (0011) contains p2 (0010). *)
  Alcotest.(check bool) "p3 contains p2" true (Bitvec.contains (bv "0011") (bv "0010"));
  Alcotest.(check bool) "p2 not contains p3" false
    (Bitvec.contains (bv "0010") (bv "0011"));
  Alcotest.(check bool) "no self containment" false
    (Bitvec.contains (bv "0011") (bv "0011"));
  Alcotest.(check bool) "contains_or_equal self" true
    (Bitvec.contains_or_equal (bv "0011") (bv "0011"))

let test_errors () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitvec.logor: width mismatch (3 vs 4)") (fun () ->
      ignore (Bitvec.logor (bv "000") (bv "0000")));
  Alcotest.check_raises "index out of bounds"
    (Invalid_argument "Bitvec: index 3 out of bounds (width 3)") (fun () ->
      ignore (Bitvec.get (bv "000") 3))

let test_first_set_bit () =
  Alcotest.(check (option int)) "none" None (Bitvec.first_set_bit (Bitvec.zero 5));
  Alcotest.(check (option int)) "some" (Some 2) (Bitvec.first_set_bit (bv "00101"))

(* properties *)

let prop_or_commutative =
  QCheck.Test.make ~name:"logor commutative" ~count:200 arb_pair_same_width
    (fun (a, b) -> Bitvec.equal (Bitvec.logor a b) (Bitvec.logor b a))

let prop_and_below_or =
  QCheck.Test.make ~name:"or contains_or_equal and" ~count:200
    arb_pair_same_width (fun (a, b) ->
      Bitvec.contains_or_equal (Bitvec.logor a b) (Bitvec.logand a b))

let prop_containment_def =
  QCheck.Test.make ~name:"containment matches and-definition" ~count:500
    arb_pair_same_width (fun (a, b) ->
      Bitvec.contains a b
      = ((not (Bitvec.equal a b)) && Bitvec.equal (Bitvec.logand a b) b))

let prop_popcount_or =
  QCheck.Test.make ~name:"popcount or = pa + pb - pand" ~count:200
    arb_pair_same_width (fun (a, b) ->
      Bitvec.popcount (Bitvec.logor a b)
      = Bitvec.popcount a + Bitvec.popcount b
        - Bitvec.popcount (Bitvec.logand a b))

let prop_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(int_range 1 150 >>= bitvec_gen)
       ~print:Bitvec.to_string)
    (fun v -> Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let prop_packed_roundtrip =
  QCheck.Test.make ~name:"packed string roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(int_range 1 200 >>= bitvec_gen)
       ~print:Bitvec.to_string)
    (fun v ->
      Bitvec.equal v
        (Bitvec.of_packed_string ~width:(Bitvec.width v)
           (Bitvec.to_packed_string v)))

let test_packed_validation () =
  Alcotest.(check bool) "length mismatch rejected" true
    (match Bitvec.of_packed_string ~width:9 "x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "padding bits rejected" true
    (match Bitvec.of_packed_string ~width:4 "\xf0" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check int) "packed length" 2
    (String.length (Bitvec.to_packed_string (Bitvec.zero 9)))

let prop_set_bits_sorted =
  QCheck.Test.make ~name:"set_bits increasing and consistent" ~count:200
    (QCheck.make
       QCheck.Gen.(int_range 1 150 >>= bitvec_gen)
       ~print:Bitvec.to_string)
    (fun v ->
      let bits = Bitvec.set_bits v in
      List.sort_uniq Int.compare bits = bits
      && List.length bits = Bitvec.popcount v
      && List.for_all (Bitvec.get v) bits)

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "wide vectors" `Quick test_wide_vectors;
          Alcotest.test_case "paper containment" `Quick test_paper_containment;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "first_set_bit" `Quick test_first_set_bit;
          Alcotest.test_case "packed validation" `Quick test_packed_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_or_commutative;
            prop_and_below_or;
            prop_containment_def;
            prop_popcount_or;
            prop_roundtrip;
            prop_packed_roundtrip;
            prop_set_bits_sorted;
          ] );
    ]
