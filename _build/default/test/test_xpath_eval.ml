module Doc = Xpest_xml.Doc
module Ast = Xpest_xpath.Ast
module Parser = Xpest_xpath.Parser
module Eval = Xpest_xpath.Eval

(* Fixture:
   a
   +- b (1)
   |  +- d (2)
   |  +- e (3)
   +- c (4)
   |  +- e (5)
   |  +- d (6)
   |  +- e (7)
   +- b (8)
      +- c (9)
         +- d (10) *)
let doc =
  Doc.of_tree
    Xpest_xml.Tree.(
      elem "a"
        [
          elem "b" [ leaf "d"; leaf "e" ];
          elem "c" [ leaf "e"; leaf "d"; leaf "e" ];
          elem "b" [ elem "c" [ leaf "d" ] ];
        ])

let run s = Eval.eval doc (Parser.parse_string s)
let check_ids = Alcotest.(check (list int))

let test_absolute_child () =
  check_ids "/a" [ 0 ] (run "/a");
  check_ids "/b (root not named b)" [] (run "/b");
  check_ids "/a/b" [ 1; 8 ] (run "/a/b");
  (* d at 10 is under c, not directly under b *)
  check_ids "/a/b/d" [ 2 ] (run "/a/b/d")

let test_descendant () =
  check_ids "//d" [ 2; 6; 10 ] (run "//d");
  check_ids "//b//d" [ 2; 10 ] (run "//b//d");
  check_ids "//c/d" [ 6; 10 ] (run "//c/d")

let test_predicates () =
  check_ids "//b[d]" [ 1 ] (run "//b[d]");
  check_ids "//b[c/d]" [ 8 ] (run "//b[c/d]");
  check_ids "//c[e]/d" [ 6 ] (run "//c[e]/d");
  check_ids "//b[z]" [] (run "//b[z]")

let test_order_axes () =
  check_ids "//b/following-sibling::c" [ 4 ] (run "//b/following-sibling::c");
  check_ids "//c/folls::b" [ 8 ] (run "//c/folls::b");
  check_ids "//c/pres::b" [ 1 ] (run "//c/pres::b");
  check_ids "//e/folls::d" [ 6 ] (run "//e/folls::d");
  (* following: everything after in document order, minus descendants *)
  check_ids "//b/following::d" [ 6; 10 ] (run "//b/following::d");
  check_ids "//d/preceding::e" [ 3; 5; 7 ] (run "//d/preceding::e")

let test_other_axes () =
  check_ids "parent" [ 4 ] (run "//e/parent::c" |> List.sort_uniq Int.compare);
  check_ids "ancestor" [ 0; 8; 9 ]
    (run "//d/ancestor::*" |> List.filter (fun n -> n = 0 || n = 8 || n = 9));
  check_ids "self" [ 2; 6; 10 ] (run "//d/self::d")

let test_wildcard () =
  check_ids "/a/*" [ 1; 4; 8 ] (run "/a/*");
  Alcotest.(check int) "//* counts all" (Doc.size doc) (Eval.count doc (Parser.parse_string "//*"))

let test_axis_nodes_following () =
  (* node 1 (first b): following = 4..10 *)
  check_ids "following of b1" [ 4; 5; 6; 7; 8; 9; 10 ]
    (Eval.axis_nodes doc Ast.Following 1);
  check_ids "preceding of node 9" [ 1; 2; 3; 4; 5; 6; 7 ]
    (Eval.axis_nodes doc Ast.Preceding 9)

let test_eval_from () =
  let res =
    Eval.eval_from doc [ 4 ] (Parser.parse_string "e")
  in
  check_ids "relative from c" [ 5; 7 ] res

let () =
  Alcotest.run "xpath_eval"
    [
      ( "unit",
        [
          Alcotest.test_case "absolute/child" `Quick test_absolute_child;
          Alcotest.test_case "descendant" `Quick test_descendant;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "order axes" `Quick test_order_axes;
          Alcotest.test_case "other axes" `Quick test_other_axes;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "axis_nodes" `Quick test_axis_nodes_following;
          Alcotest.test_case "eval_from" `Quick test_eval_from;
        ] );
    ]
