module Prng = Xpest_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_int_in_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 500 do
    let v = Prng.int_in_range rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_float_distribution () =
  let rng = Prng.create 99 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let f = Prng.float rng 1.0 in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0);
    sum := !sum +. f
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_geometric_mean () =
  let rng = Prng.create 5 in
  let n = 20_000 and p = 0.45 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.geometric rng p
  done;
  let mean = Float.of_int !sum /. Float.of_int n in
  let expected = (1.0 -. p) /. p in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near %.3f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.1)

let test_choose_weighted () =
  let rng = Prng.create 11 in
  let counts = Hashtbl.create 3 in
  let items = [| ("a", 1.0); ("b", 3.0); ("c", 0.0) |] in
  for _ = 1 to 10_000 do
    let k = Prng.choose_weighted rng items in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero-weight never picked" 0 (get "c");
  Alcotest.(check bool) "b ~3x a" true
    (let ratio = Float.of_int (get "b") /. Float.of_int (max 1 (get "a")) in
     ratio > 2.5 && ratio < 3.6)

let test_shuffle_permutation () =
  let rng = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_zipf_skew () =
  let rng = Prng.create 13 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Prng.zipf rng 10 1.2 in
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true
    (Array.for_all (fun c -> counts.(0) >= c) counts)

let test_split_independence () =
  let parent = Prng.create 21 in
  let child = Prng.split parent in
  (* both usable, and deterministic given the seed *)
  let p2 = Prng.create 21 in
  let c2 = Prng.split p2 in
  Alcotest.(check int64) "split deterministic" (Prng.bits64 child) (Prng.bits64 c2);
  Alcotest.(check int64) "parent deterministic after split" (Prng.bits64 parent)
    (Prng.bits64 p2)

let test_copy () =
  let a = Prng.create 8 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "float distribution" `Quick test_float_distribution;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy;
        ] );
    ]
