(* xpest: command-line front end to the estimation system.

   Subcommands:
     generate    write a synthetic dataset as XML
     stats       show document / synopsis statistics
     plan        print the compiled query-plan IR of XPath patterns
     estimate    estimate the selectivity of XPath patterns
     workload    generate and summarize a query workload
     experiment  reproduce the paper's tables and figures *)

module Registry = Xpest_datasets.Registry
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Labeler = Xpest_encoding.Labeler
module Encoding_table = Xpest_encoding.Encoding_table
module Pid_tree = Xpest_encoding.Pid_tree
module Plan = Xpest_plan.Plan
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Tablefmt = Xpest_util.Tablefmt
module Counters = Xpest_util.Counters
module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module Cache_config = Xpest_plan.Cache_config
module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Manifest = Xpest_synopsis.Manifest
module Sketch = Xpest_synopsis.Sketch
module Catalog = Xpest_catalog.Catalog
module Admission = Xpest_catalog.Admission
module Env = Xpest_harness.Env
module Experiments = Xpest_harness.Experiments
module Metrics = Xpest_harness.Metrics
module Report = Xpest_harness.Report

open Cmdliner

(* ---------------- shared arguments ---------------- *)

let source_conv =
  let parse s =
    match Registry.of_string s with
    | Some name -> Ok (`Dataset name)
    | None ->
        if Sys.file_exists s then Ok (`File s)
        else
          Error
            (`Msg
               (Printf.sprintf
                  "%S is neither a dataset (ssplays|dblp|xmark) nor a file" s))
  in
  let print ppf = function
    | `Dataset name -> Format.pp_print_string ppf (Registry.to_string name)
    | `File f -> Format.pp_print_string ppf f
  in
  Arg.conv (parse, print)

let source =
  Arg.(
    required
    & pos 0 (some source_conv) None
    & info [] ~docv:"SOURCE" ~doc:"Dataset name (ssplays|dblp|xmark) or an XML file.")

let scale =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~docv:"S"
        ~doc:"Scale factor for synthetic datasets (1.0 = paper-size).")

let seed =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Generator seed (default per dataset).")

let load_doc source ~scale ~seed =
  match source with
  | `Dataset name -> Registry.generate ~scale ?seed name
  | `File path -> Doc.of_tree (Xpest_xml.Parser.parse_file path)

(* ---------------- generate ---------------- *)

let generate_cmd =
  let run source scale seed output =
    let tree =
      match source with
      | `Dataset name -> Registry.generate_tree ~scale ?seed name
      | `File path -> Xpest_xml.Parser.parse_file path
    in
    match output with
    | Some path ->
        Xpest_xml.Printer.to_file path tree;
        Printf.printf "wrote %s (%d elements)\n" path (Xpest_xml.Tree.size tree)
    | None -> print_string (Xpest_xml.Printer.to_string tree)
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset as XML.")
    Term.(const run $ source $ scale $ seed $ output)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let run source scale seed p_variance o_variance =
    let doc = load_doc source ~scale ~seed in
    let s = Summary.build ~p_variance ~o_variance doc in
    let labeler = Summary.labeler s in
    let pid_tree =
      Pid_tree.build (Array.to_list (Labeler.distinct_pids labeler))
    in
    let rows =
      [
        [ "elements"; string_of_int (Doc.size doc) ];
        [ "distinct tags"; string_of_int (Doc.num_tags doc) ];
        [ "serialized size"; Tablefmt.fmt_bytes (Doc.serialized_byte_size doc) ];
        [ "max depth"; string_of_int (Doc.max_depth doc) ];
        [
          "distinct root-to-leaf paths";
          string_of_int (Encoding_table.num_paths (Summary.encoding_table s));
        ];
        [ "path id size"; Printf.sprintf "%d bytes" (Labeler.pid_byte_size labeler) ];
        [ "distinct path ids"; string_of_int (Labeler.num_distinct labeler) ];
        [ "encoding table"; Tablefmt.fmt_bytes (Summary.encoding_table_bytes s) ];
        [ "path id table"; Tablefmt.fmt_bytes (Labeler.pid_table_byte_size labeler) ];
        [
          "pid binary tree";
          Printf.sprintf "%s (uncompressed %s)"
            (Tablefmt.fmt_bytes (Pid_tree.byte_size pid_tree))
            (Tablefmt.fmt_bytes (Pid_tree.uncompressed_byte_size pid_tree));
        ];
        [
          Printf.sprintf "p-histograms (v=%g)" p_variance;
          Tablefmt.fmt_bytes (Summary.p_histogram_bytes s);
        ];
        [
          Printf.sprintf "o-histograms (v=%g)" o_variance;
          Tablefmt.fmt_bytes (Summary.o_histogram_bytes s);
        ];
        [ "total (enc + tree + p-histo)"; Tablefmt.fmt_bytes (Summary.total_bytes s) ];
      ]
    in
    print_endline
      (Tablefmt.render_table ~header:[ "statistic"; "value" ]
         ~align:[ Tablefmt.Left; Tablefmt.Right ]
         rows)
  in
  let p_variance =
    Arg.(value & opt float 0.0 & info [ "p-variance" ] ~docv:"V" ~doc:"P-histogram variance.")
  in
  let o_variance =
    Arg.(value & opt float 0.0 & info [ "o-variance" ] ~docv:"V" ~doc:"O-histogram variance.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show document and synopsis statistics.")
    Term.(const run $ source $ scale $ seed $ p_variance $ o_variance)

(* ---------------- synopsis save / load / info / bench ---------------- *)

let synopsis_save run_name source scale seed p_variance o_variance output =
  ignore run_name;
  let doc = load_doc source ~scale ~seed in
  let s = Summary.build ~p_variance ~o_variance doc in
  Summary.save s output;
  Printf.printf "wrote %s (%s: p-histograms %s, o-histograms %s)\n" output
    (Tablefmt.fmt_bytes
       (let st = Unix.stat output in
        st.Unix.st_size))
    (Tablefmt.fmt_bytes (Summary.p_histogram_bytes s))
    (Tablefmt.fmt_bytes (Summary.o_histogram_bytes s))

let p_variance_arg =
  Arg.(value & opt float 0.0 & info [ "p-variance" ] ~docv:"V" ~doc:"P-histogram variance.")

let o_variance_arg =
  Arg.(value & opt float 0.0 & info [ "o-variance" ] ~docv:"V" ~doc:"O-histogram variance.")

let synopsis_output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Synopsis output file.")

let build_synopsis_cmd =
  Cmd.v
    (Cmd.info "build-synopsis"
       ~doc:"Build the estimation synopsis and persist it to disk (alias of \
             `synopsis save`).")
    Term.(
      const (synopsis_save "build-synopsis")
      $ source $ scale $ seed $ p_variance_arg $ o_variance_arg
      $ synopsis_output_arg)

let synopsis_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"A synopsis file written by `synopsis save`.")

(* Operational failures keep a one-line contract: `xpest: <error>` on
   stderr, exit 1.  Typed errors render as kind: path [section]: reason
   (see README "Error handling"). *)
let or_die_e = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("xpest: " ^ E.to_string e);
      exit 1

(* Bucket/box counts per histogram family: the numbers variance-target
   tuning turns (higher variance -> fewer buckets -> smaller synopsis,
   larger error). *)
let histogram_rows s =
  let describe what unit counts =
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
    let largest =
      List.fold_left
        (fun (bt, bn) (t, n) -> if n > bn then (t, n) else (bt, bn))
        ("-", 0) counts
    in
    if counts = [] then [ [ what ^ "s"; "none" ] ]
    else
      [
        [
          what ^ "s";
          Printf.sprintf "%d tags, %d %s" (List.length counts) total unit;
        ];
        [
          "largest " ^ what;
          Printf.sprintf "%s (%d %s)" (fst largest) (snd largest) unit;
        ];
      ]
  in
  describe "p-histogram" "buckets" (Summary.p_histogram_buckets s)
  @ describe "o-histogram" "boxes" (Summary.o_histogram_boxes s)

let manifest_entry_rows m =
  List.map
    (fun (e : Manifest.entry) ->
      [
        Catalog.key_to_string
          { Catalog.dataset = e.Manifest.dataset; variance = e.Manifest.variance };
        e.Manifest.file;
        Tablefmt.fmt_bytes e.Manifest.bytes;
        Printf.sprintf "%016Lx" e.Manifest.checksum;
      ])
    m.Manifest.entries

let synopsis_info_cmd =
  let run file =
    let i = or_die_e (Synopsis_io.info_typed file) in
    let kind = Synopsis_io.kind i in
    let decodable = i.Synopsis_io.supported && i.Synopsis_io.checksum_ok in
    let rows =
      [
        [ "file"; i.Synopsis_io.path ];
        [
          "kind";
          (match kind with
          | `Synopsis -> "synopsis"
          | `Catalog_manifest -> "catalog manifest"
          | `Sketch -> "fallback sketch"
          | `Unknown -> "unknown");
        ];
        [ "wire format version"; string_of_int i.Synopsis_io.version ];
        [ "supported"; (if i.Synopsis_io.supported then "yes" else "no") ];
        [
          "on-disk size";
          Printf.sprintf "%s (%d bytes)"
            (Tablefmt.fmt_bytes i.Synopsis_io.total_bytes)
            i.Synopsis_io.total_bytes;
        ];
        [ "checksum (fnv1a64)"; Printf.sprintf "%016Lx" i.Synopsis_io.checksum ];
        [ "checksum ok"; (if i.Synopsis_io.checksum_ok then "yes" else "NO") ];
      ]
      @ List.map
          (fun (name, bytes) ->
            [ "section " ^ name; Tablefmt.fmt_bytes bytes ])
          i.Synopsis_io.sections
      @ (if i.Synopsis_io.checksum_ok then
           [ [ "container overhead"; Tablefmt.fmt_bytes (Synopsis_io.overhead_bytes i) ] ]
         else [])
      @
      match kind with
      | `Synopsis when decodable ->
          histogram_rows (or_die_e (Synopsis_io.load_typed file))
      | `Sketch when decodable ->
          let sk = or_die_e (Sketch.load_typed file) in
          [
            [ "distinct tags"; string_of_int (Sketch.num_tags sk) ];
            [ "total elements"; string_of_int (Sketch.total_elements sk) ];
          ]
      | `Synopsis | `Catalog_manifest | `Sketch | `Unknown -> []
    in
    print_endline
      (Tablefmt.render_table ~header:[ "field"; "value" ]
         ~align:[ Tablefmt.Left; Tablefmt.Right ]
         rows);
    (match kind with
    | `Catalog_manifest when decodable ->
        let m = or_die_e (Manifest.load_typed file) in
        print_newline ();
        print_endline
          (Tablefmt.render_table
             ~header:[ "key"; "file"; "size"; "checksum" ]
             ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
             (manifest_entry_rows m))
    | `Synopsis | `Catalog_manifest | `Sketch | `Unknown -> ());
    if not i.Synopsis_io.checksum_ok then begin
      prerr_endline "xpest: checksum mismatch - file is corrupted or truncated";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Report a synopsis or catalog-manifest file's version, checksum, \
             per-component sizes, per-histogram bucket counts and (for \
             manifests) the entry table.")
    Term.(const run $ synopsis_file_arg)

let synopsis_load_cmd =
  let run file metrics =
    let work () =
      let (s, seconds) =
        Env.time (fun () -> or_die_e (Synopsis_io.load_typed file))
      in
      let rows =
        [
          [ "loaded in"; Tablefmt.fmt_seconds seconds ];
          [ "distinct tags"; string_of_int (Array.length (Summary.tags s)) ];
          [
            "distinct root-to-leaf paths";
            string_of_int
              (Xpest_encoding.Encoding_table.num_paths (Summary.encoding_table s));
          ];
          [ "p-variance"; Printf.sprintf "%g" (Summary.p_variance s) ];
          [ "o-variance"; Printf.sprintf "%g" (Summary.o_variance s) ];
          [ "p-histograms"; Tablefmt.fmt_bytes (Summary.p_histogram_bytes s) ];
          [ "o-histograms"; Tablefmt.fmt_bytes (Summary.o_histogram_bytes s) ];
          [ "total (modeled)"; Tablefmt.fmt_bytes (Summary.total_bytes s) ];
        ]
      in
      print_endline
        (Tablefmt.render_table ~header:[ "statistic"; "value" ]
           ~align:[ Tablefmt.Left; Tablefmt.Right ]
           rows)
    in
    if metrics then begin
      Metrics.with_counters work;
      Printf.printf "\nObservability counters:\n%s" (Metrics.render_counters ())
    end
    else work ()
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print observability counters.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Load a synopsis file (verifying its checksum) and print its \
             statistics.")
    Term.(const run $ synopsis_file_arg $ metrics)

(* Cold-build vs. load-from-disk: the paper's Tables 4-5 measure
   construction cost; this measures what persistence buys back. *)
let synopsis_bench_cmd =
  let run source scale seed p_variance o_variance attempts markdown =
    Metrics.with_counters (fun () ->
        let doc = load_doc source ~scale ~seed in
        let file = Filename.temp_file "xpest_synopsis" ".bin" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
          (fun () ->
            let built, build_s =
              Env.time (fun () -> Summary.build ~p_variance ~o_variance doc)
            in
            let (), save_s = Env.time (fun () -> Summary.save built file) in
            let loaded, load_s = Env.time (fun () -> Summary.load file) in
            let config =
              {
                Workload.default_config with
                num_simple = attempts;
                num_branch = attempts;
              }
            in
            let w = Workload.generate ~config doc in
            let queries =
              List.concat_map
                (fun items ->
                  List.map (fun (it : Workload.item) -> it.pattern) items)
                [
                  w.Workload.simple; w.Workload.branch;
                  w.Workload.order_branch_target; w.Workload.order_trunk_target;
                ]
            in
            let throughput summary =
              let est = Estimator.create summary in
              let estimates = ref [] in
              let (), seconds =
                Env.time (fun () ->
                    List.iter
                      (fun q ->
                        estimates := Estimator.estimate est q :: !estimates)
                      queries)
              in
              (List.rev !estimates, float_of_int (List.length queries) /. seconds)
            in
            let est_built, qps_built = throughput built in
            let est_loaded, qps_loaded = throughput loaded in
            let max_diff =
              List.fold_left2
                (fun acc a b -> Float.max acc (Float.abs (a -. b)))
                0.0 est_built est_loaded
            in
            let file_bytes = (Unix.stat file).Unix.st_size in
            let table =
              {
                Experiments.id = "SB";
                title =
                  Printf.sprintf
                    "Synopsis persistence: cold build vs. load (%s, scale %g, \
                     %d queries)"
                    (match source with
                    | `Dataset name -> Registry.to_string name
                    | `File f -> f)
                    scale (List.length queries);
                header = [ "measure"; "cold build"; "load from disk" ];
                rows =
                  [
                    [
                      "synopsis ready (s)";
                      Tablefmt.fmt_seconds build_s;
                      Tablefmt.fmt_seconds load_s;
                    ];
                    [
                      "speedup vs. cold build";
                      "1.0x";
                      Printf.sprintf "%.1fx" (build_s /. Float.max load_s 1e-9);
                    ];
                    [
                      "estimation throughput (queries/s)";
                      Printf.sprintf "%.0f" qps_built;
                      Printf.sprintf "%.0f" qps_loaded;
                    ];
                    [
                      "save time (s)";
                      Tablefmt.fmt_seconds save_s;
                      "-";
                    ];
                    [
                      "file size";
                      "-";
                      Tablefmt.fmt_bytes file_bytes;
                    ];
                    [
                      "max |estimate difference|";
                      "-";
                      Printf.sprintf "%g" max_diff;
                    ];
                  ];
              }
            in
            if markdown then print_string (Report.table_md table)
            else print_endline (Experiments.render (Experiments.Table table))));
    Printf.printf "\nObservability counters:\n%s" (Metrics.render_counters ())
  in
  let attempts =
    Arg.(
      value & opt int 400
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Workload generation attempts per class.")
  in
  let markdown =
    Arg.(
      value & flag
      & info [ "markdown" ] ~doc:"Render the comparison as a markdown table.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Compare cold-build vs. load-from-disk estimation throughput.")
    Term.(
      const run $ source $ scale $ seed $ p_variance_arg $ o_variance_arg
      $ attempts $ markdown)

let synopsis_cmd =
  Cmd.group
    (Cmd.info "synopsis"
       ~doc:"Persist, inspect and benchmark estimation synopses.")
    [
      Cmd.v
        (Cmd.info "save"
           ~doc:"Build the estimation synopsis and persist it to disk.")
        Term.(
          const (synopsis_save "synopsis save")
          $ source $ scale $ seed $ p_variance_arg $ o_variance_arg
          $ synopsis_output_arg);
      synopsis_load_cmd;
      synopsis_info_cmd;
      synopsis_bench_cmd;
    ]

(* ---------------- catalog ---------------- *)

let key_conv =
  let parse s =
    match Catalog.key_of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  let print ppf k = Format.pp_print_string ppf (Catalog.key_to_string k) in
  Arg.conv (parse, print)

let catalog_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Catalog directory (holds synopsis files and \
                                the $(b,catalog.manifest)).")

let manifest_path dir = Filename.concat dir Catalog.manifest_filename

let load_manifest dir =
  let path = manifest_path dir in
  if Sys.file_exists path then or_die_e (Manifest.load_typed path)
  else begin
    prerr_endline
      (Printf.sprintf "xpest: no %s in %s (run `xpest catalog build` first)"
         Catalog.manifest_filename dir);
    exit 1
  end

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let catalog_build_cmd =
  let run dir keys scale seed =
    mkdir_p dir;
    let manifest = ref (
      let path = manifest_path dir in
      if Sys.file_exists path then or_die_e (Manifest.load_typed path)
      else Manifest.empty)
    in
    (* one generated document per dataset, shared across its variances *)
    let docs = Hashtbl.create 4 in
    let doc_of dataset =
      match Hashtbl.find_opt docs dataset with
      | Some doc -> doc
      | None ->
          let name =
            match Registry.of_string dataset with
            | Some name -> name
            | None ->
                prerr_endline
                  (Printf.sprintf
                     "xpest: %S is not a dataset (ssplays|dblp|xmark)" dataset);
                exit 1
          in
          let doc = Registry.generate ~scale ?seed name in
          Hashtbl.add docs dataset doc;
          doc
    in
    List.iter
      (fun (key : Catalog.key) ->
        let doc = doc_of key.Catalog.dataset in
        let s =
          Summary.build ~p_variance:key.Catalog.variance
            ~o_variance:key.Catalog.variance doc
        in
        manifest := Catalog.save_entry ~dir !manifest key s;
        let e =
          match
            Manifest.find !manifest ~dataset:key.Catalog.dataset
              ~variance:key.Catalog.variance
          with
          | Some e -> e
          | None -> assert false
        in
        Printf.printf "built %s -> %s (%s)\n%!"
          (Catalog.key_to_string key)
          e.Manifest.file
          (Tablefmt.fmt_bytes e.Manifest.bytes))
      keys;
    (* one fallback sketch per distinct dataset — the degradation
       ladder's last rung, built from the same generated document the
       summaries came from *)
    let datasets =
      List.sort_uniq String.compare
        (List.map (fun (k : Catalog.key) -> k.Catalog.dataset) keys)
    in
    List.iter
      (fun dataset ->
        let sketch = Sketch.build (doc_of dataset) in
        manifest := Catalog.save_sketch ~dir !manifest dataset sketch;
        let e =
          match Manifest.find_sketch !manifest ~dataset with
          | Some e -> e
          | None -> assert false
        in
        Printf.printf "built %s sketch -> %s (%s)\n%!" dataset
          e.Manifest.s_file
          (Tablefmt.fmt_bytes e.Manifest.s_bytes))
      datasets;
    Manifest.save !manifest (manifest_path dir);
    Printf.printf "wrote %s (%d entries, %d sketches)\n" (manifest_path dir)
      (List.length !manifest.Manifest.entries)
      (List.length !manifest.Manifest.sketches)
  in
  let keys =
    Arg.(
      non_empty
      & pos_right 0 key_conv []
      & info [] ~docv:"KEY"
          ~doc:
            "Catalog keys as $(i,dataset)[@$(i,variance)], e.g. dblp@2; a \
             bare dataset means variance 0.  The variance is used for both \
             histogram families.")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Build synopsis files for the given (dataset, variance) keys and \
             write/extend the catalog manifest.")
    Term.(const run $ catalog_dir_arg $ keys $ scale $ seed)

(* One rendering of the loader circuit breaker's state, shared by
   `catalog estimate` stats output and `catalog info --health`. *)
let render_breaker (bv : Admission.breaker_view) =
  match bv.Admission.state with
  | `Closed -> "closed"
  | `Half_open -> "half-open (probe in flight)"
  | `Open ->
      Printf.sprintf "OPEN (probe in %d tick(s), cooldown %d)"
        bv.Admission.remaining_ticks bv.Admission.cooldown

let catalog_info_cmd =
  let run dir health =
    let m = load_manifest dir in
    if health then begin
      (* typed verification of every entry: the same check the serving
         loader performs, rendered per key with the error taxonomy *)
      let unhealthy = ref 0 in
      let rows =
        List.map
          (fun (e : Manifest.entry) ->
            let key =
              { Catalog.dataset = e.Manifest.dataset;
                variance = e.Manifest.variance }
            in
            let status, detail =
              match Catalog.manifest_verify ~dir m key with
              | Ok () -> ("ok", "")
              | Error err ->
                  incr unhealthy;
                  (String.uppercase_ascii (E.kind err), E.to_string err)
            in
            [ Catalog.key_to_string key; e.Manifest.file; status; detail ])
          m.Manifest.entries
        @ List.map
            (fun (e : Manifest.sketch_entry) ->
              let status, detail =
                match Catalog.sketch_check ~dir e with
                | Ok _ -> ("ok", "")
                | Error err ->
                    incr unhealthy;
                    (String.uppercase_ascii (E.kind err), E.to_string err)
              in
              [ e.Manifest.s_dataset ^ " (sketch)"; e.Manifest.s_file;
                status; detail ])
            m.Manifest.sketches
      in
      print_endline
        (Tablefmt.render_table
           ~header:[ "key"; "file"; "status"; "detail" ]
           ~align:
             [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
           rows);
      (* what full residency would cost: the wire bytes of every entry,
         the number to size --resident-bytes against *)
      let total_bytes =
        List.fold_left
          (fun acc (e : Manifest.entry) -> acc + e.Manifest.bytes)
          0 m.Manifest.entries
      in
      Printf.printf
        "catalog: %d entries, %s wire bytes if fully resident\n"
        (List.length m.Manifest.entries)
        (Tablefmt.fmt_bytes total_bytes);
      (* persisted serving health, breaker included, when present *)
      let hpath = Filename.concat dir Catalog.health_filename in
      if Sys.file_exists hpath then begin
        let cat = Catalog.of_manifest ~dir m in
        match Catalog.load_health cat hpath with
        | Ok n ->
            Printf.printf "health state: %d tracked key(s); loader breaker %s\n"
              n
              (render_breaker (Catalog.breaker cat))
        | Error e ->
            Printf.printf "health state: unreadable (%s)\n" (E.to_string e)
      end;
      if !unhealthy > 0 then begin
        prerr_endline
          (Printf.sprintf "xpest: %d/%d catalog entries unhealthy" !unhealthy
             (List.length m.Manifest.entries));
        exit 1
      end
    end
    else
      let rows =
        List.map
          (fun (e : Manifest.entry) ->
            let path = Filename.concat dir e.Manifest.file in
            let status =
              match Synopsis_io.info_result path with
              | Error _ -> "MISSING"
              | Ok i ->
                  if
                    i.Synopsis_io.total_bytes = e.Manifest.bytes
                    && Int64.equal i.Synopsis_io.checksum e.Manifest.checksum
                  then "ok"
                  else "STALE"
            in
            [
              Catalog.key_to_string
                { Catalog.dataset = e.Manifest.dataset;
                  variance = e.Manifest.variance };
              e.Manifest.file;
              Tablefmt.fmt_bytes e.Manifest.bytes;
              Printf.sprintf "%016Lx" e.Manifest.checksum;
              status;
            ])
          m.Manifest.entries
        @ List.map
            (fun (e : Manifest.sketch_entry) ->
              let path = Filename.concat dir e.Manifest.s_file in
              let status =
                match Synopsis_io.info_result path with
                | Error _ -> "MISSING"
                | Ok i ->
                    if
                      i.Synopsis_io.total_bytes = e.Manifest.s_bytes
                      && Int64.equal i.Synopsis_io.checksum
                           e.Manifest.s_checksum
                    then "ok"
                    else "STALE"
              in
              [
                e.Manifest.s_dataset ^ " (sketch)";
                e.Manifest.s_file;
                Tablefmt.fmt_bytes e.Manifest.s_bytes;
                Printf.sprintf "%016Lx" e.Manifest.s_checksum;
                status;
              ])
            m.Manifest.sketches
      in
      print_endline
        (Tablefmt.render_table
           ~header:[ "key"; "file"; "size"; "checksum"; "status" ]
           ~align:
             [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
               Tablefmt.Left ]
           rows)
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:"Run the serving loader's typed verification on every entry \
                (header parse, size, checksum) and report per-key error \
                kinds; exit 1 if any entry is unhealthy.")
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Show the catalog's entry table and verify each synopsis file \
             against its manifest record.")
    Term.(const run $ catalog_dir_arg $ health)

(* A routed query file: one `key<TAB>xpath` pair per line. *)
let read_routed_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | line ->
            let trimmed = String.trim line in
            let acc =
              if String.length trimmed = 0 || trimmed.[0] = '#' then acc
              else
                match String.index_opt line '\t' with
                | None ->
                    prerr_endline
                      (Printf.sprintf
                         "xpest: %s:%d: expected `key<TAB>xpath`" path lineno);
                    exit 1
                | Some i ->
                    let keys = String.trim (String.sub line 0 i) in
                    let qs =
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    in
                    let key =
                      match Catalog.key_of_string keys with
                      | Ok k -> k
                      | Error msg ->
                          prerr_endline
                            (Printf.sprintf "xpest: %s:%d: %s" path lineno msg);
                          exit 1
                    in
                    (key, Pattern.of_string qs) :: acc
            in
            loop (lineno + 1) acc
        | exception End_of_file -> List.rev acc
      in
      loop 1 [])

let run_catalog_estimate dir queries_file resident resident_bytes sketch_bytes
    pins metrics fault_rate fault_seed domains load_domains health_state
    deadline max_queued_loads breaker_threshold shed_policy =
    (* one typed one-line error contract for every count-valued knob *)
    let require_at_least_1 flag v =
      if v < 1 then begin
        prerr_endline
          (Printf.sprintf "xpest: --%s must be at least 1 (got %d)" flag v);
        exit 1
      end
    in
    require_at_least_1 "domains" domains;
    require_at_least_1 "load-domains" load_domains;
    require_at_least_1 "resident" resident;
    Option.iter (require_at_least_1 "resident-bytes") resident_bytes;
    Option.iter (require_at_least_1 "sketch-bytes") sketch_bytes;
    Option.iter (require_at_least_1 "deadline") deadline;
    Option.iter (require_at_least_1 "max-queued-loads") max_queued_loads;
    Option.iter (require_at_least_1 "breaker-threshold") breaker_threshold;
    let admission =
      {
        Admission.unlimited with
        Admission.deadline;
        max_queued_loads;
        breaker_threshold;
        policy = shed_policy;
      }
    in
    let admission_active =
      deadline <> None || max_queued_loads <> None || breaker_threshold <> None
    in
    let pairs = Array.of_list (read_routed_file queries_file) in
    if Array.length pairs = 0 then begin
      prerr_endline "xpest: no routed queries in the file";
      exit 1
    end;
    let m = load_manifest dir in
    (* --fault-rate substitutes a fault-injecting storage interface: a
       reproducible chaos demo of the quarantine/degraded machinery.
       With loads fanned out, the schedule must not depend on cross-key
       read order — the keyed injector (per-path deterministic) keeps
       the demo reproducible at any --load-domains. *)
    let io =
      if fault_rate <= 0.0 then None
      else
        let cfg = Fault.uniform ~seed:fault_seed ~rate:fault_rate in
        let injector =
          if load_domains > 1 then Fault.create_keyed cfg else Fault.create cfg
        in
        Some (Fault.io injector Fault.Io.default)
    in
    (* --resident-bytes switches the resident set from a summary count
       to an exact wire-byte budget *)
    let config =
      match resident_bytes with
      | None -> None
      | Some b ->
          Some { Cache_config.default with Cache_config.resident_bytes = Some b }
    in
    let cat =
      Catalog.of_manifest ~resident_capacity:resident ?config ?io ?sketch_bytes
        ~admission ~dir m
    in
    (* --pin: hot keys the eviction policy must never displace *)
    List.iter
      (fun keys ->
        match Catalog.key_of_string keys with
        | Ok key -> Catalog.pin cat key
        | Error msg ->
            prerr_endline (Printf.sprintf "xpest: --pin %s: %s" keys msg);
            exit 1)
      pins;
    (* --health-state: fold persisted quarantine/backoff state in before
       the batch and write the updated state back after it, so repeated
       invocations keep skipping known-bad keys without re-probing *)
    (match health_state with
    | Some path when Sys.file_exists path ->
        let n = or_die_e (Catalog.load_health cat path) in
        Printf.printf "health: restored %d tracked key(s) from %s\n%!" n path
    | Some _ | None -> ());
    let with_optional_pool f =
      if domains <= 1 then f None
      else Domain_pool.with_pool ~domains (fun p -> f (Some p))
    in
    (* --load-domains > 1 adds the pipeline's loader pool: provable
       cold misses start loading before their acquire turn *)
    let with_optional_loads f =
      if load_domains <= 1 then f None
      else
        Domain_pool.with_pool ~domains:load_domains (fun p ->
            f (Some (Loader_pool.over p)))
    in
    with_optional_pool @@ fun pool ->
    with_optional_loads @@ fun loads ->
    let work () =
      let results = Catalog.estimate_batch_r ?pool ?loads cat pairs in
      let statuses = Catalog.last_batch_statuses cat in
      let failed = ref 0 in
      let first_error = ref None in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i (key, q) ->
               let estimate, status =
                 match results.(i) with
                 | Ok v -> (
                     ( Tablefmt.fmt_float v,
                       (* name the answer's tier: anything below EXACT is
                          an approximation, not the asked-for summary *)
                       match statuses.(i) with
                       | Catalog.Served -> "EXACT"
                       | Catalog.Fallback sib ->
                           Printf.sprintf "FALLBACK (via %s)"
                             (Catalog.key_to_string sib)
                       | Catalog.Sketch -> "SKETCH"
                       | Catalog.Shed -> "EXACT" ))
                 | Error e ->
                     incr failed;
                     if !first_error = None then first_error := Some e;
                     ("-", String.uppercase_ascii (E.kind e))
               in
               [
                 Catalog.key_to_string key;
                 Pattern.to_string q;
                 estimate;
                 status;
               ])
             pairs)
      in
      print_endline
        (Tablefmt.render_table
           ~header:[ "key"; "query"; "estimate"; "status" ]
           ~align:
             [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ]
           rows);
      let s = Catalog.stats cat in
      Printf.printf
        "\ncatalog: %d/%d resident, %d loads, %d hits, %d evictions; \
         plan cache peak %d, %d evictions\n"
        s.Catalog.resident s.Catalog.resident_capacity s.Catalog.loads
        s.Catalog.hits s.Catalog.evictions
        s.Catalog.plan_cache.Xpest_plan.Plan_cache.s_peak
        s.Catalog.plan_cache.Xpest_plan.Plan_cache.s_evictions;
      Printf.printf
        "residency: %s resident%s; segments: %d protected, %d probationary, \
         %d pinned\n"
        (Tablefmt.fmt_bytes s.Catalog.resident_bytes)
        (match resident_bytes with
        | Some b -> Printf.sprintf " of %s budget" (Tablefmt.fmt_bytes b)
        | None -> "")
        s.Catalog.resident_protected s.Catalog.resident_probationary
        s.Catalog.resident_pinned;
      if s.Catalog.failures > 0 || s.Catalog.retries > 0 then
        Printf.printf
          "resilience: %d failures, %d retries, %d quarantines, %d degraded \
           hits\n"
          s.Catalog.failures s.Catalog.retries s.Catalog.quarantines
          s.Catalog.degraded_hits;
      (* the degradation ladder's answer mix: how many queries each
         rung actually served this run *)
      let answered = Array.length pairs - !failed in
      let exact_queries =
        answered - s.Catalog.fallback_queries - s.Catalog.sketch_queries
      in
      if s.Catalog.fallback_queries > 0 || s.Catalog.sketch_queries > 0 then
        Printf.printf "tiers: %d EXACT, %d FALLBACK, %d SKETCH\n"
          exact_queries s.Catalog.fallback_queries s.Catalog.sketch_queries;
      if s.Catalog.sketch_resident > 0 || s.Catalog.sketch_failures > 0 then
        Printf.printf
          "sketch tier: %d resident sketch(es), %s of %s pinned budget, %d \
           unavailable\n"
          s.Catalog.sketch_resident
          (Tablefmt.fmt_bytes s.Catalog.sketch_bytes)
          (Tablefmt.fmt_bytes s.Catalog.sketch_budget)
          s.Catalog.sketch_failures;
      if s.Catalog.skipped_directives > 0 then
        Printf.printf
          "health: %d unknown directive line(s) skipped on load\n"
          s.Catalog.skipped_directives;
      if s.Catalog.plan_contention > 0 || s.Catalog.plan_races > 0 then
        Printf.printf "parallel: %d plan-lock contentions, %d compile races\n"
          s.Catalog.plan_contention s.Catalog.plan_races;
      if admission_active then begin
        let a = Catalog.admission_stats cat in
        Printf.printf
          "admission: %d shed (%d deadline, %d overload, %d breaker), %d \
           served degraded\n"
          (Admission.total_sheds a)
          a.Admission.s_deadline_sheds a.Admission.s_overload_sheds
          a.Admission.s_breaker_sheds s.Catalog.fallback_queries;
        if breaker_threshold <> None then
          Printf.printf "breaker: %s; %d open(s), %d probe(s)\n"
            (render_breaker (Catalog.breaker cat))
            a.Admission.s_breaker_opens a.Admission.s_probes
      end;
      if load_domains > 1 then
        Printf.printf
          "pipeline: %d loads started ahead of their acquire turn (%d load \
           domains)\n"
          s.Catalog.prefetched_loads load_domains;
      (* persist updated failure history even when queries failed —
         especially then: the failures are what the next run must know *)
      (match health_state with
      | Some path ->
          Catalog.save_health cat path;
          Printf.printf "health: wrote %d tracked key(s) to %s\n"
            (List.length (Catalog.health cat)) path
      | None -> ());
      if !failed > 0 then begin
        (match !first_error with
        | Some e ->
            prerr_endline
              (Printf.sprintf "xpest: %d/%d routed queries failed (first: %s)"
                 !failed (Array.length pairs) (E.to_string e))
        | None -> ());
        exit 1
      end
    in
    if metrics then begin
      Metrics.with_counters work;
      (* per-summary attribution: counter deltas bracketed around each
         routed group (Counters.delta_between) *)
      List.iter
        (fun (key, delta) ->
          Printf.printf "\ncounters for %s:\n" (Catalog.key_to_string key);
          print_string
            (Tablefmt.render_table ~header:[ "counter"; "value" ]
               ~align:[ Tablefmt.Left; Tablefmt.Right ]
               (List.map (fun (n, v) -> [ n; string_of_int v ]) delta)))
        (Catalog.last_batch_metrics cat);
      Printf.printf "\nObservability counters (whole run):\n%s"
        (Metrics.render_counters ())
    end
    else work ()

let catalog_estimate_cmd =
  let run dir queries_file resident resident_bytes sketch_bytes pins metrics
      fault_rate fault_seed domains load_domains health_state deadline
      max_queued_loads breaker_threshold shed_policy =
    try
      run_catalog_estimate dir queries_file resident resident_bytes
        sketch_bytes pins metrics fault_rate fault_seed domains load_domains
        health_state deadline max_queued_loads breaker_threshold shed_policy
    with Invalid_argument msg | Sys_error msg ->
      (* non-serving failures: unparseable queries, unreadable files
         (the serving path itself reports per-query typed errors) *)
      prerr_endline ("xpest: " ^ msg);
      exit 1
  in
  let queries_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Routed query file: one $(i,key)<TAB>$(i,xpath) per line (blank \
             lines and # comments skipped).  The whole file is estimated in \
             one routed batch.")
  in
  let resident =
    Arg.(
      value
      & opt int Catalog.default_resident_capacity
      & info [ "resident" ] ~docv:"N"
          ~doc:"Resident-set capacity: how many summaries stay loaded at \
                once (scan-resistant segmented LRU beyond that).  Ignored \
                when $(b,--resident-bytes) sets a byte budget instead.")
  in
  let resident_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "resident-bytes" ] ~docv:"BYTES"
          ~doc:"Bound the resident set by exact wire bytes instead of \
                summary count: summaries stay loaded while their encoded \
                sizes fit the budget, evicting probationary entries first.")
  in
  let sketch_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "sketch-bytes" ] ~docv:"BYTES"
          ~doc:"Byte budget for the pinned fallback-sketch region (default \
                256 KiB).  A hard ceiling: a manifest sketch that does not \
                fit is refused at install (counted unavailable), never \
                admitted over budget, and the resident-set evictor can \
                never reclaim the region.")
  in
  let pins =
    Arg.(
      value & opt_all string []
      & info [ "pin" ] ~docv:"KEY"
          ~doc:"Pin a summary key (repeatable): never evicted while the \
                process runs, whatever the budget pressure.  Pinned \
                summaries still count toward the budget.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print observability counters, attributed per summary.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:"Inject storage faults (read errors, truncation, bit flips) \
                into synopsis loads with probability $(docv) per read — a \
                reproducible demonstration of the catalog's fault \
                tolerance.")
  in
  let fault_seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Deterministic seed for the injected fault schedule.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Execute the routed batch across $(docv) domains (OCaml 5 \
                parallelism): per-key groups run concurrently while \
                loading, eviction and quarantine decisions stay \
                sequential, so results are bit-identical to $(b,--domains \
                1).  Per-summary $(b,--metrics) attribution is unavailable \
                in parallel runs.")
  in
  let load_domains =
    Arg.(
      value & opt int 1
      & info [ "load-domains" ] ~docv:"N"
          ~doc:"Fan summary loads out across $(docv) domains: cold misses \
                the pipeline can prove necessary start loading before their \
                acquire turn and overlap estimation, while eviction, \
                retry and quarantine decisions stay single-owner — results \
                are bit-identical to $(b,--load-domains 1).  Pays off when \
                a batch touches several non-resident summaries.  \
                Per-summary $(b,--metrics) attribution is unavailable in \
                pipelined runs.")
  in
  let health_state =
    Arg.(
      value
      & opt (some string) None
      & info [ "health-state" ] ~docv:"FILE"
          ~doc:"Persist the per-key failure history (quarantine deadlines, \
                backoffs, failure counts) across invocations: restore it \
                from $(docv) before the batch if the file exists, write \
                the updated state back after.  Conventionally \
                $(i,DIR)/catalog.health.")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"TICKS"
          ~doc:"Per-batch deadline budget in logical ticks: a resident hit \
                costs 1 tick, a cold load costs 8.  Queries whose modeled \
                cost no longer fits the remaining budget are shed with a \
                typed DEADLINE-EXCEEDED error before any I/O happens (see \
                $(b,--shed-policy)).  Unset means unbounded.")
  in
  let max_queued_loads =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queued-loads" ] ~docv:"N"
          ~doc:"Bound the cold summary loads one batch may admit (at least \
                1); queries beyond the bound are shed with a typed \
                OVERLOADED error.  Shedding is a deterministic function of \
                input order and the logical clock, identical at any \
                $(b,--load-domains).")
  in
  let breaker_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "breaker-threshold" ] ~docv:"K"
          ~doc:"Open a circuit breaker over the loader after $(docv) \
                consecutive load failures (or 4 consecutive \
                queue-saturated batches): cold loads are refused while \
                open, resident keys keep serving, and a half-open probe \
                after a doubling cooldown (base 16 ticks, cap 256) decides \
                whether to close it.  Unset disables the breaker.")
  in
  let shed_policy =
    let policy_conv =
      Arg.enum
        [
          ("degrade", Admission.Degrade);
          ("reject", Admission.Reject);
        ]
    in
    Arg.(
      value
      & opt policy_conv Admission.Degrade
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:"What happens to a shed query: $(b,degrade) (default) walks \
                the degradation ladder — an already-resident sibling \
                variance of the same dataset when one exists (status \
                FALLBACK), else the dataset's always-resident fallback \
                sketch when the catalog has one (status SKETCH); \
                $(b,reject) always fails it with the typed error.")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Route a batch of (key, query) pairs across the catalog's \
             summaries from one shared plan space.  Failed keys fail only \
             their own queries; use $(b,--fault-rate) to watch the \
             degradation behavior under injected storage faults.")
    Term.(
      const run $ catalog_dir_arg $ queries_file $ resident $ resident_bytes
      $ sketch_bytes $ pins $ metrics $ fault_rate $ fault_seed $ domains
      $ load_domains $ health_state $ deadline $ max_queued_loads
      $ breaker_threshold $ shed_policy)

let catalog_clear_quarantine_cmd =
  let run dir keys all health_file =
    try
      (match (keys, all) with
      | [], false ->
          prerr_endline
            "xpest: clear-quarantine needs at least one KEY (or --all)";
          exit 1
      | _ :: _, true ->
          prerr_endline
            "xpest: --all discards every tracked key; do not also name keys";
          exit 1
      | _ -> ());
      let path =
        match health_file with
        | Some p -> p
        | None -> Filename.concat dir Catalog.health_filename
      in
      if not (Sys.file_exists path) then begin
        prerr_endline
          (Printf.sprintf "xpest: no health state at %s (nothing to clear)"
             path);
        exit 1
      end;
      let m = load_manifest dir in
      let cat = Catalog.of_manifest ~dir m in
      ignore (or_die_e (Catalog.load_health cat path));
      let describe (h : Catalog.key_health) =
        let state =
          match h.Catalog.h_state with
          | Catalog.Quarantined { until } ->
              Printf.sprintf "quarantined until tick %d" until
          | Catalog.Degraded -> "degraded"
          | Catalog.Healthy -> "healthy"
        in
        Printf.printf
          "%s: cleared (was %s; %d lifetime failures, %d quarantines, next \
           backoff %d)\n"
          (Catalog.key_to_string h.Catalog.h_key)
          state h.Catalog.h_failures h.Catalog.h_quarantines
          h.Catalog.h_next_backoff
      in
      if all then begin
        match Catalog.clear_all_quarantine cat with
        | [] -> print_endline "no tracked keys (already clear)"
        | cleared -> List.iter describe cleared
      end
      else
        List.iter
          (fun key ->
            match Catalog.clear_quarantine cat key with
            | None ->
                Printf.printf "%s: not tracked (already clear)\n"
                  (Catalog.key_to_string key)
            | Some h -> describe h)
          keys;
      Catalog.save_health cat path;
      Printf.printf "wrote %s (%d tracked key(s) remain)\n" path
        (List.length (Catalog.health cat))
    with Invalid_argument msg | Sys_error msg ->
      prerr_endline ("xpest: " ^ msg);
      exit 1
  in
  let keys =
    Arg.(
      value
      & pos_right 0 key_conv []
      & info [] ~docv:"KEY"
          ~doc:"Catalog keys as $(i,dataset)[@$(i,variance)] whose failure \
                history should be discarded.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Discard the failure history of every tracked key (the \
                circuit breaker's state, if any, is kept — it guards the \
                loader as a whole, not any one key).")
  in
  let health_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "health-state" ] ~docv:"FILE"
          ~doc:"Health-state file to operate on (default \
                $(i,DIR)/catalog.health).")
  in
  Cmd.v
    (Cmd.info "clear-quarantine"
       ~doc:"Operator override for the failure state machine: discard the \
             persisted failure history of the given keys — quarantine \
             deadline, doubled backoff, lifetime counts — so the next \
             serving run probes their storage immediately.")
    Term.(const run $ catalog_dir_arg $ keys $ all $ health_file)

let catalog_cmd =
  Cmd.group
    (Cmd.info "catalog"
       ~doc:"Build and serve many estimation synopses behind one routing \
             service.")
    [
      catalog_build_cmd; catalog_info_cmd; catalog_estimate_cmd;
      catalog_clear_quarantine_cmd;
    ]

(* ---------------- plan ---------------- *)

(* Plans are summary-independent: the compiler needs only the pattern,
   so this command takes no dataset. *)
let plan_cmd =
  let run queries =
    List.iteri
      (fun i qs ->
        if i > 0 then print_newline ();
        let q = Pattern.of_string qs in
        print_string (Plan.to_string (Plan.compile q)))
      queries
  in
  let queries =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "XPath patterns in the paper's fragment; mark the target node \
             with braces, e.g. //A[/C/folls::{B}/D].")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Compile queries into the estimation engine's query-plan IR and \
          print it: chain decomposition, join graph, anchoring, and the \
          estimation equation chosen at compile time.")
    Term.(const run $ queries)

(* ---------------- estimate ---------------- *)

let read_batch_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line ->
            let line = String.trim line in
            let acc =
              if String.length line = 0 || line.[0] = '#' then acc
              else line :: acc
            in
            loop acc
        | exception End_of_file -> List.rev acc
      in
      loop [])

let estimate_cmd =
  let run source scale seed p_variance o_variance synopsis check explain metrics
      batch queries =
    let queries =
      queries @ match batch with Some f -> read_batch_file f | None -> []
    in
    if queries = [] then begin
      prerr_endline "xpest: no queries (pass QUERY arguments or --batch FILE)";
      exit 1
    end;
    let work () =
    (* the document itself is only needed to build a fresh synopsis or
       to compute exact answers for --check *)
    let doc = lazy (load_doc source ~scale ~seed) in
    let s =
      match synopsis with
      | Some path -> or_die_e (Synopsis_io.load_typed path)
      | None -> Summary.build ~p_variance ~o_variance (Lazy.force doc)
    in
    (* named datasets get cache capacities tuned from the benchmark's
       recorded working-set peaks; files and unknown names keep the
       shared default *)
    let config =
      match source with
      | `Dataset name -> Cache_config.for_dataset (Registry.to_string name)
      | `File _ -> Cache_config.default
    in
    let est = Estimator.create ~config s in
    (* one compile-dedupe-execute pass over the whole query list *)
    let patterns = Array.of_list (List.map Pattern.of_string queries) in
    let estimates = Estimator.estimate_many est patterns in
    let rows =
      List.mapi
        (fun i q ->
          let estimate = estimates.(i) in
          let base = [ Pattern.to_string q; Tablefmt.fmt_float estimate ] in
          if check then
            let actual = Truth.selectivity (Lazy.force doc) q in
            let err =
              Xpest_util.Stats.relative_error ~actual:(Float.of_int actual)
                ~estimate
            in
            base @ [ string_of_int actual; Printf.sprintf "%.1f%%" (100.0 *. err) ]
          else base)
        (Array.to_list patterns)
    in
    let header =
      if check then [ "query"; "estimate"; "actual"; "rel. error" ]
      else [ "query"; "estimate" ]
    in
    print_endline
      (Tablefmt.render_table ~header
         ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
         rows);
    if explain then
      List.iter
        (fun qs ->
          let q = Pattern.of_string qs in
          let e = Estimator.explain est q in
          Printf.printf "\n%s  ->  %s\n" (Pattern.to_string q)
            (Tablefmt.fmt_float e.Estimator.value);
          List.iter (fun line -> Printf.printf "  - %s\n" line)
            e.Estimator.derivation)
        queries
    in
    if metrics then begin
      Metrics.with_counters work;
      Printf.printf "\nObservability counters:\n%s"
        (Metrics.render_counters ())
    end
    else work ()
  in
  let queries =
    Arg.(
      value
      & pos_right 0 string []
      & info [] ~docv:"QUERY"
          ~doc:
            "XPath patterns in the paper's fragment; mark the target node \
             with braces, e.g. //A[/C/folls::{B}/D].")
  in
  let batch =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:
            "Read additional queries from $(docv), one per line (blank lines \
             and lines starting with # are skipped); the whole batch is \
             estimated in one compile-dedupe-execute pass.")
  in
  let p_variance =
    Arg.(value & opt float 0.0 & info [ "p-variance" ] ~docv:"V" ~doc:"P-histogram variance.")
  in
  let o_variance =
    Arg.(value & opt float 0.0 & info [ "o-variance" ] ~docv:"V" ~doc:"O-histogram variance.")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Also compute the exact selectivity.")
  in
  let synopsis =
    Arg.(
      value
      & opt (some string) None
      & info [ "synopsis" ] ~docv:"FILE"
          ~doc:"Estimate from a synopsis saved by build-synopsis instead of \
                building one from the source document.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the estimation derivation (which equations fired).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Enable observability counters (cache hits, prunings, \
                per-equation counts, build/load timers) and print them after \
                the run.")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate the selectivity of XPath patterns.")
    Term.(
      const run $ source $ scale $ seed $ p_variance $ o_variance $ synopsis
      $ check $ explain $ metrics $ batch $ queries)

(* ---------------- workload ---------------- *)

let workload_cmd =
  let run source scale seed wseed attempts =
    let doc = load_doc source ~scale ~seed in
    let config =
      { Workload.default_config with seed = wseed; num_simple = attempts; num_branch = attempts }
    in
    let w = Workload.generate ~config doc in
    let show name items =
      Printf.printf "%s: %d queries\n" name (List.length items);
      List.iteri
        (fun i (it : Workload.item) ->
          if i < 5 then
            Printf.printf "  %s  (selectivity %d)\n"
              (Pattern.to_string it.pattern)
              it.actual)
        items
    in
    show "simple" w.simple;
    show "branch" w.branch;
    show "order (branch target)" w.order_branch_target;
    show "order (trunk target)" w.order_trunk_target
  in
  let wseed =
    Arg.(value & opt int Workload.default_config.seed
         & info [ "workload-seed" ] ~docv:"N" ~doc:"Workload generator seed.")
  in
  let attempts =
    Arg.(value & opt int 1000
         & info [ "attempts" ] ~docv:"N" ~doc:"Generation attempts per class.")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a query workload and print a sample.")
    Term.(const run $ source $ scale $ seed $ wseed $ attempts)

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let run scale cap ids =
    let ids = match ids with [] -> Experiments.all_ids | ids -> ids in
    let config =
      { Env.default_config with scale; max_queries_per_class = cap }
    in
    let envs =
      List.map
        (fun name ->
          Printf.printf "preparing %s (scale %g)...\n%!" (Registry.to_string name)
            scale;
          Env.prepare ~config name)
        Registry.all
    in
    List.iter
      (fun id ->
        let artefact, seconds = Env.time (fun () -> Experiments.run envs id) in
        Printf.printf "%s\n(%s computed in %s)\n\n%!"
          (Experiments.render artefact)
          id
          (Tablefmt.fmt_seconds seconds))
      ids
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (t1..t5, f9..f13); default all.")
  in
  let cap =
    Arg.(
      value
      & opt (some int) (Some 500)
      & info [ "cap" ] ~docv:"N"
          ~doc:"Max queries evaluated per class (use --cap 0 for no cap).")
  in
  let cap = Term.(const (function Some 0 -> None | c -> c) $ cap) in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce the paper's tables and figures.")
    Term.(const run $ scale $ cap $ ids)

let () =
  let doc = "Selectivity estimation for XPath expressions with order axes (ICDE 2006)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "xpest" ~version:"1.0.0" ~doc)
          [
            generate_cmd; stats_cmd; build_synopsis_cmd; synopsis_cmd;
            catalog_cmd; plan_cmd; estimate_cmd; workload_cmd; experiment_cmd;
          ]))
