#!/bin/sh
# Throughput regression gate for `make ci`.
#
# Compares a freshly generated BENCH_engine.json against the committed
# baseline (HEAD's copy of the same file) and fails if any gated
# number dropped below THRESHOLD (default 0.70, i.e. a >30%
# regression).  Gated numbers:
#
#   - per-dataset scalar_cold_qps: what a query optimizer pays on
#     first contact — no plan cache, no join cache, every estimate
#     from scratch;
#   - resilience fault-free routed_qps: the result-typed serving path
#     at fault rate 0, so the fault-tolerance machinery cannot quietly
#     tax the common case (skipped while the committed baseline
#     predates the resilience section);
#   - parallel pool-of-1 batch_cold_qps_1d per dataset: a pool of one
#     must stay on the sequential fast path, so handing estimate_many
#     a pool cannot tax the single-core case (skipped while the
#     committed baseline predates the parallel section).
#
# Bit-identity is gated unconditionally, baseline or not: every
# *_bitwise_identical_* flag in the fresh file — including the parallel
# section's — must be true.  Parallel SPEEDUPS are reported but not
# gated against an absolute floor: host_cores in the fresh file records
# how many cores the run actually had, and on a single-core runner the
# honest speedup is ~1.0x.
#
# Independently of the baseline, the fresh file's own
# fault_free_overhead_vs_raising ratio must stay below OVERHEAD_CAP
# (default 1.25): estimate_batch_r at rate 0 within 25% of the raising
# estimate_batch on the same batches.
#
# Schema handling: the fresh file must carry exactly the schema this
# gate was written for (xpest-bench-engine/8) — an unknown or newer
# schema fails loudly instead of silently gating the wrong fields.  An
# OLDER baseline schema only degrades: sections the baseline predates
# are reported without a comparison, as above.
#
# The fresh file's s1_thrash section is gated absolutely: the
# segmented policy's hit rate must come out strictly above plain
# LRU's at the same byte budget, or the scan-resistant residency
# claim is broken.
#
# The fresh file's s1_pipeline section is gated absolutely too: the
# pipelined cold-miss batch (4 load domains) must beat the blocking
# baseline under the injected loader latency, or overlapping loads
# with estimation buys nothing; its bit-identity flag is covered by
# the unconditional *_bitwise_identical_* sweep.
#
# The fresh file's s1_overload section is gated absolutely as well:
# under the saturating cold burst, the admission-controlled twin's
# worst batch must spend strictly fewer logical-clock ticks than the
# uncontrolled one (shed groups spend nothing), or the bounded
# worst-case claim is broken; the shed schedule's determinism flag
# across load-domain counts is covered by the same
# *_bitwise_identical_* sweep.
#
# The fresh file's s1_degrade section is gated absolutely and exactly:
# under the total storage blackout the sketch-tier answer rate must be
# 1.0 — every well-formed query answered from the always-resident
# fallback sketch, no typed error leaking through the degradation
# ladder; the answer schedule's determinism across load-domain counts
# is covered by the same *_bitwise_identical_* sweep.
#
# Usage: tools/check_bench_regression.sh [fresh.json] [threshold]

set -eu

FRESH="${1:-BENCH_engine.json}"
THRESHOLD="${2:-0.70}"
OVERHEAD_CAP="${OVERHEAD_CAP:-1.25}"

if [ ! -f "$FRESH" ]; then
    echo "check_bench_regression: $FRESH not found (run 'make bench-json' first)" >&2
    exit 2
fi

BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT

if ! git show "HEAD:BENCH_engine.json" > "$BASELINE" 2>/dev/null; then
    echo "check_bench_regression: no committed BENCH_engine.json baseline; skipping" >&2
    exit 0
fi

python3 - "$BASELINE" "$FRESH" "$THRESHOLD" "$OVERHEAD_CAP" <<'EOF'
import json, sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
threshold, overhead_cap = float(sys.argv[3]), float(sys.argv[4])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

EXPECTED_SCHEMA = "xpest-bench-engine/8"
fresh_schema = fresh.get("schema")
if fresh_schema != EXPECTED_SCHEMA:
    print("check_bench_regression: fresh %s has schema %r but this gate "
          "understands only %r — update tools/check_bench_regression.sh "
          "alongside the bench emitter" % (fresh_path, fresh_schema,
                                           EXPECTED_SCHEMA))
    sys.exit(1)
baseline_schema = baseline.get("schema")
if baseline_schema != EXPECTED_SCHEMA:
    print("check_bench_regression: baseline schema %r predates %r; "
          "sections it lacks are reported without comparison"
          % (baseline_schema, EXPECTED_SCHEMA))

# fresh-only absolute gate, checked before any baseline skip: the
# segmented policy must strictly out-hit plain LRU on the thrash trace
thrash = fresh.get("s1_thrash")
if thrash is None:
    print("check_bench_regression: fresh file carries schema %s but no "
          "s1_thrash section" % EXPECTED_SCHEMA)
    sys.exit(1)
lru_rate = thrash.get("lru_hit_rate")
seg_rate = thrash.get("segmented_hit_rate")
if not (isinstance(lru_rate, (int, float))
        and isinstance(seg_rate, (int, float)) and seg_rate > lru_rate):
    print("  s1_thrash  segmented hit rate %r vs lru %r  SCAN RESISTANCE "
          "BROKEN (segmented must be strictly higher)" % (seg_rate, lru_rate))
    sys.exit(1)
print("  s1_thrash  segmented hit rate %.4f > lru %.4f at %d budget "
      "bytes  ok" % (seg_rate, lru_rate, thrash.get("budget_bytes", 0)))

# fresh-only absolute gate: the pipelined cold-miss batch must beat the
# blocking one under injected loader latency (the identity flag is
# covered by the unconditional bitwise sweep below)
pipeline = fresh.get("s1_pipeline")
if pipeline is None:
    print("check_bench_regression: fresh file carries schema %s but no "
          "s1_pipeline section" % EXPECTED_SCHEMA)
    sys.exit(1)
blocking_qps = pipeline.get("blocking_qps")
pipelined_qps = pipeline.get("pipelined_4_qps")
if not (isinstance(blocking_qps, (int, float))
        and isinstance(pipelined_qps, (int, float))
        and pipelined_qps > blocking_qps):
    print("  s1_pipeline  pipelined %r qps vs blocking %r  PIPELINE WIN "
          "BROKEN (pipelined must beat blocking under loader latency)"
          % (pipelined_qps, blocking_qps))
    sys.exit(1)
print("  s1_pipeline  pipelined %.1f qps > blocking %.1f at %.1f ms "
      "loader latency (%.2fx)  ok"
      % (pipelined_qps, blocking_qps, pipeline.get("loader_latency_ms", 0.0),
         pipelined_qps / max(blocking_qps, 1e-9)))

# fresh-only absolute gate: under the saturating burst the admission-
# controlled worst batch must spend strictly fewer logical ticks than
# the uncontrolled one (determinism of the shed schedule is covered by
# the unconditional bitwise sweep below)
overload = fresh.get("s1_overload")
if overload is None:
    print("check_bench_regression: fresh file carries schema %s but no "
          "s1_overload section" % EXPECTED_SCHEMA)
    sys.exit(1)
un_ticks = overload.get("uncontrolled_worst_batch_ticks")
ctrl_ticks = overload.get("controlled_worst_batch_ticks")
if not (isinstance(un_ticks, int) and isinstance(ctrl_ticks, int)
        and ctrl_ticks < un_ticks):
    print("  s1_overload  controlled worst batch %r ticks vs uncontrolled "
          "%r  OVERLOAD BOUND BROKEN (controlled must be strictly lower "
          "under the saturating burst)" % (ctrl_ticks, un_ticks))
    sys.exit(1)
print("  s1_overload  controlled worst batch %d ticks < uncontrolled %d "
      "(%d shed, %d served degraded)  ok"
      % (ctrl_ticks, un_ticks, overload.get("shed_queries", 0),
         overload.get("fallback_queries", 0)))

# fresh-only absolute gate: under the total blackout every well-formed
# query must be answered from the sketch tier — an answer rate below
# exactly 1.0 means the degradation ladder leaked a typed error
# (determinism of the answer schedule is covered by the unconditional
# bitwise sweep below)
degrade = fresh.get("s1_degrade")
if degrade is None:
    print("check_bench_regression: fresh file carries schema %s but no "
          "s1_degrade section" % EXPECTED_SCHEMA)
    sys.exit(1)
answer_rate = degrade.get("sketch_answer_rate")
if not (isinstance(answer_rate, (int, float)) and answer_rate == 1.0):
    print("  s1_degrade  sketch answer rate %r  LADDER LEAKED (must be "
          "exactly 1.0 under the total blackout)" % (answer_rate,))
    sys.exit(1)
print("  s1_degrade  sketch answer rate %.4f, mean relative error %.4f "
      "over %d queries/batch  ok"
      % (answer_rate, degrade.get("sketch_mean_relative_error", 0.0),
         degrade.get("routed_queries_per_batch", 0)))

if baseline.get("scale") != fresh.get("scale"):
    print("check_bench_regression: scale mismatch (baseline %s, fresh %s); "
          "skipping — regenerate the baseline at the CI scale"
          % (baseline.get("scale"), fresh.get("scale")))
    sys.exit(0)

base_qps = {d["dataset"]: d["scalar_cold_qps"] for d in baseline["datasets"]}
failed = False
for d in fresh["datasets"]:
    name = d["dataset"]
    new = d["scalar_cold_qps"]
    old = base_qps.get(name)
    if old is None or old <= 0:
        print("  %-10s cold %8.1f qps (no baseline)" % (name, new))
        continue
    ratio = new / old
    status = "ok" if ratio >= threshold else "REGRESSED"
    print("  %-10s cold %8.1f qps vs baseline %8.1f  (%.2fx, floor %.2fx)  %s"
          % (name, new, old, ratio, threshold, status))
    if ratio < threshold:
        failed = True

def fault_free_qps(doc):
    res = doc.get("resilience")
    if not res:
        return None
    for p in res.get("profiles", []):
        if p.get("fault_rate") == 0.0:
            return p.get("routed_qps")
    return None

fresh_ff = fault_free_qps(fresh)
if fresh_ff is not None:
    old_ff = fault_free_qps(baseline)
    if old_ff is None or old_ff <= 0:
        print("  %-10s      %8.1f qps (baseline predates resilience section)"
              % ("resilience", fresh_ff))
    else:
        ratio = fresh_ff / old_ff
        status = "ok" if ratio >= threshold else "REGRESSED"
        print("  %-10s      %8.1f qps vs baseline %8.1f  (%.2fx, floor %.2fx)  %s"
              % ("resilience", fresh_ff, old_ff, ratio, threshold, status))
        if ratio < threshold:
            failed = True
    overhead = fresh["resilience"].get("fault_free_overhead_vs_raising")
    if overhead is not None:
        status = "ok" if overhead <= overhead_cap else "REGRESSED"
        print("  %-10s overhead vs raising path %.3fx (cap %.2fx)  %s"
              % ("resilience", overhead, overhead_cap, status))
        if overhead > overhead_cap:
            failed = True

par = fresh.get("parallel")
if par:
    cores = par.get("host_cores", 0)
    base_par = baseline.get("parallel")
    base_1d = {}
    if base_par:
        base_1d = {d["dataset"]: d.get("batch_cold_qps_1d")
                   for d in base_par.get("datasets", [])}
    for d in par.get("datasets", []):
        name = d["dataset"]
        new = d.get("batch_cold_qps_1d")
        old = base_1d.get(name)
        if old is None or old <= 0:
            print("  %-10s pool-of-1 %7.1f qps (baseline predates parallel "
                  "section)" % (name, new))
        else:
            ratio = new / old
            status = "ok" if ratio >= threshold else "REGRESSED"
            print("  %-10s pool-of-1 %7.1f qps vs baseline %8.1f  "
                  "(%.2fx, floor %.2fx)  %s"
                  % (name, new, old, ratio, threshold, status))
            if ratio < threshold:
                failed = True
        print("  %-10s 4-domain speedup %.2fx on %d core(s)  [reported, "
              "not gated]" % (name, d.get("speedup_4d", 0.0), cores))
    cat = par.get("catalog", {})
    if cat:
        print("  %-10s routed 4-domain speedup %.2fx, plan-lock contention "
              "%d, compile races %d  [reported, not gated]"
              % ("catalog", cat.get("speedup_4d", 0.0),
                 cat.get("plan_lock_contention", 0),
                 cat.get("plan_compile_races", 0)))

def identity_flags(doc, path=""):
    if isinstance(doc, dict):
        for k, v in doc.items():
            here = "%s.%s" % (path, k) if path else k
            if "bitwise_identical" in k:
                yield here, v
            else:
                yield from identity_flags(v, here)
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            yield from identity_flags(v, "%s[%d]" % (path, i))

for where, flag in identity_flags(fresh):
    if flag is not True:
        print("  BIT-IDENTITY VIOLATED: %s = %r" % (where, flag))
        failed = True

if failed:
    print("check_bench_regression: throughput regressed beyond "
          "the %.0f%% floor (or bit-identity violated)" % (100 * threshold))
    sys.exit(1)
print("check_bench_regression: throughput and bit-identity within bounds")
EOF
