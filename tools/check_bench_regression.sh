#!/bin/sh
# Cold-path throughput regression gate for `make ci`.
#
# Compares the per-dataset scalar_cold_qps of a freshly generated
# BENCH_engine.json against the committed baseline (HEAD's copy of the
# same file) and fails if any dataset dropped below THRESHOLD (default
# 0.70, i.e. a >30% regression).  scalar_cold_qps is the gated number
# because it is the one a query optimizer pays on first contact: no
# plan cache, no join cache, every estimate from scratch.
#
# Usage: tools/check_bench_regression.sh [fresh.json] [threshold]

set -eu

FRESH="${1:-BENCH_engine.json}"
THRESHOLD="${2:-0.70}"

if [ ! -f "$FRESH" ]; then
    echo "check_bench_regression: $FRESH not found (run 'make bench-json' first)" >&2
    exit 2
fi

BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT

if ! git show "HEAD:BENCH_engine.json" > "$BASELINE" 2>/dev/null; then
    echo "check_bench_regression: no committed BENCH_engine.json baseline; skipping" >&2
    exit 0
fi

python3 - "$BASELINE" "$FRESH" "$THRESHOLD" <<'EOF'
import json, sys

baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

if baseline.get("scale") != fresh.get("scale"):
    print("check_bench_regression: scale mismatch (baseline %s, fresh %s); "
          "skipping — regenerate the baseline at the CI scale"
          % (baseline.get("scale"), fresh.get("scale")))
    sys.exit(0)

base_qps = {d["dataset"]: d["scalar_cold_qps"] for d in baseline["datasets"]}
failed = False
for d in fresh["datasets"]:
    name = d["dataset"]
    new = d["scalar_cold_qps"]
    old = base_qps.get(name)
    if old is None or old <= 0:
        print("  %-10s cold %8.1f qps (no baseline)" % (name, new))
        continue
    ratio = new / old
    status = "ok" if ratio >= threshold else "REGRESSED"
    print("  %-10s cold %8.1f qps vs baseline %8.1f  (%.2fx, floor %.2fx)  %s"
          % (name, new, old, ratio, threshold, status))
    if ratio < threshold:
        failed = True

if failed:
    print("check_bench_regression: cold-path throughput regressed beyond "
          "the %.0f%% floor" % (100 * threshold))
    sys.exit(1)
print("check_bench_regression: cold-path throughput within bounds")
EOF
