(* The fault injector itself: schedules are a pure function of the
   seed, the disabled layer is the identity, each fault kind does what
   it says, and — the property the chaos suites lean on — a load that
   survives injection is byte-identical to a fault-free load. *)

module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Counters = Xpest_util.Counters
module Summary = Xpest_synopsis.Summary
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Registry = Xpest_datasets.Registry

let seeds = [ 11; 23; 47 ]

(* A base reader serving fixed in-memory content: the injector's
   behavior is then observable without touching the filesystem. *)
let content = String.init 256 (fun i -> Char.chr (i * 7 mod 256))

let mem_io =
  {
    Fault.Io.read_file = (fun _ -> content);
    write_file = (fun _ _ -> ());
  }

type outcome = Read of string | Failed of string

let outcomes cfg n =
  let io = Fault.io (Fault.create cfg) mem_io in
  List.init n (fun i ->
      let path = Printf.sprintf "mem/%d" i in
      match io.Fault.Io.read_file path with
      | s -> Read s
      | exception Sys_error msg -> Failed msg)

let test_deterministic () =
  List.iter
    (fun seed ->
      let cfg = Fault.uniform ~seed ~rate:0.5 in
      let a = outcomes cfg 300 and b = outcomes cfg 300 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: schedule is reproducible" seed)
        true (a = b);
      (* a different seed must not produce the same schedule (with 300
         draws at rate 0.5, collision would mean the seed is ignored) *)
      let c = outcomes (Fault.uniform ~seed:(seed + 1) ~rate:0.5) 300 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d vs %d: schedules differ" seed (seed + 1))
        true (a <> c))
    seeds

let test_identity_when_disabled () =
  let inj = Fault.create Fault.none in
  Alcotest.(check bool)
    "fault-free wrapper is physically the base io" true
    (Fault.io inj mem_io == mem_io);
  Alcotest.(check int) "nothing injected" 0 (Fault.injected inj)

let test_kinds () =
  (* read errors at probability 1: every read raises Sys_error *)
  let all_err =
    { Fault.none with seed = 5; read_error = 1.0 }
  in
  List.iter
    (function
      | Read _ -> Alcotest.fail "read_error=1 returned data"
      | Failed _ -> ())
    (outcomes all_err 50);
  (* truncation at probability 1: every read is a strict prefix *)
  let all_trunc = { Fault.none with seed = 5; truncate = 1.0 } in
  List.iter
    (function
      | Failed msg -> Alcotest.failf "truncate=1 raised: %s" msg
      | Read s ->
          Alcotest.(check bool) "strict prefix" true
            (String.length s < String.length content
            && s = String.sub content 0 (String.length s)))
    (outcomes all_trunc 50);
  (* bit flips at probability 1: same length, exactly one bit differs *)
  let all_flip = { Fault.none with seed = 5; bit_flip = 1.0 } in
  List.iter
    (function
      | Failed msg -> Alcotest.failf "bit_flip=1 raised: %s" msg
      | Read s ->
          Alcotest.(check int) "same length" (String.length content)
            (String.length s);
          let bits = ref 0 in
          String.iteri
            (fun i c ->
              let x = Char.code c lxor Char.code content.[i] in
              let rec popcount n = if n = 0 then 0 else (n land 1) + popcount (n lsr 1) in
              bits := !bits + popcount x)
            s;
          Alcotest.(check int) "exactly one flipped bit" 1 !bits)
    (outcomes all_flip 50)

let test_counters () =
  let inj = Fault.create { Fault.none with seed = 9; read_error = 1.0 } in
  let io = Fault.io inj mem_io in
  Counters.with_enabled (fun () ->
      let before = Counters.snapshot () in
      for _ = 1 to 5 do
        match io.Fault.Io.read_file "mem" with
        | _ -> Alcotest.fail "read_error=1 returned data"
        | exception Sys_error _ -> ()
      done;
      Alcotest.(check int) "injected count" 5 (Fault.injected inj);
      let delta = Counters.delta_between before (Counters.snapshot ()) in
      let v name =
        match List.assoc_opt name delta with Some n -> n | None -> 0
      in
      Alcotest.(check int) "fault.injected counter" 5 (v "fault.injected");
      Alcotest.(check int) "fault.read_error counter" 5 (v "fault.read_error"))

(* Write aborts against the atomic-rename discipline: however often a
   write dies mid-payload, the target file is always either absent or
   a complete previous generation — never a torn prefix — and no temp
   file survives the abort. *)
let test_atomic_write_survives_aborts () =
  let file = Filename.temp_file "xpest_atomic" ".dat" in
  let tmp = file ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ file; tmp ])
    (fun () ->
      let read p = Fault.Io.default.Fault.Io.read_file p in
      (* generation 0 lands fault-free *)
      Fault.atomic_write file "generation-0";
      Alcotest.(check string) "initial write" "generation-0" (read file);
      let inj =
        Fault.create { Fault.none with seed = 7; write_abort = 0.5 }
      in
      let io = Fault.io inj Fault.Io.default in
      let committed = ref "generation-0" in
      for i = 1 to 100 do
        let payload = Printf.sprintf "generation-%d" i in
        (match Fault.atomic_write ~io file payload with
        | () -> committed := payload
        | exception Sys_error _ -> ());
        Alcotest.(check string)
          (Printf.sprintf "write %d: target is a complete generation" i)
          !committed (read file);
        Alcotest.(check bool)
          (Printf.sprintf "write %d: no torn temp file left" i)
          false (Sys.file_exists tmp)
      done;
      (* rate 0.5 over 100 writes: both outcomes must occur *)
      Alcotest.(check bool) "some writes aborted" true (Fault.injected inj > 0);
      Alcotest.(check bool) "some writes committed" true
        (!committed <> "generation-0"))

(* The same property through the real saver: Summary.save under
   write_abort=1 must raise and leave the previously saved synopsis
   loadable and byte-identical. *)
let test_summary_save_crash_safe () =
  let doc = Registry.generate ~scale:0.01 Registry.Ssplays in
  let s = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let s2 = Summary.build ~p_variance:2.0 ~o_variance:2.0 doc in
  let file = Filename.temp_file "xpest_fault_save" ".syn" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ file; file ^ ".tmp" ])
    (fun () ->
      Summary.save s file;
      let reference = Fault.Io.default.Fault.Io.read_file file in
      let io =
        Fault.io
          (Fault.create { Fault.none with seed = 3; write_abort = 1.0 })
          Fault.Io.default
      in
      (match Summary.save ~io s2 file with
      | () -> Alcotest.fail "write_abort=1 save reported success"
      | exception Sys_error _ -> ());
      Alcotest.(check bool) "no torn temp file" false
        (Sys.file_exists (file ^ ".tmp"));
      Alcotest.(check bool) "previous synopsis survives byte-identical" true
        (String.equal reference (Fault.Io.default.Fault.Io.read_file file));
      (* and it still loads *)
      match Synopsis_io.load_typed file with
      | Ok loaded ->
          Alcotest.(check bool) "survivor re-encodes byte-identical" true
            (String.equal (Summary.encode loaded) (Summary.encode s))
      | Error e -> Alcotest.failf "survivor failed to load: %s" (E.to_string e))

(* The safety property: load a real synopsis through heavy injection;
   whatever comes back Ok must be byte-identical to the fault-free
   summary, and whatever fails must be a typed transient error. *)
let test_ok_is_bit_identical () =
  let doc = Registry.generate ~scale:0.01 Registry.Ssplays in
  let s = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let file = Filename.temp_file "xpest_fault" ".syn" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Summary.save s file;
      let reference = Summary.encode s in
      List.iter
        (fun seed ->
          let io =
            Fault.io (Fault.create (Fault.uniform ~seed ~rate:0.5))
              Fault.Io.default
          in
          let ok = ref 0 and failed = ref 0 in
          for _ = 1 to 200 do
            match Synopsis_io.load_typed ~io file with
            | Ok loaded ->
                incr ok;
                Alcotest.(check bool)
                  "surviving load re-encodes byte-identical" true
                  (String.equal (Summary.encode loaded) reference)
            | Error (E.Io_failure _ | E.Corrupt _) -> incr failed
            | Error e ->
                Alcotest.failf "unexpected error class under injection: %s"
                  (E.to_string e)
          done;
          (* rate 0.5 over 200 loads: both outcomes must occur *)
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: some loads survive (%d ok)" seed !ok)
            true (!ok > 0);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: some loads fail (%d failed)" seed !failed)
            true (!failed > 0))
        seeds)

let () =
  Alcotest.run "fault"
    [
      ( "injector",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_deterministic;
          Alcotest.test_case "identity when disabled" `Quick
            test_identity_when_disabled;
          Alcotest.test_case "fault kinds" `Quick test_kinds;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "safety",
        [
          Alcotest.test_case "Ok loads are bit-identical" `Quick
            test_ok_is_bit_identical;
        ] );
      ( "writes",
        [
          Alcotest.test_case "atomic_write survives aborts" `Quick
            test_atomic_write_survives_aborts;
          Alcotest.test_case "Summary.save is crash-safe" `Quick
            test_summary_save_crash_safe;
        ] );
    ]
