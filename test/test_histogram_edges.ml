(* Edge cases of the histogram builders and of Summary.build on
   degenerate documents: empty tables, a single-root document and a
   single-path chain document.  (A document always has a root — the
   "empty" cases are empty tag rows and empty order tables.) *)

module Tree = Xpest_xml.Tree
module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Pf_table = Xpest_synopsis.Pf_table
module P_histogram = Xpest_synopsis.P_histogram
module O_histogram = Xpest_synopsis.O_histogram
module Po_table = Xpest_synopsis.Po_table
module Estimator = Xpest_estimator.Estimator

(* ------------------------------------------------------------------ *)
(* P-histogram edge cases.                                             *)

let test_p_histogram_empty_row () =
  let h = P_histogram.build ~variance:0.0 [||] in
  Alcotest.(check int) "no buckets" 0 (List.length (P_histogram.buckets h));
  Alcotest.(check int) "empty pid order" 0 (Array.length (P_histogram.pid_order h));
  Alcotest.(check bool) "lookup misses" true
    (P_histogram.frequency h 0 = None);
  Alcotest.(check (float 0.0)) "no realized variance" 0.0
    (P_histogram.max_intra_variance h);
  Alcotest.(check int) "zero bytes" 0 (P_histogram.byte_size h)

let test_p_histogram_single_entry () =
  let h =
    P_histogram.build ~variance:0.0 [| { Pf_table.pid_index = 3; frequency = 7 } |]
  in
  Alcotest.(check int) "one bucket" 1 (List.length (P_histogram.buckets h));
  Alcotest.(check (option (float 1e-9))) "exact" (Some 7.0)
    (P_histogram.frequency h 3)

let test_p_histogram_bucket_boundary () =
  (* Frequencies 1,1,100: at v=0 equal frequencies share a bucket but
     100 must start a new one; at a huge v everything collapses. *)
  let entries =
    [|
      { Pf_table.pid_index = 0; frequency = 1 };
      { Pf_table.pid_index = 1; frequency = 1 };
      { Pf_table.pid_index = 2; frequency = 100 };
    |]
  in
  let exact = P_histogram.build ~variance:0.0 entries in
  Alcotest.(check int) "v=0 splits" 2 (List.length (P_histogram.buckets exact));
  Alcotest.(check (option (float 1e-9))) "exact low" (Some 1.0)
    (P_histogram.frequency exact 0);
  Alcotest.(check (option (float 1e-9))) "exact high" (Some 100.0)
    (P_histogram.frequency exact 2);
  let coarse = P_histogram.build ~variance:1000.0 entries in
  Alcotest.(check int) "huge v collapses" 1
    (List.length (P_histogram.buckets coarse));
  Alcotest.(check (option (float 1e-9))) "average" (Some 34.0)
    (P_histogram.frequency coarse 2)

(* ------------------------------------------------------------------ *)
(* O-histogram edge cases.                                             *)

let test_o_histogram_empty_cells () =
  let h =
    O_histogram.build ~variance:0.0 ~ntags:4
      ~tag_alpha_rank:(fun c -> c)
      ~pid_order:[| 0; 1 |] []
  in
  Alcotest.(check int) "no boxes" 0 (List.length (O_histogram.boxes h));
  Alcotest.(check (float 0.0)) "lookup is 0" 0.0
    (O_histogram.lookup h ~pid_index:0 ~other_tag:1 ~region:Po_table.Before);
  Alcotest.(check int) "zero bytes" 0 (O_histogram.byte_size h)

let test_o_histogram_no_columns () =
  let h =
    O_histogram.build ~variance:0.0 ~ntags:4
      ~tag_alpha_rank:(fun c -> c)
      ~pid_order:[||] []
  in
  Alcotest.(check int) "no boxes" 0 (List.length (O_histogram.boxes h));
  Alcotest.(check (float 0.0)) "lookup is 0" 0.0
    (O_histogram.lookup h ~pid_index:5 ~other_tag:0 ~region:Po_table.After)

(* ------------------------------------------------------------------ *)
(* Degenerate documents through the full synopsis.                     *)

let roundtrip summary = Summary.decode (Summary.encode summary)

let test_single_root_document () =
  let doc = Doc.of_tree (Tree.leaf "Root") in
  let summary = Summary.build doc in
  Alcotest.(check int) "one tag" 1 (Array.length (Summary.tags summary));
  Alcotest.(check (float 1e-9)) "root total" 1.0 (Summary.tag_total summary "Root");
  let est = Estimator.create summary in
  let q = Pattern.of_string "/{Root}" in
  Alcotest.(check (float 1e-9)) "exact" 1.0 (Estimator.estimate est q);
  Alcotest.(check int) "oracle" 1 (Truth.selectivity doc q);
  Alcotest.(check (float 1e-9)) "//Root" 1.0
    (Estimator.estimate est (Pattern.of_string "//{Root}"));
  (* and the degenerate synopsis survives persistence *)
  let est' = Estimator.create (roundtrip summary) in
  Alcotest.(check (float 1e-9)) "after roundtrip" 1.0 (Estimator.estimate est' q)

let test_single_path_chain_document () =
  (* One root-to-leaf path A/B/C/D: every pf row has one entry, every
     path id is the same singleton vector, and the order tables are
     empty (no element has a sibling). *)
  let doc =
    Doc.of_tree Tree.(elem "A" [ elem "B" [ elem "C" [ leaf "D" ] ] ])
  in
  let summary = Summary.build doc in
  let est = Estimator.create summary in
  List.iter
    (fun (expect, qs) ->
      let q = Pattern.of_string qs in
      Alcotest.(check (float 1e-9)) qs expect (Estimator.estimate est q);
      Alcotest.(check int) ("oracle " ^ qs) (int_of_float expect)
        (Truth.selectivity doc q))
    [
      (1.0, "/{A}");
      (1.0, "/A/{B}");
      (1.0, "//{C}");
      (1.0, "//B//{D}");
      (0.0, "//D/{A}");
      (1.0, "//A[/B]//{D}");
    ];
  (* no siblings anywhere: every order estimate is 0 *)
  Alcotest.(check (float 1e-9)) "order estimate" 0.0
    (Estimator.estimate est (Pattern.of_string "//A[/B/folls::{C}]"));
  Alcotest.(check int) "order oracle" 0
    (Truth.selectivity doc (Pattern.of_string "//A[/B/folls::{C}]"));
  let est' = Estimator.create (roundtrip summary) in
  Alcotest.(check (float 1e-9)) "roundtrip //B//D" 1.0
    (Estimator.estimate est' (Pattern.of_string "//B//{D}"))

let test_flat_sibling_document () =
  (* Root with leaf children only: p-histograms have a single pid per
     tag and the o-histogram carries all the order information. *)
  let doc =
    Doc.of_tree Tree.(elem "R" [ leaf "X"; leaf "Y"; leaf "X"; leaf "Y" ])
  in
  let summary = Summary.build doc in
  let est = Estimator.create summary in
  List.iter
    (fun qs ->
      let q = Pattern.of_string qs in
      Alcotest.(check (float 1e-9))
        qs
        (Float.of_int (Truth.selectivity doc q))
        (Estimator.estimate est q))
    [ "/{R}"; "/R/{X}"; "/R/{Y}"; "//{X}" ];
  let q = Pattern.of_string "//R[/X/folls::{Y}]" in
  Alcotest.(check (float 1e-9))
    "order exact at v=0"
    (Float.of_int (Truth.selectivity doc q))
    (Estimator.estimate est q)

let () =
  Alcotest.run "histogram_edges"
    [
      ( "p_histogram",
        [
          Alcotest.test_case "empty row" `Quick test_p_histogram_empty_row;
          Alcotest.test_case "single entry" `Quick test_p_histogram_single_entry;
          Alcotest.test_case "bucket boundary" `Quick
            test_p_histogram_bucket_boundary;
        ] );
      ( "o_histogram",
        [
          Alcotest.test_case "empty cells" `Quick test_o_histogram_empty_cells;
          Alcotest.test_case "no columns" `Quick test_o_histogram_no_columns;
        ] );
      ( "degenerate documents",
        [
          Alcotest.test_case "single root" `Quick test_single_root_document;
          Alcotest.test_case "single-path chain" `Quick
            test_single_path_chain_document;
          Alcotest.test_case "flat siblings" `Quick test_flat_sibling_document;
        ] );
    ]
