(* Differential testing of batched estimation against the scalar path.

   estimate_many's contract is bit-identity: for every query in the
   batch, the returned float must have the same bit pattern as a
   scalar Estimator.estimate call on a fresh estimator.  This is
   checked over the full generated workload (all four query classes)
   of the three synthetic datasets with fixed seeds, and again with a
   tiny cache capacity so the bounded LRU caches actually evict
   mid-batch — eviction must never change a result, only recompute
   it. *)

module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Cache_config = Xpest_plan.Cache_config
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Registry = Xpest_datasets.Registry

let min_cases = 500

let profiles =
  [
    (Registry.Ssplays, 0.1, 8101);
    (Registry.Dblp, 0.05, 8102);
    (Registry.Xmark, 0.05, 8103);
  ]

let workload_patterns ~wseed doc =
  let config =
    {
      Workload.default_config with
      seed = wseed;
      num_simple = 1500;
      num_branch = 1500;
    }
  in
  Workload.patterns (Workload.all_items (Workload.generate ~config doc))

let check_bit_identical ~label scalar batch =
  Alcotest.(check int)
    (label ^ ": lengths") (Array.length scalar) (Array.length batch);
  Array.iteri
    (fun i s ->
      if Int64.bits_of_float s <> Int64.bits_of_float batch.(i) then
        Alcotest.failf "%s: query %d: scalar %h <> batch %h" label i s
          batch.(i))
    scalar

let test_profile (name, scale, wseed) () =
  let doc = Registry.generate ~scale name in
  let summary = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let patterns = workload_patterns ~wseed doc in
  let n = Array.length patterns in
  if n < min_cases then
    Alcotest.failf "only %d workload queries (need >= %d)" n min_cases;
  (* scalar reference on a fresh estimator *)
  let scalar =
    let est = Estimator.create summary in
    Array.map (fun q -> Estimator.estimate est q) patterns
  in
  (* batch on a fresh estimator *)
  let batch = Estimator.estimate_many (Estimator.create summary) patterns in
  check_bit_identical ~label:"batch vs scalar" scalar batch;
  (* batch with duplicates: the dedupe path must fan the same float
     back out *)
  let doubled = Array.append patterns patterns in
  let batch2 = Estimator.estimate_many (Estimator.create summary) doubled in
  check_bit_identical ~label:"doubled, first half" scalar
    (Array.sub batch2 0 n);
  check_bit_identical ~label:"doubled, second half" scalar
    (Array.sub batch2 n n);
  (* a warm estimator must agree with its own cold pass *)
  let est = Estimator.create summary in
  let cold = Estimator.estimate_many est patterns in
  let warm = Estimator.estimate_many est patterns in
  check_bit_identical ~label:"warm vs cold" cold warm

(* Tiny caches force LRU evictions mid-batch; results must not move. *)
let test_tiny_capacity (name, scale, wseed) () =
  let doc = Registry.generate ~scale name in
  let summary = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let patterns = workload_patterns ~wseed doc in
  let scalar =
    let est = Estimator.create summary in
    Array.map (fun q -> Estimator.estimate est q) patterns
  in
  let tiny =
    Estimator.estimate_many
      (Estimator.create ~config:(Cache_config.uniform 8) summary)
      patterns
  in
  check_bit_identical ~label:"capacity-8 batch vs default scalar" scalar tiny;
  (* skewed per-cache capacities: starving one cache must not change
     results either, only recompute them *)
  let skewed =
    Estimator.estimate_many
      (Estimator.create
         ~config:{ Cache_config.default with plan = 4; rel = 64; chain = 2; run = 3 }
         summary)
      patterns
  in
  check_bit_identical ~label:"skewed capacities vs default scalar" scalar skewed;
  let tiny_scalar_est =
    Estimator.create ~config:(Cache_config.uniform 2) summary
  in
  let tiny_scalar =
    Array.map (fun q -> Estimator.estimate tiny_scalar_est q) patterns
  in
  check_bit_identical ~label:"capacity-2 scalar vs default scalar" scalar
    tiny_scalar

let () =
  let case (name, scale, wseed) =
    Alcotest.test_case
      (Printf.sprintf "%s (scale %g)" (Registry.to_string name) scale)
      `Slow
      (test_profile (name, scale, wseed))
  in
  let tiny (name, scale, wseed) =
    Alcotest.test_case
      (Printf.sprintf "%s (tiny caches)" (Registry.to_string name))
      `Slow
      (test_tiny_capacity (name, scale, wseed))
  in
  Alcotest.run "engine_batch"
    [
      ("batch_vs_scalar", List.map case profiles);
      ("bounded_caches", List.map tiny profiles);
    ]
