(* Catalog key codecs: the string form ("dataset@variance") and the
   file-name form ("<escaped>_v<variance>.syn") must both round-trip
   exactly for arbitrary dataset strings — including '@', '_', '%',
   '/' — and for variances whose "%g" rendering loses precision. *)

module Catalog = Xpest_catalog.Catalog

let key d v = { Catalog.dataset = d; variance = v }

(* Dataset bytes drawn from the full printable-plus-awkward range the
   escaping must survive; never empty. *)
let dataset_gen =
  QCheck.Gen.(
    let char_gen =
      oneof
        [
          char_range 'a' 'z';
          char_range 'A' 'Z';
          char_range '0' '9';
          oneofl [ '@'; '_'; '%'; '/'; '.'; '-'; ' '; '+'; '#'; '\xc3'; '\x01' ];
        ]
    in
    string_size ~gen:char_gen (int_range 1 24))

let variance_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl [ 0.0; 2.0; 2.5; 12.5; 0.1; 0.1 +. 0.2; 1e-3; 1e6; 1.0 /. 3.0 ];
        map Float.abs (float_bound_exclusive 1e9);
      ])

let arb_key =
  QCheck.make
    QCheck.Gen.(
      pair dataset_gen variance_gen >|= fun (d, v) -> key d v)
    ~print:(fun k ->
      Printf.sprintf "{dataset=%S; variance=%h}" k.Catalog.dataset
        k.Catalog.variance)

let same_key a b =
  String.equal a.Catalog.dataset b.Catalog.dataset
  && Int64.equal
       (Int64.bits_of_float a.Catalog.variance)
       (Int64.bits_of_float b.Catalog.variance)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"key_to_string/key_of_string round-trip" ~count:500
    arb_key (fun k ->
      match Catalog.key_of_string (Catalog.key_to_string k) with
      | Ok k' -> same_key k k'
      | Error _ -> false)

let prop_filename_roundtrip =
  QCheck.Test.make ~name:"key_filename/key_of_filename round-trip" ~count:500
    arb_key (fun k ->
      match Catalog.key_of_filename (Catalog.key_filename k) with
      | Ok k' -> same_key k k'
      | Error _ -> false)

let prop_filename_injective =
  QCheck.Test.make ~name:"distinct keys get distinct file names" ~count:500
    (QCheck.pair arb_key arb_key) (fun (a, b) ->
      same_key a b
      || not (String.equal (Catalog.key_filename a) (Catalog.key_filename b)))

let prop_filename_flat =
  QCheck.Test.make ~name:"file names never escape the catalog directory"
    ~count:500 arb_key (fun k ->
      let f = Catalog.key_filename k in
      (not (String.contains f '/')) && Filename.basename f = f)

let test_edge_cases () =
  (* '@' in the dataset: the last '@' wins *)
  (match Catalog.key_of_string "a@b@2" with
  | Ok k ->
      Alcotest.(check string) "dataset keeps inner @" "a@b" k.Catalog.dataset;
      Alcotest.(check (float 0.0)) "variance" 2.0 k.Catalog.variance
  | Error e -> Alcotest.failf "a@b@2 should parse: %s" e);
  (* printed form of an @-bearing dataset round-trips *)
  (match Catalog.key_of_string (Catalog.key_to_string (key "a@b" 0.0)) with
  | Ok k -> Alcotest.(check string) "round-trip" "a@b" k.Catalog.dataset
  | Error e -> Alcotest.failf "printed form should parse: %s" e);
  (* rejected spellings *)
  List.iter
    (fun s ->
      match Catalog.key_of_string s with
      | Ok k ->
          Alcotest.failf "%S should not parse (got %s)" s
            (Catalog.key_to_string k)
      | Error _ -> ())
    [ ""; "@1"; "d@"; "d@-1"; "d@nan"; "d@inf"; "d@1e999" ];
  (* a variance whose %g rendering is lossy still round-trips *)
  let v = 0.1 +. 0.2 in
  (match Catalog.key_of_string (Catalog.key_to_string (key "d" v)) with
  | Ok k ->
      Alcotest.(check bool) "bit-exact variance" true
        (Int64.equal (Int64.bits_of_float v)
           (Int64.bits_of_float k.Catalog.variance))
  | Error e -> Alcotest.failf "lossy variance round-trip: %s" e);
  (* underscore and percent in datasets do not confuse the _v split *)
  List.iter
    (fun d ->
      let f = Catalog.key_filename (key d 2.5) in
      match Catalog.key_of_filename f with
      | Ok k ->
          Alcotest.(check string) (Printf.sprintf "%S via %s" d f) d
            k.Catalog.dataset
      | Error e -> Alcotest.failf "%s should invert: %s" f e)
    [ "a_v2"; "100%"; "a/b"; "_"; "%25"; "v"; "a@b" ];
  (* malformed file names are errors, not crashes or bogus keys *)
  List.iter
    (fun f ->
      match Catalog.key_of_filename f with
      | Ok k ->
          Alcotest.failf "%S should not invert (got %s)" f
            (Catalog.key_to_string k)
      | Error _ -> ())
    [
      "";
      "nosuffix";
      ".syn";
      "noseparator.syn";
      "d_x0.syn";
      "_v0.syn";
      "d_v-1.syn";
      "d_vnan.syn";
      "d%2_v0.syn";
      "d%zz_v0.syn";
    ]

let () =
  Alcotest.run "catalog_keys"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_string_roundtrip;
            prop_filename_roundtrip;
            prop_filename_injective;
            prop_filename_flat;
          ] );
      ("edges", [ Alcotest.test_case "edge cases" `Quick test_edge_cases ]);
    ]
