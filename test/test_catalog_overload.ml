(* Overload-protection tests for the serving catalog: the admission
   layer's bit-identity contract, deterministic shedding across domain
   counts, the degraded-fallback tier, the loader circuit breaker seen
   end to end, and the v2 health file that persists it.

   The two contracts under test:

   - An admission controller that is inactive — or active but with
     infinite budgets — leaves the catalog byte-identical to having no
     controller at all: same floats, same typed errors, same stats,
     same logical clock, under every execution mode (sequential,
     domain pool, loader pool, injected faults).

   - Under finite budgets, shedding is a deterministic function of
     (input order, logical clock, configuration): the shed schedule,
     statuses, stats and clock reproduce bit-for-bit at any domain or
     load-domain count. *)

module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Registry = Xpest_datasets.Registry
module Catalog = Xpest_catalog.Catalog
module Admission = Xpest_catalog.Admission

let domain_counts = [ 1; 2; 4 ]
let load_domain_counts = [ 1; 2; 4 ]
let bits = Int64.bits_of_float

let check_bits label expected got =
  if not (Int64.equal (bits expected) (bits got)) then
    Alcotest.failf "%s: %h <> %h (bit drift)" label expected got

(* ------------------------------------------------------------------ *)
(* Fixtures: one catalog directory with sibling variances.             *)

let summaries : (string * float, Summary.t) Hashtbl.t = Hashtbl.create 8

let summary_for (k : Catalog.key) =
  match Hashtbl.find_opt summaries (k.Catalog.dataset, k.Catalog.variance) with
  | Some s -> s
  | None ->
      let name =
        match Registry.of_string k.Catalog.dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" k.Catalog.dataset
      in
      let doc = Registry.generate ~scale:0.02 name in
      let s =
        Summary.build ~p_variance:k.Catalog.variance
          ~o_variance:k.Catalog.variance doc
      in
      Hashtbl.add summaries (k.Catalog.dataset, k.Catalog.variance) s;
      s

let key d v = { Catalog.dataset = d; variance = v }
let k_ss0 = key "ssplays" 0.0
let k_ss2 = key "ssplays" 2.0
let k_dblp = key "dblp" 0.0

let catalog_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "xpest_overload_%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let m =
       List.fold_left
         (fun m k -> Catalog.save_entry ~dir m k (summary_for k))
         Manifest.empty
         [ k_ss0; k_ss2; k_dblp ]
     in
     Manifest.save m (Filename.concat dir Catalog.manifest_filename);
     dir)

let load_manifest dir =
  match Manifest.load_typed (Filename.concat dir Catalog.manifest_filename) with
  | Ok m -> m
  | Error e -> Alcotest.failf "manifest load failed: %s" (E.to_string e)

(* Three keys against resident capacity 2: cold loads recur round
   after round, so finite budgets always have something to shed. *)
let routed_pairs () =
  let p = Pattern.of_string in
  [|
    (k_ss0, p "//SPEECH/LINE");
    (k_dblp, p "//inproceedings/title");
    (k_ss2, p "//ACT[/{SCENE}]");
    (k_ss0, p "//PLAY//{SPEECH}");
    (k_ss2, p "//SPEECH/LINE");
    (k_dblp, p "//article/{author}");
    (k_ss0, p "//SPEECH/LINE");
    (k_dblp, p "//inproceedings/title");
    (k_ss2, p "//ACT[/{SCENE}]");
    (k_ss0, p "//SPEECH//{WORD}");
  |]

let make_cat ?admission ?io () =
  let dir = Lazy.force catalog_dir in
  Catalog.of_manifest ?admission ?io ~resident_capacity:2 ~dir
    (load_manifest dir)

let check_same_stats label (a : Catalog.stats) (b : Catalog.stats) =
  let field name v_a v_b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label name) v_a v_b
  in
  field "resident" a.Catalog.resident b.Catalog.resident;
  field "loads" a.Catalog.loads b.Catalog.loads;
  field "hits" a.Catalog.hits b.Catalog.hits;
  field "evictions" a.Catalog.evictions b.Catalog.evictions;
  field "failures" a.Catalog.failures b.Catalog.failures;
  field "retries" a.Catalog.retries b.Catalog.retries;
  field "quarantines" a.Catalog.quarantines b.Catalog.quarantines;
  field "degraded_hits" a.Catalog.degraded_hits b.Catalog.degraded_hits;
  field "shed_queries" a.Catalog.shed_queries b.Catalog.shed_queries;
  field "fallback_queries" a.Catalog.fallback_queries b.Catalog.fallback_queries

let compare_results label reference results =
  Alcotest.(check int)
    (label ^ ": result count")
    (Array.length reference) (Array.length results);
  Array.iteri
    (fun i r ->
      match (reference.(i), r) with
      | Ok a, Ok b -> check_bits (Printf.sprintf "%s, query %d" label i) a b
      | Error a, Error b ->
          Alcotest.(check string)
            (Printf.sprintf "%s, query %d: same error" label i)
            (E.to_string a) (E.to_string b)
      | Ok _, Error e ->
          Alcotest.failf "%s, query %d: Ok became %s" label i (E.to_string e)
      | Error e, Ok _ ->
          Alcotest.failf "%s, query %d: %s became Ok" label i (E.to_string e))
    results

let status_to_string = function
  | Catalog.Served -> "served"
  | Catalog.Shed -> "shed"
  | Catalog.Fallback k -> "fallback:" ^ Catalog.key_to_string k
  | Catalog.Sketch -> "sketch"

let compare_statuses label a b =
  Alcotest.(check (array string))
    (label ^ ": same slot statuses")
    (Array.map status_to_string a)
    (Array.map status_to_string b)

(* An *active* controller with infinite budgets: every admission
   branch runs (ledger, would_load, decide) yet nothing is ever
   shed — the strictest form of the bit-identity contract. *)
let infinite =
  {
    Admission.unlimited with
    Admission.deadline = Some max_int;
    max_queued_loads = Some max_int;
  }

(* ------------------------------------------------------------------ *)
(* Bit-identity at infinite budget.                                    *)

let test_infinite_budget_is_identity () =
  let pairs = routed_pairs () in
  List.iter
    (fun admission ->
      let plain = make_cat () in
      let controlled = make_cat ~admission () in
      for round = 1 to 4 do
        let label = Printf.sprintf "round %d" round in
        let reference = Catalog.estimate_batch_r plain pairs in
        let results = Catalog.estimate_batch_r controlled pairs in
        compare_results label reference results;
        check_same_stats label (Catalog.stats plain) (Catalog.stats controlled);
        Alcotest.(check int)
          (label ^ ": same clock")
          (Catalog.clock plain) (Catalog.clock controlled);
        Array.iter
          (function
            | Catalog.Served -> ()
            | s ->
                Alcotest.failf "%s: infinite budget produced a %s slot" label
                  (status_to_string s))
          (Catalog.last_batch_statuses controlled)
      done)
    [ Admission.unlimited; infinite ]

let test_infinite_budget_identity_parallel () =
  let pairs = routed_pairs () in
  List.iter
    (fun domains ->
      let plain = make_cat () in
      let controlled = make_cat ~admission:infinite () in
      Domain_pool.with_pool ~domains (fun pool ->
          for round = 1 to 3 do
            let label = Printf.sprintf "%d domains, round %d" domains round in
            let reference = Catalog.estimate_batch_r ~pool plain pairs in
            let results = Catalog.estimate_batch_r ~pool controlled pairs in
            compare_results label reference results;
            check_same_stats label (Catalog.stats plain)
              (Catalog.stats controlled);
            Alcotest.(check int)
              (label ^ ": same clock")
              (Catalog.clock plain) (Catalog.clock controlled)
          done))
    domain_counts

(* The pipeline variant, with keyed faults: the controller's provable
   gate changes which loads are *prefetched*, but never their
   outcomes — the keyed injector's schedule is per (path, attempt). *)
let test_infinite_budget_identity_pipeline_chaos () =
  let pairs = routed_pairs () in
  let injected () =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:23 ~rate:0.1))
      Fault.Io.default
  in
  List.iter
    (fun load_domains ->
      let plain = make_cat ~io:(injected ()) () in
      let controlled = make_cat ~admission:infinite ~io:(injected ()) () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          let loads = Loader_pool.over lp in
          for round = 1 to 4 do
            let label =
              Printf.sprintf "%d load domains, round %d" load_domains round
            in
            let reference = Catalog.estimate_batch_r ~loads plain pairs in
            let results = Catalog.estimate_batch_r ~loads controlled pairs in
            compare_results label reference results;
            check_same_stats label (Catalog.stats plain)
              (Catalog.stats controlled);
            Alcotest.(check int)
              (label ^ ": same clock")
              (Catalog.clock plain) (Catalog.clock controlled)
          done))
    load_domain_counts

(* ------------------------------------------------------------------ *)
(* Deterministic shedding across execution modes.                      *)

let tight =
  {
    Admission.unlimited with
    Admission.deadline = Some 20;
    max_queued_loads = Some 2;
  }

let test_shedding_deterministic_across_domains () =
  let pairs = routed_pairs () in
  List.iter
    (fun policy ->
      let admission = { tight with Admission.policy } in
      (* sequential reference: fresh catalog, 3 rounds *)
      let seq_cat = make_cat ~admission () in
      let reference =
        Array.init 3 (fun _ -> Catalog.estimate_batch_r seq_cat pairs)
      in
      let ref_statuses = Catalog.last_batch_statuses seq_cat in
      let ref_stats = Catalog.stats seq_cat in
      let ref_clock = Catalog.clock seq_cat in
      let check_twin label batch cat =
        Array.iteri
          (fun round results ->
            compare_results
              (Printf.sprintf "%s, round %d" label (round + 1))
              reference.(round) results)
          batch;
        compare_statuses label ref_statuses (Catalog.last_batch_statuses cat);
        check_same_stats label ref_stats (Catalog.stats cat);
        Alcotest.(check int)
          (label ^ ": same clock")
          ref_clock (Catalog.clock cat)
      in
      List.iter
        (fun domains ->
          let cat = make_cat ~admission () in
          Domain_pool.with_pool ~domains (fun pool ->
              check_twin
                (Printf.sprintf "policy %s, %d domains"
                   (Admission.policy_to_string policy)
                   domains)
                (Array.init 3 (fun _ ->
                     Catalog.estimate_batch_r ~pool cat pairs))
                cat))
        domain_counts;
      List.iter
        (fun load_domains ->
          let cat = make_cat ~admission () in
          Domain_pool.with_pool ~domains:load_domains (fun lp ->
              let loads = Loader_pool.over lp in
              check_twin
                (Printf.sprintf "policy %s, %d load domains"
                   (Admission.policy_to_string policy)
                   load_domains)
                (Array.init 3 (fun _ ->
                     Catalog.estimate_batch_r ~loads cat pairs))
                cat))
        load_domain_counts)
    [ Admission.Reject; Admission.Degrade ]

(* Shed groups must not tick the clock: an admission-controlled batch
   on a saturating workload advances the logical clock strictly less
   than the uncontrolled twin — the bounded-worst-case property the
   bench regression gate holds. *)
let test_shed_groups_spend_no_clock () =
  let pairs = routed_pairs () in
  let plain = make_cat () in
  let controlled =
    make_cat
      ~admission:
        { tight with Admission.deadline = Some 10; policy = Admission.Reject }
      ()
  in
  ignore (Catalog.estimate_batch_r plain pairs);
  ignore (Catalog.estimate_batch_r controlled pairs);
  let uncontrolled_ticks = Catalog.clock plain in
  let controlled_ticks = Catalog.clock controlled in
  if controlled_ticks >= uncontrolled_ticks then
    Alcotest.failf "controlled batch spent %d ticks, uncontrolled %d"
      controlled_ticks uncontrolled_ticks;
  let s = Catalog.stats controlled in
  Alcotest.(check bool) "something was shed" true (s.Catalog.shed_queries > 0)

(* ------------------------------------------------------------------ *)
(* The degraded fallback tier.                                         *)

let test_degrade_falls_back_to_resident_sibling () =
  (* deadline 20: ssplays@0 (load, 8) + dblp@0 (load, 8) leave 4 ticks
     — ssplays@2 can't load, but its sibling ssplays@0 is resident *)
  let p = Pattern.of_string in
  let q = p "//SPEECH/LINE" in
  let pairs = [| (k_ss0, q); (k_dblp, p "//article/{author}"); (k_ss2, q) |] in
  let cat =
    make_cat ~admission:{ tight with Admission.deadline = Some 20 } ()
  in
  let results = Catalog.estimate_batch_r cat pairs in
  let statuses = Catalog.last_batch_statuses cat in
  Alcotest.(check string)
    "shed slot marked as fallback via the sibling" "fallback:ssplays@0"
    (status_to_string statuses.(2));
  (* the degraded answer is exactly the sibling's own estimate *)
  (match (results.(0), results.(2)) with
  | Ok direct, Ok degraded -> check_bits "sibling's estimate" direct degraded
  | _ -> Alcotest.fail "expected Ok results for slots 0 and 2");
  let s = Catalog.stats cat in
  Alcotest.(check int) "one shed query" 1 s.Catalog.shed_queries;
  Alcotest.(check int) "served degraded" 1 s.Catalog.fallback_queries;
  (* shedding is not a failure: the shed key's per-key health stays
     untouched (the two *loaded* keys are tracked as healthy) *)
  Alcotest.(check bool)
    "shed key not tracked" false
    (List.exists
       (fun h -> Catalog.key_to_string h.Catalog.h_key = "ssplays@2")
       (Catalog.health cat))

let test_reject_fails_typed () =
  let p = Pattern.of_string in
  let pairs =
    [|
      (k_ss0, p "//SPEECH/LINE");
      (k_dblp, p "//article/{author}");
      (k_ss2, p "//SPEECH/LINE");
    |]
  in
  let cat =
    make_cat
      ~admission:
        { tight with Admission.deadline = Some 20; policy = Admission.Reject }
      ()
  in
  let results = Catalog.estimate_batch_r cat pairs in
  (match results.(2) with
  | Error (E.Deadline_exceeded { key; needed; remaining }) ->
      Alcotest.(check string) "shed key" "ssplays@2" key;
      Alcotest.(check int) "needed a load" 8 needed;
      Alcotest.(check int) "4 ticks left" 4 remaining
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "shed query returned Ok under reject");
  Alcotest.(check string)
    "slot marked shed" "shed"
    (status_to_string (Catalog.last_batch_statuses cat).(2));
  Alcotest.(check int)
    "no fallbacks under reject" 0 (Catalog.stats cat).Catalog.fallback_queries

let test_no_sibling_fails_even_under_degrade () =
  (* dblp has no sibling variance in this catalog: a shed dblp query
     under Degrade still fails typed *)
  let p = Pattern.of_string in
  let pairs =
    [|
      (k_ss0, p "//SPEECH/LINE");
      (k_ss2, p "//ACT[/{SCENE}]");
      (k_dblp, p "//article/{author}");
    |]
  in
  let cat =
    make_cat ~admission:{ tight with Admission.deadline = Some 20 } ()
  in
  let results = Catalog.estimate_batch_r cat pairs in
  (match results.(2) with
  | Error (E.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "no resident sibling, yet served");
  Alcotest.(check string)
    "slot marked shed" "shed"
    (status_to_string (Catalog.last_batch_statuses cat).(2))

(* ------------------------------------------------------------------ *)
(* The circuit breaker, end to end.                                    *)

let breaker_cfg =
  { Admission.unlimited with Admission.breaker_threshold = Some 2 }

let test_breaker_opens_and_recovers () =
  (* every read fails: two queries' loads exhaust their retries, the
     breaker opens, and further cold loads shed without touching
     storage *)
  let io =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:11 ~rate:1.0))
      Fault.Io.default
  in
  let p = Pattern.of_string in
  let pairs =
    [|
      (k_ss0, p "//SPEECH/LINE");
      (k_dblp, p "//article/{author}");
      (k_ss2, p "//ACT[/{SCENE}]");
    |]
  in
  let cat = make_cat ~admission:breaker_cfg ~io () in
  let results = Catalog.estimate_batch_r cat pairs in
  (* first two fail on storage, opening the breaker; the third is
     refused by the breaker before any read *)
  (match results.(2) with
  | Error (E.Overloaded _) -> ()
  | Error e -> Alcotest.failf "expected a breaker shed: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "breaker-shed query returned Ok");
  let v = Catalog.breaker cat in
  Alcotest.(check bool) "breaker open" true (v.Admission.state = `Open);
  let a = Catalog.admission_stats cat in
  Alcotest.(check int) "one open" 1 a.Admission.s_breaker_opens;
  Alcotest.(check bool)
    "breaker sheds happened" true
    (a.Admission.s_breaker_sheds > 0);
  (* keep estimating the same failing batch: once the cooldown
     elapses, a probe goes back to storage, fails, and doubles the
     cooldown — the backoff visibly escalates *)
  let opened_cooldown = v.Admission.cooldown in
  let rec drive rounds =
    if rounds > 0 then begin
      ignore (Catalog.estimate_batch_r cat pairs);
      if (Catalog.breaker cat).Admission.cooldown = opened_cooldown then
        drive (rounds - 1)
    end
  in
  drive 50;
  let v' = Catalog.breaker cat in
  Alcotest.(check bool)
    "a failed probe doubled the cooldown" true
    (v'.Admission.cooldown > opened_cooldown);
  Alcotest.(check bool)
    "probes were attempted" true
    ((Catalog.admission_stats cat).Admission.s_probes > 0)

(* ------------------------------------------------------------------ *)
(* Health file v2: breaker persistence.                                *)

let health_path name =
  Filename.concat (Lazy.force catalog_dir) (name ^ ".health")

let test_health_v2_roundtrip_with_breaker () =
  let io =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:11 ~rate:1.0))
      Fault.Io.default
  in
  let p = Pattern.of_string in
  let pairs =
    [| (k_ss0, p "//SPEECH/LINE"); (k_dblp, p "//article/{author}") |]
  in
  let cat = make_cat ~admission:breaker_cfg ~io () in
  ignore (Catalog.estimate_batch_r cat pairs);
  let v = Catalog.breaker cat in
  Alcotest.(check bool) "breaker open at save" true (v.Admission.state = `Open);
  let path = health_path "roundtrip" in
  Catalog.save_health cat path;
  (* the file leads with the current (v3) magic and carries the directive *)
  let ic = open_in path in
  let magic = input_line ic in
  let directive = input_line ic in
  close_in ic;
  Alcotest.(check string) "v3 magic" "xpest-catalog-health/3" magic;
  Alcotest.(check bool)
    "breaker directive" true
    (String.length directive > 0 && directive.[0] = '!');
  (* restore into a fresh catalog: tracked keys and the breaker come
     back, remaining cooldown re-anchored on the new clock *)
  let cat2 = make_cat ~admission:breaker_cfg () in
  (match Catalog.load_health cat2 path with
  | Ok n -> Alcotest.(check int) "tracked keys restored" 2 n
  | Error e -> Alcotest.failf "load_health failed: %s" (E.to_string e));
  let v2 = Catalog.breaker cat2 in
  Alcotest.(check bool) "still open" true (v2.Admission.state = `Open);
  Alcotest.(check int)
    "failure streak carried" v.Admission.consecutive_failures
    v2.Admission.consecutive_failures;
  Alcotest.(check int)
    "cooldown carried" v.Admission.cooldown v2.Admission.cooldown

let test_health_v1_still_accepted () =
  let io =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:11 ~rate:1.0))
      Fault.Io.default
  in
  let p = Pattern.of_string in
  let pairs =
    [| (k_ss0, p "//SPEECH/LINE"); (k_dblp, p "//article/{author}") |]
  in
  let cat = make_cat ~admission:breaker_cfg ~io () in
  ignore (Catalog.estimate_batch_r cat pairs);
  let path = health_path "v1" in
  Catalog.save_health cat path;
  (* rewrite as a v1 file: old magic, no directive lines *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let rows =
    List.rev !lines
    |> List.filter (fun l ->
           l <> "xpest-catalog-health/2"
           && l <> "xpest-catalog-health/3"
           && (String.length l = 0 || l.[0] <> '!'))
  in
  let oc = open_out path in
  output_string oc "xpest-catalog-health/1\n";
  List.iter (fun l -> output_string oc (l ^ "\n")) rows;
  close_out oc;
  let cat2 = make_cat ~admission:breaker_cfg () in
  (match Catalog.load_health cat2 path with
  | Ok n -> Alcotest.(check int) "v1 rows restored" 2 n
  | Error e -> Alcotest.failf "v1 load failed: %s" (E.to_string e));
  Alcotest.(check bool)
    "no breaker state in a v1 file" true
    ((Catalog.breaker cat2).Admission.state = `Closed)

let test_health_v2_corrupt_directive_rejected () =
  let path = health_path "corrupt" in
  let oc = open_out path in
  output_string oc
    "xpest-catalog-health/2\n!breaker\topen\tnot-a-number\t0\t16\n";
  close_out oc;
  let cat = make_cat ~admission:breaker_cfg () in
  match Catalog.load_health cat path with
  | Ok _ -> Alcotest.fail "corrupt breaker directive accepted"
  | Error e ->
      Alcotest.(check string) "typed corrupt error" "corrupt" (E.kind e);
      (* all-or-nothing: the failed load left the breaker untouched *)
      Alcotest.(check bool)
        "breaker unchanged" true
        ((Catalog.breaker cat).Admission.state = `Closed)

(* ------------------------------------------------------------------ *)
(* Operator override: clear-quarantine --all.                          *)

let test_clear_all_quarantine () =
  let io =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:11 ~rate:1.0))
      Fault.Io.default
  in
  let p = Pattern.of_string in
  let pairs =
    [| (k_ss0, p "//SPEECH/LINE"); (k_dblp, p "//article/{author}") |]
  in
  let cat = make_cat ~admission:breaker_cfg ~io () in
  ignore (Catalog.estimate_batch_r cat pairs);
  Alcotest.(check int) "two keys tracked" 2 (List.length (Catalog.health cat));
  let cleared = Catalog.clear_all_quarantine cat in
  Alcotest.(check int) "both returned" 2 (List.length cleared);
  Alcotest.(check int) "nothing tracked after" 0
    (List.length (Catalog.health cat));
  Alcotest.(check int) "idempotent" 0
    (List.length (Catalog.clear_all_quarantine cat));
  (* the breaker guards the loader, not any key: clearing keys must
     not silently close it *)
  Alcotest.(check bool)
    "breaker survives clear --all" true
    ((Catalog.breaker cat).Admission.state = `Open)

let () =
  Alcotest.run "catalog_overload"
    [
      ( "identity",
        [
          Alcotest.test_case "infinite budget equals no controller" `Quick
            test_infinite_budget_is_identity;
          Alcotest.test_case "identity under the execute pool" `Quick
            test_infinite_budget_identity_parallel;
          Alcotest.test_case "identity under pipeline chaos" `Quick
            test_infinite_budget_identity_pipeline_chaos;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "deterministic across domain counts" `Quick
            test_shedding_deterministic_across_domains;
          Alcotest.test_case "shed groups spend no clock" `Quick
            test_shed_groups_spend_no_clock;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "degrade serves the resident sibling" `Quick
            test_degrade_falls_back_to_resident_sibling;
          Alcotest.test_case "reject fails typed" `Quick
            test_reject_fails_typed;
          Alcotest.test_case "no sibling means typed failure" `Quick
            test_no_sibling_fails_even_under_degrade;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens and probes end to end" `Quick
            test_breaker_opens_and_recovers;
        ] );
      ( "health",
        [
          Alcotest.test_case "v3 round-trips the breaker" `Quick
            test_health_v2_roundtrip_with_breaker;
          Alcotest.test_case "v1 files still load" `Quick
            test_health_v1_still_accepted;
          Alcotest.test_case "corrupt directives rejected" `Quick
            test_health_v2_corrupt_directive_rejected;
        ] );
      ( "operator",
        [
          Alcotest.test_case "clear-quarantine --all" `Quick
            test_clear_all_quarantine;
        ] );
    ]
