(* Property suite hammering a synchronized {!Plan_cache} from several
   domains at once.  The cache's concurrency contract (plan_cache.mli):
   under [~synchronized:true] every operation is atomic, [find_or_add]
   computes outside the lock with a re-check (first writer wins, losers
   counted in [races]), and the compute function runs at most once per
   key per concurrent window — so with a pure compute the cached value
   is always the deterministic function of its key. *)

module Plan_cache = Xpest_plan.Plan_cache

(* compute function: pure, key-determined, and instrumented so the
   properties can account for every invocation *)
let square_counted invocations k =
  Atomic.incr invocations;
  k * k

(* [hammer ~capacity ~workers ~keys ~reps] spawns [workers] domains,
   each folding [reps] passes of [find_or_add] over the key list in its
   own order (worker w starts at offset w), and returns the cache plus
   the exact number of compute invocations. *)
let hammer ~capacity ~workers ~keys ~reps =
  let cache = Plan_cache.create ~capacity ~synchronized:true () in
  let invocations = Atomic.make 0 in
  let n = Array.length keys in
  let worker w () =
    for r = 0 to reps - 1 do
      for i = 0 to n - 1 do
        let k = keys.((i + (w * 7) + r) mod n) in
        let v = Plan_cache.find_or_add cache k (square_counted invocations) in
        if v <> k * k then
          failwith
            (Printf.sprintf "key %d yielded %d (expected %d)" k v (k * k))
      done
    done
  in
  let domains =
    Array.init workers (fun w -> Domain.spawn (worker w))
  in
  Array.iter Domain.join domains;
  (cache, Atomic.get invocations)

let distinct_keys l =
  List.sort_uniq compare l

(* --- property 1: below capacity, the cache converges to exactly the
   distinct key set, every slot holds the pure compute's value, and the
   invocation count is fully explained by insertions + lost races *)
let prop_no_eviction =
  QCheck.Test.make ~count:25 ~name:"hammered below capacity"
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 30) (int_range (-100) 100))
        (int_range 2 5) (int_range 1 8))
    (fun (key_list, workers, reps) ->
      let keys = Array.of_list (distinct_keys key_list) in
      let n = Array.length keys in
      let cache, invocations =
        hammer ~capacity:(n + 8) ~workers ~keys ~reps
      in
      let races = Plan_cache.races cache in
      Plan_cache.length cache = n
      && Plan_cache.evictions cache = 0
      && Plan_cache.peak cache = n
      (* every compute either landed in the cache or lost a race *)
      && invocations = n + races
      && races <= (workers - 1) * n
      && Array.for_all
           (fun k -> Plan_cache.find_opt cache k = Some (k * k))
           keys)

(* --- property 2: above capacity the LRU keeps churning, but the
   synchronized invariants still hold: size bounded, recency list
   duplicate-free and consistent, and every compute accounted for as
   a cached entry, an eviction, or a lost race *)
let prop_with_eviction =
  QCheck.Test.make ~count:25 ~name:"hammered beyond capacity"
    QCheck.(
      triple
        (list_of_size Gen.(8 -- 40) (int_range 0 60))
        (int_range 2 4) (int_range 1 6))
    (fun (key_list, workers, reps) ->
      let keys = Array.of_list (distinct_keys key_list) in
      let n = Array.length keys in
      QCheck.assume (n >= 4);
      let capacity = max 2 (n / 2) in
      let cache, invocations = hammer ~capacity ~workers ~keys ~reps in
      let recency = Plan_cache.keys_by_recency cache in
      let len = Plan_cache.length cache in
      len <= capacity
      && Plan_cache.peak cache <= capacity
      && List.length recency = len
      && List.length (distinct_keys recency) = len
      (* conservation: each invocation's value was inserted (then
         possibly evicted) or discarded as a race loser *)
      && invocations = len + Plan_cache.evictions cache
                       + Plan_cache.races cache
      && List.for_all
           (fun k -> Plan_cache.find_opt cache k = Some (k * k))
           recency)

(* --- property 3: mixed mutation — concurrent find_or_add with adds,
   removes and clears from a writer domain never corrupts the structure
   (no crash, size within bounds, recency consistent) *)
let prop_mixed_mutation =
  QCheck.Test.make ~count:15 ~name:"find_or_add races adds/removes/clear"
    QCheck.(pair (int_range 4 24) (int_range 1 4))
    (fun (n, reps) ->
      let capacity = n in
      let cache = Plan_cache.create ~capacity ~synchronized:true () in
      let invocations = Atomic.make 0 in
      let reader () =
        for _ = 1 to reps * 50 do
          for k = 0 to n - 1 do
            ignore (Plan_cache.find_or_add cache k (square_counted invocations))
          done
        done
      in
      let writer () =
        for r = 1 to reps * 10 do
          Plan_cache.add cache (r mod n) ((r mod n) * (r mod n));
          Plan_cache.remove cache ((r + 1) mod n);
          if r mod 7 = 0 then Plan_cache.clear cache
        done
      in
      let ds =
        [| Domain.spawn reader; Domain.spawn reader; Domain.spawn writer |]
      in
      Array.iter Domain.join ds;
      let recency = Plan_cache.keys_by_recency cache in
      let len = Plan_cache.length cache in
      len <= capacity
      && List.length recency = len
      && List.length (distinct_keys recency) = len
      && List.for_all
           (fun k -> Plan_cache.find_opt cache k = Some (k * k))
           recency)

(* --- contention is observable: many domains spinning on one hot key
   must finish with the right value, and the lock statistics stay
   internally consistent (non-negative, races only on misses) *)
let test_hot_key_contention () =
  let cache = Plan_cache.create ~capacity:4 ~synchronized:true () in
  let invocations = Atomic.make 0 in
  let worker () =
    for _ = 1 to 2000 do
      ignore (Plan_cache.find_or_add cache 42 (square_counted invocations))
    done
  in
  let ds = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  Alcotest.(check (option int)) "hot key value" (Some 1764)
    (Plan_cache.find_opt cache 42);
  Alcotest.(check int) "single cached entry" 1 (Plan_cache.length cache);
  Alcotest.(check int) "invocations = 1 + races"
    (1 + Plan_cache.races cache)
    (Atomic.get invocations);
  Alcotest.(check bool) "contention counter non-negative" true
    (Plan_cache.contention cache >= 0)

let seeded_rand = Random.State.make [| 0x9e3779b9 |]

let () =
  let qsuite =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:seeded_rand)
      [ prop_no_eviction; prop_with_eviction; prop_mixed_mutation ]
  in
  Alcotest.run "plan_cache_concurrent"
    [
      ("properties", qsuite);
      ( "contention",
        [
          Alcotest.test_case "hot key hammered from 4 domains" `Quick
            test_hot_key_contention;
        ] );
    ]
