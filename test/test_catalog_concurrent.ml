(* Concurrency tests for the catalog's shared state: the synchronized
   pool-shared plan cache hammered from several domains at once,
   observability-counter exactness under parallel batches, and the
   operator-facing health machinery (clear-quarantine, save/load) the
   parallel serving path ships with. *)

module Counters = Xpest_util.Counters
module Domain_pool = Xpest_util.Domain_pool
module E = Xpest_util.Xpest_error
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Registry = Xpest_datasets.Registry
module Plan = Xpest_plan.Plan
module Plan_cache = Xpest_plan.Plan_cache
module Estimator = Xpest_estimator.Estimator
module Catalog = Xpest_catalog.Catalog

let key d v = { Catalog.dataset = d; variance = v }

let summaries : (string, Summary.t) Hashtbl.t = Hashtbl.create 4

let summary_for (k : Catalog.key) =
  match Hashtbl.find_opt summaries k.Catalog.dataset with
  | Some s -> s
  | None ->
      let name =
        match Registry.of_string k.Catalog.dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" k.Catalog.dataset
      in
      let s =
        Summary.build ~p_variance:0.0 ~o_variance:0.0
          (Registry.generate ~scale:0.02 name)
      in
      Hashtbl.add summaries k.Catalog.dataset s;
      s

(* ------------------------------------------------------------------ *)
(* The pool-shared plan cache under concurrent compilation.            *)

let query_strings =
  [
    "//SPEECH/LINE"; "//PLAY//{SPEECH}"; "//ACT[/{SCENE}]"; "//SPEECH//{WORD}";
    "//article/{author}"; "//inproceedings/title"; "//PLAY/ACT/{SCENE}";
    "//SPEECH[/LINE]"; "//ACT//{SPEECH}"; "//PLAY[/ACT]//{LINE}";
  ]

let test_shared_plan_cache_hammered () =
  let patterns =
    Array.of_list (List.map Pattern.of_string query_strings)
  in
  let n = Array.length patterns in
  let cache = Estimator.create_plan_cache ~capacity:64 ~synchronized:true () in
  let workers = 4 and reps = 50 in
  (* every worker compiles every pattern, repeatedly, through the one
     shared cache — from distinct spawned domains *)
  let worker () =
    for _ = 1 to reps do
      Array.iter
        (fun q -> ignore (Plan_cache.find_or_add cache q Plan.compile))
        patterns
    done
  in
  let domains = Array.init workers (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "each distinct query cached once" n
    (Plan_cache.length cache);
  Alcotest.(check int) "no evictions below capacity" 0
    (Plan_cache.evictions cache);
  (* the duplicate-compile window is bounded: at worst one discarded
     compile per (worker - 1) per key, nowhere near the total volume *)
  Alcotest.(check bool)
    (Printf.sprintf "races bounded (%d)" (Plan_cache.races cache))
    true
    (Plan_cache.races cache <= (workers - 1) * n);
  (* whoever won each race, the cached plan is the deterministic
     compile of its key *)
  Array.iter
    (fun q ->
      match Plan_cache.find_opt cache q with
      | None -> Alcotest.failf "%s missing after hammering" (Pattern.to_string q)
      | Some plan ->
          Alcotest.(check string)
            (Pattern.to_string q ^ ": cached plan is the compiled plan")
            (Plan.to_string (Plan.compile q))
            (Plan.to_string plan))
    patterns

let test_unsynchronized_has_no_lock_stats () =
  let cache = Plan_cache.create ~capacity:8 () in
  for i = 0 to 20 do
    ignore (Plan_cache.find_or_add cache (i mod 5) (fun k -> k * k))
  done;
  Alcotest.(check bool) "not synchronized" false (Plan_cache.synchronized cache);
  Alcotest.(check int) "no contention" 0 (Plan_cache.contention cache);
  Alcotest.(check int) "no races" 0 (Plan_cache.races cache)

(* ------------------------------------------------------------------ *)
(* Counter exactness under parallel batches.                           *)

let routed_pairs () =
  let k1 = key "ssplays" 0.0 and k2 = key "dblp" 0.0 in
  let p = Pattern.of_string in
  [|
    (k1, p "//SPEECH/LINE");
    (k2, p "//article/{author}");
    (k1, p "//PLAY//{SPEECH}");
    (k2, p "//inproceedings/title");
    (k1, p "//SPEECH/LINE");
    (k2, p "//article/{author}");
  |]

let counter_value name snapshot_rows =
  match List.assoc_opt name snapshot_rows with Some v -> v | None -> 0

let test_counters_exact_under_parallel_batches () =
  let pairs = routed_pairs () in
  let cat = Catalog.create_r ~loader:(fun k -> Ok (summary_for k)) () in
  Domain_pool.with_pool ~domains:4 (fun pool ->
      Counters.with_enabled (fun () ->
          let before = Counters.snapshot () in
          let rounds = 5 in
          for _ = 1 to rounds do
            Array.iter
              (function
                | Ok _ -> ()
                | Error e -> Alcotest.failf "batch failed: %s" (E.to_string e))
              (Catalog.estimate_batch_r ~pool cat pairs)
          done;
          let delta =
            Counters.delta_between before (Counters.snapshot ())
          in
          (* volume counters must be exact — incremented from worker
             domains, never lost or torn *)
          Alcotest.(check int) "catalog.batch.calls" rounds
            (counter_value "catalog.batch.calls" delta);
          Alcotest.(check int) "catalog.batch.queries"
            (rounds * Array.length pairs)
            (counter_value "catalog.batch.queries" delta);
          Alcotest.(check int) "catalog.batch.groups" (rounds * 2)
            (counter_value "catalog.batch.groups" delta);
          Alcotest.(check int) "estimator.batch.queries"
            (rounds * Array.length pairs)
            (counter_value "estimator.batch.queries" delta);
          (* per round: 6 routed queries, 2 duplicates per group *)
          Alcotest.(check int) "estimator.batch.deduped" (rounds * 2)
            (counter_value "estimator.batch.deduped" delta);
          Alcotest.(check int) "estimator.estimate" (rounds * 4)
            (counter_value "estimator.estimate" delta);
          Alcotest.(check int) "domain_pool.calls" rounds
            (counter_value "domain_pool.calls" delta)))

let test_parallel_batch_clears_last_metrics () =
  let pairs = routed_pairs () in
  let cat = Catalog.create_r ~loader:(fun k -> Ok (summary_for k)) () in
  Counters.with_enabled (fun () ->
      ignore (Catalog.estimate_batch_r cat pairs);
      Alcotest.(check bool) "sequential batches attribute metrics" true
        (Catalog.last_batch_metrics cat <> []);
      Domain_pool.with_pool ~domains:2 (fun pool ->
          ignore (Catalog.estimate_batch_r ~pool cat pairs));
      Alcotest.(check bool) "parallel batches clear them" true
        (Catalog.last_batch_metrics cat = []))

(* ------------------------------------------------------------------ *)
(* clear_quarantine.                                                   *)

let test_clear_quarantine () =
  let k = key "ssplays" 0.0 in
  let q = Pattern.of_string "//SPEECH" in
  let broken = ref true in
  let loader k =
    if !broken then Error (E.Io_failure { path = "x"; reason = "down" })
    else Ok (summary_for k)
  in
  let resilience =
    { Catalog.default_resilience with max_retries = 0; failure_threshold = 2;
      backoff_base = 50 }
  in
  let cat = Catalog.create_r ~resilience ~loader () in
  ignore (Catalog.estimate_r cat k q);
  ignore (Catalog.estimate_r cat k q);
  (match Catalog.estimate_r cat k q with
  | Error (E.Quarantined _) -> ()
  | _ -> Alcotest.fail "expected the key to be quarantined");
  (* the override discards the whole history and reports what it was *)
  (match Catalog.clear_quarantine cat k with
  | None -> Alcotest.fail "expected a tracked state to clear"
  | Some h -> (
      Alcotest.(check int) "lifetime failures reported" 2
        h.Catalog.h_failures;
      match h.Catalog.h_state with
      | Catalog.Quarantined _ -> ()
      | _ -> Alcotest.fail "discarded state should be Quarantined"));
  Alcotest.(check int) "no tracked keys left" 0
    (List.length (Catalog.health cat));
  (* the storage healed: the next attempt probes immediately — no
     quarantine deadline survives the override *)
  broken := false;
  (match Catalog.estimate_r cat k q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-clear probe failed: %s" (E.to_string e));
  (* clearing an untracked key is a no-op *)
  Alcotest.(check bool) "untracked key clears to None" true
    (Catalog.clear_quarantine cat (key "dblp" 0.0) = None)

(* ------------------------------------------------------------------ *)
(* Health persistence.                                                 *)

let temp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xpest_health_%d_%s" (Unix.getpid ()) name)

let test_health_save_load_roundtrip () =
  let k = key "ssplays" 0.0 in
  let q = Pattern.of_string "//SPEECH" in
  let failing _ = Error (E.Io_failure { path = "x"; reason = "down" }) in
  let resilience =
    { Catalog.default_resilience with max_retries = 0; failure_threshold = 2;
      backoff_base = 10 }
  in
  let cat = Catalog.create_r ~resilience ~loader:failing () in
  ignore (Catalog.estimate_r cat k q);
  ignore (Catalog.estimate_r cat k q);
  (* quarantined until clock 2 + 10 = 12; 10 ticks remain *)
  let path = temp_path "roundtrip" in
  Catalog.save_health cat path;
  (* a fresh catalog (clock 0) re-anchors the deadline on its clock *)
  let cat2 = Catalog.create_r ~resilience ~loader:failing () in
  (match Catalog.load_health cat2 path with
  | Ok n -> Alcotest.(check int) "one key restored" 1 n
  | Error e -> Alcotest.failf "load_health failed: %s" (E.to_string e));
  (match Catalog.health cat2 with
  | [ h ] -> (
      Alcotest.(check int) "failure count survives" 2 h.Catalog.h_failures;
      match h.Catalog.h_state with
      | Catalog.Quarantined { until } ->
          Alcotest.(check int) "deadline re-anchored on the new clock" 10 until
      | _ -> Alcotest.fail "restored state should be Quarantined")
  | hs -> Alcotest.failf "expected 1 tracked key, got %d" (List.length hs));
  (* the restored quarantine refuses without touching the loader *)
  let touched = ref false in
  let cat3 =
    Catalog.create_r ~resilience
      ~loader:(fun _ ->
        touched := true;
        Error (E.Io_failure { path = "x"; reason = "down" }))
      ()
  in
  ignore (Catalog.load_health cat3 path);
  (match Catalog.estimate_r cat3 k q with
  | Error (E.Quarantined _) -> ()
  | _ -> Alcotest.fail "restored quarantine should refuse");
  Alcotest.(check bool) "no loader I/O through a restored quarantine" false
    !touched;
  Sys.remove path

let test_health_load_rejects_corruption () =
  let cat = Catalog.create_r ~loader:(fun k -> Ok (summary_for k)) () in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let check_corrupt name contents =
    let path = temp_path name in
    write path contents;
    (match Catalog.load_health cat path with
    | Error (E.Corrupt { section = "health"; _ }) -> ()
    | Error e -> Alcotest.failf "%s: wrong error class %s" name (E.to_string e)
    | Ok _ -> Alcotest.failf "%s: corrupt file accepted" name);
    Alcotest.(check int) (name ^ ": nothing half-applied") 0
      (List.length (Catalog.health cat));
    Sys.remove path
  in
  check_corrupt "bad magic" "not-a-health-file\n";
  check_corrupt "empty" "";
  check_corrupt "short row" "xpest-catalog-health/1\nssplays%400\t1\t2\n";
  check_corrupt "bad int"
    "xpest-catalog-health/1\nssplays%400\tx\t0\t0\t0\t0\t4\t0\t0\n";
  check_corrupt "bad backoff"
    "xpest-catalog-health/1\nssplays%400\t0\t0\t0\t0\t0\t0\t0\t0\n";
  (* a missing file is an I/O failure, not corruption *)
  match Catalog.load_health cat (temp_path "never_written") with
  | Error (E.Io_failure _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "missing file accepted"

let () =
  Alcotest.run "catalog_concurrent"
    [
      ( "shared_caches",
        [
          Alcotest.test_case "plan cache hammered from 4 domains" `Quick
            test_shared_plan_cache_hammered;
          Alcotest.test_case "unsynchronized caches track no lock stats"
            `Quick test_unsynchronized_has_no_lock_stats;
        ] );
      ( "counters",
        [
          Alcotest.test_case "exact totals under parallel batches" `Quick
            test_counters_exact_under_parallel_batches;
          Alcotest.test_case "parallel batches clear last_metrics" `Quick
            test_parallel_batch_clears_last_metrics;
        ] );
      ( "operator",
        [
          Alcotest.test_case "clear_quarantine" `Quick test_clear_quarantine;
          Alcotest.test_case "health save/load round-trip" `Quick
            test_health_save_load_roundtrip;
          Alcotest.test_case "health load rejects corruption" `Quick
            test_health_load_rejects_corruption;
        ] );
    ]
