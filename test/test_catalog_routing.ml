(* Differential testing of the catalog's routed batch path against
   fresh single-summary estimators.

   estimate_batch's contract extends estimate_many's: for every
   (key, query) pair in a mixed batch, the routed float must have the
   same bit pattern as a scalar Estimator.estimate call on a fresh
   estimator over that key's summary — no matter how the batch
   interleaves keys, how small the resident set is (capacity 1 evicts
   and reloads summaries mid-batch), or how much the pool-shared plan
   cache reuses compilations across summaries.  Checked over the full
   generated workload (all four query classes) of the three synthetic
   datasets with fixed seeds, each served at two variance targets. *)

module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Registry = Xpest_datasets.Registry
module Catalog = Xpest_catalog.Catalog

let min_cases = 500

let profiles =
  [
    (Registry.Ssplays, 0.1, 8101);
    (Registry.Dblp, 0.05, 8102);
    (Registry.Xmark, 0.05, 8103);
  ]

let variances = [ 0.0; 2.0 ]

let workload_patterns ~wseed doc =
  let config =
    {
      Workload.default_config with
      seed = wseed;
      num_simple = 1500;
      num_branch = 1500;
    }
  in
  Workload.patterns (Workload.all_items (Workload.generate ~config doc))

(* The prepared universe: per dataset, its summaries at each variance
   and its workload.  Built once (the expensive part) and shared. *)
let universe =
  lazy
    (List.map
       (fun (name, scale, wseed) ->
         let doc = Registry.generate ~scale name in
         let dsname = String.lowercase_ascii (Registry.to_string name) in
         let summaries =
           List.map
             (fun v ->
               ( { Catalog.dataset = dsname; variance = v },
                 Summary.build ~p_variance:v ~o_variance:v doc ))
             variances
         in
         (dsname, summaries, workload_patterns ~wseed doc))
       profiles)

let loader k =
  let rec find = function
    | [] -> invalid_arg (Catalog.key_to_string k)
    | (_, summaries, _) :: rest -> (
        match
          List.find_opt (fun (k', _) -> k' = k) summaries
        with
        | Some (_, s) -> s
        | None -> find rest)
  in
  find (Lazy.force universe)

(* The mixed batch: every dataset's workload under each of its keys,
   interleaved by key so consecutive queries rarely share a summary —
   the grouping inside estimate_batch has to undo this. *)
let mixed_pairs () =
  let per_key =
    List.concat_map
      (fun (dsname, summaries, patterns) ->
        ignore dsname;
        List.map
          (fun (k, _) -> Array.map (fun q -> (k, q)) patterns)
          summaries)
      (Lazy.force universe)
  in
  let longest = List.fold_left (fun m a -> max m (Array.length a)) 0 per_key in
  let out = ref [] in
  for i = longest - 1 downto 0 do
    List.iter
      (fun a -> if i < Array.length a then out := a.(i) :: !out)
      per_key
  done;
  Array.of_list !out

(* Scalar reference: fresh estimator per key, memoized per test run. *)
let reference pairs =
  let ests = Hashtbl.create 8 in
  Array.map
    (fun (k, q) ->
      let est =
        match Hashtbl.find_opt ests k with
        | Some e -> e
        | None ->
            let e = Estimator.create (loader k) in
            Hashtbl.add ests k e;
            e
      in
      Estimator.estimate est q)
    pairs

let check_bit_identical ~label expected routed =
  Alcotest.(check int)
    (label ^ ": lengths")
    (Array.length expected) (Array.length routed);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float routed.(i) then
        Alcotest.failf "%s: pair %d: fresh %h <> routed %h" label i e
          routed.(i))
    expected

let test_routing ~resident_capacity () =
  let pairs = mixed_pairs () in
  if Array.length pairs < min_cases then
    Alcotest.failf "only %d routed pairs (need >= %d)" (Array.length pairs)
      min_cases;
  let expected = reference pairs in
  let cat = Catalog.create ~resident_capacity ~loader () in
  let routed = Catalog.estimate_batch cat pairs in
  check_bit_identical ~label:"routed vs fresh" expected routed;
  let st : Catalog.stats = Catalog.stats cat in
  let nkeys = List.length profiles * List.length variances in
  (* grouping promises at most one load per key per batch, so a single
     pass evicts (when capacity < keys) but cannot reload ... *)
  if resident_capacity < nkeys && st.Catalog.evictions = 0 then
    Alcotest.failf "capacity %d never evicted (%d keys)" resident_capacity
      nkeys;
  Alcotest.(check int) "one load per key in one pass" nkeys st.Catalog.loads;
  (* ... the second identical batch then reloads the evicted summaries
     — and must agree bitwise with the first *)
  let again = Catalog.estimate_batch cat pairs in
  check_bit_identical ~label:"second pass vs first" routed again;
  let st : Catalog.stats = Catalog.stats cat in
  if resident_capacity < nkeys then begin
    if st.Catalog.loads <= nkeys then
      Alcotest.failf "capacity %d never reloaded (loads %d <= keys %d)"
        resident_capacity st.Catalog.loads nkeys
  end
  else
    (* everything stayed resident: the second pass was pure pool hits *)
    Alcotest.(check int) "still one load per key" nkeys st.Catalog.loads;
  (* scalar routing agrees with batch routing *)
  let scalar_spot =
    Array.init 50 (fun i ->
        let k, q = pairs.(i * Array.length pairs / 50) in
        Catalog.estimate cat k q)
  in
  Array.iteri
    (fun i v ->
      let j = i * Array.length pairs / 50 in
      if Int64.bits_of_float v <> Int64.bits_of_float expected.(j) then
        Alcotest.failf "scalar route, pair %d: fresh %h <> routed %h" j
          expected.(j) v)
    scalar_spot

let () =
  let nkeys = List.length profiles * List.length variances in
  Alcotest.run "catalog_routing"
    [
      ( "bit_identity",
        [
          Alcotest.test_case "all summaries resident" `Slow
            (test_routing ~resident_capacity:nkeys);
          Alcotest.test_case "capacity 2 (evict + reload mid-batch)" `Slow
            (test_routing ~resident_capacity:2);
          Alcotest.test_case "capacity 1 (every group reloads)" `Slow
            (test_routing ~resident_capacity:1);
        ] );
    ]
